"""Process backend tour: shard workers that escape the GIL.

Runs the same zipfian stream through a ``backend="thread"`` and a
``backend="process"`` :class:`repro.service.ShardedSketchService` and
shows that the two are answer-identical — the process backend changes
*where* each shard's sketch lives (a forked worker process, fed fused
batches through shared memory), never *what* it computes.  Then it turns
on durability + supervision and SIGKILLs a worker child mid-ingest to
show the rebuild path: the supervisor forks a fresh child, replays
snapshot + WAL + redirected traffic, and the final answers are exact.

Backend selection guidance, the shared-memory lifecycle, and the RPC wire
format live in docs/SCALING.md.

Run:  python examples/process_backend_tour.py
"""

import os
import signal
import tempfile
import time

import numpy as np

import repro.telemetry as telemetry
from repro.core import ChainCountMin
from repro.service import ShardedSketchService

N = 20_000
ARRIVAL_BATCH = 250
SHARDS = 2
UNIVERSE = 1_000


def factory():
    return ChainCountMin(width=1024, depth=3, eps_ckpt=0.002, seed=7)


def make_stream():
    rng = np.random.default_rng(21)
    keys = (rng.zipf(1.3, size=N) % UNIVERSE).astype(np.int64)
    timestamps = np.arange(N, dtype=float)
    return keys, timestamps


def ingest(service, keys, timestamps, kill_pid_at=None):
    for start in range(0, N, ARRIVAL_BATCH):
        stop = start + ARRIVAL_BATCH
        service.ingest_batch(keys[start:stop], timestamps[start:stop])
        if kill_pid_at is not None and start == kill_pid_at[0]:
            os.kill(kill_pid_at[1], signal.SIGKILL)
            print(f"  SIGKILLed shard 0's child (pid {kill_pid_at[1]}) "
                  f"after {stop} items")
    assert service.drain(timeout=120)


def main() -> None:
    telemetry.enable()
    keys, timestamps = make_stream()
    hot = int(np.bincount(keys).argmax())
    t = float(timestamps[-1])
    true_count = int((keys == hot).sum())

    # --- same answers, different execution substrate -----------------------
    answers = {}
    for backend in ("thread", "process"):
        with ShardedSketchService(
            factory, num_shards=SHARDS, backend=backend, min_drain_items=4096
        ) as service:
            ingest(service, keys, timestamps)
            answers[backend] = service.estimate_at(hot, t)
            shard_backends = service.health()["shard_backends"]
        pids = {entry["pid"] for entry in shard_backends.values()}
        where = f"child pids {sorted(pids)}" if backend == "process" else (
            f"threads in pid {os.getpid()}")
        print(f"{backend:>8} backend: hottest key {hot} -> "
              f"{answers[backend]:.0f} (true {true_count}), shards ran as "
              f"{where}")
    assert answers["thread"] == answers["process"]
    print("  identical answers — the backend is an execution choice, "
          "not a semantic one\n")

    # --- kill a child mid-ingest; the supervisor rebuilds it exactly -------
    with tempfile.TemporaryDirectory() as directory:
        with ShardedSketchService(
            factory,
            num_shards=SHARDS,
            backend="process",
            directory=directory,
            durable_options={"fsync_policy": "always"},
            supervise=True,
        ) as service:
            victim = service._workers[0].pid
            print("durable + supervised process service:")
            ingest(service, keys, timestamps, kill_pid_at=(N // 4, victim))
            deadline = time.monotonic() + 60
            while not service.health()["healthy"]:
                assert time.monotonic() < deadline
                time.sleep(0.05)
            rebuilt = service._workers[0].pid
            print(f"  supervisor rebuilt shard 0 as pid {rebuilt} "
                  f"(was {victim})")
            answer = service.estimate_at(hot, t)
            print(f"  post-crash answer: {answer:.0f} "
                  f"(no-crash answer {answers['process']:.0f})")
            assert answer == answers["process"]

    print("\n--- merged parent+child telemetry (excerpt) ---")
    for line in telemetry.report().splitlines():
        if "service_shard_backend" in line or "service_batches_applied" in line:
            print(line)
    telemetry.disable()


if __name__ == "__main__":
    main()
