"""Observability tour: metrics, spans, and memory accounting end to end.

Enables telemetry, runs a realistic mixed workload — durable ATTP ingest
through a WAL-backed checkpoint chain, a BITP priority sampler, historical
queries — then shows every way to look at what happened:

* the one-call human summary (``repro.telemetry.report()``),
* the memory accountant (resident bytes vs the paper's space bounds),
* the JSONL snapshot and the Prometheus text exposition.

The full metric catalog and conventions are in docs/OBSERVABILITY.md.

Run:  python examples/observability_tour.py
"""

import tempfile

import repro.telemetry as telemetry
from repro.core import CheckpointChain, PersistentTopKSample
from repro.core.bitp_sampling import BitpPrioritySample
from repro.durability import DurableSketch
from repro.sketches import CountMinSketch
from repro.telemetry import account, account_and_publish
from repro.workloads import object_id_stream

N = 20_000


def chain_factory():
    return CheckpointChain(
        lambda: CountMinSketch.from_error(0.01, 0.01, seed=7), eps=0.05
    )


def main() -> None:
    telemetry.enable()
    stream = object_id_stream(n=N, seed=7)

    # --- ingest: durable ATTP chain + BITP sampler + ATTP sample ----------
    with tempfile.TemporaryDirectory() as state_dir:
        store = DurableSketch(
            chain_factory(), state_dir, fsync_policy="off", snapshot_every=8_000
        )
        bitp = BitpPrioritySample(k=256, seed=3)
        topk = PersistentTopKSample(k=256, seed=3)
        for key, timestamp in stream:
            store.update(key, timestamp)
            bitp.update(key, timestamp)
            topk.update(key, timestamp)

        # --- historical queries feed the latency histograms ---------------
        t_now = float(stream.timestamps[-1])
        for fraction in (0.2, 0.4, 0.6, 0.8, 1.0):
            t = float(stream.timestamps[int(fraction * N) - 1])
            store.sketch.sketch_at(t)
            bitp.sample_since(t_now - (t_now - t))
            topk.sample_at(t)
        store.close(final_snapshot=False)
        chain = store.sketch

    # --- the memory accountant: resident vs the paper's bounds ------------
    print("memory accounting (resident vs paper space bound)")
    for name, structure in (
        ("checkpoint_chain", chain),
        ("bitp_priority", bitp),
        ("persistent_topk", topk),
    ):
        report = account_and_publish(structure, name=name)
        bound_kib = report.bound_bytes / 1024
        print(
            f"  {name:<18} resident {report.resident_bytes / 1024:8.1f} KiB"
            f"   bound {bound_kib:8.1f} KiB"
            f"   utilization {report.utilization:5.1%}"
        )
        for component in report.components:
            print(f"    - {component.name:<16} {component.resident_bytes:>9} B")
    print()

    # --- the human summary -------------------------------------------------
    print(telemetry.report())
    print()

    # --- machine exporters --------------------------------------------------
    with tempfile.NamedTemporaryFile(mode="r", suffix=".jsonl") as handle:
        path = telemetry.write_jsonl(handle.name)
        lines = path.read_text().splitlines()
    print(f"JSONL snapshot: {len(lines)} metric samples; first line:")
    print(f"  {lines[0][:120]}...")
    print()

    prometheus = telemetry.prometheus_text()
    print("Prometheus exposition (first 10 lines):")
    for line in prometheus.splitlines()[:10]:
        print(f"  {line}")

    # Accounting also works un-published, for ad-hoc inspection:
    assert account(topk).resident_bytes == topk.memory_bytes()

    telemetry.disable()


if __name__ == "__main__":
    main()
