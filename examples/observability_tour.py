"""Observability tour: metrics, traces, explain plans, and memory accounting.

Enables telemetry, runs a realistic mixed workload — durable ATTP ingest
through a WAL-backed checkpoint chain, a BITP priority sampler, historical
queries, and a traced pass through the sharded service — then shows every
way to look at what happened:

* the one-call human summary (``repro.telemetry.report()``),
* one connected ingest trace and one query trace, span by span,
* a query explain plan (``explain=True`` → ``(answer, plan)``),
* the live introspection server (``/healthz``, ``/metrics``, ``/traces``),
* the memory accountant (resident bytes vs the paper's space bounds),
* the JSONL snapshot and the Prometheus text exposition.

The full metric catalog and conventions are in docs/OBSERVABILITY.md.

Run:  python examples/observability_tour.py
"""

import json
import tempfile
import urllib.request

import repro.telemetry as telemetry
from repro.core import CheckpointChain, PersistentTopKSample
from repro.core.bitp_sampling import BitpPrioritySample
from repro.durability import DurableSketch
from repro.service import ShardedSketchService
from repro.sketches import CountMinSketch
from repro.telemetry import account, account_and_publish
from repro.telemetry.spans import SPANS
from repro.workloads import object_id_stream

N = 20_000


def chain_factory():
    return CheckpointChain(
        lambda: CountMinSketch.from_error(0.01, 0.01, seed=7), eps=0.05
    )


def main() -> None:
    telemetry.enable()
    stream = object_id_stream(n=N, seed=7)

    # --- ingest: durable ATTP chain + BITP sampler + ATTP sample ----------
    with tempfile.TemporaryDirectory() as state_dir:
        store = DurableSketch(
            chain_factory(), state_dir, fsync_policy="off", snapshot_every=8_000
        )
        bitp = BitpPrioritySample(k=256, seed=3)
        topk = PersistentTopKSample(k=256, seed=3)
        for key, timestamp in stream:
            store.update(key, timestamp)
            bitp.update(key, timestamp)
            topk.update(key, timestamp)

        # --- historical queries feed the latency histograms ---------------
        t_now = float(stream.timestamps[-1])
        for fraction in (0.2, 0.4, 0.6, 0.8, 1.0):
            t = float(stream.timestamps[int(fraction * N) - 1])
            store.sketch.sketch_at(t)
            bitp.sample_since(t_now - (t_now - t))
            topk.sample_at(t)
        store.close(final_snapshot=False)
        chain = store.sketch

    # --- traced service: one ingest trace, one query trace, one plan ------
    SPANS.clear()
    with ShardedSketchService(chain_factory, num_shards=2) as service:
        keys = [int(key) for key in stream.keys[:4096]]
        timestamps = [float(t) for t in stream.timestamps[:4096]]
        service.ingest_batch(keys, timestamps)
        service.drain(timeout=30)
        t_mid = timestamps[len(timestamps) // 2]
        merged, plan = service.merged_sketch_at(t_mid, explain=True)

        print("query explain plan (merged_sketch_at, explain=True)")
        for line in plan.render().splitlines():
            print(f"  {line}")
        print()

        ingest_root = next(
            record for record in SPANS.snapshot()
            if record.name == "service.ingest_batch"
        )
        print(f"one ingest call = one trace ({ingest_root.trace_id}):")
        for record in SPANS.trace(ingest_root.trace_id):
            print(
                f"  {record.name:<22} thread={record.thread:<12}"
                f" wall={record.wall_seconds * 1e3:7.3f} ms  attrs={record.attrs}"
            )
        print()

        # --- the live introspection server over real HTTP ------------------
        with service.serve_introspection() as server:
            with urllib.request.urlopen(server.url + "/healthz") as response:
                health = json.loads(response.read())
            print(
                f"introspection server at {server.url}: healthz"
                f" healthy={health['healthy']} watermark={health['watermark']}"
            )
            with urllib.request.urlopen(server.url + "/traces") as response:
                traces = json.loads(response.read())["traces"]
            print(f"  /traces currently retains {len(traces)} trace(s)")
        print()

    # --- the memory accountant: resident vs the paper's bounds ------------
    print("memory accounting (resident vs paper space bound)")
    for name, structure in (
        ("checkpoint_chain", chain),
        ("bitp_priority", bitp),
        ("persistent_topk", topk),
    ):
        report = account_and_publish(structure, name=name)
        bound_kib = report.bound_bytes / 1024
        print(
            f"  {name:<18} resident {report.resident_bytes / 1024:8.1f} KiB"
            f"   bound {bound_kib:8.1f} KiB"
            f"   utilization {report.utilization:5.1%}"
        )
        for component in report.components:
            print(f"    - {component.name:<16} {component.resident_bytes:>9} B")
    print()

    # --- the human summary -------------------------------------------------
    print(telemetry.report())
    print()

    # --- machine exporters --------------------------------------------------
    with tempfile.NamedTemporaryFile(mode="r", suffix=".jsonl") as handle:
        path = telemetry.write_jsonl(handle.name)
        lines = path.read_text().splitlines()
    print(f"JSONL snapshot: {len(lines)} metric samples; first line:")
    print(f"  {lines[0][:120]}...")
    print()

    prometheus = telemetry.prometheus_text()
    print("Prometheus exposition (first 10 lines):")
    for line in prometheus.splitlines()[:10]:
        print(f"  {line}")

    # Accounting also works un-published, for ad-hoc inspection:
    assert account(topk).resident_bytes == topk.memory_bytes()

    telemetry.disable()


if __name__ == "__main__":
    main()
