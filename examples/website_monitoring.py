"""Website-monitoring audit — the paper's motivating ATTP use case.

A system administrator monitors website access logs in real time.  Months
later, an incident review asks: *which clients dominated traffic at the time
a bad decision was made?*  Re-scanning the archived log is expensive; an ATTP
sketch answers directly from a summary that was maintained online.

This example feeds a WorldCup'98-style access log into the two ATTP sketches
from the paper (SAMPLING and CMG), "audits" three past instants, and checks
both against an exact oracle — including the memory each approach needed.

Run:  python examples/website_monitoring.py
"""

from repro.baselines import ExactStreamOracle
from repro.evaluation import format_bytes, precision, recall
from repro.persistent import AttpChainMisraGries, AttpSampleHeavyHitter
from repro.workloads import client_id_stream


def main() -> None:
    phi = 0.002  # report clients with >= 0.2% of all requests so far
    stream = client_id_stream(n=80_000, universe=20_000, ratio=300.0, seed=11)
    print(f"access log: {len(stream)} requests, {stream.universe} distinct clients")

    sampling = AttpSampleHeavyHitter(k=20_000, seed=3)
    cmg = AttpChainMisraGries(eps=0.0005)
    oracle = ExactStreamOracle()

    for key, timestamp in stream:
        sampling.update(key, timestamp)
        cmg.update(key, timestamp)
        oracle.update(key, timestamp)

    # The incident review: audit the state at three past instants.
    audit_points = {
        "after 25% of traffic": float(stream.timestamps[len(stream) // 4]),
        "after 50% of traffic": float(stream.timestamps[len(stream) // 2]),
        "after 75% of traffic": float(stream.timestamps[3 * len(stream) // 4]),
    }

    for label, t in audit_points.items():
        truth = oracle.heavy_hitters_at(t, phi)
        from_sampling = sampling.heavy_hitters_at(t, phi)
        from_cmg = cmg.heavy_hitters_at(t, phi)
        print(f"\n{label} (t = {t:.0f}): {len(truth)} true heavy clients")
        print(f"  SAMPLING reported {len(from_sampling):>3}  "
              f"precision={precision(from_sampling, truth):.2f}  "
              f"recall={recall(from_sampling, truth):.2f}")
        print(f"  CMG      reported {len(from_cmg):>3}  "
              f"precision={precision(from_cmg, truth):.2f}  "
              f"recall={recall(from_cmg, truth):.2f}  (recall is guaranteed)")

    print("\nmemory needed to answer every historical query:")
    print(f"  SAMPLING sketch : {format_bytes(sampling.memory_bytes())}")
    print(f"  CMG sketch      : {format_bytes(cmg.memory_bytes())}")
    print(f"  full log        : {format_bytes(oracle.memory_bytes())}")


if __name__ == "__main__":
    main()
