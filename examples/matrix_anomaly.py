"""Historical anomaly detection in a matrix stream (Section 6.3 scenario).

The paper's matrix datasets hide a transient low-rank "event" in the middle
of a noisy vector stream.  A covariance model built over *all* data dilutes
the event; an ATTP matrix sketch lets an analyst scan historical prefixes and
watch the spectrum change as the event appears — months later, without the
raw rows.

We feed the Section-6.3 synthetic dataset to the paper's PFD (Algorithm 1)
and norm-sampling sketches, then audit the top eigenvalue share across time
and compare the detected event subspace against the exact one.

Run:  python examples/matrix_anomaly.py
"""

import numpy as np

from repro.evaluation import covariance_relative_error, format_bytes
from repro.persistent import AttpNormSampling, AttpPersistentFrequentDirections
from repro.workloads import generate_matrix_stream


def top_eigen_share(covariance: np.ndarray) -> float:
    """Fraction of total variance carried by the leading eigenvector."""
    trace = float(np.trace(covariance))
    if trace <= 0.0:
        return 0.0
    top = float(np.linalg.eigvalsh(covariance)[-1])
    return top / trace


def main() -> None:
    stream = generate_matrix_stream(n=4_000, dim=100, horizon=1_000.0, seed=13)
    print(f"matrix stream: {len(stream)} rows, d={stream.dim}, "
          "event burst around t=500\n")

    pfd = AttpPersistentFrequentDirections(ell=20, dim=stream.dim)
    ns = AttpNormSampling(k=200, dim=stream.dim, seed=4)
    for row, timestamp in stream:
        pfd.update(row, timestamp)
        ns.update(row, timestamp)

    print("top-eigenvalue share of the covariance, audited at past times:")
    print("  time   PFD     NS      exact")
    for t in (200.0, 450.0, 550.0, 900.0):
        end = int(np.searchsorted(stream.timestamps, t, side="right"))
        prefix = stream.rows[:end]
        exact_cov = prefix.T @ prefix
        row = (
            f"  {t:5.0f}  "
            f"{top_eigen_share(pfd.covariance_at(t)):.3f}   "
            f"{top_eigen_share(ns.covariance_at(t)):.3f}   "
            f"{top_eigen_share(exact_cov):.3f}"
        )
        print(row)

    # Quality + cost summary at the end of the stream.
    t_end = float(stream.timestamps[-1])
    full = stream.rows
    exact_cov = full.T @ full
    print("\ncovariance relative error at t_end "
          "(||A^T A - B^T B||_2 / ||A||_F^2):")
    print(f"  PFD : {covariance_relative_error(exact_cov, pfd.covariance_at(t_end)):.4f}  "
          f"using {format_bytes(pfd.memory_bytes())}")
    print(f"  NS  : {covariance_relative_error(exact_cov, ns.covariance_at(t_end)):.4f}  "
          f"using {format_bytes(ns.memory_bytes())}")
    print(f"  raw rows would use {format_bytes(full.size * 8)}")

    # Does the audited sketch expose the planted event subspace?
    burst = pfd.covariance_at(550.0) - pfd.covariance_at(450.0)
    eigenvalues = np.linalg.eigvalsh(burst)
    strong = int((eigenvalues > 0.05 * eigenvalues[-1]).sum())
    print(f"\nevent subspace dimensions detected from sketch difference: "
          f"{strong} (planted: {stream.dim // 10})")


if __name__ == "__main__":
    main()
