"""Multi-tenant tour: many isolated sketch families in one process.

Stands up a durable :class:`repro.service.MultiTenantService` hosting a
small fleet of tenants over one sketch factory, and walks the whole
tenancy surface:

* lazy registration and per-tenant isolation (same keys, different
  tenants, different answers — and a shared answer cache that never
  crosses tenants),
* per-tenant quotas: a rate-limited tenant under the ``drop`` policy
  and a strict tenant that raises ``TenantQuotaError``,
* cold-tenant spill under a residency ceiling, with transparent
  bit-identical reload on the next touch,
* the fleet views: ``tenants()``, per-tenant memory via
  ``breakdown(prefix="tenant/")``, guarded per-tenant metrics, and the
  ``/tenants`` introspection route,
* closing and reopening the whole root with
  ``MultiTenantService.open``.

The operator's guide is docs/TENANCY.md.

Run:  python examples/multi_tenant_tour.py
"""

import json
import tempfile
import urllib.request
from pathlib import Path

import numpy as np

import repro.telemetry as telemetry
from repro.core import ChainMisraGries
from repro.service import MultiTenantService, TenantQuota, TenantQuotaError
from repro.telemetry import breakdown

EVENTS_PER_TENANT = 4_000
UNIVERSE = 500


def factory():
    return ChainMisraGries(eps=0.005)


def tenant_stream(seed, hot_key):
    """A zipf stream with one tenant-specific hot key planted."""
    rng = np.random.default_rng(seed)
    keys = (rng.zipf(1.4, size=EVENTS_PER_TENANT) % UNIVERSE).astype(np.int64)
    keys[:: 10] = hot_key  # every 10th event hits this tenant's hot key
    timestamps = np.arange(EVENTS_PER_TENANT, dtype=float)
    return keys, timestamps


def main() -> None:
    telemetry.enable()
    root = Path(tempfile.mkdtemp(prefix="tenancy-tour-"))
    horizon = float(EVENTS_PER_TENANT - 1)

    svc = MultiTenantService(
        factory,
        directory=root,
        num_shards=2,
        max_resident_tenants=2,          # a tight ceiling, to show spill
        label_tenants=3,                 # top-3 tenants keep their metric label
        default_quota=TenantQuota(rate=500_000.0),
    )
    print(f"durable multi-tenant root: {root}")

    # --- isolation: same keys, per-tenant answers --------------------------
    hot = {"acme": 7, "globex": 11, "initech": 13}
    with svc:
        for seed, (tenant, hot_key) in enumerate(hot.items()):
            keys, timestamps = tenant_stream(seed, hot_key)
            receipt = svc.ingest_batch(tenant, keys, timestamps)
            svc.wait_for(receipt)
        print("\nper-tenant hot-key estimates at the same timestamp:")
        for tenant, hot_key in hot.items():
            mine = svc.estimate_at(tenant, hot_key, horizon)
            other = svc.estimate_at(tenant, hot["acme" if tenant != "acme" else "globex"], horizon)
            print(f"  {tenant:8s} own hot key {hot_key:3d} -> {mine:7.0f}   "
                  f"another tenant's hot key -> {other:5.0f}")

        # --- residency: the ceiling already spilled someone ----------------
        print(f"\nresident (ceiling=2): {svc.resident_tenants()}")
        spilled = [t for t in hot if svc.registry.get(t).spills]
        print(f"spilled so far:       {spilled}")
        before = svc.estimate_at("acme", hot["acme"], horizon)
        print(f"touching 'acme' reloads it transparently: "
              f"estimate {before:.0f} "
              f"(reloads={svc.registry.get('acme').reloads})")

        # --- quotas --------------------------------------------------------
        svc.register_tenant("freeloader", quota=TenantQuota(rate=100.0, burst=200.0, policy="drop"))
        svc.register_tenant("strict", quota=TenantQuota(rate=100.0, burst=200.0, policy="error"))
        keys = np.arange(200, dtype=np.int64) % UNIVERSE
        timestamps = np.arange(200, dtype=float)
        print("\nquota admission (rate=100/s, burst=200):")
        first = svc.ingest_batch("freeloader", keys, timestamps)
        second = svc.ingest_batch("freeloader", keys, timestamps + 200)
        print(f"  freeloader batch 1: accepted={first.accepted}")
        print(f"  freeloader batch 2: dropped={second.dropped} (seqno={second.seqno})")
        svc.ingest_batch("strict", keys, timestamps)
        try:
            svc.ingest_batch("strict", keys, timestamps + 200)
        except TenantQuotaError as exc:
            print(f"  strict batch 2: {type(exc).__name__} reason={exc.reason} "
                  f"retry_after={exc.retry_after:.2f}s")

        # --- fleet observability -------------------------------------------
        fleet = svc.tenants()
        print(f"\nfleet: known={fleet['known']} resident={fleet['resident']} "
              f"(label guard top_k={fleet['label_guard']['top_k']}, "
              f"cardinality={fleet['label_guard']['cardinality']})")
        svc.publish_memory()
        print("per-tenant resident bytes (breakdown(prefix='tenant/')):")
        for owner, components in sorted(breakdown(prefix="tenant/").items()):
            print(f"  {owner:12s} total={components.get('total', 0):6d}  "
                  f"({len(components) - 1} shard components)")

        with svc.serve_introspection(port=0) as server:
            payload = json.loads(
                urllib.request.urlopen(server.url + "/tenants").read()
            )
            print(f"GET /tenants -> known={payload['known']} "
                  f"resident_order={payload['resident_order']}")

    # --- durable reopen: everything comes back cold ------------------------
    reopened = MultiTenantService.open(root, factory=factory)
    with reopened:
        print(f"\nreopened: tenants={reopened.known_tenants()} "
              f"resident={reopened.resident_tenants()}")
        after = reopened.estimate_at("acme", hot["acme"], horizon)
        print(f"acme hot key after reopen: {after:.0f} "
              f"({'bit-identical' if after == before else 'MISMATCH'})")

    telemetry.disable()


if __name__ == "__main__":
    main()
