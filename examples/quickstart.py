"""Quickstart: persistent sketches in five minutes.

Builds a small keyed stream, feeds one ATTP and one BITP heavy-hitter sketch
plus an ATTP quantile summary, and queries all of them at historical times —
the core of what this library does.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.persistent import (
    AttpChainMisraGries,
    AttpSampleQuantiles,
    BitpSampleHeavyHitter,
)
from repro.workloads import object_id_stream


def main() -> None:
    # A skewed keyed log stream: 50k events, ids 0..8999, Zipf-like skew.
    stream = object_id_stream(n=50_000, seed=7)
    print(f"stream: {len(stream)} events over universe {stream.universe}")

    # --- ATTP: "what were the heavy hitters as of time t?" -----------------
    cmg = AttpChainMisraGries(eps=0.002)
    for key, timestamp in stream:
        cmg.update(key, timestamp)

    t_quarter = float(stream.timestamps[len(stream) // 4])
    t_half = float(stream.timestamps[len(stream) // 2])
    print("\nATTP heavy hitters (phi = 1%) via Chain Misra-Gries:")
    print(f"  at 25% of the stream: {cmg.heavy_hitters_at(t_quarter, 0.01)}")
    print(f"  at 50% of the stream: {cmg.heavy_hitters_at(t_half, 0.01)}")
    print(f"  sketch memory: {cmg.memory_bytes() / 1024:.1f} KiB "
          f"(raw log would be {len(stream) * 12 / 1024:.1f} KiB)")

    # --- BITP: "what is heavy over the last w events, for any w?" ----------
    bitp = BitpSampleHeavyHitter(k=20_000, seed=1)
    for key, timestamp in stream:
        bitp.update(key, timestamp)

    t_now = float(stream.timestamps[-1])
    for window in (1_000, 10_000, 40_000):
        since = t_now - window + 1
        hitters = bitp.heavy_hitters_since(since, 0.01)
        print(f"BITP heavy hitters over the last {window:>6} events: {hitters}")

    # --- ATTP quantiles over a value stream --------------------------------
    rng = np.random.default_rng(0)
    values = np.concatenate([
        rng.normal(0.0, 1.0, size=20_000),   # early regime
        rng.normal(5.0, 1.0, size=20_000),   # late regime: the median shifts
    ])
    quantiles = AttpSampleQuantiles(k=4_000, seed=2)
    for index, value in enumerate(values):
        quantiles.update(float(value), float(index))
    print("\nATTP medians of a drifting value stream:")
    print(f"  median at t=19,999 (early regime): {quantiles.quantile_at(19_999, 0.5):+.2f}")
    print(f"  median at t=39,999 (after drift):  {quantiles.quantile_at(39_999, 0.5):+.2f}")


if __name__ == "__main__":
    main()
