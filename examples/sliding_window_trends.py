"""Flexible sliding-window analytics — the paper's motivating BITP use case.

Fixed sliding-window sketches commit to one window length in advance.  A BITP
sketch answers "what is trending over the last w events" for *any* w chosen
at query time — one day, two days, or 42.3 hours, as the paper puts it.

We synthesise a stream whose hot keys change over time, then use the two BITP
sketches from the paper (SAMPLING-BITP and Tree Misra-Gries) to read the
trend at several window lengths, plus a BITP quantile summary over request
latencies.

Run:  python examples/sliding_window_trends.py
"""

import numpy as np

from repro.baselines import ExactStreamOracle
from repro.evaluation import precision, recall
from repro.persistent import (
    BitpMergeTreeQuantiles,
    BitpSampleHeavyHitter,
    BitpTreeMisraGries,
)


def build_regime_stream(n: int, seed: int) -> list:
    """Keys 0-4 dominate the first half; keys 100-104 the second half."""
    rng = np.random.default_rng(seed)
    events = []
    for index in range(n):
        if rng.random() < 0.5:
            hot = (index * 5) // n if index < n // 2 else 100 + (index - n // 2) * 5 // (n // 2)
            key = int(hot)
        else:
            key = int(rng.integers(1_000, 6_000))
        events.append((key, float(index)))
    return events


def main() -> None:
    n = 60_000
    phi = 0.05
    events = build_regime_stream(n, seed=5)

    sampling = BitpSampleHeavyHitter(k=8_000, seed=1)
    tmg = BitpTreeMisraGries(eps=0.01, block_size=128)
    oracle = ExactStreamOracle()
    for key, timestamp in events:
        sampling.update(key, timestamp)
        tmg.update(key, timestamp)
        oracle.update(key, timestamp)

    t_now = float(n - 1)
    print(f"stream of {n} events; querying trends at several window lengths\n")
    for window in (2_000, 10_000, 40_000):
        since = t_now - window + 1
        truth = oracle.heavy_hitters_since(since, phi)
        s_hh = sampling.heavy_hitters_since(since, phi)
        t_hh = tmg.heavy_hitters_since(since, phi)
        print(f"window = last {window:>6} events — true hot keys: {truth}")
        print(f"  SAMPLING-BITP: {s_hh}  "
              f"(p={precision(s_hh, truth):.2f}, r={recall(s_hh, truth):.2f})")
        print(f"  TMG          : {t_hh}  "
              f"(p={precision(t_hh, truth):.2f}, r={recall(t_hh, truth):.2f})")

    # BITP quantiles: latency percentiles over any recent window.
    rng = np.random.default_rng(9)
    latencies = np.concatenate([
        rng.exponential(10.0, size=30_000),  # healthy period
        rng.exponential(50.0, size=30_000),  # degraded period
    ])
    quantiles = BitpMergeTreeQuantiles(k=200, eps_tree=0.05, block_size=128)
    for index, latency in enumerate(latencies):
        quantiles.update(float(latency), float(index))
    print("\np99 latency over recent windows (degradation started at t=30,000):")
    for window in (5_000, 25_000, 55_000):
        since = float(len(latencies) - window)
        p99 = quantiles.quantile_since(since, 0.99)
        print(f"  last {window:>6} requests: p99 ~ {p99:7.1f} ms")


if __name__ == "__main__":
    main()
