"""Historical cardinality and membership — the framework beyond the paper's
evaluated problems.

Section 2.2.5 of the paper lists distinct counting among the sketch families
its persistence frameworks extend to, and cites persistent Bloom filters as
problem-specific prior work.  This example exercises both extensions:

* an ATTP KMV sketch answers "how many distinct users had we seen by time t?"
* a BITP HyperLogLog merge tree answers "how many distinct users in the last
  w events, for any w?"
* an ATTP Bloom chain answers "had this user appeared by time t?"

Scenario: a service's user-id stream with a bot flood mid-way (a burst of
never-seen-again ids) — the kind of incident an after-the-fact audit needs
historical cardinality for.

Run:  python examples/cardinality_and_membership.py
"""

import numpy as np

from repro.evaluation import format_bytes
from repro.persistent import AttpBloomMembership, AttpKmvDistinct, BitpHllDistinct


def build_stream(seed: int = 3) -> list:
    """Organic traffic from 5k recurring users; a bot flood at t in [40k, 50k)."""
    rng = np.random.default_rng(seed)
    events = []
    t = 0
    for phase, length in (("organic", 40_000), ("flood", 10_000), ("organic", 30_000)):
        for _ in range(length):
            if phase == "flood" and rng.random() < 0.8:
                user = int(1_000_000 + rng.integers(0, 10**9))  # throwaway ids
            else:
                user = int(rng.integers(0, 5_000))
            events.append((user, float(t)))
            t += 1
    return events


def main() -> None:
    events = build_stream()
    print(f"stream: {len(events)} events; bot flood during t in [40k, 50k)\n")

    kmv = AttpKmvDistinct(k=1_024, seed=1)
    hll = BitpHllDistinct(p=12, block_size=256, seed=2)
    bloom = AttpBloomMembership(capacity=60_000, fp_rate=0.001, eps=0.02, seed=3)
    for user, timestamp in events:
        kmv.update(user, timestamp)
        hll.update(user, timestamp)
        bloom.update(user, timestamp)

    print("ATTP: distinct users seen by time t (KMV):")
    for t in (30_000.0, 45_000.0, 55_000.0, 79_999.0):
        print(f"  t = {t:>7.0f}: ~{kmv.distinct_at(t):>9.0f} distinct users")
    print("  (the jump between t=30k and t=55k is the flood's throwaway ids)")

    print("\nBITP: distinct users over trailing windows (HyperLogLog tree):")
    t_now = float(len(events) - 1)
    for window in (5_000, 20_000, 50_000):
        since = t_now - window + 1
        print(f"  last {window:>6} events: ~{hll.distinct_since(since):>9.0f} distinct")
    print("  (small recent windows show organic cardinality again)")

    print("\nATTP membership audit (Bloom chain):")
    bot_id = None
    for user, timestamp in events:
        if user >= 1_000_000:
            bot_id = user
            bot_time = timestamp
            break
    print(f"  bot id {bot_id} first seen at t = {bot_time:.0f}")
    print(f"  present at t = 20,000?  {bloom.contains_at(bot_id, 20_000.0)}")
    print(f"  present at t = 60,000?  {bloom.contains_at(bot_id, 60_000.0)}")

    print("\nmemory:")
    print(f"  KMV sketch   : {format_bytes(kmv.memory_bytes())}")
    print(f"  HLL tree     : {format_bytes(hll.memory_bytes())}")
    print(f"  Bloom chain  : {format_bytes(bloom.memory_bytes())}")
    print(f"  raw id log   : {format_bytes(len(events) * 12)}")
    print("  (the Bloom chain snapshots whole filters — Lemma 4.1 without an "
          "elementwise trick — so it trades memory for historical membership)")


if __name__ == "__main__":
    main()
