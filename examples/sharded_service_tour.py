"""Sharded service tour: concurrent ingest + historical queries at scale.

Stands up two 4-shard :class:`repro.service.ShardedSketchService`
instances over one zipfian key stream, fed in small arrival batches (the
workers fuse them into large group-commit applies):

* an ATTP heavy-hitter service (``ChainMisraGries``) answering point
  estimates and heavy hitters at any past time,
* a BITP suffix service (``MergeTreePersistence(CountMinSketch)``)
  answering "what happened since t?" via merged suffix summaries.

Along the way it shows read-your-writes via the ingest watermark
(``wait_for``/``drain``), querying mid-ingest, per-shard stats, the
coordinator's answer cache, and the telemetry report.

Architecture and sizing guidance live in docs/SERVICE.md.

Run:  python examples/sharded_service_tour.py
"""

import numpy as np

import repro.telemetry as telemetry
from repro.core import ChainMisraGries, MergeTreePersistence
from repro.service import ShardedSketchService
from repro.sketches import CountMinSketch

N = 40_000
ARRIVAL_BATCH = 256
SHARDS = 4


def attp_factory():
    return ChainMisraGries(eps=0.005)


def bitp_factory():
    return MergeTreePersistence(
        lambda: CountMinSketch(2048, 4, seed=11),
        eps=0.05,
        mode="bitp",
        block_size=256,
    )


def make_stream():
    rng = np.random.default_rng(42)
    keys = (rng.zipf(1.3, size=N) % 5_000).astype(np.int64)
    timestamps = np.arange(N, dtype=float)
    return keys, timestamps


def main() -> None:
    telemetry.enable()
    keys, timestamps = make_stream()
    half_t = float(timestamps[N // 2])

    attp = ShardedSketchService(
        attp_factory, num_shards=SHARDS, partition="hash", min_drain_items=4096
    )
    bitp = ShardedSketchService(
        bitp_factory, num_shards=SHARDS, partition="hash", min_drain_items=4096
    )
    with attp, bitp:
        # --- ingest in small arrival batches; workers group-commit --------
        receipt = None
        for start in range(0, N, ARRIVAL_BATCH):
            stop = start + ARRIVAL_BATCH
            mid = attp.ingest_batch(keys[start:stop], timestamps[start:stop])
            receipt = bitp.ingest_batch(keys[start:stop], timestamps[start:stop])
            if start <= N // 2 < stop:
                # mid-ingest: wait for our own writes, then query history
                assert attp.wait_for(mid.seqno, timeout=60)
                hot = int(np.bincount(keys[: N // 2]).argmax())
                print(
                    f"mid-ingest  watermark={attp.watermark():>4}  "
                    f"hot key {hot} so far ~{attp.estimate_at(hot, half_t):.0f}"
                )

        # --- read-your-writes barrier on the last acked call ---------------
        assert bitp.wait_for(receipt.seqno, timeout=120)
        assert attp.drain(timeout=120)

        # --- ATTP: point estimates + heavy hitters at two times ------------
        hot = int(np.bincount(keys).argmax())
        true_half = int((keys[: N // 2] == hot).sum())
        true_full = int((keys == hot).sum())
        print(f"\nATTP point estimates for hottest key {hot}:")
        print(
            f"  at t={half_t:>7.0f}: est {attp.estimate_at(hot, half_t):>7.0f}"
            f"  (true {true_half})"
        )
        print(
            f"  at t={N - 1:>7}: est {attp.estimate_at(hot, float(N - 1)):>7.0f}"
            f"  (true {true_full})"
        )
        hitters = attp.heavy_hitters_at(float(N - 1), 0.02)
        print(f"  2% heavy hitters now: {sorted(int(k) for k in hitters)[:8]}")

        # --- BITP: what happened since three-quarters in? -------------------
        t_recent = float(timestamps[3 * N // 4])
        suffix = keys[3 * N // 4 :]
        true_suffix = int((suffix == hot).sum())
        merged = bitp.merged_sketch_since(t_recent)
        print(f"\nBITP suffix since t={t_recent:.0f}:")
        print(
            f"  key {hot}: est {merged.query(hot):>7.0f}  (true {true_suffix})"
        )
        print(f"  merged suffix summary weight: {merged.total_weight:.0f}")

        # --- introspection --------------------------------------------------
        stats = attp.stats()
        print(f"\nservice stats (ATTP): watermark={stats['watermark']}")
        for shard in stats["shards"]:
            print(
                f"  shard {shard['shard']}: applied {shard['items_applied']:>6} items"
                f"  (seqno {shard['applied_seqno']})"
            )
        cache = attp.cache_info()
        print(f"  query cache: {cache['hits']} hits / {cache['misses']} misses")

    print("\n--- telemetry report ---")
    print(telemetry.report())
    telemetry.disable()


if __name__ == "__main__":
    main()
