"""Crash-safe ingestion: ingest -> kill -> recover -> query.

A monitoring pipeline feeds a persistent heavy-hitter sketch through
``repro.durability.DurableSketch``: every update is written to a CRC-framed
write-ahead log before it touches the sketch, and periodic snapshots bound
replay time.  Mid-stream the process "dies" (a fault-injecting filesystem
raises ``SimulatedCrash`` halfway through a WAL write, leaving a torn record
on disk — exactly what a power cut leaves behind).  Recovery loads the
newest snapshot, replays the WAL tail, truncates the torn record, and the
answers match a process that never crashed.

Run:  python examples/crash_recovery.py
"""

import tempfile
from pathlib import Path

from repro.durability import (
    DurableSketch,
    FaultPlan,
    FaultyFilesystem,
    SimulatedCrash,
    recover,
)
from repro.persistent import AttpSampleHeavyHitter

N = 20_000
UNIVERSE = 53
PHI = 0.03


def sketch_factory():
    # Recovery replays the WAL through a fresh sketch, so the factory must
    # be identical (same k, same seed) on every open.
    return AttpSampleHeavyHitter(k=600, seed=42)


def event_stream(n=N):
    """A deterministic skewed keyed stream (key, timestamp)."""
    return [((i * i) % UNIVERSE, float(i)) for i in range(n)]


def main() -> None:
    state_dir = Path(tempfile.mkdtemp(prefix="durable-sketch-")) / "hh"

    # --- ingest, with a disk that will fail mid-write ----------------------
    dying_disk = FaultyFilesystem(FaultPlan(crash_at=18_000, crash_mode="torn"))
    store = DurableSketch.open(
        sketch_factory,
        state_dir,
        fs=dying_disk,
        fsync_policy="batch",     # fsync every 64 records + every barrier
        snapshot_every=5_000,     # snapshot + WAL truncation cadence
        segment_bytes=256 * 1024,
    )
    acknowledged = 0
    try:
        for key, timestamp in event_stream():
            store.update(key, timestamp)
            acknowledged += 1
        store.close()
    except SimulatedCrash:
        pass
    assert dying_disk.crashed, "the injected kill point was never reached"
    print(f"ingest crashed after {acknowledged} acknowledged updates")
    print(f"state on disk: {sorted(p.name for p in state_dir.iterdir())}")

    # --- recover -----------------------------------------------------------
    result = recover(state_dir, sketch_factory)
    sketch = result.sketch
    print(
        f"recovered: snapshot@{result.snapshot_seqno} + {result.replayed} "
        f"replayed WAL records -> count={sketch.count} "
        f"(torn bytes truncated: {result.torn_bytes})"
    )

    # --- the recovered answers are exact ------------------------------------
    reference = sketch_factory()
    for key, timestamp in event_stream(sketch.count):
        reference.update(key, timestamp)
    t = float(sketch.count - 1)
    recovered_hh = sketch.heavy_hitters_at(t, PHI)
    assert recovered_hh == reference.heavy_hitters_at(t, PHI)
    assert sketch.count == reference.count
    print(f"heavy hitters at t={t:.0f} (phi={PHI}): {recovered_hh}")
    print("recovered answers identical to a never-crashed run — durability holds")

    # --- and ingestion just continues ---------------------------------------
    with DurableSketch.open(sketch_factory, state_dir, snapshot_every=5_000) as resumed:
        for key, timestamp in event_stream()[resumed.count :]:
            resumed.update(key, timestamp)
        print(
            f"resumed to the full stream: count={resumed.count}, "
            f"heavy hitters now {resumed.heavy_hitters_at(float(N - 1), PHI)}"
        )


if __name__ == "__main__":
    main()
