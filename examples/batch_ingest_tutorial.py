"""The batch-ingestion tutorial, executable end to end.

This script is the code half of ``docs/TUTORIAL.md``: batch-ingest a
Zipf-skewed keyed stream with ``update_batch``, audit heavy hitters at a
historical instant (ATTP), ask about a suffix window ending now (BITP),
then crash a durable ingest mid-BATCH-record and recover to the exact
pre-crash answers.

Run:  python examples/batch_ingest_tutorial.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import StreamBatch
from repro.durability import (
    DurableSketch,
    FaultPlan,
    FaultyFilesystem,
    SimulatedCrash,
    recover,
)
from repro.persistent import AttpSampleHeavyHitter, BitpSampleHeavyHitter

N = 40_000
BATCH = 1_024
UNIVERSE = 2_000
PHI = 0.02
SEED = 7


def zipf_stream(n=N, seed=0):
    """(keys, timestamps): a skewed keyed event stream, one event per tick."""
    rng = np.random.default_rng(seed)
    keys = (rng.zipf(1.3, size=n) % UNIVERSE).astype(np.int64)
    return keys, np.arange(n, dtype=float)


def batches(keys, times, size=BATCH):
    for start in range(0, len(keys), size):
        yield keys[start : start + size], times[start : start + size]


def main() -> None:
    keys, times = zipf_stream()

    # --- 1. ATTP: batch-ingest, then query any historical prefix -----------
    attp = AttpSampleHeavyHitter(k=4_096, seed=SEED)
    for key_chunk, time_chunk in batches(keys, times):
        attp.update_batch(key_chunk, time_chunk)
    t_half = times[N // 2]
    hh_then = [int(key) for key in attp.heavy_hitters_at(t_half, PHI)]
    print(f"ATTP: ingested {attp.count} events in {-(-N // BATCH)} batches")
    print(f"ATTP: heavy hitters at historical t={t_half:.0f}: {hh_then}")
    print(f"ATTP: estimate of key {hh_then[0]} back then: "
          f"{attp.estimate_at(hh_then[0], t_half):.0f}")

    # Batch ingest is equivalent to the scalar loop — same sample, same RNG.
    scalar = AttpSampleHeavyHitter(k=4_096, seed=SEED)
    for key, timestamp in zip(keys.tolist(), times.tolist()):
        scalar.update(key, timestamp)
    assert scalar.heavy_hitters_at(t_half, PHI) == hh_then
    assert scalar._sample._rng.bit_generator.state == \
        attp._sample._rng.bit_generator.state
    print("ATTP: batch ingest == scalar loop (answers and RNG position)")

    # --- 2. BITP: the same stream, windows ending now -----------------------
    bitp = BitpSampleHeavyHitter(k=4_096, seed=SEED)
    for key_chunk, time_chunk in batches(keys, times):
        bitp.update_batch(key_chunk, time_chunk)
    window = times[-1] - 5_000.0
    hh_window = [int(key) for key in bitp.heavy_hitters_since(window, PHI)]
    print(f"BITP: heavy hitters over the last 5000 ticks: {hh_window}")

    # --- 3. Durable batches: crash inside a BATCH WAL record ----------------
    state_dir = Path(tempfile.mkdtemp(prefix="batch-tutorial-")) / "hh"

    def factory():
        return AttpSampleHeavyHitter(k=4_096, seed=SEED)

    def ingest(directory, fs):
        """Feed every batch through a DurableSketch on the given disk."""
        acknowledged = 0
        try:
            store = DurableSketch.open(
                factory, directory, fs=fs,
                fsync_policy="always", snapshot_every=10_000,
            )
            for key_chunk, time_chunk in batches(keys, times):
                # the columnar spine form: one StreamBatch, one WAL record
                batch = StreamBatch.from_arrays(key_chunk, time_chunk)
                store.update_batch(batch)
                acknowledged += len(batch)
            store.close()
        except SimulatedCrash:
            pass
        return acknowledged

    # Trace a clean run to find the filesystem op that writes the middle
    # BATCH record, then re-run on a disk that dies tearing that very write.
    tracer = FaultyFilesystem()
    ingest(state_dir.parent / "trace", tracer)
    wal_appends = [
        op.index for op in tracer.ops if op.label.startswith("append:wal-")
    ]
    kill_point = wal_appends[len(wal_appends) // 2]
    dying_disk = FaultyFilesystem(FaultPlan(crash_at=kill_point, crash_mode="torn"))
    acknowledged = ingest(state_dir, dying_disk)
    assert dying_disk.crashed, "the injected kill point was never reached"
    print(f"durable: crashed mid-write after {acknowledged} acked updates")

    result = recover(state_dir, factory)
    recovered = result.sketch
    # Batches are atomic in the log: the torn record vanishes whole.
    assert recovered.count % BATCH == 0
    assert recovered.count >= acknowledged
    print(f"durable: recovered count={recovered.count} "
          f"(replayed {result.replayed} records, "
          f"torn bytes truncated: {result.torn_bytes})")

    reference = factory()
    reference.update_batch(keys[: recovered.count], times[: recovered.count])
    t_probe = times[recovered.count - 1]
    assert recovered.heavy_hitters_at(t_probe, PHI) == \
        reference.heavy_hitters_at(t_probe, PHI)
    print("durable: recovered answers identical to a never-crashed run")


if __name__ == "__main__":
    main()
