"""Sharded-service ingest throughput vs the direct single-sketch path.

The workload is the batched CountMin ATTP stream: zipf keys arriving in
batches of ``ARRIVAL_BATCH`` with monotone timestamps, ingested into
``CheckpointChain(CountMinSketch)``.  Three configurations are measured:

* ``baseline_direct`` — one chain, ``update_batch`` per arrival batch (the
  pre-service code path, i.e. the single-shard baseline);
* ``service_1`` — a 1-shard :class:`~repro.service.ShardedSketchService`;
* ``service_4`` — the 4-shard service;
* ``process_1`` / ``process_4`` — the same services with
  ``backend="process"``: each shard's sketch lives in a forked worker
  process and fused batches ship through shared memory, so the four
  applies run on four cores instead of interleaving under the GIL.

Both service runs use the batching knobs a throughput deployment would:
``ingest_buffer_items`` stages arrival batches producer-side so routing and
queue handoff are paid once per ~8k items, and ``min_drain_items`` makes
workers group-commit large fused ``update_batch`` applies instead of waking
per arrival.  The acceptance assertion is ``service_4 >= 2x
baseline_direct``: arrival batches of 64 cost the direct path a fixed
per-call overhead that the service amortises away, so the speedup holds
even on one core.  Genuine parallel scaling (``service_4`` over
``service_1``) is only asserted when the machine actually has >= 4 CPUs —
under a single core the GIL serialises the four workers and ``service_1``
is the faster configuration; the measured ratio is recorded either way.
The process backend's headline claim — ``process_4 >= 2.5x process_1``,
real multi-core scaling the thread backend cannot reach — is likewise
gated on >= 4 CPUs (the CI ``service-scaling`` job); the ratios are
recorded unconditionally so a single-core run documents the GIL wall
honestly.

Results land in ``benchmarks/results/BENCH_service.json``.  Quick mode
(``REPRO_BENCH_QUICK=1``) shrinks the stream for the CI smoke job; the 2x
assertion is kept.
"""

import json
import os
import time

import numpy as np
import pytest

from common import RESULTS_DIR
from repro.core import CheckpointChain
from repro.service import ShardedSketchService
from repro.sketches import CountMinSketch

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
N = 100_000 if QUICK else 1_000_000
ARRIVAL_BATCH = 64
REPEATS = 3
REQUIRED_SPEEDUP = 2.0
PARALLEL_SPEEDUP = 1.5
PROCESS_SCALING = 2.5
RESULT_PATH = RESULTS_DIR / "BENCH_service.json"

SERVICE_OPTS = dict(
    queue_capacity=1 << 17,
    max_drain_items=1 << 17,
    min_drain_items=8192,
    ingest_buffer_items=8192,
)


def chain_factory():
    return CheckpointChain(
        lambda: CountMinSketch(width=1024, depth=4, seed=1), eps=0.1
    )


def make_stream():
    rng = np.random.default_rng(11)
    keys = (rng.zipf(1.2, size=N) % 100_000).astype(np.int64)
    timestamps = np.arange(N, dtype=float)
    return keys, timestamps


def best_seconds(run):
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def run_direct(keys, timestamps):
    chain = chain_factory()
    for start in range(0, N, ARRIVAL_BATCH):
        stop = start + ARRIVAL_BATCH
        chain.update_batch(keys[start:stop], timestamps[start:stop])


def run_service(keys, timestamps, num_shards, backend="thread"):
    with ShardedSketchService(
        chain_factory, num_shards=num_shards, backend=backend, **SERVICE_OPTS
    ) as service:
        for start in range(0, N, ARRIVAL_BATCH):
            stop = start + ARRIVAL_BATCH
            service.ingest_batch(keys[start:stop], timestamps[start:stop])
        assert service.drain(timeout=600)


@pytest.fixture(scope="module")
def report():
    keys, timestamps = make_stream()

    direct_s = best_seconds(lambda: run_direct(keys, timestamps))
    service_1_s = best_seconds(lambda: run_service(keys, timestamps, 1))
    service_4_s = best_seconds(lambda: run_service(keys, timestamps, 4))
    process_1_s = best_seconds(
        lambda: run_service(keys, timestamps, 1, backend="process")
    )
    process_4_s = best_seconds(
        lambda: run_service(keys, timestamps, 4, backend="process")
    )

    direct_ups = N / direct_s
    service_1_ups = N / service_1_s
    service_4_ups = N / service_4_s
    process_1_ups = N / process_1_s
    process_4_ups = N / process_4_s

    report = {
        "stream_size": N,
        "arrival_batch": ARRIVAL_BATCH,
        "quick_mode": QUICK,
        "cpu_count": os.cpu_count(),
        "service_opts": SERVICE_OPTS,
        "required_speedup_vs_direct": REQUIRED_SPEEDUP,
        "speedup_source": (
            "producer-side staging (ingest_buffer_items) plus queue-drain "
            "group commit (min_drain_items) fuse 64-item arrivals into "
            "~8k-item update_batch applies, amortising per-call overhead; "
            "parallel scaling only contributes when cpu_count >= num_shards"
        ),
        "results": {
            "baseline_direct": {"updates_per_s": round(direct_ups)},
            "service_1": {
                "updates_per_s": round(service_1_ups),
                "speedup_vs_direct": round(service_1_ups / direct_ups, 2),
            },
            "service_4": {
                "updates_per_s": round(service_4_ups),
                "speedup_vs_direct": round(service_4_ups / direct_ups, 2),
                "speedup_vs_service_1": round(service_4_ups / service_1_ups, 2),
            },
            "process_1": {
                "updates_per_s": round(process_1_ups),
                "speedup_vs_direct": round(process_1_ups / direct_ups, 2),
            },
            "process_4": {
                "updates_per_s": round(process_4_ups),
                "speedup_vs_direct": round(process_4_ups / direct_ups, 2),
                "speedup_vs_process_1": round(process_4_ups / process_1_ups, 2),
            },
        },
        "required_process_scaling": PROCESS_SCALING,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


class TestServiceThroughput:
    def test_four_shards_clear_2x_over_direct(self, report):
        speedup = report["results"]["service_4"]["speedup_vs_direct"]
        assert speedup >= REQUIRED_SPEEDUP, (
            f"4-shard service ingest is only {speedup}x the direct "
            f"single-sketch path (required {REQUIRED_SPEEDUP}x)"
        )

    def test_parallel_scaling_when_cores_allow(self, report):
        if (os.cpu_count() or 1) < 4:
            pytest.skip("needs >= 4 CPUs for a parallel-scaling claim")
        ratio = report["results"]["service_4"]["speedup_vs_service_1"]
        assert ratio >= PARALLEL_SPEEDUP

    def test_process_backend_scales_on_multicore(self, report):
        """The ISSUE 8 headline: 4 process shards >= 2.5x one process shard."""
        if (os.cpu_count() or 1) < 4:
            pytest.skip("needs >= 4 CPUs for a parallel-scaling claim")
        ratio = report["results"]["process_4"]["speedup_vs_process_1"]
        assert ratio >= PROCESS_SCALING, (
            f"4-shard process backend is only {ratio}x the 1-shard process "
            f"backend (required {PROCESS_SCALING}x on "
            f"{os.cpu_count()} CPUs)"
        )

    def test_report_written(self, report):
        assert RESULT_PATH.is_file()
        on_disk = json.loads(RESULT_PATH.read_text())
        assert on_disk["results"].keys() == report["results"].keys()

    def test_print_table(self, report, capsys):
        with capsys.disabled():
            print(
                f"\narrival_batch={report['arrival_batch']}  "
                f"n={report['stream_size']}  cpus={report['cpu_count']}"
            )
            print(f"{'configuration':<18}{'updates/s':>14}{'vs direct':>11}")
            for name, row in report["results"].items():
                vs = row.get("speedup_vs_direct", 1.0)
                print(f"{name:<18}{row['updates_per_s']:>14,}{vs:>10}x")
