"""Figure 10: BITP heavy-hitter precision & recall vs memory (Object-ID).

Paper shape: on the skewed dataset TMG's memory becomes comparable to
SAMPLING's (higher eps suffices) while both reach high precision and recall;
TMG keeps its no-false-negative guarantee.
"""

import pytest

from common import (
    HH_COLUMNS,
    PHI_OBJECT,
    bitp_hh_sweep,
    hh_rows_to_table,
    object_stream,
    record_figure,
)
from repro.evaluation import feed_log_stream
from repro.persistent import BitpTreeMisraGries
from repro.workloads import query_schedule


@pytest.fixture(scope="module")
def rows():
    rows = bitp_hh_sweep("object")
    record_figure(
        "fig10",
        "Figure 10: BITP HH precision/recall vs memory (Object-ID)",
        HH_COLUMNS,
        hh_rows_to_table(rows),
    )
    return rows


def by_sketch(rows, prefix):
    return [row for row in rows if row["sketch"].startswith(prefix)]


def test_fig10_tmg_recall_one(rows, benchmark):
    stream = object_stream()
    sketch = BitpTreeMisraGries(eps=4e-3, block_size=64)
    feed_log_stream(sketch, stream)
    since = query_schedule(stream)[2]
    benchmark(lambda: sketch.heavy_hitters_since(since, PHI_OBJECT))
    assert all(row["recall"] == 1.0 for row in by_sketch(rows, "TMG"))


def test_fig10_both_sketches_accurate_on_skewed_data(rows, benchmark):
    benchmark(lambda: hh_rows_to_table(rows))
    assert max(row["precision"] for row in by_sketch(rows, "TMG")) > 0.7
    best_sampling = max(by_sketch(rows, "SAMPLING"), key=lambda row: row["precision"])
    assert best_sampling["precision"] > 0.9
    assert best_sampling["recall"] > 0.9


def test_fig10_tmg_memory_comparable_to_sampling(rows, benchmark):
    benchmark(lambda: by_sketch(rows, "TMG"))
    # On the skewed dataset the gap shrinks: TMG's cheapest config sits
    # within an order of magnitude of SAMPLING's largest.
    tmg_min = min(row["memory_mib"] for row in by_sketch(rows, "TMG"))
    sampling_max = max(row["memory_mib"] for row in by_sketch(rows, "SAMPLING"))
    assert tmg_min < 10 * sampling_max
