"""Ablation: batched BITP compaction (Section 3.2) vs naive per-item top-k.

DESIGN.md design-choice ablation: the naive BITP sampler re-ranks every item
against a live priority structure (Omega(k) work for a constant fraction of
items); the paper's batched scan amortises to O(log k).  Both must return
the same samples; the batched variant should update faster at larger k.
"""

import heapq
import time

import pytest

import numpy as np

from common import record_figure
from repro.core.bitp_sampling import BitpPrioritySample

N = 30_000
K = 500


class NaiveBitpSample:
    """Per-item maintenance: count later-larger priorities eagerly."""

    def __init__(self, k: int, seed: int = 0):
        from repro.core.bitp_sampling import _RNG_SALT_BITP

        self.k = k
        # Mirror the batched sampler's salted RNG stream exactly.
        self._rng = np.random.default_rng([seed, _RNG_SALT_BITP])
        self._entries = []  # (priority, value, timestamp), arrival order

    def update(self, value, timestamp: float, weight: float = 1.0) -> None:
        u = float(self._rng.random())
        while u == 0.0:
            u = float(self._rng.random())
        priority = weight / u
        # Naive: drop every stored item that now has k later-larger items.
        survivors = []
        later_heap = []  # priorities of items after the current scan point
        self._entries.append((priority, value, timestamp))
        for entry in reversed(self._entries):
            if len(later_heap) < self.k or entry[0] > later_heap[0]:
                survivors.append(entry)
                if len(later_heap) < self.k:
                    heapq.heappush(later_heap, entry[0])
                else:
                    heapq.heapreplace(later_heap, entry[0])
        survivors.reverse()
        self._entries = survivors

    def sample_since(self, timestamp: float):
        window = [e for e in self._entries if e[2] >= timestamp]
        window.sort(key=lambda e: -e[0])
        return [(value, 1.0) for _, value, _ in window[: self.k]]


@pytest.fixture(scope="module")
def experiment():
    results = {}
    batched = BitpPrioritySample(k=K, seed=0)
    start = time.perf_counter()
    for index in range(N):
        batched.update(index, float(index))
    results["batched (Section 3.2)"] = {
        "update_s": time.perf_counter() - start,
        "kept": batched.kept_count(),
    }

    naive = NaiveBitpSample(k=K, seed=0)
    start = time.perf_counter()
    for index in range(N // 10):  # naive is too slow for the full stream
        naive.update(index, float(index))
    naive_time = (time.perf_counter() - start) * 10  # extrapolated
    results["naive per-item"] = {
        "update_s": naive_time,
        "kept": len(naive._entries),
    }
    rows = [
        [name, round(r["update_s"], 3), r["kept"]]
        for name, r in results.items()
    ]
    record_figure(
        "ablation_bitp_compaction",
        f"Ablation: batched vs naive BITP maintenance (k={K}, n={N})",
        ["variant", "update_s (naive extrapolated)", "items kept"],
        rows,
    )
    return results


def test_batched_faster_than_naive(experiment, benchmark):
    benchmark(lambda: dict(experiment))
    assert (
        experiment["batched (Section 3.2)"]["update_s"]
        < experiment["naive per-item"]["update_s"]
    )


def test_same_samples_with_same_seed(benchmark):
    batched = BitpPrioritySample(k=20, seed=7)
    naive = NaiveBitpSample(k=20, seed=7)
    for index in range(2_000):
        batched.update(index, float(index))
        naive.update(index, float(index))
    since = 1_500.0
    benchmark(lambda: batched.sample_since(since))
    got = sorted(v for v, _ in batched.raw_sample_since(since))
    expected = sorted(v for v, _ in naive.sample_since(since))
    assert got == expected
