"""Figure 12: ATTP matrix-sketch memory vs stream size (three dimensions).

Paper shape: PFD scales best — it only checkpoints when the frequent
directions change (bursts at the start and around the mid-stream event);
NS/NSWR grow like SAMPLING (log factor).
"""

import pytest

from common import MATRIX_DIMS, matrix_stream, record_figure
from repro.evaluation import mib
from repro.persistent import (
    AttpNormSampling,
    AttpNormSamplingWR,
    AttpPersistentFrequentDirections,
)

FRACTIONS = (0.25, 0.5, 0.75, 1.0)


def scaling_series(stream, builders):
    n = len(stream)
    checkpoints = [int(f * n) for f in FRACTIONS]
    systems = {name: build() for name, build in builders.items()}
    series = {name: [] for name in builders}
    cursor = 0
    for checkpoint in checkpoints:
        for index in range(cursor, checkpoint):
            row = stream.rows[index]
            t = float(stream.timestamps[index])
            for system in systems.values():
                system.update(row, t)
        cursor = checkpoint
        for name, system in systems.items():
            series[name].append(mib(system.memory_bytes()))
    return checkpoints, series


@pytest.fixture(scope="module")
def experiment():
    out = {}
    for size in ("low", "medium", "high"):
        dim, n = MATRIX_DIMS[size]
        stream = matrix_stream(dim, n)
        ell = 20
        k = 150
        builders = {
            f"PFD(ell={ell})": lambda dim=dim: AttpPersistentFrequentDirections(
                ell=ell, dim=dim
            ),
            f"NS(k={k})": lambda dim=dim: AttpNormSampling(k=k, dim=dim, seed=0),
            f"NSWR(k={k})": lambda dim=dim: AttpNormSamplingWR(k=k, dim=dim, seed=0),
        }
        checkpoints, series = scaling_series(stream, builders)
        rows = []
        for position, count in enumerate(checkpoints):
            for name in series:
                rows.append([size, count, name, round(series[name][position], 4)])
        record_figure(
            f"fig12_{size}",
            f"Figure 12 ({size}-dim): ATTP matrix memory (MiB) vs stream size",
            ["dataset", "stream_size", "sketch", "memory_MiB"],
            rows,
        )
        out[size] = (checkpoints, series)
    return out


def test_fig12_pfd_flattest_growth(experiment, benchmark):
    benchmark(lambda: experiment["low"])
    for size in ("low", "medium", "high"):
        _, series = experiment[size]
        pfd_name = next(name for name in series if name.startswith("PFD"))
        ns_name = next(name for name in series if name.startswith("NS("))
        pfd_growth = series[pfd_name][-1] / series[pfd_name][0]
        ns_growth = series[ns_name][-1] / series[ns_name][0]
        assert pfd_growth < 2 * ns_growth  # PFD grows no faster (usually flatter)


def test_fig12_pfd_smallest_at_end(experiment, benchmark):
    benchmark(lambda: experiment["medium"])
    for size in ("medium", "high"):
        _, series = experiment[size]
        pfd_name = next(name for name in series if name.startswith("PFD"))
        for name in series:
            if name == pfd_name:
                continue
            assert series[pfd_name][-1] < series[name][-1]
