"""Figure 2: ATTP heavy-hitter precision & recall vs memory (Client-ID).

Paper shape: CMG reaches the highest precision at a given memory and has
recall 1; SAMPLING is slightly behind; PCM_HH is inferior on both at any
comparable memory (and far more expensive to update, see Figure 4).
"""

import pytest

from common import (
    HH_COLUMNS,
    PHI_CLIENT,
    attp_hh_sweep,
    client_stream,
    hh_rows_to_table,
    record_figure,
)
from repro.evaluation import exact_prefix_heavy_hitters, feed_log_stream
from repro.persistent import AttpChainMisraGries
from repro.workloads import query_schedule


@pytest.fixture(scope="module")
def rows():
    rows = attp_hh_sweep("client")
    record_figure(
        "fig02",
        "Figure 2: ATTP HH precision/recall vs memory (Client-ID)",
        HH_COLUMNS,
        hh_rows_to_table(rows),
    )
    return rows


def by_sketch(rows, prefix):
    return [row for row in rows if row["sketch"].startswith(prefix)]


def test_fig02_cmg_recall_one(rows, benchmark):
    stream = client_stream()
    sketch = AttpChainMisraGries(eps=1e-3)
    feed_log_stream(sketch, stream)
    t = query_schedule(stream)[2]
    benchmark(lambda: sketch.heavy_hitters_at(t, PHI_CLIENT))
    assert all(row["recall"] == 1.0 for row in by_sketch(rows, "CMG"))


def test_fig02_precision_improves_with_memory(rows, benchmark):
    benchmark(lambda: hh_rows_to_table(rows))
    for prefix in ("CMG", "SAMPLING"):
        series = by_sketch(rows, prefix)
        assert series[-1]["precision"] >= series[0]["precision"] - 0.05
        assert series[-1]["precision"] > 0.7


def test_fig02_sketches_dominate_pcm_per_memory(rows, benchmark):
    benchmark(lambda: by_sketch(rows, "PCM_HH"))
    # At comparable (or less) memory, CMG's accuracy is at least PCM_HH's.
    best_cmg = max(by_sketch(rows, "CMG"), key=lambda row: row["precision"])
    for pcm in by_sketch(rows, "PCM_HH"):
        if pcm["memory_mib"] >= best_cmg["memory_mib"]:
            assert best_cmg["precision"] >= pcm["precision"] - 0.1
