"""Benchmark-suite configuration.

Makes the sibling ``common`` module importable and ensures the results
directory exists.  Run with::

    pytest benchmarks/ --benchmark-only

Each bench prints the corresponding paper figure's series as a fixed-width
table and also writes it to ``benchmarks/results/``.  Set
``REPRO_TELEMETRY=1`` to additionally write a telemetry snapshot
(``<figure>_telemetry.jsonl``) next to each figure's series — the counters
and latency histograms that produced the numbers (docs/OBSERVABILITY.md).
"""

import os
import pathlib
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parent
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

RESULTS_DIR = BENCH_DIR / "results"
RESULTS_DIR.mkdir(exist_ok=True)

if os.environ.get("REPRO_TELEMETRY", "") not in ("", "0"):
    from repro.telemetry.registry import TELEMETRY

    TELEMETRY.enable()
