"""Figure 8: BITP heavy-hitter memory vs stream size (Client-ID & Object-ID).

Paper shape: PCM_HH linear; SAMPLING-BITP and TMG sublinear (log factor).
BITP structures report *peak* memory since theirs fluctuates with pruning.
"""

import pytest

from common import client_stream, object_stream, record_figure
from repro.baselines import PcmHeavyHitter
from repro.evaluation import memory_of, mib
from repro.persistent import BitpSampleHeavyHitter, BitpTreeMisraGries

FRACTIONS = (0.25, 0.5, 0.75, 1.0)


def scaling_series(stream, builders):
    n = len(stream)
    checkpoints = [int(f * n) for f in FRACTIONS]
    systems = {name: build() for name, build in builders.items()}
    series = {name: [] for name in builders}
    keys = stream.keys.tolist()
    times = stream.timestamps.tolist()
    cursor = 0
    for checkpoint in checkpoints:
        for index in range(cursor, checkpoint):
            for system in systems.values():
                system.update(keys[index], times[index])
        cursor = checkpoint
        for name, system in systems.items():
            series[name].append(mib(memory_of(system)))
    return checkpoints, series


@pytest.fixture(scope="module")
def experiment():
    out = {}
    for dataset, stream_fn, bits in (
        ("client", client_stream, 15),
        ("object", object_stream, 14),
    ):
        stream = stream_fn()
        builders = {
            "SAMPLING(k=500)": lambda: BitpSampleHeavyHitter(k=500, seed=0),
            "TMG(eps=2e-3)": lambda: BitpTreeMisraGries(eps=2e-3, block_size=64),
            "PCM_HH(eps=8e-3)": lambda bits=bits: PcmHeavyHitter(
                universe_bits=bits, eps=8e-3, depth=3, pla_delta=8.0
            ),
        }
        checkpoints, series = scaling_series(stream, builders)
        rows = []
        for position, n in enumerate(checkpoints):
            for name in series:
                rows.append([dataset, n, name, round(series[name][position], 4)])
        record_figure(
            f"fig08_{dataset}",
            f"Figure 8 ({dataset}): BITP HH peak memory (MiB) vs stream size",
            ["dataset", "stream_size", "sketch", "memory_MiB"],
            rows,
        )
        out[dataset] = (checkpoints, series)
    return out


def test_fig08_pcm_grows_faster_than_sampling(experiment, benchmark):
    benchmark(lambda: experiment["client"])
    # Marginal growth over the second half: PCM linear, SAMPLING log-flat.
    for dataset in ("client", "object"):
        _, series = experiment[dataset]
        pcm_slope = series["PCM_HH(eps=8e-3)"][-1] - series["PCM_HH(eps=8e-3)"][1]
        sampling_slope = (
            series["SAMPLING(k=500)"][-1] - series["SAMPLING(k=500)"][1]
        )
        assert pcm_slope > 2 * abs(sampling_slope)


def test_fig08_sampling_smallest(experiment, benchmark):
    benchmark(lambda: experiment["object"])
    # SAMPLING-BITP is the smallest structure; TMG pays its 1/eps factor —
    # the paper's Section 6.2 observation that on the uniform dataset one is
    # better off sampling (or even storing the raw log) than running TMG.
    for dataset in ("client", "object"):
        _, series = experiment[dataset]
        assert series["SAMPLING(k=500)"][-1] < series["TMG(eps=2e-3)"][-1]
        assert series["SAMPLING(k=500)"][-1] < series["PCM_HH(eps=8e-3)"][-1]
