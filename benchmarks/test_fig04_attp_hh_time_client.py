"""Figure 4: ATTP heavy-hitter update & query time vs memory (Client-ID).

Paper shape: PCM_HH's update time is at least an order of magnitude above
CMG and SAMPLING; sketch query times are sub-second throughout.
"""

import pytest

from common import (
    HH_COLUMNS,
    PHI_CLIENT,
    attp_hh_sweep,
    client_stream,
    hh_rows_to_table,
    record_figure,
)
from repro.evaluation import feed_log_stream
from repro.persistent import AttpSampleHeavyHitter
from repro.workloads import query_schedule


@pytest.fixture(scope="module")
def rows():
    rows = attp_hh_sweep("client")
    record_figure(
        "fig04",
        "Figure 4: ATTP HH update/query time vs memory (Client-ID)",
        HH_COLUMNS,
        hh_rows_to_table(rows),
    )
    return rows


def by_sketch(rows, prefix):
    return [row for row in rows if row["sketch"].startswith(prefix)]


def test_fig04_pcm_updates_order_of_magnitude_slower(rows, benchmark):
    stream = client_stream()
    sketch = AttpSampleHeavyHitter(k=10_000, seed=0)
    feed_log_stream(sketch, stream)
    t = query_schedule(stream)[2]
    benchmark(lambda: sketch.heavy_hitters_at(t, PHI_CLIENT))
    slowest_sketch = max(
        row["update_s"] for row in rows if not row["sketch"].startswith("PCM")
    )
    fastest_pcm = min(row["update_s"] for row in by_sketch(rows, "PCM_HH"))
    assert fastest_pcm > 10 * slowest_sketch


def test_fig04_sketch_queries_subsecond(rows, benchmark):
    benchmark(lambda: hh_rows_to_table(rows))
    for row in rows:
        if not row["sketch"].startswith("PCM"):
            assert row["query_s"] < 1.0  # 5 queries, sub-second total
