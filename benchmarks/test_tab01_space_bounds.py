"""Table 1: empirical validation of the main asymptotic space bounds.

The paper's Table 1 lists the sizes of the ATTP/BITP sketches.  This bench
measures each structure's record/checkpoint count as the stream doubles and
fits the growth against the claimed form: a bound of O(f(n)) passes when the
measured size at 8x the base stream is within a constant factor of
``size(base) * f(8n)/f(n)``.
"""

import numpy as np
import pytest

from common import record_figure
from repro.core.bitp_sampling import BitpPrioritySample
from repro.core.elementwise import ChainMisraGries
from repro.core.merge_tree import MergeTreePersistence
from repro.core.persistent_priority import PersistentPrioritySample
from repro.core.persistent_sampling import PersistentTopKSample
from repro.core.pfd import PersistentFrequentDirections
from repro.sketches import MisraGries
from repro.workloads import object_id_stream

BASE_N = 4_000
SIZES = (BASE_N, 2 * BASE_N, 4 * BASE_N, 8 * BASE_N)


def measure(build, feed, size_of):
    """size_of(sketch) at each stream size in SIZES."""
    out = []
    for n in SIZES:
        sketch = build()
        feed(sketch, n)
        out.append(size_of(sketch))
    return out


def feed_uniform_keys(sketch, n):
    stream = object_id_stream(n=n, universe=2_000, ratio=300.0, seed=3)
    for key, timestamp in stream:
        sketch.update(key, timestamp)


def feed_weighted(sketch, n):
    rng = np.random.default_rng(4)
    weights = rng.uniform(1.0, 16.0, size=n)
    for index in range(n):
        sketch.update(index, float(index), float(weights[index]))


def feed_rows(sketch, n):
    rng = np.random.default_rng(5)
    rows = rng.normal(size=(n, 20))
    for index in range(n):
        sketch.update(rows[index], float(index))


@pytest.fixture(scope="module")
def measurements():
    entries = []  # (name, claimed_growth_fn, sizes)
    log_growth = lambda n: np.log(n)

    entries.append((
        "ATTP uniform sample O(k log n)",
        log_growth,
        measure(
            lambda: PersistentTopKSample(k=100, seed=0),
            feed_uniform_keys,
            lambda s: len(s),
        ),
    ))
    entries.append((
        "ATTP weighted sample O(k(log n + log U))",
        log_growth,
        measure(
            lambda: PersistentPrioritySample(k=100, seed=0),
            feed_weighted,
            lambda s: len(s),
        ),
    ))
    entries.append((
        "BITP sample O(k log n)",
        log_growth,
        measure(
            lambda: BitpPrioritySample(k=100, seed=0),
            feed_uniform_keys,
            lambda s: (s._compact(), s.kept_count())[1],
        ),
    ))
    entries.append((
        "CMG (eps-FE) O((1/eps) log n)",
        log_growth,
        measure(
            lambda: ChainMisraGries(eps=0.01),
            feed_uniform_keys,
            lambda s: s.num_checkpoints(),
        ),
    ))
    entries.append((
        "TMG merge tree O((1/eps^2) log n)",
        log_growth,
        measure(
            lambda: MergeTreePersistence(
                lambda: MisraGries(50), eps=0.1, mode="bitp", block_size=32
            ),
            feed_uniform_keys,
            lambda s: s.num_nodes(),
        ),
    ))
    entries.append((
        "PFD (eps-MC) O((d/eps) log ||A||_F)",
        log_growth,
        measure(
            lambda: PersistentFrequentDirections(ell=10, dim=20),
            feed_rows,
            lambda s: s.num_partial_checkpoints() + 1,
        ),
    ))

    rows = []
    for name, growth, sizes in entries:
        predicted = sizes[0] * growth(SIZES[-1]) / growth(SIZES[0])
        rows.append([
            name,
            *(int(size) for size in sizes),
            round(predicted, 1),
            round(sizes[-1] / predicted, 2),
        ])
    record_figure(
        "tab01",
        "Table 1: measured sketch sizes vs claimed growth (8x stream)",
        ["sketch / bound", *(f"n={n}" for n in SIZES), "predicted@8x", "ratio"],
        rows,
    )
    return entries


def test_tab01_growth_matches_claimed_bounds(measurements, benchmark):
    benchmark(lambda: len(measurements))
    for name, growth, sizes in measurements:
        predicted = sizes[0] * growth(SIZES[-1]) / growth(SIZES[0])
        # Within a 3x constant of the claimed growth over an 8x stream range.
        assert sizes[-1] < 3.0 * predicted, name


def test_tab01_all_far_below_linear(measurements, benchmark):
    benchmark(lambda: len(measurements))
    for name, _, sizes in measurements:
        linear_prediction = sizes[0] * SIZES[-1] / SIZES[0]
        assert sizes[-1] < 0.6 * linear_prediction, name
