"""Watcher overhead and end-to-end accuracy/alerting proof (ISSUE 10 bar).

The self-watching layer (``MetricPoller`` + ``AlertEngine`` +
``AccuracyAuditor``) claims to be cheap enough to leave on and honest
enough to trust.  This bench proves both halves and writes the
measurements to ``benchmarks/results/BENCH_audit.json``:

* **fault_free** — a CountMin-backed sharded service ingests a skewed
  stream with the auditor shadow-recording every batch, then replays an
  ATTP audit round: zero ``audit_bound_violations_total`` and the
  observed p99 error stays under the configured epsilon (the paper's
  (eps, delta) contract, checked against exact parent-side truth);
* **overhead** — the same service ingest is timed bare and then with the
  full watcher attached (auditor shadow-sampling + poller thread
  snapshotting + alert engine evaluating every tick): the watched run
  must cost <= 1.15x the bare run;
* **chaos_alerting** — a kill schedule through :func:`run_chaos_soak`
  with the watcher riding along drives the ``shard_unhealthy`` rule to
  ``firing`` and back to ``ok`` after the supervisor rebuilds, while the
  post-recovery audit round stays violation-free.

Quick mode (``REPRO_BENCH_QUICK=1``, the CI chaos job) shrinks the
streams so the bench finishes in seconds; the assertions are
size-independent.
"""

import gc
import json
import os
import time

import numpy as np
import pytest

from common import RESULTS_DIR
from repro.core import ChainCountMin
from repro.service import ChaosEvent, ShardedSketchService, run_chaos_soak
from repro.telemetry import (
    AccuracyAuditor,
    AlertEngine,
    MetricPoller,
    default_service_rules,
)
from repro.telemetry.registry import TELEMETRY
from repro.telemetry.spans import SPANS

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
N = 20_000 if QUICK else 120_000
CHAOS_N = 3_000 if QUICK else 6_000
REPEATS = 3 if QUICK else 5
SERVICE_BATCH = 4096
#: The watched ingest may cost at most this multiple of the bare ingest.
MAX_WATCHED_RATIO = 1.15
#: The audited error budget: CountMin width 2048 guarantees eps ~ e/2048,
#: audited against a looser 0.01 so the assertion tests the plumbing, not
#: the sketch's constant factors.
EPSILON = 0.01
RESULT_PATH = RESULTS_DIR / "BENCH_audit.json"


def _stream(n, universe=4096, seed=2):
    rng = np.random.default_rng(seed)
    keys = (rng.zipf(1.3, size=n) % universe).astype(np.int64)
    return keys, np.arange(n, dtype=np.float64)


def best_seconds(run):
    best = float("inf")
    for _ in range(REPEATS):
        gc.collect()
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def make_service(**kwargs):
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault("partition", "round_robin")
    return ShardedSketchService(
        lambda: ChainCountMin(width=2048, depth=4, eps_ckpt=0.002, seed=1),
        **kwargs,
    )


def service_ingest(keys, timestamps, auditor=None, poller=None):
    """One full watched (or bare) ingest pass through the sharded service."""
    with make_service(queue_capacity=len(keys)) as service:
        if auditor is not None:
            service.attach_auditor(auditor)
        if poller is not None:
            poller.start()
        try:
            for start in range(0, len(keys), SERVICE_BATCH):
                service.ingest_batch(
                    keys[start : start + SERVICE_BATCH],
                    timestamps[start : start + SERVICE_BATCH],
                )
            service.drain(timeout=300)
        finally:
            if poller is not None:
                poller.stop()


def fresh_watcher():
    """An auditor + fast poller + default alert pack, production-shaped."""
    auditor = AccuracyAuditor(
        epsilon=EPSILON, sample_fraction=0.05, max_items=N, seed=7
    )
    poller = MetricPoller(interval=0.02, capacity=256)
    engine = AlertEngine(default_service_rules(), poller=poller)
    return auditor, poller, engine


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    keys, timestamps = _stream(N)
    TELEMETRY.enable()
    try:
        # -- fault-free accuracy: audit a real CountMin-backed service ----
        auditor = AccuracyAuditor(
            epsilon=EPSILON, sample_fraction=1.0, max_items=N, seed=7
        )
        with make_service() as service:
            service.attach_auditor(auditor)
            for start in range(0, N, SERVICE_BATCH):
                service.ingest_batch(
                    keys[start : start + SERVICE_BATCH],
                    timestamps[start : start + SERVICE_BATCH],
                )
            assert service.drain(timeout=300)
            audit = auditor.run_audit(queries=64, kinds=("attp",))
        violations_metric = (
            TELEMETRY.registry.get("audit_bound_violations_total")
            .labels()
            .value
        )
        fault_free = {
            "queries": audit["queries"],
            "violations": audit["violations"],
            "violations_metric": violations_metric,
            "max_observed_error": audit["max_observed_error"],
            "p99_observed_error": audit["p99_observed_error"],
            "epsilon": EPSILON,
        }
        TELEMETRY.registry.reset()
        SPANS.clear()

        # -- overhead: bare ingest vs the full watcher riding along -------
        bare = best_seconds(lambda: service_ingest(keys, timestamps))

        def watched():
            auditor, poller, engine = fresh_watcher()
            service_ingest(keys, timestamps, auditor=auditor, poller=poller)
            assert engine.status()["rules"]  # the engine really evaluated

        watched_best = best_seconds(watched)
        overhead = {
            "bare_ingest_items_per_s": round(N / bare),
            "watched_ingest_items_per_s": round(N / watched_best),
            "watched_over_bare": round(watched_best / bare, 4),
            "max_watched_ratio": MAX_WATCHED_RATIO,
        }
        TELEMETRY.registry.reset()
        SPANS.clear()

        # -- chaos alerting: kills drive shard_unhealthy firing -> ok -----
        chaos_keys, chaos_ts = _stream(CHAOS_N, universe=61, seed=5)
        soak_auditor = AccuracyAuditor(
            epsilon=EPSILON, sample_fraction=1.0, max_items=CHAOS_N, seed=3
        )
        # never start()ed: run_chaos_soak ticks it after every batch
        soak_poller = MetricPoller(interval=60.0, capacity=512)
        soak_engine = AlertEngine(
            default_service_rules(), poller=soak_poller
        )
        # one kill per shard mid-stream, plus a late second kill on shard
        # 0: every rebuild window gets ticked by the per-batch watch loop
        per_shard = CHAOS_N // 2
        schedule = [
            ChaosEvent("kill", shard=0, at_items=per_shard // 4),
            ChaosEvent("kill", shard=1, at_items=per_shard // 3),
            ChaosEvent("kill", shard=0, at_items=(2 * per_shard) // 3),
        ]
        soak = run_chaos_soak(
            tmp_path_factory.mktemp("audit-soak") / "state",
            lambda: ChainCountMin(
                width=2048, depth=4, eps_ckpt=0.002, seed=5
            ),
            chaos_keys,
            chaos_ts,
            num_shards=2,
            seed=13,
            arrival_batch=50,
            schedule=schedule,
            # stretch the rebuild backoff so unhealthy windows span ticks
            supervisor_options={"backoff_base": 0.05, "backoff_cap": 0.2},
            poller=soak_poller,
            alert_engine=soak_engine,
            auditor=soak_auditor,
        )
        chaos_alerting = {
            "ok": soak["ok"],
            "anomalies": soak["anomalies"],
            "events_fired": soak["events_fired"],
            "rebuilds": soak["rebuilds"],
            "alerts_fired": soak["alerts"]["fired"],
            "alert_final_states": soak["alerts"]["final_states"],
            "audit_queries": soak["audit"]["queries"],
            "audit_violations": soak["audit"]["violations"],
        }
    finally:
        TELEMETRY.registry.reset()
        SPANS.clear()
        TELEMETRY.disable()

    payload = {
        "stream_size": N,
        "chaos_stream_size": CHAOS_N,
        "quick_mode": QUICK,
        "results": {
            "fault_free": fault_free,
            "overhead": overhead,
            "chaos_alerting": chaos_alerting,
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


class TestFaultFreeAccuracy:
    def test_zero_bound_violations(self, report):
        row = report["results"]["fault_free"]
        assert row["queries"] == 64, row
        assert row["violations"] == 0, row
        assert row["violations_metric"] == 0, row

    def test_p99_error_within_epsilon(self, report):
        row = report["results"]["fault_free"]
        assert row["p99_observed_error"] <= row["epsilon"], row


class TestWatcherOverhead:
    def test_watched_ingest_within_bound(self, report):
        """Auditor + poller + alert engine attached must keep service
        ingest within 1.15x of the bare run — the watcher samples and
        snapshots off the hot path, it does not tax it."""
        row = report["results"]["overhead"]
        assert row["watched_over_bare"] <= MAX_WATCHED_RATIO, row


class TestChaosAlerting:
    def test_soak_recovered_exactly(self, report):
        row = report["results"]["chaos_alerting"]
        assert row["ok"], row["anomalies"]
        assert row["events_fired"] >= 1, row
        assert row["rebuilds"] >= 1, row

    def test_kill_drives_alert_firing_then_ok(self, report):
        row = report["results"]["chaos_alerting"]
        assert "shard_unhealthy" in row["alerts_fired"], row
        assert row["alert_final_states"]["shard_unhealthy"] == "ok", row

    def test_post_recovery_audit_is_clean(self, report):
        row = report["results"]["chaos_alerting"]
        assert row["audit_queries"] > 0, row
        assert row["audit_violations"] == 0, row


def test_report_written(report):
    assert RESULT_PATH.is_file()
    on_disk = json.loads(RESULT_PATH.read_text())
    assert on_disk["results"].keys() == report["results"].keys()


def test_print_table(report, capsys):
    with capsys.disabled():
        results = report["results"]
        print(f"\naudit watcher  n={report['stream_size']}")
        row = results["fault_free"]
        print(
            f"{'fault-free audit':<26}queries={row['queries']}"
            f"  violations={row['violations']}"
            f"  p99_err={row['p99_observed_error']:.5f}"
            f" (eps={row['epsilon']})"
        )
        row = results["overhead"]
        print(
            f"{'watcher overhead':<26}bare={row['bare_ingest_items_per_s']:,}/s"
            f"  watched={row['watched_ingest_items_per_s']:,}/s"
            f"  ratio={row['watched_over_bare']}"
        )
        row = results["chaos_alerting"]
        print(
            f"{'chaos alerting':<26}rebuilds={row['rebuilds']}"
            f"  fired={row['alerts_fired']}"
            f"  audit_violations={row['audit_violations']}"
        )
