"""Figure 5: ATTP heavy-hitter precision & recall vs memory (Object-ID).

Paper shape: same as Figure 2 but CMG is even more favoured on the skewed
dataset — it rarely checkpoints once the heavy items hold large counts.
"""

import pytest

from common import (
    HH_COLUMNS,
    PHI_OBJECT,
    attp_hh_sweep,
    hh_rows_to_table,
    object_stream,
    record_figure,
)
from repro.evaluation import feed_log_stream
from repro.persistent import AttpChainMisraGries
from repro.workloads import query_schedule


@pytest.fixture(scope="module")
def rows():
    rows = attp_hh_sweep("object")
    record_figure(
        "fig05",
        "Figure 5: ATTP HH precision/recall vs memory (Object-ID)",
        HH_COLUMNS,
        hh_rows_to_table(rows),
    )
    return rows


def by_sketch(rows, prefix):
    return [row for row in rows if row["sketch"].startswith(prefix)]


def test_fig05_cmg_recall_one_and_high_precision(rows, benchmark):
    stream = object_stream()
    sketch = AttpChainMisraGries(eps=2e-3)
    feed_log_stream(sketch, stream)
    t = query_schedule(stream)[2]
    benchmark(lambda: sketch.heavy_hitters_at(t, PHI_OBJECT))
    cmg = by_sketch(rows, "CMG")
    assert all(row["recall"] == 1.0 for row in cmg)
    assert cmg[-1]["precision"] > 0.8

def test_fig05_cmg_memory_smaller_on_skewed_data(rows, benchmark):
    benchmark(lambda: hh_rows_to_table(rows))
    # CMG's tightest config uses less memory than every SAMPLING config
    # that reaches comparable accuracy (the skew advantage).
    best_cmg = by_sketch(rows, "CMG")[-1]
    for sampling in by_sketch(rows, "SAMPLING"):
        if sampling["precision"] >= best_cmg["precision"]:
            assert sampling["memory_mib"] > best_cmg["memory_mib"]


def test_fig05_sampling_accurate_at_high_k(rows, benchmark):
    benchmark(lambda: by_sketch(rows, "SAMPLING"))
    sampling = by_sketch(rows, "SAMPLING")
    assert sampling[-1]["precision"] > 0.9
    assert sampling[-1]["recall"] > 0.9
