"""Ablation: stationary vs bursty workload — where PCM's assumption breaks.

The PCM baseline's piecewise-linear counters rely on the random-stream
assumption (counters grow linearly).  Our default synthetic streams are
stationary — PCM's favourable regime, which is why its accuracy here is
somewhat better than the paper reports on the real (bursty) WorldCup log.
This ablation quantifies the effect: on a popularity-shifting stream PCM
needs substantially more breakpoints (memory), while CMG is insensitive.
"""

import pytest

from common import PHI_OBJECT, record_figure
from repro.baselines import PcmHeavyHitter
from repro.evaluation import (
    average_accuracy,
    exact_prefix_heavy_hitters,
    feed_log_stream,
    mib,
)
from repro.persistent import AttpChainMisraGries
from repro.workloads import bursty_stream, object_id_stream, query_schedule

N = 20_000


@pytest.fixture(scope="module")
def experiment():
    stationary = object_id_stream(n=N, universe=9_000, ratio=1_180.0, seed=1)
    bursty = bursty_stream(n=N, universe=9_000, ratio=1_180.0, seed=1)
    results = {}
    for workload_name, stream in (("stationary", stationary), ("bursty", bursty)):
        times = query_schedule(stream)
        truth = exact_prefix_heavy_hitters(stream, times, PHI_OBJECT)
        for sketch_name, sketch in (
            ("PCM_HH", PcmHeavyHitter(universe_bits=14, eps=8e-3, depth=3, pla_delta=8.0)),
            ("CMG", AttpChainMisraGries(eps=2e-3)),
        ):
            feed_log_stream(sketch, stream)
            reported = [sketch.heavy_hitters_at(t, PHI_OBJECT) for t in times]
            precision, recall = average_accuracy(reported, truth)
            results[(sketch_name, workload_name)] = {
                "memory_mib": mib(sketch.memory_bytes()),
                "precision": precision,
                "recall": recall,
            }
    rows = [
        [sketch, workload, round(r["memory_mib"], 4), round(r["precision"], 3),
         round(r["recall"], 3)]
        for (sketch, workload), r in results.items()
    ]
    record_figure(
        "ablation_bursty",
        "Ablation: PCM vs CMG memory under stationary vs bursty traffic",
        ["sketch", "workload", "memory_MiB", "precision", "recall"],
        rows,
    )
    return results


def test_pcm_memory_inflates_on_bursty_traffic(experiment, benchmark):
    benchmark(lambda: dict(experiment))
    pcm_growth = (
        experiment[("PCM_HH", "bursty")]["memory_mib"]
        / experiment[("PCM_HH", "stationary")]["memory_mib"]
    )
    cmg_growth = (
        experiment[("CMG", "bursty")]["memory_mib"]
        / experiment[("CMG", "stationary")]["memory_mib"]
    )
    assert pcm_growth > 1.1  # PCM pays for non-linearity
    assert pcm_growth > cmg_growth  # CMG is (near-)insensitive


def test_cmg_accuracy_survives_burstiness(experiment, benchmark):
    benchmark(lambda: dict(experiment))
    assert experiment[("CMG", "bursty")]["recall"] == 1.0
    assert experiment[("CMG", "bursty")]["precision"] > 0.5
