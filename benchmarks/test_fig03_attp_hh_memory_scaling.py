"""Figure 3: ATTP heavy-hitter memory vs stream size (Client-ID & Object-ID).

Paper shape: PCM_HH memory scales linearly with the stream; SAMPLING and CMG
scale logarithmically.
"""

import pytest

from common import client_stream, object_stream, record_figure
from repro.baselines import PcmHeavyHitter
from repro.evaluation import mib
from repro.persistent import AttpChainMisraGries, AttpSampleHeavyHitter

FRACTIONS = (0.25, 0.5, 0.75, 1.0)


def scaling_series(stream, builders):
    n = len(stream)
    checkpoints = [int(f * n) for f in FRACTIONS]
    systems = {name: build() for name, build in builders.items()}
    series = {name: [] for name in builders}
    keys = stream.keys.tolist()
    times = stream.timestamps.tolist()
    cursor = 0
    for checkpoint in checkpoints:
        for index in range(cursor, checkpoint):
            for system in systems.values():
                system.update(keys[index], times[index])
        cursor = checkpoint
        for name, system in systems.items():
            series[name].append(mib(system.memory_bytes()))
    return checkpoints, series


@pytest.fixture(scope="module")
def experiment():
    out = {}
    for dataset, stream_fn, bits in (
        ("client", client_stream, 15),
        ("object", object_stream, 14),
    ):
        stream = stream_fn()
        builders = {
            "SAMPLING(k=500)": lambda: AttpSampleHeavyHitter(k=500, seed=0),
            "CMG(eps=1e-3)": lambda: AttpChainMisraGries(eps=1e-3),
            "PCM_HH(eps=8e-3)": lambda bits=bits: PcmHeavyHitter(
                universe_bits=bits, eps=8e-3, depth=3, pla_delta=8.0
            ),
        }
        checkpoints, series = scaling_series(stream, builders)
        rows = []
        for position, n in enumerate(checkpoints):
            for name in series:
                rows.append([dataset, n, name, round(series[name][position], 4)])
        record_figure(
            f"fig03_{dataset}",
            f"Figure 3 ({dataset}): ATTP HH memory (MiB) vs stream size",
            ["dataset", "stream_size", "sketch", "memory_MiB"],
            rows,
        )
        out[dataset] = (checkpoints, series)
    return out


def test_fig03_pcm_linear_sketches_sublinear(experiment, benchmark):
    benchmark(lambda: experiment["client"])
    # Compare marginal growth over the second half of the stream: PCM keeps
    # adding breakpoint mass linearly while the sketches have flattened.
    for dataset in ("client", "object"):
        _, series = experiment[dataset]
        pcm_slope = series["PCM_HH(eps=8e-3)"][-1] - series["PCM_HH(eps=8e-3)"][1]
        for sketch in ("SAMPLING(k=500)", "CMG(eps=1e-3)"):
            sketch_slope = series[sketch][-1] - series[sketch][1]
            assert pcm_slope > 2 * abs(sketch_slope)


def test_fig03_pcm_largest_at_full_stream(experiment, benchmark):
    benchmark(lambda: experiment["object"])
    for dataset in ("client", "object"):
        _, series = experiment[dataset]
        pcm_final = series["PCM_HH(eps=8e-3)"][-1]
        assert pcm_final > series["CMG(eps=1e-3)"][-1]
        assert pcm_final > series["SAMPLING(k=500)"][-1]
