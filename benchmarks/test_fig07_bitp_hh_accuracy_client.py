"""Figure 7: BITP heavy-hitter precision & recall vs memory (Client-ID).

Paper shape: SAMPLING-BITP reaches high precision/recall in small memory;
TMG guarantees recall 1 but needs far more memory on the uniform dataset;
PCM_HH (differencing) has poor precision.
"""

import pytest

from common import (
    HH_COLUMNS,
    PHI_CLIENT,
    bitp_hh_sweep,
    client_stream,
    hh_rows_to_table,
    record_figure,
)
from repro.evaluation import feed_log_stream
from repro.persistent import BitpSampleHeavyHitter
from repro.workloads import query_schedule


@pytest.fixture(scope="module")
def rows():
    rows = bitp_hh_sweep("client")
    record_figure(
        "fig07",
        "Figure 7: BITP HH precision/recall vs memory (Client-ID)",
        HH_COLUMNS,
        hh_rows_to_table(rows),
    )
    return rows


def by_sketch(rows, prefix):
    return [row for row in rows if row["sketch"].startswith(prefix)]


def test_fig07_sampling_accurate_in_small_memory(rows, benchmark):
    stream = client_stream()
    sketch = BitpSampleHeavyHitter(k=10_000, seed=0)
    feed_log_stream(sketch, stream)
    since = query_schedule(stream)[2]
    benchmark(lambda: sketch.heavy_hitters_since(since, PHI_CLIENT))
    best = max(by_sketch(rows, "SAMPLING"), key=lambda row: row["precision"])
    assert best["precision"] > 0.8
    assert best["recall"] > 0.8


def test_fig07_tmg_recall_one_but_larger(rows, benchmark):
    benchmark(lambda: hh_rows_to_table(rows))
    tmg = by_sketch(rows, "TMG")
    assert all(row["recall"] == 1.0 for row in tmg)
    # TMG pays the extra 1/eps factor: its tightest config outweighs the
    # largest SAMPLING config on this near-uniform dataset.
    assert tmg[-1]["memory_mib"] > max(
        row["memory_mib"] for row in by_sketch(rows, "SAMPLING")
    )
