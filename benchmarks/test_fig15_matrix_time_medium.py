"""Figure 15: ATTP matrix update & query time vs memory (medium dimension).

Paper shape: PFD is orders of magnitude slower to update than NS/NSWR (it
performs an SVD per update); query times are comparable and small.
"""

import pytest

from common import (
    MATRIX_COLUMNS,
    matrix_rows_to_table,
    matrix_sweep,
    matrix_stream,
    record_figure,
)
from repro.evaluation import feed_matrix_stream
from repro.persistent import AttpNormSampling


@pytest.fixture(scope="module")
def rows():
    rows = matrix_sweep("medium", True)
    record_figure(
        "fig15",
        "Figure 15 (medium-dim): ATTP matrix update/query time vs memory",
        MATRIX_COLUMNS,
        matrix_rows_to_table(rows),
    )
    return rows


def test_fig15_pfd_updates_much_slower(rows, benchmark):
    stream = matrix_stream(500, 2_000)
    ns = AttpNormSampling(k=150, dim=500, seed=0)
    feed_matrix_stream(ns, stream)
    t = float(stream.timestamps[len(stream) // 2])
    benchmark(lambda: ns.covariance_at(t))
    fastest_pfd = min(r["update_s"] for r in rows if r["sketch"].startswith("PFD"))
    slowest_ns = max(
        r["update_s"] for r in rows if not r["sketch"].startswith("PFD")
    )
    assert fastest_pfd > 3 * slowest_ns


def test_fig15_queries_fast_for_all(rows, benchmark):
    benchmark(lambda: matrix_rows_to_table(rows))
    for row in rows:
        assert row["query_s"] < 1.0
