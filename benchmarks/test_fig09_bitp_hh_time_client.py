"""Figure 9: BITP heavy-hitter update & query time vs memory (Client-ID).

Paper shape: PCM_HH's update-time slope is much steeper than TMG's and
SAMPLING's; the two BITP sketches stay fast.
"""

import pytest

from common import (
    HH_COLUMNS,
    PHI_CLIENT,
    bitp_hh_sweep,
    client_stream,
    hh_rows_to_table,
    record_figure,
)
from repro.evaluation import feed_log_stream
from repro.persistent import BitpTreeMisraGries
from repro.workloads import query_schedule


@pytest.fixture(scope="module")
def rows():
    rows = bitp_hh_sweep("client")
    record_figure(
        "fig09",
        "Figure 9: BITP HH update/query time vs memory (Client-ID)",
        HH_COLUMNS,
        hh_rows_to_table(rows),
    )
    return rows


def test_fig09_pcm_updates_slowest(rows, benchmark):
    stream = client_stream()
    sketch = BitpTreeMisraGries(eps=2e-3, block_size=64)
    feed_log_stream(sketch, stream)
    since = query_schedule(stream)[2]
    benchmark(lambda: sketch.heavy_hitters_since(since, PHI_CLIENT))
    fastest_pcm = min(
        row["update_s"] for row in rows if row["sketch"].startswith("PCM")
    )
    slowest_other = max(
        row["update_s"] for row in rows if not row["sketch"].startswith("PCM")
    )
    assert fastest_pcm > 2 * slowest_other


def test_fig09_sampling_updates_fast(rows, benchmark):
    benchmark(lambda: hh_rows_to_table(rows))
    sampling_best = min(
        row["update_s"] for row in rows if row["sketch"].startswith("SAMPLING")
    )
    pcm_best = min(row["update_s"] for row in rows if row["sketch"].startswith("PCM"))
    assert sampling_best < pcm_best / 20
