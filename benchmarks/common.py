"""Shared machinery for the figure benchmarks.

Thin shim over :mod:`repro.evaluation.figures` (the installable machinery —
also reachable as ``python -m repro.experiments``): re-exports the sweeps and
points ``record_figure`` output at ``benchmarks/results/``.
"""

import pathlib

from repro.evaluation import figures as _figures
from repro.evaluation.figures import (  # noqa: F401  (re-exported for benches)
    HH_COLUMNS,
    HH_STREAM_SIZE,
    MATRIX_COLUMNS,
    MATRIX_DIMS,
    PHI_CLIENT,
    PHI_OBJECT,
    attp_hh_configs,
    attp_hh_sweep,
    bitp_hh_configs,
    bitp_hh_sweep,
    client_stream,
    hh_rows_to_table,
    log_scaling_series,
    matrix_configs,
    matrix_rows_to_table,
    matrix_scaling_series,
    matrix_stream,
    matrix_sweep,
    object_stream,
    record_figure,
    run_attp_hh_config,
    run_bitp_hh_config,
)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
_figures.set_results_dir(RESULTS_DIR)
