"""Ablation: interval-tree query index (Section 3, "Queries") vs record scan.

The paper notes ATTP sample queries can use an interval tree over record
lifetimes, answering in ``O(k + log k log log n)`` instead of scanning all
``O(k log n)`` records.  This bench measures the query-time gap on a long
stream and verifies identical answers.
"""

import time

import pytest

from common import record_figure
from repro.core.persistent_sampling import PersistentTopKSample

N = 200_000
K = 64
PROBES = 200


@pytest.fixture(scope="module")
def experiment():
    sampler = PersistentTopKSample(k=K, seed=0)
    for index in range(N):
        sampler.update(index, float(index))
    probes = [float(p) for p in range(500, N, N // PROBES)]

    start = time.perf_counter()
    scan_answers = [sorted(sampler.sample_at(t)) for t in probes]
    scan_seconds = time.perf_counter() - start

    build_start = time.perf_counter()
    sampler.build_interval_index()
    build_seconds = time.perf_counter() - build_start

    start = time.perf_counter()
    indexed_answers = [sorted(sampler.sample_at(t)) for t in probes]
    indexed_seconds = time.perf_counter() - start

    rows = [
        ["linear scan", round(scan_seconds * 1e3, 2), "-"],
        ["interval index", round(indexed_seconds * 1e3, 2),
         round(build_seconds * 1e3, 2)],
    ]
    record_figure(
        "ablation_interval_index",
        f"Ablation: query index vs scan ({PROBES} queries, k={K}, n={N})",
        ["variant", "query_ms (total)", "build_ms"],
        rows,
    )
    return sampler, probes, scan_answers, indexed_answers, scan_seconds, indexed_seconds


def test_index_answers_identical(experiment, benchmark):
    sampler, probes, scan_answers, indexed_answers, _, _ = experiment
    benchmark(lambda: sampler.sample_at(probes[len(probes) // 2]))
    assert scan_answers == indexed_answers


def test_index_faster_than_scan(experiment, benchmark):
    _, _, _, _, scan_seconds, indexed_seconds = experiment
    benchmark(lambda: None)
    assert indexed_seconds < scan_seconds
