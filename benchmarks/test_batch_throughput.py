"""Batch-ingestion throughput: ``update_batch`` vs the scalar loop.

Measures updates/second for the vectorized hot sketches (CountMin, Bloom,
HyperLogLog, KLL — the acceptance targets, asserted at >= 5x for batch
size 1024) plus the batch plumbing through the persistence and durability
layers, and writes the numbers to ``benchmarks/results/BENCH_batch.json``.

Quick mode (``REPRO_BENCH_QUICK=1``, used by the CI smoke job) shrinks the
stream so the whole bench runs in a few seconds; the speedup assertion is
kept — vectorization clears 5x at any stream size that amortises setup.
"""

import json
import os
import time

import numpy as np
import pytest

from common import RESULTS_DIR
from repro.sketches import BloomFilter, CountMinSketch, HyperLogLog, KllSketch

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
N = 40_000 if QUICK else 400_000
BATCH = 1024
REPEATS = 3
REQUIRED_SPEEDUP = 5.0
RESULT_PATH = RESULTS_DIR / "BENCH_batch.json"


def zipf_keys(n, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.zipf(1.2, size=n) % 100_000).astype(np.int64)


def best_seconds(run):
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def measure(make_sketch, keys, timestamps=None):
    """(scalar updates/s, batch updates/s) for one sketch family."""
    n = len(keys)
    key_list = keys.tolist()

    def scalar_run():
        sketch = make_sketch()
        if timestamps is None:
            for key in key_list:
                sketch.update(key)
        else:
            for index in range(n):
                sketch.update(key_list[index], timestamps[index])

    def batch_run():
        sketch = make_sketch()
        for start in range(0, n, BATCH):
            stop = start + BATCH
            if timestamps is None:
                sketch.update_batch(keys[start:stop])
            else:
                sketch.update_batch(keys[start:stop], timestamps[start:stop])

    scalar_seconds = best_seconds(scalar_run)
    batch_seconds = best_seconds(batch_run)
    return n / scalar_seconds, n / batch_seconds


@pytest.fixture(scope="module")
def report():
    keys = zipf_keys(N)
    timestamps = np.arange(N, dtype=float)
    results = {}

    # -- acceptance targets: raw vectorized sketches ------------------------
    values = np.random.default_rng(3).normal(size=N)
    for name, make, stream in (
        ("countmin", lambda: CountMinSketch(width=4096, depth=4, seed=1), keys),
        ("bloom", lambda: BloomFilter(1 << 20, num_hashes=4, seed=1), keys),
        ("hyperloglog", lambda: HyperLogLog(p=12, seed=1), keys),
        ("kll", lambda: KllSketch(k=200, seed=1), values),
    ):
        scalar_ups, batch_ups = measure(make, stream)
        results[name] = {
            "scalar_updates_per_s": round(scalar_ups),
            "batch_updates_per_s": round(batch_ups),
            "speedup": round(batch_ups / scalar_ups, 2),
        }

    # -- informational: the persistence/durability plumbing -----------------
    import functools

    from repro.core import CheckpointChain, MergeTreePersistence

    scalar_ups, batch_ups = measure(
        lambda: CheckpointChain(
            functools.partial(CountMinSketch, 4096, depth=4, seed=1), eps=0.05
        ),
        keys,
        timestamps,
    )
    results["checkpoint_chain_countmin"] = {
        "scalar_updates_per_s": round(scalar_ups),
        "batch_updates_per_s": round(batch_ups),
        "speedup": round(batch_ups / scalar_ups, 2),
    }

    scalar_ups, batch_ups = measure(
        lambda: MergeTreePersistence(
            functools.partial(HyperLogLog, 12, seed=1),
            eps=0.1,
            mode="bitp",
            block_size=4096,
        ),
        keys,
        timestamps,
    )
    results["merge_tree_hll"] = {
        "scalar_updates_per_s": round(scalar_ups),
        "batch_updates_per_s": round(batch_ups),
        "speedup": round(batch_ups / scalar_ups, 2),
    }

    report = {
        "stream_size": N,
        "batch_size": BATCH,
        "quick_mode": QUICK,
        "required_speedup": REQUIRED_SPEEDUP,
        "results": results,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


class TestBatchThroughput:
    @pytest.mark.parametrize("target", ["countmin", "bloom", "hyperloglog", "kll"])
    def test_required_speedup(self, report, target):
        speedup = report["results"][target]["speedup"]
        assert speedup >= REQUIRED_SPEEDUP, (
            f"{target}: batch 1024 speedup {speedup}x is below the required "
            f"{REQUIRED_SPEEDUP}x"
        )

    def test_report_written(self, report):
        assert RESULT_PATH.is_file()
        on_disk = json.loads(RESULT_PATH.read_text())
        assert on_disk["results"].keys() == report["results"].keys()

    def test_plumbing_batches_are_not_slower(self, report):
        """The persistent layers must at least not regress under batching."""
        for name in ("checkpoint_chain_countmin", "merge_tree_hll"):
            assert report["results"][name]["speedup"] >= 1.0

    def test_print_table(self, report, capsys):
        with capsys.disabled():
            print(f"\nbatch={report['batch_size']}  n={report['stream_size']}")
            print(f"{'sketch':<28}{'scalar/s':>12}{'batch/s':>12}{'speedup':>9}")
            for name, row in report["results"].items():
                print(
                    f"{name:<28}{row['scalar_updates_per_s']:>12,}"
                    f"{row['batch_updates_per_s']:>12,}{row['speedup']:>8}x"
                )
