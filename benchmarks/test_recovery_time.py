"""Recovery-time micro-benchmark: WAL replay vs snapshot cadence.

Not a paper figure — it characterises the durability layer added on top of
the reproduction: how long does it take to get a queryable sketch back
after a crash, as a function of how much WAL tail must be replayed?  The
snapshot cadence is the knob: snapshotting every ``c`` updates bounds the
replay tail at ``c`` records, trading ingest-time snapshot cost for
recovery time.

Expected shape: recovery time grows linearly in the replay-tail length and
collapses to snapshot-load time when the cadence is tight.
"""

import shutil
import time

import pytest

from common import record_figure
from repro.durability import DurableSketch, recover
from repro.persistent import AttpSampleHeavyHitter

STREAM = 50_000
UNIVERSE = 101
CADENCES = (1_000, 5_000, 20_000, 0)  # 0 = never snapshot: pure replay


def factory():
    return AttpSampleHeavyHitter(k=1_024, seed=5)


def build_state(directory, cadence):
    store = DurableSketch.open(
        factory,
        directory,
        fsync_policy="off",  # measure replay, not the ingest disk
        snapshot_every=cadence,
        segment_bytes=1 << 20,
    )
    for i in range(STREAM):
        store.update((i * i) % UNIVERSE, float(i))
    store.flush()
    store.wal.close()  # abrupt stop: no final snapshot
    return store


@pytest.fixture(scope="module")
def rows(tmp_path_factory):
    rows = []
    for cadence in CADENCES:
        directory = tmp_path_factory.mktemp("recovery") / f"cadence-{cadence}"
        store = build_state(directory, cadence)
        start = time.perf_counter()
        result = recover(directory, factory)
        seconds = time.perf_counter() - start
        assert result.sketch.count == STREAM
        wal_bytes = sum(p.stat().st_size for p in directory.glob("wal-*.log"))
        rows.append(
            {
                "cadence": cadence if cadence else "never",
                "replayed": result.replayed,
                "wal_mib": wal_bytes / 2**20,
                "recovery_s": seconds,
                "snapshots": store.snapshots_taken,
            }
        )
        shutil.rmtree(directory, ignore_errors=True)
    record_figure(
        "recovery_time",
        f"Recovery time vs snapshot cadence ({STREAM} updates)",
        ["cadence", "replayed", "wal_mib", "recovery_s", "snapshots"],
        [
            [
                r["cadence"],
                r["replayed"],
                f"{r['wal_mib']:.2f}",
                f"{r['recovery_s']:.4f}",
                r["snapshots"],
            ]
            for r in rows
        ],
    )
    return rows


def test_recovery_replays_only_the_tail(rows):
    by_cadence = {r["cadence"]: r for r in rows}
    assert by_cadence[1_000]["replayed"] <= 1_000
    assert by_cadence["never"]["replayed"] == STREAM


def test_tight_cadence_recovers_faster_than_pure_replay(rows):
    by_cadence = {r["cadence"]: r for r in rows}
    assert (
        by_cadence[1_000]["recovery_s"] < by_cadence["never"]["recovery_s"]
    ), "bounded replay tail should beat replaying the whole stream"


def test_recovery_benchmark(tmp_path, benchmark):
    # Recovery of a cleanly-stopped directory is read-only, so it can be
    # benchmarked repeatedly against the same state.
    directory = tmp_path / "bench"
    build_state(directory, cadence=5_000)
    result = benchmark(lambda: recover(directory, factory))
    assert result.sketch.count == STREAM
    assert result.replayed <= 5_000
