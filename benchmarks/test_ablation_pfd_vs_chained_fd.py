"""Ablation: PFD's partial/full checkpoints (Section 4.2) vs naive chained FD.

DESIGN.md design-choice ablation: maintaining FD through the generic
Lemma 4.1 chain snapshots the whole ell x d sketch at every checkpoint;
Algorithm 1 spills single rows instead.  PFD should use far less memory for
comparable error.
"""

import numpy as np
import pytest

from common import matrix_stream, record_figure
from repro.core.checkpoint_chain import CheckpointChain
from repro.core.pfd import PersistentFrequentDirections
from repro.evaluation import (
    covariance_relative_error,
    exact_prefix_covariances,
    feed_matrix_stream,
    mib,
)
from repro.sketches import FastFrequentDirections
from repro.workloads import matrix_query_schedule

DIM, N, ELL = 100, 4_000, 20


class ChainedFrequentDirections:
    """Lemma 4.1 applied to FD: full-sketch snapshots on weight growth."""

    def __init__(self, ell: int, dim: int, eps_ckpt: float):
        self._chain = CheckpointChain(
            lambda: FastFrequentDirections(ell, dim),
            eps=eps_ckpt,
            apply_update=lambda sketch, row, weight: sketch.update(row),
        )
        self.dim = dim

    def update(self, row: np.ndarray, timestamp: float) -> None:
        weight = float(row @ row)
        if weight == 0.0:
            return
        self._chain.update(row, timestamp, weight=weight)

    def covariance_at(self, timestamp: float) -> np.ndarray:
        sketch = self._chain.sketch_at(timestamp)
        if sketch is None:
            return np.zeros((self.dim, self.dim))
        return sketch.covariance()

    def memory_bytes(self) -> int:
        return self._chain.memory_bytes()


@pytest.fixture(scope="module")
def experiment():
    stream = matrix_stream(DIM, N)
    times = matrix_query_schedule(stream)
    exact = exact_prefix_covariances(stream, times)
    results = {}
    for name, sketch in (
        ("PFD (Algorithm 1)", PersistentFrequentDirections(ell=ELL, dim=DIM)),
        ("chained FD (Lemma 4.1)", ChainedFrequentDirections(ELL, DIM, eps_ckpt=2.0 / ELL)),
    ):
        update_seconds = feed_matrix_stream(sketch, stream)
        errors = [
            covariance_relative_error(e, sketch.covariance_at(t))
            for e, t in zip(exact, times)
        ]
        results[name] = {
            "memory_mib": mib(sketch.memory_bytes()),
            "update_s": update_seconds,
            "rel_error": float(np.mean(errors)),
        }
    rows = [
        [name, round(r["memory_mib"], 4), round(r["update_s"], 3), round(r["rel_error"], 4)]
        for name, r in results.items()
    ]
    record_figure(
        "ablation_pfd",
        f"Ablation: PFD partial/full checkpoints vs chained FD (ell={ELL}, d={DIM})",
        ["variant", "memory_MiB", "update_s", "rel_error"],
        rows,
    )
    return results


def test_pfd_smaller_for_comparable_error(experiment, benchmark):
    benchmark(lambda: dict(experiment))
    pfd = experiment["PFD (Algorithm 1)"]
    chained = experiment["chained FD (Lemma 4.1)"]
    assert pfd["memory_mib"] < chained["memory_mib"]
    assert pfd["rel_error"] <= chained["rel_error"] + 2.0 / ELL
