"""Figure 13: ATTP matrix-estimation relative error vs memory (low & medium).

Paper shape: PFD gives the best estimates, NS next; NSWR loses its advantage
(the datasets have no weight outliers).  Error measured only on low/medium
dims, as in the paper (exact A^T A is costly at high dimension).
"""

import pytest

from common import (
    MATRIX_COLUMNS,
    matrix_rows_to_table,
    matrix_sweep,
    record_figure,
)


@pytest.fixture(scope="module")
def rows():
    out = {}
    for size in ("low", "medium"):
        out[size] = matrix_sweep(size, True)
        record_figure(
            f"fig13_{size}",
            f"Figure 13 ({size}-dim): ATTP matrix relative error vs memory",
            MATRIX_COLUMNS,
            matrix_rows_to_table(out[size]),
        )
    return out


def by_sketch(rows, prefix):
    return [row for row in rows if row["sketch"].startswith(prefix)]


def test_fig13_pfd_best_error_per_memory(rows, benchmark):
    benchmark(lambda: matrix_rows_to_table(rows["low"]))
    for size in ("low", "medium"):
        sweep = rows[size]
        # For every PFD point, no NS/NSWR point with <= its memory beats
        # its error (Pareto dominance of the PFD curve).
        for pfd in by_sketch(sweep, "PFD"):
            rivals = [
                row
                for row in sweep
                if not row["sketch"].startswith("PFD")
                and row["memory_mib"] <= pfd["memory_mib"]
            ]
            for rival in rivals:
                assert pfd["rel_error"] <= rival["rel_error"] + 0.02


def test_fig13_error_decreases_with_memory(rows, benchmark):
    benchmark(lambda: matrix_rows_to_table(rows["medium"]))
    for size in ("low", "medium"):
        for prefix in ("PFD", "NS(", "NSWR"):
            series = by_sketch(rows[size], prefix)
            assert series[-1]["rel_error"] < series[0]["rel_error"] + 0.02


def test_fig13_all_errors_small(rows, benchmark):
    benchmark(lambda: rows["low"])
    for size in ("low", "medium"):
        for row in rows[size]:
            assert row["rel_error"] < 0.2
