"""Multi-tenant Zipf soak: ceiling-held-via-spill, exact accounting, p99.

The workload models a real multi-tenant ingest plane: a fleet of
``N_TENANTS`` registered tenants (10k quick / 100k full) receives
batches whose tenant is drawn from a Zipf distribution — a few hot
tenants dominate, a long tail is touched once or twice — under a
resident-bytes ceiling far below the fleet's total footprint, so the
facade must continuously spill cold tenants and transparently reload
them when the tail comes back.

Acceptance, asserted here and recorded in
``benchmarks/results/BENCH_tenancy.json``:

* the resident-bytes ceiling holds throughout the soak, and held *via
  spill* (spills observed, not just a fleet that happened to fit);
* answers are **bit-identical** to a never-spilled offline replay of
  each probed tenant's sub-stream (hot, churned, and tail tenants —
  the probe itself reloads cold ones);
* quota-rejected batches are *exactly* accounted: dropped receipts ==
  the tenant record's reject counter == ``service_tenant_rejects_total``;
* metric label cardinality stays within the top-K guard bound.

Quick mode (``REPRO_TENANCY_QUICK=1``) is the CI ``tenant-soak`` job;
the full soak is the same loop at 100k tenants.
"""

import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

import repro.telemetry as telemetry
from common import RESULTS_DIR
from repro.core import ChainCountMin
from repro.service import MultiTenantService, TenantQuota
from repro.telemetry import TELEMETRY

QUICK = os.environ.get("REPRO_TENANCY_QUICK", "") not in ("", "0")
N_TENANTS = 10_000 if QUICK else 100_000
N_EVENTS = 5_000 if QUICK else 50_000
BATCH = 32
UNIVERSE = 64
ZIPF_ALPHA = 1.3
LABEL_TENANTS = 8
CEILING_BYTES = 256_000
HEAVY_TENANT = "tenant-0"
HEAVY_QUOTA = TenantQuota(rate=300.0, burst=600.0, policy="drop")
N_PROBES = 15
RESULT_PATH = RESULTS_DIR / "BENCH_tenancy.json"

TENANT_FAMILIES = (
    "service_tenant_ingest_items_total",
    "service_tenant_rejects_total",
    "service_tenant_queries_total",
    "service_tenant_spills_total",
    "service_tenant_reloads_total",
)


def factory():
    return ChainCountMin(width=64, depth=2, eps_ckpt=0.02, seed=1)


def probe_tenants(traffic):
    """Hot heads, churned middle, and single-touch tail — N_PROBES ids."""
    ranked = sorted(traffic, key=traffic.get, reverse=True)
    head = ranked[:3]
    middle = ranked[len(ranked) // 2 : len(ranked) // 2 + 7]
    tail = ranked[-5:]
    chosen = list(dict.fromkeys(head + middle + tail))
    return chosen[:N_PROBES]


@pytest.fixture(scope="module")
def report():
    telemetry.reset()
    telemetry.enable()
    rng = np.random.default_rng(29)
    tenants = (rng.zipf(ZIPF_ALPHA, size=N_EVENTS) - 1) % N_TENANTS
    tenants[0] = 0  # the heavy tenant is touched first: it owns its label
    scratch = tempfile.TemporaryDirectory()
    svc = MultiTenantService(
        factory,
        directory=Path(scratch.name),
        num_shards=1,
        max_resident_bytes=CEILING_BYTES,
        label_tenants=LABEL_TENANTS,
        accounting_interval=256,
        durable_options={"fsync_policy": "off"},
    )
    t0 = time.perf_counter()
    registered = svc.register_tenants(
        (f"tenant-{i}" for i in range(N_TENANTS))
    )
    register_s = time.perf_counter() - t0
    svc.set_quota(HEAVY_TENANT, HEAVY_QUOTA)

    streams = {}  # tenant -> list of (keys, ts): the never-spilled truth
    latencies = np.empty(N_EVENTS, dtype=float)
    traffic = {}
    dropped_receipts = 0
    max_observed = 0
    t0 = time.perf_counter()
    for event, tenant_idx in enumerate(tenants):
        tenant = f"tenant-{tenant_idx}"
        keys = rng.integers(0, UNIVERSE, size=BATCH).astype(np.int64)
        ts = np.arange(event * BATCH, event * BATCH + BATCH, dtype=float)
        started = time.perf_counter()
        receipt = svc.ingest_batch(tenant, keys, ts)
        latencies[event] = time.perf_counter() - started
        if receipt.dropped:
            dropped_receipts += 1
        else:
            streams.setdefault(tenant, []).append((keys, ts))
            traffic[tenant] = traffic.get(tenant, 0) + 1
        if event % 500 == 499:
            # refresh re-measures the fleet and re-applies the ceiling:
            # the returned total is the enforced resident footprint
            max_observed = max(
                max_observed, svc.resident_bytes(refresh=True)
            )
    soak_s = time.perf_counter() - t0
    max_observed = max(max_observed, svc.resident_bytes(refresh=True))
    assert svc.drain(timeout=120)

    fleet = svc.tenants()
    spills_total = sum(
        svc.registry.get(t).spills for t in traffic
    )
    reloads_total = sum(svc.registry.get(t).reloads for t in traffic)

    # bit-identity: service answers vs a never-spilled offline replay
    horizon = float(N_EVENTS * BATCH)
    identity_checked = 0
    probes = probe_tenants(traffic)
    for tenant in probes:
        parts = streams[tenant]
        all_keys = np.concatenate([k for k, _ in parts])
        all_ts = np.concatenate([t for _, t in parts])
        reference = factory()
        reference.update_batch(all_keys, all_ts)
        for key in range(0, UNIVERSE, 9):
            assert svc.estimate_at(tenant, key, horizon) == (
                reference.estimate_at(key, horizon)
            ), f"tenant {tenant} diverged from its never-spilled replay"
            identity_checked += 1

    # exact reject accounting, three independent ledgers
    heavy_record = svc.registry.get(HEAVY_TENANT)
    family = TELEMETRY.registry.get("service_tenant_rejects_total")
    metric_rejects = sum(
        child.value
        for labels, child in family.samples()
        if labels.get("tenant") == HEAVY_TENANT
        and labels.get("reason") == "rate"
    )
    cardinalities = {}
    for name in TENANT_FAMILIES:
        fam = TELEMETRY.registry.get(name)
        if fam is None:
            continue
        cardinalities[name] = len(
            {labels["tenant"] for labels, _ in fam.samples()}
        )

    latencies_ms = np.sort(latencies) * 1e3
    result = {
        "quick_mode": QUICK,
        "cpu_count": os.cpu_count(),
        "n_tenants": N_TENANTS,
        "n_events": N_EVENTS,
        "batch": BATCH,
        "zipf_alpha": ZIPF_ALPHA,
        "distinct_touched": len(traffic),
        "register_seconds": round(register_s, 3),
        "registered": registered,
        "soak_seconds": round(soak_s, 3),
        "events_per_s": round(N_EVENTS / soak_s),
        "ingest_latency_ms": {
            "p50": round(float(latencies_ms[N_EVENTS // 2]), 4),
            "p99": round(float(latencies_ms[(N_EVENTS * 99) // 100]), 4),
            "max": round(float(latencies_ms[-1]), 4),
        },
        "resident_bytes_ceiling": CEILING_BYTES,
        "max_observed_resident_bytes": int(max_observed),
        "resident_at_end": fleet["resident"],
        "spills_total": spills_total,
        "reloads_total": reloads_total,
        "bit_identity": {
            "probed_tenants": len(probes),
            "answers_checked": identity_checked,
        },
        "heavy_tenant": {
            "id": HEAVY_TENANT,
            "quota": {"rate": HEAVY_QUOTA.rate, "burst": HEAVY_QUOTA.burst},
            "dropped_receipts": dropped_receipts,
            "record_rejects": heavy_record.rejects["rate"],
            "metric_rejects": int(metric_rejects),
        },
        "label_top_k": LABEL_TENANTS,
        "tenant_label_cardinality": cardinalities,
    }
    svc.close()
    scratch.cleanup()
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    telemetry.disable()
    telemetry.reset()
    return result


class TestTenancySoak:
    def test_resident_bytes_ceiling_held(self, report):
        assert report["max_observed_resident_bytes"] <= (
            report["resident_bytes_ceiling"]
        )

    def test_ceiling_held_via_spill_not_by_luck(self, report):
        assert report["spills_total"] > 0
        assert report["reloads_total"] > 0

    def test_rejects_exactly_accounted(self, report):
        heavy = report["heavy_tenant"]
        assert heavy["dropped_receipts"] > 0, (
            "the soak never tripped the heavy tenant's rate quota — "
            "tighten HEAVY_QUOTA"
        )
        assert (
            heavy["dropped_receipts"]
            == heavy["record_rejects"]
            == heavy["metric_rejects"]
        )

    def test_label_cardinality_bounded(self, report):
        for family, cardinality in report["tenant_label_cardinality"].items():
            assert cardinality <= report["label_top_k"] + 1, (
                f"{family} leaked {cardinality} tenant label values"
            )

    def test_report_written(self, report):
        assert RESULT_PATH.is_file()
        on_disk = json.loads(RESULT_PATH.read_text())
        assert on_disk["bit_identity"]["answers_checked"] > 0

    def test_print_summary(self, report, capsys):
        with capsys.disabled():
            lat = report["ingest_latency_ms"]
            print(
                f"\ntenants={report['n_tenants']:,}  "
                f"touched={report['distinct_touched']:,}  "
                f"events={report['n_events']:,}x{report['batch']}"
            )
            print(
                f"resident bytes max {report['max_observed_resident_bytes']:,}"
                f" / ceiling {report['resident_bytes_ceiling']:,}  "
                f"spills={report['spills_total']:,} "
                f"reloads={report['reloads_total']:,}"
            )
            print(
                f"ingest p50={lat['p50']}ms p99={lat['p99']}ms "
                f"max={lat['max']}ms  "
                f"rejects={report['heavy_tenant']['dropped_receipts']}"
            )
