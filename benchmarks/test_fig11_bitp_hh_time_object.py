"""Figure 11: BITP heavy-hitter update & query time vs memory (Object-ID).

Paper shape: as Figure 9 — the persistent CountMin baseline pays a steep
update-time premium; trade-offs between TMG and SAMPLING stay the same.
"""

import pytest

from common import (
    HH_COLUMNS,
    PHI_OBJECT,
    bitp_hh_sweep,
    hh_rows_to_table,
    object_stream,
    record_figure,
)
from repro.evaluation import feed_log_stream
from repro.persistent import BitpSampleHeavyHitter
from repro.workloads import query_schedule


@pytest.fixture(scope="module")
def rows():
    rows = bitp_hh_sweep("object")
    record_figure(
        "fig11",
        "Figure 11: BITP HH update/query time vs memory (Object-ID)",
        HH_COLUMNS,
        hh_rows_to_table(rows),
    )
    return rows


def test_fig11_pcm_updates_slowest(rows, benchmark):
    stream = object_stream()
    sketch = BitpSampleHeavyHitter(k=5_000, seed=0)
    feed_log_stream(sketch, stream)
    since = query_schedule(stream)[2]
    benchmark(lambda: sketch.heavy_hitters_since(since, PHI_OBJECT))
    fastest_pcm = min(
        row["update_s"] for row in rows if row["sketch"].startswith("PCM")
    )
    slowest_other = max(
        row["update_s"] for row in rows if not row["sketch"].startswith("PCM")
    )
    assert fastest_pcm > 2 * slowest_other


def test_fig11_bitp_queries_fast(rows, benchmark):
    benchmark(lambda: hh_rows_to_table(rows))
    for row in rows:
        if not row["sketch"].startswith("PCM"):
            assert row["query_s"] < 2.0  # 4 suffix queries well under a second each
