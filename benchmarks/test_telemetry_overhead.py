"""Telemetry overhead: disabled-mode instrumentation must cost <= 5%.

Every hot path in the package carries an ``if TELEMETRY.enabled:`` guard (or
a ``@timed`` wrapper that checks the same flag), so the *disabled* cost is
one global load plus one attribute check per instrumented site.  This bench
proves the claim three ways and writes the measurements to
``benchmarks/results/BENCH_telemetry.json``:

* **disabled vs baseline** — ingest throughput with telemetry off is
  compared against the committed pre-instrumentation throughput shape by
  asserting the *enabled/disabled* ratio, which is measured on this machine
  in this process and is therefore hardware-independent;
* **disabled overhead** — the disabled run is re-measured back-to-back and
  the spread is reported, so the JSON shows the noise floor next to the
  claimed bound;
* **enabled cost** — with telemetry on, everything still works and the cost
  stays within an order of magnitude (informational, not asserted tightly:
  enabled-mode cost is a feature knob, not a regression).

Quick mode (``REPRO_BENCH_QUICK=1``, the CI ``telemetry-overhead`` job)
shrinks the stream so the bench finishes in seconds; the ratio assertions
hold at any size that amortises setup.
"""

import gc
import json
import os
import time

import numpy as np
import pytest

from common import RESULTS_DIR
from repro.core import CheckpointChain
from repro.core.bitp_sampling import BitpPrioritySample
from repro.service import ShardedSketchService
from repro.sketches import CountMinSketch
from repro.telemetry.registry import TELEMETRY
from repro.telemetry.spans import SPANS

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
N = 30_000 if QUICK else 300_000
BATCH = 1024
REPEATS = 5
#: Disabled-mode telemetry may cost at most this fraction of throughput.
MAX_DISABLED_OVERHEAD = 0.05
RESULT_PATH = RESULTS_DIR / "BENCH_telemetry.json"


def _keys(n, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.zipf(1.2, size=n) % 100_000).astype(np.int64)


def best_seconds(run):
    best = float("inf")
    for _ in range(REPEATS):
        gc.collect()  # don't let garbage from a prior run bill this one
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def scalar_countmin(keys):
    sketch = CountMinSketch(width=4096, depth=4, seed=1)
    update = sketch.update
    for key in keys:
        update(key)


def batch_countmin(keys_array):
    sketch = CountMinSketch(width=4096, depth=4, seed=1)
    for start in range(0, len(keys_array), BATCH):
        sketch.update_batch(keys_array[start : start + BATCH])


def chain_ingest(keys, timestamps):
    chain = CheckpointChain(
        lambda: CountMinSketch(width=4096, depth=4, seed=1), eps=0.05
    )
    update = chain.update
    for index in range(len(keys)):
        update(keys[index], timestamps[index])


def bitp_ingest(keys, timestamps):
    sampler = BitpPrioritySample(k=64, seed=1)
    update = sampler.update
    for index in range(len(keys)):
        update(keys[index], timestamps[index])


#: The service workload ingests production-sized batches: spans are
#: per-batch / per-sub-batch, so the traced cost is amortised over the
#: vectorised applies exactly as it is in a deployed group-commit service.
SERVICE_BATCH = 8192
#: One timed service run streams the data this many times (timestamps
#: shifted to stay monotone) so each measurement is long enough that
#: thread-scheduling noise does not dominate the ratio.
SERVICE_PASSES = 2 if QUICK else 5


def service_ingest(keys_array, timestamps_array):
    """Batched ingest through the sharded service — with telemetry on this
    is the fully *traced* path (ingest span, per-shard enqueue / queue-wait /
    apply spans, queue-wait histogram), so enabled-vs-disabled here bounds
    the whole tracing layer, not just a counter guard.  The shard sketch is
    the vectorised CheckpointChain(CountMin) so per-item work is batch-applied
    and the ratio isolates the per-sub-batch span/histogram cost."""
    n = len(keys_array)
    with ShardedSketchService(
        lambda: CheckpointChain(
            lambda: CountMinSketch(width=2048, depth=2, seed=1), eps=0.05
        ),
        num_shards=2,
        partition="round_robin",
        # a queue deep enough that producers never block: the run time is
        # then producer cost + worker backlog, not scheduler-dependent
        # backpressure handoffs, which keeps the noise floor resolvable
        queue_capacity=n * SERVICE_PASSES,
    ) as service:
        for index in range(SERVICE_PASSES):
            shifted = timestamps_array + float(index * n)
            for start in range(0, n, SERVICE_BATCH):
                service.ingest_batch(
                    keys_array[start : start + SERVICE_BATCH],
                    shifted[start : start + SERVICE_BATCH],
                )
        service.drain(timeout=300)


@pytest.fixture(scope="module")
def report():
    keys_array = _keys(N)
    keys = keys_array.tolist()
    timestamps_array = np.arange(N, dtype=float)
    timestamps = timestamps_array.tolist()

    workloads = {
        "countmin_scalar": (lambda: scalar_countmin(keys), N),
        "countmin_batch": (lambda: batch_countmin(keys_array), N),
        "checkpoint_chain_scalar": (lambda: chain_ingest(keys, timestamps), N),
        "bitp_sampler_scalar": (lambda: bitp_ingest(keys, timestamps), N),
        "service_ingest_traced": (
            lambda: service_ingest(keys_array, timestamps_array),
            N * SERVICE_PASSES,
        ),
    }

    TELEMETRY.disable()
    results = {}
    for name, (run, items) in workloads.items():
        disabled_a = best_seconds(run)
        disabled_b = best_seconds(run)  # back-to-back: the noise floor
        TELEMETRY.enable()
        enabled = best_seconds(run)
        TELEMETRY.disable()
        TELEMETRY.registry.reset()
        SPANS.clear()
        disabled = min(disabled_a, disabled_b)
        results[name] = {
            "disabled_updates_per_s": round(items / disabled),
            "enabled_updates_per_s": round(items / enabled),
            "noise_floor": round(abs(disabled_a - disabled_b) / disabled, 4),
            "enabled_over_disabled": round(enabled / disabled, 4),
        }

    payload = {
        "stream_size": N,
        "batch_size": BATCH,
        "quick_mode": QUICK,
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "results": results,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


class TestDisabledOverhead:
    def test_disabled_noise_floor_is_small(self, report):
        """Two back-to-back disabled runs agree — the harness can resolve
        a 5% difference at all."""
        for name, row in report["results"].items():
            assert row["noise_floor"] <= 0.25, (name, row)

    @pytest.mark.parametrize(
        "workload",
        [
            "countmin_scalar",
            "countmin_batch",
            "checkpoint_chain_scalar",
            "bitp_sampler_scalar",
        ],
    )
    def test_enabled_mode_bounds_the_disabled_guard_cost(self, report, workload):
        """The disabled guard is a strict subset of the enabled work: if
        even *enabled* telemetry stays within budget on the batch path and
        within 2x anywhere, the disabled attribute check cannot exceed 5%.
        The direct disabled-vs-disabled comparison is the noise-floor test;
        the committed JSON records both numbers for the docs table."""
        ratio = report["results"][workload]["enabled_over_disabled"]
        assert ratio < 2.0, (workload, ratio)

    def test_traced_service_ingest_within_bound(self, report):
        """With telemetry (and therefore tracing) enabled, service ingest
        may cost at most 1.15x the disabled path: span construction and the
        queue-wait histogram are per-sub-batch, not per-item, so the traced
        path must stay a rounding error next to the batch applies."""
        row = report["results"]["service_ingest_traced"]
        assert row["enabled_over_disabled"] <= 1.15, row

    def test_batch_path_disabled_overhead_within_bound(self, report):
        """Batch ingest touches the guard once per 1024 items — enabled vs
        disabled must be indistinguishable there (well under the 5% bound
        plus noise)."""
        row = report["results"]["countmin_batch"]
        assert row["enabled_over_disabled"] <= 1.0 + MAX_DISABLED_OVERHEAD + 0.10, row

    def test_report_written(self, report):
        assert RESULT_PATH.is_file()
        on_disk = json.loads(RESULT_PATH.read_text())
        assert on_disk["results"].keys() == report["results"].keys()

    def test_print_table(self, report, capsys):
        with capsys.disabled():
            print(f"\ntelemetry overhead  n={report['stream_size']}")
            print(
                f"{'workload':<26}{'disabled/s':>12}{'enabled/s':>12}"
                f"{'en/dis':>8}{'noise':>7}"
            )
            for name, row in report["results"].items():
                print(
                    f"{name:<26}{row['disabled_updates_per_s']:>12,}"
                    f"{row['enabled_updates_per_s']:>12,}"
                    f"{row['enabled_over_disabled']:>8}{row['noise_floor']:>7}"
                )
