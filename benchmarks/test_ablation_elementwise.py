"""Ablation: elementwise checkpoints (Section 4.1) vs full-sketch chaining.

DESIGN.md design-choice ablation: the same Misra-Gries accuracy target
maintained with (a) per-counter histories (CMG) and (b) whole-sketch
checkpoint chains (Lemma 4.1).  The elementwise variant should use
substantially less memory at equal accuracy.
"""

import pytest

from common import PHI_OBJECT, object_stream, record_figure
from repro.core.checkpoint_chain import CheckpointChain
from repro.core.elementwise import ChainMisraGries
from repro.evaluation import (
    average_accuracy,
    exact_prefix_heavy_hitters,
    feed_log_stream,
    mib,
)
from repro.sketches import MisraGries
from repro.workloads import query_schedule

EPS = 2e-3


class FullChainMisraGries:
    """Lemma 4.1 applied to Misra-Gries: full snapshots, same error split."""

    def __init__(self, eps: float):
        self.eps = eps
        self._chain = CheckpointChain(
            lambda: MisraGries.from_error(eps / 2.0),
            eps=eps / 2.0,
            apply_update=lambda sketch, value, weight: sketch.update(value, int(weight)),
        )

    def update(self, key: int, timestamp: float) -> None:
        self._chain.update(key, timestamp, weight=1)

    def heavy_hitters_at(self, timestamp: float, phi: float):
        sketch = self._chain.sketch_at(timestamp)
        if sketch is None or sketch.total_weight == 0:
            return []
        return sketch.heavy_hitters(max(phi - self.eps, 1e-12))

    def memory_bytes(self) -> int:
        return self._chain.memory_bytes()


@pytest.fixture(scope="module")
def experiment():
    stream = object_stream()
    times = query_schedule(stream)
    truth = exact_prefix_heavy_hitters(stream, times, PHI_OBJECT)
    results = {}
    for name, sketch in (
        ("elementwise (CMG)", ChainMisraGries(eps=EPS)),
        ("full-chain (Lemma 4.1)", FullChainMisraGries(eps=EPS)),
    ):
        update_seconds = feed_log_stream(sketch, stream)
        reported = [sketch.heavy_hitters_at(t, PHI_OBJECT) for t in times]
        precision, recall = average_accuracy(reported, truth)
        results[name] = {
            "memory_mib": mib(sketch.memory_bytes()),
            "update_s": update_seconds,
            "precision": precision,
            "recall": recall,
        }
    rows = [
        [name, round(r["memory_mib"], 4), round(r["update_s"], 3),
         round(r["precision"], 3), round(r["recall"], 3)]
        for name, r in results.items()
    ]
    record_figure(
        "ablation_elementwise",
        f"Ablation: elementwise vs full-sketch checkpoints (MG, eps={EPS:g})",
        ["variant", "memory_MiB", "update_s", "precision", "recall"],
        rows,
    )
    return results


def test_elementwise_uses_less_memory_at_same_accuracy(experiment, benchmark):
    benchmark(lambda: dict(experiment))
    cmg = experiment["elementwise (CMG)"]
    full = experiment["full-chain (Lemma 4.1)"]
    assert cmg["memory_mib"] < full["memory_mib"]
    assert cmg["recall"] == 1.0
    assert full["recall"] == 1.0
    assert cmg["precision"] >= full["precision"] - 0.1
