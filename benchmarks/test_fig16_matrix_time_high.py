"""Figure 16: ATTP matrix update & query time vs memory (high dimension).

Paper shape: the PFD-vs-sampling update-time gap widens with the dimension
(the per-update SVD cost grows); error is not measured at this dimension,
matching the paper's protocol.
"""

import pytest

from common import (
    MATRIX_COLUMNS,
    matrix_rows_to_table,
    matrix_sweep,
    matrix_stream,
    record_figure,
)
from repro.evaluation import feed_matrix_stream
from repro.persistent import AttpNormSamplingWR


@pytest.fixture(scope="module")
def rows():
    rows = matrix_sweep("high", False)
    record_figure(
        "fig16",
        "Figure 16 (high-dim): ATTP matrix update/query time vs memory",
        MATRIX_COLUMNS[:-1],
        [row[:-1] for row in matrix_rows_to_table(rows)],
    )
    return rows


def test_fig16_pfd_updates_much_slower(rows, benchmark):
    stream = matrix_stream(1_000, 1_000)
    nswr = AttpNormSamplingWR(k=150, dim=1_000, seed=0)
    feed_matrix_stream(nswr, stream)
    t = float(stream.timestamps[len(stream) // 2])
    benchmark(lambda: nswr.covariance_at(t))
    fastest_pfd = min(r["update_s"] for r in rows if r["sketch"].startswith("PFD"))
    slowest_ns = max(
        r["update_s"] for r in rows if not r["sketch"].startswith("PFD")
    )
    assert fastest_pfd > 3 * slowest_ns


def test_fig16_gap_wider_than_low_dim(rows, benchmark):
    benchmark(lambda: matrix_rows_to_table(rows))
    low = matrix_sweep("low", True)

    def gap(sweep):
        pfd = min(r["update_s"] for r in sweep if r["sketch"].startswith("PFD"))
        ns = min(r["update_s"] for r in sweep if r["sketch"].startswith("NS("))
        return pfd / ns

    assert gap(rows) > gap(low) / 2  # the gap does not collapse at high dim
