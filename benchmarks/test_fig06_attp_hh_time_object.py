"""Figure 6: ATTP heavy-hitter update & query time vs memory (Object-ID).

Paper shape: as Figure 4 — PCM_HH update times sit an order of magnitude (or
more) above both ATTP sketches across the sweep.
"""

import pytest

from common import (
    HH_COLUMNS,
    PHI_OBJECT,
    attp_hh_sweep,
    hh_rows_to_table,
    object_stream,
    record_figure,
)
from repro.evaluation import feed_log_stream
from repro.persistent import AttpSampleHeavyHitter
from repro.workloads import query_schedule


@pytest.fixture(scope="module")
def rows():
    rows = attp_hh_sweep("object")
    record_figure(
        "fig06",
        "Figure 6: ATTP HH update/query time vs memory (Object-ID)",
        HH_COLUMNS,
        hh_rows_to_table(rows),
    )
    return rows


def test_fig06_pcm_updates_slower(rows, benchmark):
    stream = object_stream()
    sketch = AttpSampleHeavyHitter(k=5_000, seed=0)
    feed_log_stream(sketch, stream)
    t = query_schedule(stream)[2]
    benchmark(lambda: sketch.heavy_hitters_at(t, PHI_OBJECT))
    slowest_sketch = max(
        row["update_s"] for row in rows if not row["sketch"].startswith("PCM")
    )
    fastest_pcm = min(
        row["update_s"] for row in rows if row["sketch"].startswith("PCM")
    )
    assert fastest_pcm > 10 * slowest_sketch


def test_fig06_cmg_fastest_updates(rows, benchmark):
    benchmark(lambda: hh_rows_to_table(rows))
    cmg_best = min(
        row["update_s"] for row in rows if row["sketch"].startswith("CMG")
    )
    pcm_best = min(
        row["update_s"] for row in rows if row["sketch"].startswith("PCM")
    )
    assert cmg_best < pcm_best / 50
