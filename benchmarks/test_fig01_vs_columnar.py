"""Figure 1: ATTP sketches vs a columnar store, memory and query time vs #logs.

Paper series: SAMPLING, CMG, VERTICA (full data), VERTICA_WINDOWED_AGG.
Paper shape: the stores grow linearly in memory and query time with the log
count; both sketches stay near-flat (logarithmic).  Scaled substitution: the
in-memory columnar engine stands in for Vertica (DESIGN.md section 4).
"""

import time

import pytest

from common import PHI_OBJECT, object_stream, record_figure
from repro.baselines import ColumnarLogStore, WindowedAggregateStore
from repro.evaluation import memory_of, mib
from repro.persistent import AttpChainMisraGries, AttpSampleHeavyHitter

SIZES = (25_000, 50_000, 100_000, 200_000)
PHI = PHI_OBJECT


def build_systems():
    return {
        "SAMPLING": AttpSampleHeavyHitter(k=1_000, seed=0),
        "CMG": AttpChainMisraGries(eps=2e-3),
        "VERTICA": ColumnarLogStore(chunk_rows=1_024),
        "VERTICA_WINDOWED_AGG": WindowedAggregateStore(window_length=5_000.0),
    }


@pytest.fixture(scope="module")
def experiment():
    stream = object_stream(max(SIZES))
    systems = build_systems()
    memory_series = {name: [] for name in systems}
    query_series = {name: [] for name in systems}
    cursor = 0
    keys = stream.keys.tolist()
    times = stream.timestamps.tolist()
    for n in SIZES:
        for index in range(cursor, n):
            for system in systems.values():
                system.update(keys[index], times[index])
        cursor = n
        t_query = times[n - 1]
        for name, system in systems.items():
            start = time.perf_counter()
            system.heavy_hitters_at(t_query, PHI)
            query_series[name].append(time.perf_counter() - start)
            memory_series[name].append(mib(memory_of(system)))
    rows = []
    for position, n in enumerate(SIZES):
        for name in systems:
            rows.append([
                n,
                name,
                round(memory_series[name][position], 4),
                round(query_series[name][position] * 1e3, 3),
            ])
    record_figure(
        "fig01",
        "Figure 1: memory (MiB) and HH query time (ms) vs number of logs",
        ["logs", "system", "memory_MiB", "query_ms"],
        rows,
    )
    return systems, memory_series, stream


def test_fig01_sketches_sublinear_vs_store_linear(experiment, benchmark):
    systems, memory_series, stream = experiment
    t_query = float(stream.timestamps[max(SIZES) - 1])
    benchmark(lambda: systems["CMG"].heavy_hitters_at(t_query, PHI))
    # Shape assertions: over an 8x size range the store's memory grows
    # near-linearly while both sketches grow by only a log factor, and the
    # store ends above both sketches (the Figure 1 crossover).
    store_growth = memory_series["VERTICA"][-1] / memory_series["VERTICA"][0]
    for sketch in ("CMG", "SAMPLING"):
        sketch_growth = memory_series[sketch][-1] / memory_series[sketch][0]
        assert store_growth > 2 * sketch_growth
        assert memory_series["VERTICA"][-1] > memory_series[sketch][-1]


def test_fig01_store_query_slower_at_scale(experiment, benchmark):
    systems, _, stream = experiment
    t_query = float(stream.timestamps[max(SIZES) - 1])
    benchmark(lambda: systems["VERTICA"].heavy_hitters_at(t_query, PHI))
