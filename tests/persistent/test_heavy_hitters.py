"""Tests for the persistent heavy-hitter public API."""

import numpy as np
import pytest

from repro.evaluation import (
    average_accuracy,
    exact_prefix_heavy_hitters,
    exact_suffix_heavy_hitters,
    feed_log_stream,
)
from repro.persistent import (
    AttpChainMisraGries,
    AttpSampleHeavyHitter,
    BitpSampleHeavyHitter,
    BitpTreeMisraGries,
)
from repro.workloads import query_schedule


PHI = 0.01


class TestAttpSampleHeavyHitter:
    def test_accuracy_on_skewed_stream(self, small_object_stream):
        stream = small_object_stream
        sketch = AttpSampleHeavyHitter(k=4_000, seed=0)
        feed_log_stream(sketch, stream)
        times = query_schedule(stream)
        truth = exact_prefix_heavy_hitters(stream, times, PHI)
        reported = [sketch.heavy_hitters_at(t, PHI) for t in times]
        p, r = average_accuracy(reported, truth)
        assert p > 0.7
        assert r > 0.8

    def test_estimate_at_tracks_prefix(self, small_object_stream):
        stream = small_object_stream
        sketch = AttpSampleHeavyHitter(k=5_000, seed=1)
        feed_log_stream(sketch, stream)
        t = float(stream.timestamps[4_999])
        counts = np.bincount(stream.keys[:5_000])
        top = int(np.argmax(counts))
        estimate = sketch.estimate_at(top, t)
        assert abs(estimate - counts[top]) < 0.25 * counts[top] + 20

    def test_empty_before_stream(self):
        sketch = AttpSampleHeavyHitter(k=10, seed=0)
        sketch.update(1, 100.0)
        assert sketch.heavy_hitters_at(50.0, 0.5) == []
        assert sketch.estimate_at(1, 50.0) == 0.0

    def test_phi_validated(self):
        sketch = AttpSampleHeavyHitter(k=10, seed=0)
        with pytest.raises(ValueError):
            sketch.heavy_hitters_at(1.0, 0.0)

    def test_memory_grows_sublinearly(self):
        small = AttpSampleHeavyHitter(k=100, seed=0)
        large = AttpSampleHeavyHitter(k=100, seed=0)
        for index in range(1_000):
            small.update(index % 50, float(index))
        for index in range(100_000):
            large.update(index % 50, float(index))
        # 100x more items -> far less than 100x more memory (log factor).
        assert large.memory_bytes() < 10 * small.memory_bytes()


class TestAttpChainMisraGriesApi:
    def test_is_the_core_implementation(self):
        from repro.core.elementwise import ChainMisraGries

        assert issubclass(AttpChainMisraGries, ChainMisraGries)

    def test_accuracy_and_recall_guarantee(self, small_object_stream):
        stream = small_object_stream
        sketch = AttpChainMisraGries(eps=0.002)
        feed_log_stream(sketch, stream)
        times = query_schedule(stream)
        truth = exact_prefix_heavy_hitters(stream, times, PHI)
        reported = [sketch.heavy_hitters_at(t, PHI) for t in times]
        p, r = average_accuracy(reported, truth)
        assert r == 1.0  # guaranteed recall
        assert p > 0.5


class TestBitpSampleHeavyHitter:
    def test_accuracy_on_windows(self, small_object_stream):
        stream = small_object_stream
        sketch = BitpSampleHeavyHitter(k=4_000, seed=0)
        feed_log_stream(sketch, stream)
        times = query_schedule(stream)[:4]  # suffix queries
        truth = exact_suffix_heavy_hitters(stream, times, PHI)
        reported = [sketch.heavy_hitters_since(t, PHI) for t in times]
        p, r = average_accuracy(reported, truth)
        assert p > 0.7
        assert r > 0.8

    def test_estimate_since(self, small_object_stream):
        stream = small_object_stream
        sketch = BitpSampleHeavyHitter(k=5_000, seed=1)
        feed_log_stream(sketch, stream)
        since = float(stream.timestamps[5_000])
        window_keys = stream.keys[5_000:]
        counts = np.bincount(window_keys)
        top = int(np.argmax(counts))
        estimate = sketch.estimate_since(top, since)
        assert abs(estimate - counts[top]) < 0.3 * counts[top] + 20

    def test_peak_memory_exposed(self, small_object_stream):
        sketch = BitpSampleHeavyHitter(k=500, seed=0)
        feed_log_stream(sketch, small_object_stream)
        assert sketch.peak_memory_bytes >= sketch.memory_bytes()

    def test_phi_validated(self):
        sketch = BitpSampleHeavyHitter(k=10, seed=0)
        with pytest.raises(ValueError):
            sketch.heavy_hitters_since(0.0, 1.5)


class TestBitpTreeMisraGries:
    def test_recall_guaranteed(self, small_object_stream):
        stream = small_object_stream
        sketch = BitpTreeMisraGries(eps=0.002, block_size=64)
        feed_log_stream(sketch, stream)
        times = query_schedule(stream)[:4]
        truth = exact_suffix_heavy_hitters(stream, times, PHI)
        reported = [sketch.heavy_hitters_since(t, PHI) for t in times]
        _, r = average_accuracy(reported, truth)
        assert r == 1.0

    def test_precision_reasonable_when_eps_below_phi(self, small_object_stream):
        stream = small_object_stream
        sketch = BitpTreeMisraGries(eps=0.002, block_size=64)
        feed_log_stream(sketch, stream)
        times = query_schedule(stream)[:4]
        truth = exact_suffix_heavy_hitters(stream, times, PHI)
        reported = [sketch.heavy_hitters_since(t, PHI) for t in times]
        p, _ = average_accuracy(reported, truth)
        assert p > 0.4

    def test_estimate_since(self, small_object_stream):
        stream = small_object_stream
        sketch = BitpTreeMisraGries(eps=0.005, block_size=64)
        feed_log_stream(sketch, stream)
        since = float(stream.timestamps[5_000])
        counts = np.bincount(stream.keys[5_000:])
        top = int(np.argmax(counts))
        estimate = sketch.estimate_since(top, since)
        window = len(stream) - 5_000
        assert abs(estimate - counts[top]) <= 0.01 * window + 64

    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            BitpTreeMisraGries(eps=0.0)

    def test_uses_more_memory_than_sampling(self, small_object_stream):
        # The paper's observation: TMG pays an extra 1/eps factor.
        stream = small_object_stream
        tmg = BitpTreeMisraGries(eps=0.002, block_size=64)
        sampling = BitpSampleHeavyHitter(k=1_000, seed=0)
        feed_log_stream(tmg, stream)
        feed_log_stream(sampling, stream)
        assert tmg.memory_bytes() > sampling.memory_bytes()
