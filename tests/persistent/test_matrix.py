"""Tests for the persistent matrix-covariance public API."""

import numpy as np
import pytest

from repro.evaluation import covariance_relative_error, feed_matrix_stream
from repro.persistent import (
    AttpNormSampling,
    AttpNormSamplingWR,
    AttpPersistentFrequentDirections,
    BitpFrequentDirections,
)
from repro.workloads import matrix_query_schedule


def exact_prefix_cov(stream, t):
    end = int(np.searchsorted(stream.timestamps, t, side="right"))
    prefix = stream.rows[:end]
    return prefix.T @ prefix


class TestAttpNormSampling:
    def test_error_small_at_all_query_times(self, small_matrix_stream):
        stream = small_matrix_stream
        ns = AttpNormSampling(k=150, dim=stream.dim, seed=0)
        feed_matrix_stream(ns, stream)
        for t in matrix_query_schedule(stream):
            exact = exact_prefix_cov(stream, t)
            err = covariance_relative_error(exact, ns.covariance_at(t))
            assert err < 0.3

    def test_unbiased_over_seeds(self, small_matrix_stream):
        stream = small_matrix_stream
        t = matrix_query_schedule(stream)[2]
        exact = exact_prefix_cov(stream, t)
        total = np.zeros_like(exact)
        runs = 30
        for seed in range(runs):
            ns = AttpNormSampling(k=50, dim=stream.dim, seed=seed)
            feed_matrix_stream(ns, stream)
            total += ns.covariance_at(t)
        mean = total / runs
        err = covariance_relative_error(exact, mean)
        assert err < 0.08

    def test_skips_zero_rows(self):
        ns = AttpNormSampling(k=5, dim=4, seed=0)
        ns.update(np.zeros(4), 0.0)
        assert ns.count == 0

    def test_rejects_wrong_shape(self):
        ns = AttpNormSampling(k=5, dim=4, seed=0)
        with pytest.raises(ValueError):
            ns.update(np.zeros(3), 0.0)

    def test_sketch_rows_gram_matches_covariance(self, small_matrix_stream):
        stream = small_matrix_stream
        ns = AttpNormSampling(k=50, dim=stream.dim, seed=1)
        feed_matrix_stream(ns, stream)
        t = matrix_query_schedule(stream)[1]
        b = ns.sketch_rows_at(t)
        assert np.allclose(b.T @ b, ns.covariance_at(t))

    def test_memory_counts_vectors(self, small_matrix_stream):
        stream = small_matrix_stream
        ns = AttpNormSampling(k=20, dim=stream.dim, seed=2)
        feed_matrix_stream(ns, stream)
        assert ns.memory_bytes() == ns.num_records() * (stream.dim * 8 + 28)


class TestAttpNormSamplingWR:
    def test_error_small_at_all_query_times(self, small_matrix_stream):
        stream = small_matrix_stream
        nswr = AttpNormSamplingWR(k=200, dim=stream.dim, seed=0)
        feed_matrix_stream(nswr, stream)
        for t in matrix_query_schedule(stream):
            exact = exact_prefix_cov(stream, t)
            err = covariance_relative_error(exact, nswr.covariance_at(t))
            assert err < 0.35

    def test_empty_query_returns_zero_rows(self):
        nswr = AttpNormSamplingWR(k=5, dim=4, seed=0)
        assert nswr.sketch_rows_at(0.0).shape == (0, 4)

    def test_memory_counts_vectors(self, small_matrix_stream):
        stream = small_matrix_stream
        nswr = AttpNormSamplingWR(k=20, dim=stream.dim, seed=2)
        feed_matrix_stream(nswr, stream)
        assert nswr.memory_bytes() == nswr.num_records() * (stream.dim * 8 + 16)


class TestAttpPfdApi:
    def test_is_the_core_implementation(self):
        from repro.core.pfd import PersistentFrequentDirections

        assert issubclass(
            AttpPersistentFrequentDirections, PersistentFrequentDirections
        )

    def test_beats_sampling_error_at_same_ell(self, small_matrix_stream):
        # Fig 13's qualitative finding: PFD gives the best error per memory.
        stream = small_matrix_stream
        pfd = AttpPersistentFrequentDirections(ell=10, dim=stream.dim)
        feed_matrix_stream(pfd, stream)
        t = matrix_query_schedule(stream)[-1]
        exact = exact_prefix_cov(stream, t)
        err = covariance_relative_error(exact, pfd.covariance_at(t))
        assert err < 0.2


class TestBitpFrequentDirections:
    def test_window_covariance(self, small_matrix_stream):
        stream = small_matrix_stream
        bfd = BitpFrequentDirections(ell=10, dim=stream.dim, eps_tree=0.1)
        feed_matrix_stream(bfd, stream)
        since = matrix_query_schedule(stream)[2]
        start = int(np.searchsorted(stream.timestamps, since, side="left"))
        window = stream.rows[start:]
        exact = window.T @ window
        frob_sq = float(np.trace(exact))
        err = float(np.linalg.norm(exact - bfd.covariance_since(since), 2))
        assert err <= frob_sq / 10 + 0.3 * frob_sq

    def test_rejects_wrong_shape(self):
        bfd = BitpFrequentDirections(ell=4, dim=10)
        with pytest.raises(ValueError):
            bfd.update(np.zeros(5), 0.0)

    def test_peak_memory_exposed(self, small_matrix_stream):
        bfd = BitpFrequentDirections(ell=6, dim=small_matrix_stream.dim)
        feed_matrix_stream(bfd, small_matrix_stream)
        assert bfd.peak_memory_bytes > 0
