"""Tests for the ATTP-mode merge-tree sketches (Theorem 5.1, ATTP side)."""

import numpy as np
import pytest

from repro.evaluation import (
    average_accuracy,
    exact_prefix_heavy_hitters,
    feed_log_stream,
)
from repro.persistent import (
    AttpChainMisraGries,
    AttpMergeTreeQuantiles,
    AttpTreeMisraGries,
)
from repro.workloads import query_schedule


class TestAttpTreeMisraGries:
    def test_recall_guaranteed(self, small_object_stream):
        stream = small_object_stream
        sketch = AttpTreeMisraGries(eps=0.002, block_size=64)
        feed_log_stream(sketch, stream)
        times = query_schedule(stream)
        truth = exact_prefix_heavy_hitters(stream, times, 0.01)
        reported = [sketch.heavy_hitters_at(t, 0.01) for t in times]
        _, recall = average_accuracy(reported, truth)
        assert recall == 1.0

    def test_estimates_track_prefix(self, small_object_stream):
        stream = small_object_stream
        sketch = AttpTreeMisraGries(eps=0.005, block_size=64)
        feed_log_stream(sketch, stream)
        counts = np.bincount(stream.keys[:5_000])
        top = int(np.argmax(counts))
        t = float(stream.timestamps[4_999])
        estimate = sketch.estimate_at(top, t)
        assert abs(estimate - counts[top]) <= 0.01 * 5_000 + 64

    def test_cmg_dominates_on_space(self, small_object_stream):
        # The Section 5 discussion: the tree pays an extra 1/eps factor that
        # chaining avoids.
        stream = small_object_stream
        tree = AttpTreeMisraGries(eps=0.002, block_size=64)
        cmg = AttpChainMisraGries(eps=0.002)
        feed_log_stream(tree, stream)
        feed_log_stream(cmg, stream)
        assert cmg.memory_bytes() < tree.memory_bytes()

    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            AttpTreeMisraGries(eps=1.5)


class TestAttpMergeTreeQuantiles:
    def test_prefix_quantiles(self):
        rng = np.random.default_rng(0)
        values = np.concatenate(
            [rng.normal(0, 1, size=5_000), rng.normal(5, 1, size=5_000)]
        )
        sketch = AttpMergeTreeQuantiles(k=128, eps_tree=0.05, block_size=64, seed=0)
        for index, value in enumerate(values):
            sketch.update(float(value), float(index))
        early = sketch.quantile_at(4_999.0, 0.5)
        late = sketch.quantile_at(9_999.0, 0.5)
        assert abs(early - 0.0) < 0.4
        assert abs(late - float(np.median(values))) < 0.5

    def test_cdf_at(self):
        sketch = AttpMergeTreeQuantiles(k=128, eps_tree=0.05, block_size=32, seed=1)
        for index in range(4_000):
            sketch.update(float(index), float(index))
        assert sketch.cdf_at(3_999.0, 1_999.0) == pytest.approx(0.5, abs=0.1)

    def test_memory_sublinear(self):
        small = AttpMergeTreeQuantiles(k=64, block_size=32, seed=2)
        large = AttpMergeTreeQuantiles(k=64, block_size=32, seed=2)
        for index in range(2_000):
            small.update(float(index % 100), float(index))
        for index in range(32_000):
            large.update(float(index % 100), float(index))
        assert large.memory_bytes() < 8 * small.memory_bytes()
