"""Tests for persistent approximate membership."""

import pytest

from repro.persistent import AttpBloomMembership, BitpBloomMembership


class TestAttpBloomMembership:
    def test_no_false_negatives_at_checkpoints(self):
        sketch = AttpBloomMembership(capacity=5_000, eps=0.05, seed=0)
        for index in range(5_000):
            sketch.update(index, float(index))
        # Query at now: everything inserted must be found.
        for key in range(0, 5_000, 97):
            assert sketch.contains_at(key, 4_999.0)

    def test_historical_negatives(self):
        sketch = AttpBloomMembership(capacity=5_000, fp_rate=0.001, eps=0.05, seed=1)
        for index in range(5_000):
            sketch.update(index, float(index))
        # Key 4000 was inserted at t=4000; at t=2000 it should read False
        # (modulo the filter's false-positive rate — use several keys).
        false_reads = sum(
            1 for key in range(4_000, 4_100) if sketch.contains_at(key, 2_000.0)
        )
        assert false_reads < 10

    def test_staleness_bounded(self):
        sketch = AttpBloomMembership(capacity=1_000, eps=0.1, seed=2)
        for index in range(1_000):
            sketch.update(index, float(index))
        # A key inserted long before t is always visible at t.
        assert sketch.contains_at(100, 500.0)
        # Keys inserted within the eps-staleness window may be missed;
        # both outcomes are acceptable — just must not crash.
        sketch.contains_at(499, 499.0)

    def test_before_stream_is_false(self):
        sketch = AttpBloomMembership(capacity=100, seed=0)
        sketch.update(1, 10.0)
        assert not sketch.contains_at(1, 5.0)

    def test_memory_sublinear_in_queries(self):
        sketch = AttpBloomMembership(capacity=10_000, eps=0.1, seed=3)
        for index in range(10_000):
            sketch.update(index, float(index))
        # O((1/eps) log n) checkpoints of a fixed-size filter.
        raw = 10_000 * 12
        assert sketch.memory_bytes() < 40 * raw  # sanity ceiling
        assert sketch._chain.num_checkpoints() < 150


class TestBitpBloomMembership:
    def test_window_membership(self):
        sketch = BitpBloomMembership(
            capacity_per_block=20_000, block_size=128, seed=0
        )
        for index in range(10_000):
            sketch.update(index, float(index))
        # Recent keys are in recent windows.
        assert sketch.contains_since(9_990, 9_900.0)
        # Old keys are not in a recent window (fp rate aside; vote over many).
        false_reads = sum(
            1 for key in range(0, 100) if sketch.contains_since(key, 9_000.0)
        )
        assert false_reads < 20

    def test_full_window_contains_everything(self):
        sketch = BitpBloomMembership(
            capacity_per_block=10_000, block_size=64, seed=1
        )
        for index in range(3_000):
            sketch.update(index, float(index))
        hits = sum(1 for key in range(0, 3_000, 53) if sketch.contains_since(key, 0.0))
        # The eps cover slack may drop the very oldest blocks.
        assert hits > 0.85 * len(range(0, 3_000, 53))

    def test_peak_memory_exposed(self):
        sketch = BitpBloomMembership(block_size=32, seed=2)
        for index in range(500):
            sketch.update(index, float(index))
        assert sketch.peak_memory_bytes > 0
