"""Tests for the dyadic Chain CountMin heavy-hitter structure."""

import numpy as np
import pytest

from repro.evaluation import (
    average_accuracy,
    exact_prefix_heavy_hitters,
    feed_log_stream,
)
from repro.persistent import AttpChainMisraGries, AttpDyadicChainCountMin
from repro.workloads import object_id_stream, query_schedule


@pytest.fixture(scope="module")
def fed_sketch():
    stream = object_id_stream(n=6_000, universe=1_500, ratio=300.0, seed=4)
    # eps_ckpt well below phi: the chain's underestimate (eps_ckpt * W) is
    # what turns near-threshold hitters into false negatives.
    sketch = AttpDyadicChainCountMin(universe_bits=11, eps=0.003, eps_ckpt=0.001, seed=0)
    feed_log_stream(sketch, stream)
    return stream, sketch


class TestAttpDyadicChainCountMin:
    def test_enumerates_heavy_hitters_without_candidates(self, fed_sketch):
        stream, sketch = fed_sketch
        phi = 0.01
        times = query_schedule(stream)
        truth = exact_prefix_heavy_hitters(stream, times, phi)
        reported = [sketch.heavy_hitters_at(t, phi) for t in times]
        precision, recall = average_accuracy(reported, truth)
        assert precision > 0.7
        assert recall > 0.8

    def test_point_estimates(self, fed_sketch):
        stream, sketch = fed_sketch
        t_index = 2_999
        counts = np.bincount(stream.keys[: t_index + 1])
        top = int(np.argmax(counts))
        estimate = sketch.estimate_at(top, float(stream.timestamps[t_index]))
        assert abs(estimate - counts[top]) < 0.05 * (t_index + 1)

    def test_interval_estimates(self, fed_sketch):
        stream, sketch = fed_sketch
        counts_q1 = np.bincount(stream.keys[:1_500], minlength=1_500)
        counts_q3 = np.bincount(stream.keys[:4_500], minlength=1_500)
        top = int(np.argmax(counts_q3))
        truth = counts_q3[top] - counts_q1[top]
        estimate = sketch.estimate_between(
            top, float(stream.timestamps[1_499]), float(stream.timestamps[4_499])
        )
        assert abs(estimate - truth) < 0.05 * 6_000

    def test_more_expensive_than_cmg(self, fed_sketch):
        # The dyadic stack costs a log-universe factor over CMG — the reason
        # the paper's evaluation leads with CMG.
        stream, sketch = fed_sketch
        cmg = AttpChainMisraGries(eps=0.003)
        feed_log_stream(cmg, stream)
        assert sketch.memory_bytes() > cmg.memory_bytes()

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            AttpDyadicChainCountMin(universe_bits=0)
        with pytest.raises(ValueError):
            AttpDyadicChainCountMin(universe_bits=4, eps=0.0)
        sketch = AttpDyadicChainCountMin(universe_bits=4)
        with pytest.raises(ValueError):
            sketch.update(16, 0.0)
        sketch.update(3, 1.0)
        with pytest.raises(ValueError):
            sketch.heavy_hitters_at(1.0, 0.0)

    def test_empty_prefix_reports_nothing(self):
        sketch = AttpDyadicChainCountMin(universe_bits=4)
        sketch.update(1, 10.0)
        assert sketch.heavy_hitters_at(5.0, 0.5) == []
