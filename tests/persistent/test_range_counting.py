"""Tests for ATTP approximate range counting."""

import numpy as np
import pytest

from repro.persistent import AttpRangeCounting, AttpWeightedRangeCounting


def uniform_points(n, dim, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0, 1, size=(n, dim))


class TestAttpRangeCounting:
    def test_range_counts_accurate(self):
        points = uniform_points(10_000, 2, seed=0)
        arc = AttpRangeCounting(k=3_000, dim=2, seed=0)
        for index, point in enumerate(points):
            arc.update(point, float(index))
        t = 9_999.0
        lo, hi = [0.2, 0.2], [0.6, 0.6]
        estimate = arc.range_count_at(t, lo, hi)
        truth = int(np.sum(np.all((points >= 0.2) & (points <= 0.6), axis=1)))
        assert abs(estimate - truth) < 0.05 * len(points)

    def test_historical_range_counts(self):
        points = uniform_points(8_000, 2, seed=1)
        arc = AttpRangeCounting(k=3_000, dim=2, seed=1)
        for index, point in enumerate(points):
            arc.update(point, float(index))
        t = 3_999.0
        prefix = points[:4_000]
        lo, hi = [0.0, 0.0], [0.5, 1.0]
        estimate = arc.range_count_at(t, lo, hi)
        truth = int(np.sum(np.all((prefix >= lo) & (prefix <= hi), axis=1)))
        assert abs(estimate - truth) < 0.06 * len(prefix)

    def test_fraction_in_unit_box_is_one(self):
        points = uniform_points(500, 3, seed=2)
        arc = AttpRangeCounting(k=200, dim=3, seed=2)
        for index, point in enumerate(points):
            arc.update(point, float(index))
        assert arc.range_fraction_at(499.0, [0, 0, 0], [1, 1, 1]) == 1.0

    def test_rejects_empty_range(self):
        arc = AttpRangeCounting(k=10, dim=1, seed=0)
        arc.update([0.5], 0.0)
        with pytest.raises(ValueError):
            arc.range_count_at(0.0, [0.9], [0.1])

    def test_rejects_wrong_dim(self):
        arc = AttpRangeCounting(k=10, dim=2, seed=0)
        with pytest.raises(ValueError):
            arc.update([0.5], 0.0)

    def test_empty_prefix_counts_zero(self):
        arc = AttpRangeCounting(k=10, dim=1, seed=0)
        arc.update([0.5], 10.0)
        assert arc.range_count_at(5.0, [0.0], [1.0]) == 0.0


class TestAttpWeightedRangeCounting:
    def test_weighted_range_estimate(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 1, size=(5_000, 1))
        weights = 1.0 + rng.integers(0, 10, size=5_000).astype(float)
        estimates = []
        truth = float(np.sum(weights[(points[:, 0] < 0.5)]))
        for seed in range(30):
            arc = AttpWeightedRangeCounting(k=800, dim=1, seed=seed)
            for index in range(len(points)):
                arc.update(points[index], float(index), weights[index])
            estimates.append(arc.range_weight_at(4_999.0, [0.0], [0.5]))
        assert abs(np.mean(estimates) - truth) < 0.08 * truth

    def test_historical_weighted_estimate(self):
        arc = AttpWeightedRangeCounting(k=500, dim=1, seed=0)
        for index in range(2_000):
            arc.update([index / 2_000.0], float(index), 2.0)
        # At t=999 the prefix is points 0..999, all in [0, 0.5].
        estimate = arc.range_weight_at(999.0, [0.0], [0.5])
        assert abs(estimate - 2_000.0) < 300.0

    def test_rejects_empty_range(self):
        arc = AttpWeightedRangeCounting(k=10, dim=1, seed=0)
        arc.update([0.5], 0.0, 1.0)
        with pytest.raises(ValueError):
            arc.range_weight_at(0.0, [1.0], [0.0])
