"""Cross-sketch consistency: independent implementations must agree.

Different persistence mechanisms answering the same question (sampling vs
chaining vs merge tree vs dyadic linear sketches) should agree on everything
that is clearly inside their error budgets.  Divergence flags a bug in one
of them even when each passes its own error-bound tests.
"""

import numpy as np
import pytest

from repro.evaluation import feed_log_stream, feed_matrix_stream
from repro.persistent import (
    AttpChainMisraGries,
    AttpDyadicChainCountMin,
    AttpMergeTreeQuantiles,
    AttpNormSampling,
    AttpPersistentFrequentDirections,
    AttpSampleHeavyHitter,
    AttpSampleQuantiles,
    AttpTreeMisraGries,
)
from repro.workloads import generate_matrix_stream, object_id_stream, query_schedule


@pytest.fixture(scope="module")
def hh_stream():
    return object_id_stream(n=10_000, universe=1_000, ratio=200.0, seed=6)


@pytest.fixture(scope="module")
def hh_sketches(hh_stream):
    sketches = {
        "cmg": AttpChainMisraGries(eps=0.002),
        "tree": AttpTreeMisraGries(eps=0.002, block_size=64),
        "sampling": AttpSampleHeavyHitter(k=6_000, seed=2),
        "dyadic": AttpDyadicChainCountMin(
            universe_bits=10, eps=0.002, eps_ckpt=0.001, seed=0
        ),
    }
    for sketch in sketches.values():
        feed_log_stream(sketch, hh_stream)
    return sketches


class TestHeavyHitterConsensus:
    def test_all_four_find_clear_hitters(self, hh_stream, hh_sketches):
        phi = 0.02
        for t in query_schedule(hh_stream)[1:]:
            n_t = int(np.searchsorted(hh_stream.timestamps, t, side="right"))
            counts = np.bincount(hh_stream.keys[:n_t])
            clear = {
                int(k) for k in np.flatnonzero(counts >= 1.5 * phi * n_t)
            }
            if not clear:
                continue
            assert clear <= set(hh_sketches["cmg"].heavy_hitters_at(t, phi))
            assert clear <= set(hh_sketches["tree"].heavy_hitters_at(t, phi))
            assert clear <= set(hh_sketches["dyadic"].heavy_hitters_at(t, phi))
            sampled = set(hh_sketches["sampling"].heavy_hitters_at(t, phi))
            assert len(clear & sampled) >= 0.8 * len(clear)

    def test_point_estimates_agree_on_top_key(self, hh_stream, hh_sketches):
        t = query_schedule(hh_stream)[2]
        n_t = int(np.searchsorted(hh_stream.timestamps, t, side="right"))
        counts = np.bincount(hh_stream.keys[:n_t])
        top = int(np.argmax(counts))
        estimates = {
            "cmg": hh_sketches["cmg"].estimate_at(top, t),
            "tree": hh_sketches["tree"].estimate_at(top, t),
            "dyadic": hh_sketches["dyadic"].estimate_at(top, t),
            "sampling": hh_sketches["sampling"].estimate_at(top, t),
        }
        for name, estimate in estimates.items():
            assert abs(estimate - counts[top]) < 0.05 * n_t, name


class TestQuantileConsensus:
    def test_sample_and_tree_medians_agree(self):
        rng = np.random.default_rng(3)
        values = rng.normal(10.0, 3.0, size=12_000)
        sample = AttpSampleQuantiles(k=4_000, seed=4)
        tree = AttpMergeTreeQuantiles(k=200, eps_tree=0.05, block_size=64, seed=5)
        for index, value in enumerate(values):
            sample.update(float(value), float(index))
            tree.update(float(value), float(index))
        for t in (3_000.0, 11_999.0):
            a = sample.quantile_at(t, 0.5)
            b = tree.quantile_at(t, 0.5)
            assert abs(a - b) < 0.5


class TestMatrixConsensus:
    def test_pfd_and_ns_agree_on_top_direction(self):
        stream = generate_matrix_stream(n=1_500, dim=40, seed=7)
        pfd = AttpPersistentFrequentDirections(ell=10, dim=40)
        ns = AttpNormSampling(k=150, dim=40, seed=8)
        feed_matrix_stream(pfd, stream)
        feed_matrix_stream(ns, stream)
        t = float(stream.timestamps[-1])
        top_pfd = np.linalg.eigh(pfd.covariance_at(t))[1][:, -1]
        top_ns = np.linalg.eigh(ns.covariance_at(t))[1][:, -1]
        # Same leading direction up to sign.
        assert abs(float(top_pfd @ top_ns)) > 0.9
