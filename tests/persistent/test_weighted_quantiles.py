"""Tests for ATTP weighted quantiles (Theorem 3.3)."""

import numpy as np
import pytest

from repro.persistent import AttpWeightedQuantiles


class TestAttpWeightedQuantiles:
    def test_unit_weights_match_plain_quantiles(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 100, size=5_000)
        # NB: the sampler seed must differ from the value-generator seed, or
        # the sampler's uniforms coincide with the (scaled) values and the
        # sample becomes value-correlated.
        sketch = AttpWeightedQuantiles(k=1_500, seed=777)
        for index, value in enumerate(values):
            sketch.update(float(value), float(index), weight=1.0)
        t = float(len(values) - 1)
        median = sketch.quantile_at(t, 0.5)
        assert abs(median - float(np.median(values))) < 6.0

    def test_weights_shift_the_quantile(self):
        # Values 0..99, weight 9 on values < 50 and 1 on the rest: the
        # weighted median sits inside the heavy half.
        sketch = AttpWeightedQuantiles(k=2_000, seed=1)
        t = 0.0
        rng = np.random.default_rng(1)
        for _ in range(5_000):
            value = float(rng.integers(0, 100))
            weight = 9.0 if value < 50 else 1.0
            sketch.update(value, t, weight)
            t += 1.0
        median = sketch.quantile_at(t, 0.5)
        assert median < 50

    def test_historical_weighted_quantiles(self):
        sketch = AttpWeightedQuantiles(k=2_000, seed=2)
        # first half: values near 0; second half: values near 100
        for index in range(4_000):
            value = 0.0 + index % 10 if index < 2_000 else 100.0 + index % 10
            sketch.update(float(value), float(index), weight=1.0)
        early_median = sketch.quantile_at(1_999.0, 0.5)
        late_median = sketch.quantile_at(3_999.0, 0.5)
        assert early_median < 20
        assert late_median > 20

    def test_weighted_cdf(self):
        sketch = AttpWeightedQuantiles(k=1_000, seed=3)
        for index in range(2_000):
            sketch.update(float(index % 100), float(index), weight=1.0)
        cdf = sketch.weighted_cdf_at(1_999.0, 49.0)
        assert abs(cdf - 0.5) < 0.1

    def test_empty_query_raises(self):
        sketch = AttpWeightedQuantiles(k=10, seed=0)
        sketch.update(1.0, 10.0)
        with pytest.raises(ValueError):
            sketch.quantile_at(5.0, 0.5)
        with pytest.raises(ValueError):
            sketch.weighted_cdf_at(5.0, 1.0)

    def test_phi_validated(self):
        sketch = AttpWeightedQuantiles(k=10, seed=0)
        sketch.update(1.0, 0.0)
        with pytest.raises(ValueError):
            sketch.quantile_at(0.0, -0.1)
