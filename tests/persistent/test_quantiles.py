"""Tests for persistent quantile summaries."""

import numpy as np
import pytest

from repro.persistent import AttpChainKll, AttpSampleQuantiles, BitpMergeTreeQuantiles


def drifting_values(n=20_000, seed=0):
    rng = np.random.default_rng(seed)
    return np.concatenate(
        [rng.normal(0, 1, size=n // 2), rng.normal(4, 1, size=n - n // 2)]
    )


class TestAttpSampleQuantiles:
    def test_median_tracks_prefix(self):
        values = drifting_values()
        sketch = AttpSampleQuantiles(k=3_000, seed=0)
        for index, value in enumerate(values):
            sketch.update(float(value), float(index))
        early = sketch.quantile_at(9_999.0, 0.5)
        late = sketch.quantile_at(19_999.0, 0.5)
        assert abs(early - 0.0) < 0.2
        assert abs(late - float(np.median(values))) < 0.25

    def test_cdf_at(self):
        values = np.arange(1_000, dtype=float)
        sketch = AttpSampleQuantiles(k=500, seed=1)
        for index, value in enumerate(values):
            sketch.update(value, float(index))
        assert sketch.cdf_at(999.0, 499.0) == pytest.approx(0.5, abs=0.08)

    def test_rejects_bad_phi(self):
        sketch = AttpSampleQuantiles(k=10, seed=0)
        sketch.update(1.0, 0.0)
        with pytest.raises(ValueError):
            sketch.quantile_at(0.0, 1.5)

    def test_empty_query_raises(self):
        sketch = AttpSampleQuantiles(k=10, seed=0)
        sketch.update(1.0, 10.0)
        with pytest.raises(ValueError):
            sketch.quantile_at(5.0, 0.5)


class TestAttpChainKll:
    def test_median_tracks_prefix(self):
        values = drifting_values(seed=1)
        sketch = AttpChainKll(k=200, eps_ckpt=0.02, seed=0)
        for index, value in enumerate(values):
            sketch.update(float(value), float(index))
        early = sketch.quantile_at(9_999.0, 0.5)
        assert abs(early - 0.0) < 0.3

    def test_cdf_at(self):
        sketch = AttpChainKll(k=200, eps_ckpt=0.05, seed=0)
        for index in range(2_000):
            sketch.update(float(index), float(index))
        assert sketch.cdf_at(1_999.0, 999.0) == pytest.approx(0.5, abs=0.08)

    def test_query_before_first_raises(self):
        sketch = AttpChainKll(k=100, seed=0)
        sketch.update(1.0, 10.0)
        with pytest.raises(ValueError):
            sketch.quantile_at(5.0, 0.5)

    def test_memory_smaller_than_sample_at_high_accuracy(self):
        values = drifting_values(n=30_000, seed=2)
        chain = AttpChainKll(k=400, eps_ckpt=0.05, seed=0)
        sample = AttpSampleQuantiles(k=30_000, seed=0)
        for index, value in enumerate(values):
            chain.update(float(value), float(index))
            sample.update(float(value), float(index))
        assert chain.memory_bytes() < sample.memory_bytes()


class TestBitpMergeTreeQuantiles:
    def test_window_median_sees_regime_change(self):
        values = drifting_values(seed=3)
        sketch = BitpMergeTreeQuantiles(k=128, eps_tree=0.05, block_size=64, seed=0)
        for index, value in enumerate(values):
            sketch.update(float(value), float(index))
        recent = sketch.quantile_since(15_000.0, 0.5)
        assert abs(recent - 4.0) < 0.4  # the recent window is all regime 2

    def test_cdf_since(self):
        sketch = BitpMergeTreeQuantiles(k=128, eps_tree=0.05, block_size=32, seed=0)
        for index in range(4_000):
            sketch.update(float(index), float(index))
        assert sketch.cdf_since(2_000.0, 3_000.0) == pytest.approx(0.5, abs=0.1)

    def test_peak_memory_exposed(self):
        sketch = BitpMergeTreeQuantiles(k=64, block_size=32, seed=0)
        for index in range(1_000):
            sketch.update(float(index), float(index))
        assert sketch.peak_memory_bytes > 0
