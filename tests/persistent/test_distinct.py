"""Tests for the persistent distinct-count sketches."""

import numpy as np
import pytest

from repro.persistent import AttpKmvDistinct, BitpHllDistinct


class TestAttpKmvDistinct:
    def test_exact_below_k(self):
        kmv = AttpKmvDistinct(k=64, seed=0)
        for index in range(30):
            kmv.update(index, float(index))
        assert kmv.distinct_at(29.0) == 30.0
        assert kmv.distinct_now() == 30.0

    def test_estimate_within_error(self):
        kmv = AttpKmvDistinct(k=512, seed=1)
        for index in range(20_000):
            kmv.update(index, float(index))
        estimate = kmv.distinct_now()
        assert abs(estimate - 20_000) < 0.15 * 20_000

    def test_historical_estimates(self):
        kmv = AttpKmvDistinct(k=256, seed=2)
        for index in range(10_000):
            kmv.update(index, float(index))
        for t_index in (999, 4_999, 9_999):
            estimate = kmv.distinct_at(float(t_index))
            truth = t_index + 1
            assert abs(estimate - truth) < 0.25 * truth

    def test_duplicates_ignored(self):
        kmv = AttpKmvDistinct(k=128, seed=3)
        for repetition in range(10):
            for key in range(2_000):
                kmv.update(key, float(repetition * 2_000 + key))
        estimate = kmv.distinct_now()
        assert abs(estimate - 2_000) < 0.3 * 2_000

    def test_historical_sees_fewer_distinct(self):
        kmv = AttpKmvDistinct(k=128, seed=4)
        # first half repeats 100 keys, second half brings 5000 new ones
        t = 0
        for repetition in range(50):
            for key in range(100):
                kmv.update(key, float(t))
                t += 1
        for key in range(100, 5_100):
            kmv.update(key, float(t))
            t += 1
        early = kmv.distinct_at(4_999.0)
        late = kmv.distinct_now()
        assert abs(early - 100) < 30
        assert late > 10 * early

    def test_dedup_state_bounded_by_k(self):
        kmv = AttpKmvDistinct(k=32, seed=5)
        for index in range(50_000):
            kmv.update(index, float(index))
        assert len(kmv._alive_units) <= 32
        # Records grow like k log(D/k), far below D.
        assert kmv.num_records() < 32 * (1 + np.log(50_000 / 32)) * 4

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            AttpKmvDistinct(k=1)

    def test_memory_model(self):
        kmv = AttpKmvDistinct(k=16, seed=0)
        for index in range(100):
            kmv.update(index, float(index))
        expected = kmv.num_records() * 24 + len(kmv._alive_units) * 8
        assert kmv.memory_bytes() == expected


class TestBitpHllDistinct:
    def test_window_distinct_counts(self):
        sketch = BitpHllDistinct(p=12, block_size=128, seed=0)
        # keys rotate: window of size w contains ~min(w, 3000) distinct keys
        for index in range(30_000):
            sketch.update(index % 3_000, float(index))
        full = sketch.distinct_since(0.0)
        assert abs(full - 3_000) < 0.2 * 3_000
        recent = sketch.distinct_since(29_500.0)
        assert abs(recent - 500) < 0.35 * 500

    def test_regime_change_visible(self):
        sketch = BitpHllDistinct(p=12, block_size=64, seed=1)
        for index in range(5_000):
            sketch.update(index % 10, float(index))  # low cardinality
        for index in range(5_000, 10_000):
            sketch.update(index, float(index))  # high cardinality
        old_window = sketch.distinct_since(0.0)
        recent = sketch.distinct_since(9_000.0)
        assert recent > 500
        assert old_window > recent  # total includes both regimes

    def test_memory_sublinear(self):
        small = BitpHllDistinct(p=8, block_size=64, seed=2)
        for index in range(2_000):
            small.update(index, float(index))
        large = BitpHllDistinct(p=8, block_size=64, seed=2)
        for index in range(32_000):
            large.update(index, float(index))
        assert large.memory_bytes() < 8 * small.memory_bytes()
