"""Tests for the ATTP KDE coreset."""

import numpy as np
import pytest

from repro.persistent import AttpKdeCoreset, gaussian_kernel, laplace_kernel


def mixture_points(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal([-2, 0], 0.5, size=(n // 2, 2))
    b = rng.normal([+2, 0], 0.5, size=(n - n // 2, 2))
    return np.vstack([a, b])


def exact_kde(points, x, kernel):
    return sum(kernel(x, p) for p in points) / len(points)


class TestKernels:
    def test_gaussian_peak_at_center(self):
        k = gaussian_kernel(1.0)
        assert k(np.zeros(2), np.zeros(2)) == 1.0
        assert k(np.zeros(2), np.ones(2)) < 1.0

    def test_laplace_peak_at_center(self):
        k = laplace_kernel(1.0)
        assert k(np.zeros(2), np.zeros(2)) == 1.0
        assert 0 < k(np.zeros(2), np.array([3.0, 0.0])) < 0.1

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            gaussian_kernel(0.0)
        with pytest.raises(ValueError):
            laplace_kernel(-1.0)


class TestAttpKdeCoreset:
    def test_kde_estimate_close_to_exact(self):
        points = mixture_points(4_000, seed=0)
        kde = AttpKdeCoreset(k=1_000, dim=2, kernel=gaussian_kernel(0.8), seed=0)
        for index, point in enumerate(points):
            kde.update(point, float(index))
        t = float(len(points) - 1)
        for x in ([-2.0, 0.0], [0.0, 0.0], [2.0, 0.0]):
            estimate = kde.kde_at(t, x)
            truth = exact_kde(points, np.asarray(x), gaussian_kernel(0.8))
            assert abs(estimate - truth) < 0.05

    def test_historical_kde_sees_only_first_mode(self):
        points = mixture_points(4_000, seed=1)  # first half is the -2 mode
        kde = AttpKdeCoreset(k=1_000, dim=2, kernel=gaussian_kernel(0.8), seed=1)
        for index, point in enumerate(points):
            kde.update(point, float(index))
        t_half = 1_999.0
        left = kde.kde_at(t_half, [-2.0, 0.0])
        right = kde.kde_at(t_half, [2.0, 0.0])
        assert left > 5 * right  # the +2 mode has not arrived yet

    def test_default_kernel_is_gaussian(self):
        kde = AttpKdeCoreset(k=10, dim=1, seed=0)
        kde.update([0.0], 0.0)
        assert kde.kde_at(0.0, [0.0]) == 1.0

    def test_coreset_at_returns_points(self):
        kde = AttpKdeCoreset(k=5, dim=1, seed=0)
        for index in range(100):
            kde.update([float(index)], float(index))
        coreset = kde.coreset_at(50.0)
        assert len(coreset) == 5
        assert all(point[0] <= 50.0 for point in coreset)

    def test_rejects_wrong_shapes(self):
        kde = AttpKdeCoreset(k=5, dim=2, seed=0)
        with pytest.raises(ValueError):
            kde.update([1.0], 0.0)
        kde.update([1.0, 2.0], 0.0)
        with pytest.raises(ValueError):
            kde.kde_at(0.0, [1.0])

    def test_empty_prefix_density_zero(self):
        kde = AttpKdeCoreset(k=5, dim=1, seed=0)
        kde.update([1.0], 10.0)
        assert kde.kde_at(5.0, [1.0]) == 0.0
