"""End-to-end request traces through the live sharded service.

One ingest call must yield ONE connected trace — producer staging, the
per-shard enqueues, the measured queue waits, and the worker-thread batch
applies all share a ``trace_id`` and resolve their parent links inside it,
even though the applies happen on different threads.  Queries likewise trace
fan-out, per-shard calls, combine, and cache status.  Also covers the
``service_queue_wait_seconds`` histogram fed from queued-entry timestamps
and the cache hit/miss counters under concurrent queries (the miss counter
used to be bumped outside the cache lock and lost updates).
"""

import threading

import pytest

from repro.core import ChainMisraGries
from repro.service import QueryCoordinator, ShardedSketchService
from repro.telemetry.export import load_traces_jsonl, write_traces_jsonl
from repro.telemetry.registry import TELEMETRY
from repro.telemetry.spans import SPANS


def mg_factory():
    return ChainMisraGries(eps=0.01)


@pytest.fixture()
def enabled_telemetry():
    TELEMETRY.registry.reset()
    SPANS.clear()
    TELEMETRY.enable()
    yield
    TELEMETRY.disable()
    TELEMETRY.registry.reset()
    SPANS.clear()


def spans_named(name):
    return [record for record in SPANS.snapshot() if record.name == name]


class TestIngestTrace:
    def test_one_ingest_is_one_connected_trace(self, enabled_telemetry):
        with ShardedSketchService(
            mg_factory, num_shards=2, partition="round_robin"
        ) as service:
            service.ingest_batch(list(range(8)), list(range(8)))
            assert service.drain(timeout=10)
        (root,) = spans_named("service.ingest_batch")
        trace = SPANS.trace(root.trace_id)
        names = sorted(record.name for record in trace)
        # both shards enqueue, wait, and apply inside the same trace
        assert names.count("service.enqueue") == 2
        assert names.count("service.queue_wait") == 2
        assert names.count("service.apply_batch") == 2
        # every parent link resolves within the trace
        ids = {record.span_id for record in trace}
        for record in trace:
            if record.parent_id is not None:
                assert record.parent_id in ids
        assert root.parent_id is None
        assert root.attrs["items"] == 8

    def test_queue_wait_links_enqueue_to_apply(self, enabled_telemetry):
        with ShardedSketchService(mg_factory, num_shards=1) as service:
            service.ingest_batch([1, 2, 3], [1.0, 2.0, 3.0])
            assert service.drain(timeout=10)
        (enqueue,) = spans_named("service.enqueue")
        (wait,) = spans_named("service.queue_wait")
        (apply_span,) = spans_named("service.apply_batch")
        assert wait.trace_id == enqueue.trace_id == apply_span.trace_id
        assert wait.parent_id == enqueue.span_id
        assert apply_span.parent_id == enqueue.span_id
        assert wait.wall_seconds >= 0
        assert wait.attrs["shard"] == 0 and wait.attrs["items"] == 3

    def test_queue_wait_histogram_is_fed_per_shard(self, enabled_telemetry):
        with ShardedSketchService(
            mg_factory, num_shards=2, partition="round_robin"
        ) as service:
            service.ingest_batch(list(range(10)), list(range(10)))
            assert service.drain(timeout=10)
        for shard in ("0", "1"):
            child = TELEMETRY.histogram("service_queue_wait_seconds", shard=shard)
            assert child.count >= 1
            assert child.sum >= 0

    def test_staged_ingest_still_traces_the_flush(self, enabled_telemetry):
        with ShardedSketchService(
            mg_factory, num_shards=2, partition="round_robin",
            ingest_buffer_items=64
        ) as service:
            for t in range(4):
                service.ingest_batch([t], [float(t)])
            service.drain(timeout=10)
        roots = spans_named("service.ingest_batch")
        assert len(roots) == 4
        assert all(record.attrs.get("staged") for record in roots[:-1])
        assert spans_named("service.stage_flush")


class TestQueryTrace:
    def test_query_trace_spans_fanout_and_combine(self, enabled_telemetry):
        with ShardedSketchService(
            mg_factory, num_shards=3, partition="round_robin"
        ) as service:
            service.ingest_batch(list(range(9)), list(range(9)))
            assert service.drain(timeout=10)
            SPANS.clear()
            service.estimate_at(4, 8.0)
        (query,) = spans_named("service.query")
        calls = spans_named("service.shard_call")
        (combine,) = spans_named("service.combine")
        assert query.attrs["op"] == "estimate_at"
        assert query.attrs["cache"] == "miss"
        assert len(calls) == 3
        for call in calls:
            assert call.trace_id == query.trace_id
            assert call.parent_id == query.span_id
        assert combine.trace_id == query.trace_id
        assert combine.attrs["shards"] == 3

    def test_cache_hit_trace_has_no_shard_calls(self, enabled_telemetry):
        with ShardedSketchService(mg_factory, num_shards=2) as service:
            service.ingest_batch([1, 2], [1.0, 2.0])
            assert service.drain(timeout=10)
            service.estimate_at(1, 2.0)
            SPANS.clear()
            service.estimate_at(1, 2.0)
        (query,) = spans_named("service.query")
        assert query.attrs["cache"] == "hit"
        assert spans_named("service.shard_call") == []

    def test_wal_spans_join_the_ingest_trace(self, enabled_telemetry, tmp_path):
        with ShardedSketchService(
            mg_factory, num_shards=1, directory=tmp_path
        ) as service:
            service.ingest_batch([1, 2], [1.0, 2.0])
            assert service.flush(timeout=10)
        appends = spans_named("wal.append")
        assert appends
        (root,) = spans_named("service.ingest_batch")
        assert all(record.trace_id == root.trace_id for record in appends)


class TestTraceExportRoundTrip:
    def test_live_service_traces_survive_jsonl(self, enabled_telemetry, tmp_path):
        with ShardedSketchService(
            mg_factory, num_shards=2, partition="round_robin"
        ) as service:
            service.ingest_batch(list(range(6)), list(range(6)))
            assert service.drain(timeout=10)
            service.estimate_at(2, 5.0)
        path = write_traces_jsonl(tmp_path / "traces.jsonl")
        loaded = load_traces_jsonl(path)
        assert loaded == SPANS.snapshot()
        ingest_roots = [r for r in loaded if r.name == "service.ingest_batch"]
        query_roots = [r for r in loaded if r.name == "service.query"]
        assert len(ingest_roots) == 1 and len(query_roots) == 1
        # the two requests are distinct traces, each internally connected
        assert ingest_roots[0].trace_id != query_roots[0].trace_id
        for root in ingest_roots + query_roots:
            trace = [r for r in loaded if r.trace_id == root.trace_id]
            ids = {r.span_id for r in trace}
            assert all(
                r.parent_id is None or r.parent_id in ids for r in trace
            )


class _SlowSketch:
    """Query answers take long enough that misses overlap across threads."""

    def update_batch(self, values, timestamps, weights=None):
        pass

    def probe(self, token):
        import time

        time.sleep(0.002)
        return token


class TestCacheCountingUnderConcurrency:
    def test_hits_plus_misses_equals_queries(self):
        """The miss counter is bumped under the cache lock (it used to race)."""

        class _Worker:
            def __init__(self):
                self.sketch = _SlowSketch()
                self.lock = threading.RLock()

            def raise_if_failed(self):
                pass

            def query(self, method, args=(), kwargs=None, *,
                      want_details=False, post=None, timeout=None):
                with self.lock:
                    result = getattr(self.sketch, method)(*args, **(kwargs or {}))
                if post is not None:
                    result = post(result)
                return result, None

        coordinator = QueryCoordinator([_Worker()], watermark=lambda: 0,
                                       cache_size=256)
        threads, per_thread, distinct = 8, 200, 16
        barrier = threading.Barrier(threads)

        def run(index):
            barrier.wait()
            for step in range(per_thread):
                coordinator.query("probe", step % distinct, combine="list")

        workers = [
            threading.Thread(target=run, args=(index,)) for index in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        total = threads * per_thread
        assert coordinator.cache_hits + coordinator.cache_misses == total
        assert coordinator.cache_misses >= distinct
        info = coordinator.cache_info()
        assert info["hits"] == coordinator.cache_hits
        assert info["misses"] == coordinator.cache_misses
