"""Live introspection server: endpoints, health flips, metrics parity.

Exercises :meth:`ShardedSketchService.serve_introspection` over real HTTP
(stdlib ``urllib`` against the ephemeral port): ``/healthz`` answers 200
while the shards are healthy and 503 the moment one is poisoned, ``/metrics``
is byte-identical to :func:`repro.telemetry.export.prometheus_text`, and
``/spans`` / ``/traces/<id>`` serve whatever the span collector holds.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core import ChainMisraGries
from repro.service import ShardedSketchService, ShardFailedError
from repro.telemetry import export
from repro.telemetry.registry import TELEMETRY
from repro.telemetry.server import IntrospectionServer
from repro.telemetry.spans import SPANS, span


def mg_factory():
    return ChainMisraGries(eps=0.01)


@pytest.fixture()
def enabled_telemetry():
    TELEMETRY.registry.reset()
    SPANS.clear()
    TELEMETRY.enable()
    yield
    TELEMETRY.disable()
    TELEMETRY.registry.reset()
    SPANS.clear()


def get(url, timeout=10):
    """GET ``url``; returns ``(status, headers, body_bytes)`` even on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


class TestEndpoints:
    def test_healthz_200_then_503_after_poisoning(self, enabled_telemetry):
        with ShardedSketchService(mg_factory, num_shards=2) as service:
            with service.serve_introspection() as server:
                service.ingest_batch([1, 2], [5.0, 6.0])
                assert service.drain(timeout=10)
                status, _, body = get(server.url + "/healthz")
                assert status == 200
                payload = json.loads(body)
                assert payload["healthy"] is True
                assert payload["failed_shards"] == []
                assert payload["watermark"] == payload["acked_seqno"]

                # timestamps go backwards: monotone guard poisons a shard
                service.ingest_batch([3, 4], [1.0, 1.0])
                with pytest.raises(ShardFailedError):
                    service.drain(timeout=10)
                status, _, body = get(server.url + "/healthz")
                assert status == 503
                payload = json.loads(body)
                assert payload["healthy"] is False
                assert payload["failed_shards"]
            service.close(force=True)

    def test_metrics_matches_prometheus_text(self, enabled_telemetry):
        with ShardedSketchService(mg_factory, num_shards=2) as service:
            service.ingest_batch(list(range(20)), list(range(20)))
            assert service.drain(timeout=10)
            service.estimate_at(3, 10.0)
            with service.serve_introspection() as server:
                status, headers, body = get(server.url + "/metrics")
                assert status == 200
                assert headers["Content-Type"].startswith("text/plain")
                assert body.decode() == export.prometheus_text()
                assert "service_queue_wait_seconds" in body.decode()

    def test_report_endpoint_serves_text_report(self, enabled_telemetry):
        with ShardedSketchService(mg_factory, num_shards=2) as service:
            service.ingest_batch([1, 2, 3], [1.0, 2.0, 3.0])
            assert service.drain(timeout=10)
            with IntrospectionServer() as server:
                status, headers, body = get(server.url + "/report")
                assert status == 200
                assert headers["Content-Type"].startswith("text/plain")
                assert body.decode().strip()

    def test_spans_endpoint_counts_and_capacity(self, enabled_telemetry):
        with span("introspected", shard=1):
            pass
        with IntrospectionServer() as server:
            status, _, body = get(server.url + "/spans")
            assert status == 200
            payload = json.loads(body)
            assert payload["count"] == 1
            assert payload["dropped"] == 0
            assert payload["spans"][0]["name"] == "introspected"
            assert payload["spans"][0]["attrs"] == {"shard": 1}

    def test_traces_index_and_single_trace(self, enabled_telemetry):
        with span("request.a"):
            with span("request.a.child"):
                pass
        trace_id = SPANS.snapshot()[0].trace_id
        with IntrospectionServer() as server:
            status, _, body = get(server.url + "/traces")
            assert status == 200
            assert json.loads(body)["traces"] == [trace_id]
            status, _, body = get(server.url + f"/traces/{trace_id}")
            assert status == 200
            payload = json.loads(body)
            assert payload["trace_id"] == trace_id
            assert [record["name"] for record in payload["spans"]] == [
                "request.a.child",
                "request.a",
            ]

    def test_unknown_trace_is_404(self, enabled_telemetry):
        with IntrospectionServer() as server:
            status, _, _ = get(server.url + "/traces/deadbeef")
            assert status == 404

    def test_unknown_route_is_404_and_index_lists_endpoints(self):
        with IntrospectionServer() as server:
            status, _, _ = get(server.url + "/nope")
            assert status == 404
            status, _, body = get(server.url + "/")
            assert status == 200
            listed = json.loads(body)["endpoints"]
            for endpoint in ("/metrics", "/healthz", "/report", "/spans"):
                assert endpoint in listed


class TestServerLifecycle:
    def test_ephemeral_port_and_stop_idempotent(self):
        server = IntrospectionServer()
        server.start()
        assert server.port > 0
        assert server.url.endswith(str(server.port))
        server.start()  # second start is a no-op
        server.stop()
        server.stop()

    def test_custom_health_callable(self):
        state = {"ok": True}
        with IntrospectionServer(health=lambda: {"healthy": state["ok"]}) as server:
            assert get(server.url + "/healthz")[0] == 200
            state["ok"] = False
            assert get(server.url + "/healthz")[0] == 503

    def test_default_health_is_always_200(self):
        with IntrospectionServer() as server:
            status, _, body = get(server.url + "/healthz")
            assert status == 200
            assert json.loads(body)["healthy"] is True


class TestBindRetry:
    def test_occupied_port_falls_back_to_ephemeral(self):
        with IntrospectionServer() as first:
            taken = first.port
            with IntrospectionServer(port=taken) as second:
                assert second.requested_port == taken
                assert second.port != taken
                assert get(second.url + "/healthz")[0] == 200

    def test_other_bind_errors_still_raise(self):
        server = IntrospectionServer(host="198.51.100.255")  # unroutable
        with pytest.raises(OSError):
            server.start()


class GatedRebuildWrap:
    """Holds the supervisor's rebuild open so REBUILDING is observable."""

    def __init__(self):
        self.rebuilding = threading.Event()
        self.release = threading.Event()
        self._seen = set()

    def __call__(self, shard, sketch):
        if shard in self._seen:
            self.rebuilding.set()
            assert self.release.wait(timeout=30), "gate never released"
        self._seen.add(shard)
        return sketch


class TestRebuildingHealth:
    def test_healthz_503_while_shard_rebuilding(self, tmp_path):
        from repro.service import ChaosController, ChaosEvent

        gate = GatedRebuildWrap()
        controller = ChaosController(
            [
                ChaosEvent("kill", shard=0, at_items=1),
                ChaosEvent("kill", shard=1, at_items=1),
            ]
        )
        service = ShardedSketchService(
            mg_factory,
            num_shards=2,
            directory=tmp_path / "state",
            durable_options={"fsync_policy": "always"},
            supervise=True,
            supervisor_options={"backoff_base": 0.01, "poll_interval": 0.02},
            sketch_wrapper=lambda s, sk: gate(s, controller.wrap(s, sk)),
            block_timeout=10.0,
        )
        try:
            with service.serve_introspection() as server:
                service.ingest_batch([1, 2, 3, 4], [1.0, 2.0, 3.0, 4.0])
                assert gate.rebuilding.wait(timeout=20)
                status, _, body = get(server.url + "/healthz")
                assert status == 503
                payload = json.loads(body)
                assert "REBUILDING" in payload["shard_states"].values()
                gate.release.set()
                assert service.drain(timeout=30)
                status, _, body = get(server.url + "/healthz")
                assert status == 200
                assert json.loads(body)["healthy"] is True
        finally:
            service.close(force=True)
