"""Kill-point crash tests for the durably-configured sharded service.

The acceptance bar (ISSUE 4): killing a 4-shard durable service mid-ingest
and recovering it must reproduce the exact pre-crash answers at every acked
watermark.  The shard sketch here is ``ChainCountMin``, chosen because its
state is *batching-invariant* (the batch path is a scalar loop) and its ATTP
answers are *append-stable* (cell histories are append-only, so an answer at
time ``t`` never changes once recorded) — which makes "exact pre-crash
answers" directly checkable:

* during ingest, after every durable flush, we record the service's answers
  at past timestamps; after crash + recovery those answers must match
  exactly;
* after recovery, every shard's sketch must be state-identical to a
  never-crashed replay of the recovered prefix of that shard's sub-stream
  (the router is deterministic, so sub-streams are reconstructable
  offline);
* no durably-acknowledged item may be lost (``fsync_policy="always"``).

Kill points sweep every filesystem-op category of a traced clean run
(WAL appends/fsyncs, snapshot writes/renames/dirsyncs, manifest writes),
each in before/after (and torn, for writes) crash modes.  Marked ``crash``
for the CI service-stress job; also runs in the plain tier-1 suite.
"""

import time

import numpy as np
import pytest

from repro.core import ChainCountMin
from repro.durability import FaultPlan, FaultyFilesystem, SimulatedCrash, read_manifest
from repro.service import ShardFailedError, ShardRouter, ShardedSketchService

pytestmark = pytest.mark.crash

N_ITEMS = 4_000
UNIVERSE = 61
NUM_SHARDS = 4
SEED = 13
ARRIVAL_BATCH = 125
SNAPSHOT_EVERY = 600
SEGMENT_BYTES = 32 * 1024
PROBE_KEYS = tuple(range(0, UNIVERSE, 6))


def factory():
    return ChainCountMin(width=512, depth=3, eps_ckpt=0.002, seed=5)


def stream():
    keys = np.array([(i * i) % UNIVERSE for i in range(N_ITEMS)], dtype=np.int64)
    timestamps = np.arange(N_ITEMS, dtype=float)
    return keys, timestamps


def durable_options():
    return {
        "fsync_policy": "always",
        "snapshot_every": SNAPSHOT_EVERY,
        "segment_bytes": SEGMENT_BYTES,
    }


def build_service(directory, fs=None):
    return ShardedSketchService(
        factory,
        NUM_SHARDS,
        seed=SEED,
        directory=directory,
        fs=fs,
        durable_options=durable_options(),
    )


def shard_substreams():
    """Offline reconstruction of each shard's sub-stream (router is pure)."""
    keys, timestamps = stream()
    router = ShardRouter(NUM_SHARDS, mode="hash", seed=SEED)
    shards = router.shards_of(keys)
    return [
        (keys[shards == shard], timestamps[shards == shard])
        for shard in range(NUM_SHARDS)
    ]


def probe_answers(service, up_to_time):
    """Owner-routed estimates at past timestamps (append-stable answers)."""
    times = [up_to_time * f for f in (0.25, 0.5, 1.0)]
    return {
        (key, t): service.estimate_at(key, t) for key in PROBE_KEYS for t in times
    }


def settle_healthy_shards(service, timeout=30.0):
    """Wait until every non-failed shard has applied everything it acked."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        lagging = [
            worker
            for worker in service._workers
            if worker.failure is None and worker.applied_seqno < worker.acked_seqno
        ]
        if not lagging:
            return
        time.sleep(0.01)
    raise AssertionError("healthy shards did not settle")


def crashy_ingest(directory, fs):
    """Ingest under a fault plan.  Returns (constructed, flush_checkpoints,
    per-shard applied item counts); the SimulatedCrash, if any, has been
    absorbed into a poisoned shard or caught here."""
    keys, timestamps = stream()
    checkpoints = []
    try:
        service = build_service(directory, fs=fs)
    except SimulatedCrash:
        return False, checkpoints, None
    try:
        for start in range(0, N_ITEMS, ARRIVAL_BATCH):
            service.ingest_batch(
                keys[start : start + ARRIVAL_BATCH],
                timestamps[start : start + ARRIVAL_BATCH],
            )
            if (start // ARRIVAL_BATCH) % 8 == 7:
                if not service.flush(timeout=30):
                    break
                # everything flushed is durable: record answers at *past*
                # times, which ChainCountMin never revises
                checkpoints.append(probe_answers(service, float(start)))
    except (ShardFailedError, SimulatedCrash):
        pass
    settle_healthy_shards(service)
    applied = [worker.items_applied for worker in service._workers]
    # hard kill: stop worker threads but never close the stores (no final
    # snapshot, no WAL release) — recovery must work from WAL + snapshots
    for worker in service._workers:
        try:
            worker.stop()
        except Exception:
            pass
    applied = [worker.items_applied for worker in service._workers]
    return True, checkpoints, applied


def trace_ops(tmp_path):
    fs = FaultyFilesystem()
    constructed, _, _ = crashy_ingest(tmp_path / "trace", fs)
    assert constructed
    return fs.ops


def category(label):
    kind, _, name = label.partition(":")
    if name.startswith("wal-"):
        return f"{kind}:wal"
    if name.startswith("snapshot-"):
        return f"{kind}:snapshot"
    return kind


def kill_points(ops):
    by_category = {}
    for op in ops:
        by_category.setdefault(category(op.label), []).append(op.index)
    points = []
    for cat, indices in sorted(by_category.items()):
        chosen = sorted({indices[0], indices[len(indices) // 2], indices[-1]})
        writes = cat.startswith(("append", "write"))
        modes = ("before", "after", "torn") if writes else ("before", "after")
        for index in chosen[:2]:  # two points per category keeps the sweep fast
            for mode in modes:
                points.append(pytest.param(index, mode, id=f"{cat}-op{index}-{mode}"))
    return points


_OPS = None


def service_kill_points():
    global _OPS
    if _OPS is None:
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as scratch:
            _OPS = trace_ops(Path(scratch))
    return kill_points(_OPS)


def assert_recovered_matches_reference(directory, applied, checkpoints):
    recovered = ShardedSketchService.open(factory, directory, durable_options=durable_options())
    try:
        substreams = shard_substreams()
        for shard in range(NUM_SHARDS):
            sketch = recovered._workers[shard].sketch.sketch  # unwrap DurableSketch
            n_k = sketch.count
            sub_keys, sub_ts = substreams[shard]
            if applied is not None:
                # log-then-apply + fsync always: nothing applied is lost, and
                # at most what was logged-but-unapplied may additionally show
                assert applied[shard] <= n_k <= sub_keys.size
            # state-identical to a never-crashed replay of the same prefix
            reference = factory()
            reference.update_batch(sub_keys[:n_k], sub_ts[:n_k])
            assert np.array_equal(sketch._cm.counters(), reference._cm.counters())
            assert sketch.num_checkpoints() == reference.num_checkpoints()
            for key in PROBE_KEYS:
                for t in (N_ITEMS * 0.25, N_ITEMS * 0.9):
                    assert sketch.estimate_at(key, t) == reference.estimate_at(key, t)
        # every durably-acked watermark's recorded answers reproduce exactly
        for recorded in checkpoints:
            for (key, t), value in recorded.items():
                assert recovered.estimate_at(key, t) == value
    finally:
        recovered.close(force=True)


class TestShardedKillPointSweep:
    @pytest.mark.parametrize("crash_at,mode", service_kill_points())
    def test_recovery_reproduces_prefix(self, tmp_path, crash_at, mode):
        directory = tmp_path / "state"
        fs = FaultyFilesystem(FaultPlan(crash_at=crash_at, crash_mode=mode))
        constructed, checkpoints, applied = crashy_ingest(directory, fs)
        if not constructed or read_manifest(directory) is None:
            # crashed before the manifest landed: nothing durable exists yet
            return
        assert_recovered_matches_reference(directory, applied, checkpoints)


class TestRecoverAndContinue:
    def test_recovered_service_keeps_ingesting(self, tmp_path):
        directory = tmp_path / "state"
        # op 40 is early enough to exist in any run (queue fusing makes the
        # exact op count vary); "after" fires on every op kind
        fs = FaultyFilesystem(FaultPlan(crash_at=40, crash_mode="after"))
        constructed, checkpoints, applied = crashy_ingest(directory, fs)
        assert constructed and fs.crashed
        assert_recovered_matches_reference(directory, applied, checkpoints)
        resumed = ShardedSketchService.open(
            factory, directory, durable_options=durable_options()
        )
        with resumed:
            before = resumed.estimate_at(1, float(2 * N_ITEMS))
            extra = np.full(400, 1, dtype=np.int64)
            resumed.ingest_batch(extra, np.arange(N_ITEMS, N_ITEMS + 400, dtype=float))
            assert resumed.flush(timeout=30)
            after = resumed.estimate_at(1, float(2 * N_ITEMS))
            # cell histories record only on eps_ckpt * W growth, so the
            # estimate may lag the truth by that slack
            slack = 0.002 * (N_ITEMS + 400) + 1
            assert after >= before + 400 - slack


# -- crash *during* a supervisor rebuild (ISSUE 6) ---------------------------

REBUILD_KILL_AT = 500  # poison shard 1 (the largest sub-stream) mid-stream


def supervised_crashy_ingest(directory, fs):
    """Supervised ingest with a chaos kill on shard 1, under a fault plan.

    Hard-stops — supervisor joined, workers stopped, stores never closed —
    as soon as the plan's crash fires, so plan indices inside the rebuild
    window leave the directory exactly as a process kill mid-rebuild
    would.  Returns ``(constructed, applied)``.
    """
    from repro.service import ChaosController, ChaosEvent

    keys, timestamps = stream()
    controller = ChaosController(
        [ChaosEvent("kill", shard=1, at_items=REBUILD_KILL_AT)]
    )
    try:
        service = ShardedSketchService(
            factory,
            NUM_SHARDS,
            seed=SEED,
            directory=directory,
            fs=fs,
            durable_options=durable_options(),
            supervise=True,
            supervisor_options={
                "backoff_base": 0.01,
                "backoff_cap": 0.05,
                "poll_interval": 0.005,
            },
            sketch_wrapper=controller.wrap,
            block_timeout=10.0,
        )
    except SimulatedCrash:
        return False, None
    try:
        for start in range(0, N_ITEMS, ARRIVAL_BATCH):
            service.ingest_batch(
                keys[start : start + ARRIVAL_BATCH],
                timestamps[start : start + ARRIVAL_BATCH],
            )
            if fs.crashed:
                break
        if not fs.crashed:
            # let the apply/rebuild pipeline run into the crash point (or
            # finish cleanly when the point lies beyond this run's ops)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and not fs.crashed:
                if service.health()["watermark"] == service.health()["acked_seqno"]:
                    break
                time.sleep(0.005)
    except (ShardFailedError, SimulatedCrash):
        pass
    # hard kill: join the monitor (its in-flight attempt is deadline-bounded),
    # stop worker threads, never close the stores — no final snapshots
    try:
        service._supervisor.stop()
    except Exception:
        pass
    for worker in service._workers:
        try:
            worker.stop()
        except Exception:
            pass
    applied = [worker.items_applied for worker in service._workers]
    return True, applied


def supervised_rebuild_window():
    """Trace a fault-free supervised run; return op indices spanning the
    shard-1 rebuild (kill observed -> shard HEALTHY again)."""
    import tempfile
    from pathlib import Path

    from repro.service import ChaosController, ChaosEvent

    keys, timestamps = stream()
    with tempfile.TemporaryDirectory() as scratch:
        fs = FaultyFilesystem()
        controller = ChaosController(
            [ChaosEvent("kill", shard=1, at_items=REBUILD_KILL_AT)]
        )
        service = ShardedSketchService(
            factory,
            NUM_SHARDS,
            seed=SEED,
            directory=Path(scratch) / "state",
            fs=fs,
            durable_options=durable_options(),
            supervise=True,
            supervisor_options={
                "backoff_base": 0.01,
                "backoff_cap": 0.05,
                "poll_interval": 0.005,
            },
            sketch_wrapper=controller.wrap,
            block_timeout=10.0,
        )
        try:
            for start in range(0, N_ITEMS, ARRIVAL_BATCH):
                service.ingest_batch(
                    keys[start : start + ARRIVAL_BATCH],
                    timestamps[start : start + ARRIVAL_BATCH],
                )
            deadline = time.monotonic() + 30.0
            lo = None
            while time.monotonic() < deadline:
                if lo is None and controller.events[0].fired:
                    lo = len(fs.ops)
                if (
                    lo is not None
                    and service.health()["shard_states"]["1"] == "HEALTHY"
                ):
                    break
                time.sleep(0.002)
            assert lo is not None, "chaos kill never fired in the trace run"
            hi = len(fs.ops)
            assert service.drain(timeout=30)
        finally:
            service.close(force=True)
    return lo, max(hi, lo + 4)


_REBUILD_WINDOW = None


def rebuild_kill_points():
    global _REBUILD_WINDOW
    if _REBUILD_WINDOW is None:
        _REBUILD_WINDOW = supervised_rebuild_window()
    lo, hi = _REBUILD_WINDOW
    span = hi - lo
    chosen = sorted({lo + 1 + (span * k) // 4 for k in range(4)})
    return [
        pytest.param(index, mode, id=f"rebuild-op{index}-{mode}")
        for index in chosen
        for mode in ("before", "after")
    ]


class TestCrashDuringRebuildSweep:
    """Process kills landing inside a supervisor rebuild window recover
    exactly through the ``ServiceManifest`` + snapshot + WAL path."""

    @pytest.mark.parametrize("crash_at,mode", rebuild_kill_points())
    def test_rebuild_crash_recovers_prefix(self, tmp_path, crash_at, mode):
        directory = tmp_path / "state"
        fs = FaultyFilesystem(FaultPlan(crash_at=crash_at, crash_mode=mode))
        constructed, applied = supervised_crashy_ingest(directory, fs)
        if not constructed or read_manifest(directory) is None:
            return
        assert_recovered_matches_reference(directory, applied, [])
