"""Shard router: determinism, scalar/batch agreement, stable partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import StreamBatch
from repro.service import ShardRouter


class TestHashRouting:
    def test_scalar_and_batch_agree(self):
        router = ShardRouter(5, mode="hash", seed=7)
        keys = np.random.default_rng(0).integers(-1000, 1000, size=500)
        batch = router.shards_of(keys)
        scalar = [router.route(int(key)) for key in keys]
        assert batch.tolist() == scalar

    def test_deterministic_across_instances(self):
        a = ShardRouter(8, mode="hash", seed=3)
        b = ShardRouter(8, mode="hash", seed=3)
        keys = np.arange(1000)
        assert np.array_equal(a.shards_of(keys), b.shards_of(keys))

    def test_seed_changes_placement(self):
        keys = np.arange(2000)
        a = ShardRouter(4, mode="hash", seed=0).shards_of(keys)
        b = ShardRouter(4, mode="hash", seed=1).shards_of(keys)
        assert not np.array_equal(a, b)

    def test_placement_roughly_balanced(self):
        router = ShardRouter(4, mode="hash", seed=0)
        shards = router.shards_of(np.arange(40_000))
        counts = np.bincount(shards, minlength=4)
        assert counts.min() > 0.8 * counts.mean()

    def test_same_key_same_shard(self):
        router = ShardRouter(4, mode="hash", seed=0)
        assert len({router.route(42) for _ in range(10)}) == 1


class TestRoundRobin:
    def test_cycles_through_shards(self):
        router = ShardRouter(3, mode="round_robin")
        assert [router.route(99) for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_batch_continues_cursor(self):
        router = ShardRouter(3, mode="round_robin")
        router.route(0)  # cursor -> 1
        shards = router.shards_of(np.zeros(5))
        assert shards.tolist() == [1, 2, 0, 1, 2]
        assert router.route(0) == 0

    def test_counts_balanced_exactly(self):
        router = ShardRouter(4, mode="round_robin")
        shards = router.shards_of(np.zeros(4000))
        assert np.bincount(shards, minlength=4).tolist() == [1000] * 4


class TestPartition:
    def test_partition_preserves_order_and_items(self):
        router = ShardRouter(4, mode="hash", seed=1)
        rng = np.random.default_rng(1)
        values = rng.integers(0, 100, size=1000)
        timestamps = np.sort(rng.uniform(0, 10, size=1000))
        weights = rng.integers(1, 5, size=1000)
        parts = router.partition(values, timestamps, weights)
        total = 0
        for shard, part in enumerate(parts):
            if part is None:
                continue
            part_values, part_ts, part_weights = part
            total += part_values.size
            # every item routed to its shard, in arrival (so monotone) order
            assert np.all(router.shards_of(part_values) == shard)
            assert np.all(np.diff(part_ts) >= 0)
            assert part_weights.size == part_values.size
        assert total == 1000

    def test_partition_without_weights(self):
        router = ShardRouter(2, mode="round_robin")
        parts = router.partition([1, 2, 3], [0.0, 1.0, 2.0])
        assert parts[0][2] is None and parts[1][2] is None
        assert parts[0][0].tolist() == [1, 3]
        assert parts[1][0].tolist() == [2]

    def test_partition_empty(self):
        router = ShardRouter(3, mode="hash")
        assert router.partition([], []) == [None, None, None]

    def test_partition_length_mismatch(self):
        router = ShardRouter(2, mode="hash")
        with pytest.raises(ValueError):
            router.partition([1, 2], [0.0])
        with pytest.raises(ValueError):
            router.partition([1, 2], [0.0, 1.0], [1])


class TestValidation:
    def test_rejects_bad_num_shards(self):
        with pytest.raises(ValueError):
            ShardRouter(0)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            ShardRouter(2, mode="range")


def reference_partition(mode, num_shards, seed, values, timestamps, weights):
    """The pre-columnar list-building split: route each item scalar-wise."""
    router = ShardRouter(num_shards, mode=mode, seed=seed)
    parts = [([], [], []) for _ in range(num_shards)]
    for index, value in enumerate(values):
        shard = router.route(value if mode == "hash" else None)
        parts[shard][0].append(value)
        parts[shard][1].append(timestamps[index])
        parts[shard][2].append(1.0 if weights is None else weights[index])
    return parts


class TestSplitStreamBatch:
    """Array-slice splits agree with the old per-item list splits."""

    @given(
        keys=st.lists(st.integers(min_value=-10**6, max_value=10**6), max_size=200),
        num_shards=st.integers(min_value=1, max_value=7),
        mode=st.sampled_from(["hash", "round_robin"]),
        weighted=st.booleans(),
        seed=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_matches_reference(self, keys, num_shards, mode, weighted, seed):
        n = len(keys)
        timestamps = np.arange(n, dtype=float)
        weights = np.linspace(0.5, 2.0, n) if weighted else None
        reference = reference_partition(mode, num_shards, seed, keys, timestamps, weights)
        router = ShardRouter(num_shards, mode=mode, seed=seed)
        parts = router.split(StreamBatch.from_arrays(np.asarray(keys), timestamps, weights))
        assert len(parts) == num_shards
        for shard, part in enumerate(parts):
            ref_values, ref_times, ref_weights = reference[shard]
            if part is None:
                assert ref_values == []
                continue
            assert part.values.tolist() == ref_values
            assert part.timestamps.tolist() == ref_times
            if weighted:
                assert part.weights.tolist() == ref_weights
            else:
                assert part.weights is None

    def test_round_robin_split_is_zero_copy(self):
        router = ShardRouter(4, mode="round_robin")
        values = np.arange(1000)
        timestamps = np.arange(1000, dtype=float)
        weights = np.ones(1000)
        batch = StreamBatch(values, timestamps, weights)
        for part in router.split(batch):
            assert np.shares_memory(part.values, values)
            assert np.shares_memory(part.timestamps, timestamps)
            assert np.shares_memory(part.weights, weights)

    def test_single_shard_split_returns_batch_unchanged(self):
        router = ShardRouter(1, mode="hash")
        batch = StreamBatch(np.arange(10), np.arange(10, dtype=float))
        assert router.split(batch)[0] is batch

    def test_hash_split_shares_one_sorted_copy(self):
        # hash mode pays exactly one copy (the stable sort); every shard's
        # sub-batch must be a view into that grouped copy, not fresh copies
        router = ShardRouter(4, mode="hash", seed=3)
        values = np.random.default_rng(1).integers(0, 10**6, size=1000)
        batch = StreamBatch(values, np.arange(1000, dtype=float))
        parts = [part for part in router.split(batch) if part is not None]
        assert len(parts) > 1
        base = parts[0].values.base
        assert base is not None
        for part in parts:
            assert part.values.base is base

    def test_split_empty_batch(self):
        router = ShardRouter(3, mode="hash")
        empty = StreamBatch.from_arrays([], [])
        assert router.split(empty) == [None, None, None]

    def test_round_robin_cursor_continuity_scalar_then_split(self):
        router = ShardRouter(3, mode="round_robin")
        assert router.route(None) == 0
        parts = router.split(StreamBatch(np.arange(5), np.arange(5, dtype=float)))
        # next item after the scalar route lands on shard 1
        assert parts[1].values.tolist() == [0, 3]
        assert parts[2].values.tolist() == [1, 4]
        assert parts[0].values.tolist() == [2]
