"""MultiTenantService / TenantRegistry: registry, quotas, spill, metrics."""

import json
import urllib.request

import numpy as np
import pytest

import repro.telemetry as telemetry
from repro.core import ChainMisraGries
from repro.service import (
    MultiTenantService,
    OTHER_LABEL,
    TENANT_MEMORY_PREFIX,
    TenantLabelGuard,
    TenantQuota,
    TenantQuotaError,
    TenantReceipt,
    TenantRegistry,
    UnknownTenantError,
)
from repro.service.tenancy import TENANTS_MANIFEST_NAME, _slugify
from repro.telemetry import TELEMETRY, breakdown


def mg_factory():
    return ChainMisraGries(eps=0.01)


@pytest.fixture()
def enabled_telemetry():
    telemetry.reset()
    telemetry.enable()
    yield telemetry
    telemetry.disable()
    telemetry.reset()


def batch(keys, t0=0.0):
    keys = np.asarray(keys, dtype=np.int64)
    return keys, np.arange(t0, t0 + keys.size, dtype=float)


class TestTenantRegistry:
    def test_register_and_lookup(self, tmp_path):
        registry = TenantRegistry(tmp_path)
        registry.register_factory("mg", mg_factory)
        record = registry.register("alice", "mg")
        assert "alice" in registry
        assert len(registry) == 1
        assert registry.get("alice") is record
        assert registry.tenant_ids() == ["alice"]

    def test_register_is_idempotent_but_factory_is_sticky(self, tmp_path):
        registry = TenantRegistry(tmp_path)
        registry.register_factory("mg", mg_factory)
        registry.register_factory("mg2", mg_factory)
        first = registry.register("alice", "mg")
        assert registry.register("alice", "mg") is first
        with pytest.raises(ValueError, match="registered with factory"):
            registry.register("alice", "mg2")

    def test_unknown_factory_rejected(self, tmp_path):
        registry = TenantRegistry(tmp_path)
        with pytest.raises(KeyError, match="no factory"):
            registry.register("alice", "ghost")
        with pytest.raises(KeyError, match="no factory"):
            registry.factory("ghost")

    def test_manifest_round_trip_restores_tenants_and_quotas(self, tmp_path):
        registry = TenantRegistry(tmp_path)
        registry.register_factory("mg", mg_factory)
        registry.register("alice", "mg", TenantQuota(rate=5.0, policy="drop"))
        registry.register("bob", "mg")
        assert (tmp_path / TENANTS_MANIFEST_NAME).exists()

        restored = TenantRegistry(tmp_path)
        restored.load()
        assert set(restored.tenant_ids()) == {"alice", "bob"}
        alice = restored.get("alice")
        assert alice.quota.rate == 5.0
        assert alice.quota.policy == "drop"
        assert alice.service is None  # everyone restores cold
        assert alice.slug == registry.get("alice").slug

    def test_slugs_are_fs_safe_and_collision_free(self):
        nasty = "we/ird tenant:№1"
        slug = _slugify(nasty)
        assert "/" not in slug and " " not in slug and ":" not in slug
        # two ids that sanitise identically still get distinct slugs
        assert _slugify("a/b") != _slugify("a_b")
        assert _slugify(nasty) == slug  # deterministic

    def test_set_quota_rebuilds_bucket(self, tmp_path):
        registry = TenantRegistry(tmp_path)
        registry.register_factory("mg", mg_factory)
        registry.register("alice", "mg")
        assert registry.get("alice").bucket is None
        registry.set_quota("alice", TenantQuota(rate=2.0))
        assert registry.get("alice").bucket is not None
        with pytest.raises(UnknownTenantError):
            registry.set_quota("ghost", TenantQuota())


class TestLabelGuard:
    def test_first_k_tenants_keep_their_names(self):
        guard = TenantLabelGuard(top_k=2)
        assert guard.label("a") == "a"
        assert guard.label("b") == "b"
        assert guard.label("c") == OTHER_LABEL
        assert guard.label("a") == "a"  # stable
        assert guard.owns_label("a") and not guard.owns_label("c")

    def test_cardinality_is_bounded(self):
        guard = TenantLabelGuard(top_k=3)
        for i in range(100):
            guard.label(f"t{i}")
        assert guard.cardinality <= 4  # top-K + __other__
        assert len(set(guard.labels().values())) <= 4

    def test_zero_k_rolls_everyone_up(self):
        guard = TenantLabelGuard(top_k=0)
        assert guard.label("a") == OTHER_LABEL
        assert guard.cardinality == 1


class TestFacadeBasics:
    def test_tenants_are_isolated(self, tmp_path):
        with MultiTenantService(mg_factory, directory=tmp_path, num_shards=2) as svc:
            keys_a, ts = batch([7] * 60)
            keys_b, _ = batch([9] * 60)
            svc.ingest_batch("a", keys_a, ts)
            svc.ingest_batch("b", keys_b, ts)
            assert svc.drain()
            assert svc.estimate_at("a", 7, 59.0) == pytest.approx(60.0, abs=2)
            assert svc.estimate_at("b", 7, 59.0) == pytest.approx(0.0, abs=2)
            assert svc.total_weight_at("a", 59.0) == pytest.approx(60.0)

    def test_auto_register_on_ingest_only(self, tmp_path):
        with MultiTenantService(mg_factory, directory=tmp_path) as svc:
            keys, ts = batch([1, 2, 3])
            svc.ingest_batch("new-tenant", keys, ts)
            assert "new-tenant" in svc.registry
            with pytest.raises(UnknownTenantError):
                svc.estimate_at("never-seen", 1, 0.0)
            with pytest.raises(UnknownTenantError):
                svc.query("never-seen", "memory_bytes", combine="sum")

    def test_auto_register_off_rejects_unknown_ingest(self, tmp_path):
        with MultiTenantService(
            mg_factory, directory=tmp_path, auto_register=False
        ) as svc:
            keys, ts = batch([1])
            with pytest.raises(UnknownTenantError):
                svc.ingest_batch("stranger", keys, ts)

    def test_receipt_and_wait_for(self, tmp_path):
        with MultiTenantService(mg_factory, directory=tmp_path) as svc:
            keys, ts = batch([1, 2, 3, 4])
            receipt = svc.ingest_batch("a", keys, ts)
            assert isinstance(receipt, TenantReceipt)
            assert receipt.tenant == "a"
            assert receipt.accepted == 4
            assert svc.wait_for(receipt, timeout=30)

    def test_wait_for_past_epoch_is_immediate(self, tmp_path):
        with MultiTenantService(mg_factory, directory=tmp_path) as svc:
            keys, ts = batch([1, 2, 3])
            receipt = svc.ingest_batch("a", keys, ts)
            svc.spill("a")
            # spill drained everything: old-epoch receipts are applied
            assert svc.wait_for(receipt, timeout=0.001)

    def test_close_then_use_raises(self, tmp_path):
        svc = MultiTenantService(mg_factory, directory=tmp_path)
        svc.close()
        keys, ts = batch([1])
        with pytest.raises(RuntimeError, match="closed"):
            svc.ingest_batch("a", keys, ts)

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError, match="factory"):
            MultiTenantService()
        with pytest.raises(ValueError, match="directory"):
            MultiTenantService(mg_factory, max_resident_tenants=2)
        with pytest.raises(ValueError, match="max_resident_tenants"):
            MultiTenantService(
                mg_factory, directory=tmp_path, max_resident_tenants=0
            )


class TestSpillAndReload:
    def test_lru_cap_spills_coldest(self, tmp_path):
        svc = MultiTenantService(
            mg_factory, directory=tmp_path, max_resident_tenants=2
        )
        with svc:
            for tenant in ("a", "b", "c"):
                keys, ts = batch([1, 2, 3])
                svc.ingest_batch(tenant, keys, ts)
            resident = svc.resident_tenants()
            assert len(resident) == 2
            assert "a" not in resident  # coldest went first
            assert svc.registry.get("a").spills == 1

    def test_touch_reloads_transparently_with_identical_answers(self, tmp_path):
        svc = MultiTenantService(
            mg_factory, directory=tmp_path, max_resident_tenants=4, num_shards=2
        )
        with svc:
            keys, ts = batch(list(range(8)) * 10)
            svc.ingest_batch("a", keys, ts)
            assert svc.drain("a")
            before = {
                key: svc.estimate_at("a", key, float(keys.size - 1))
                for key in range(8)
            }
            assert svc.spill("a")
            assert "a" not in svc.resident_tenants()
            after = {
                key: svc.estimate_at("a", key, float(keys.size - 1))
                for key in range(8)
            }
            assert after == before  # bit-identical, not approximately
            assert svc.registry.get("a").reloads == 1
            assert "a" in svc.resident_tenants()

    def test_spill_of_cold_tenant_is_noop(self, tmp_path):
        with MultiTenantService(mg_factory, directory=tmp_path) as svc:
            svc.register_tenant("a")
            assert not svc.spill("a")

    def test_spill_without_directory_raises(self):
        with MultiTenantService(mg_factory) as svc:
            keys, ts = batch([1])
            svc.ingest_batch("a", keys, ts)
            with pytest.raises(RuntimeError, match="durable"):
                svc.spill("a")

    def test_resident_bytes_ceiling_is_enforced(self, tmp_path):
        ceiling = 6_000
        svc = MultiTenantService(
            mg_factory,
            directory=tmp_path,
            max_resident_bytes=ceiling,
            accounting_interval=32,
        )
        with svc:
            rng = np.random.default_rng(7)
            for round_ in range(12):
                for tenant in ("a", "b", "c", "d"):
                    keys = rng.integers(0, 500, size=64).astype(np.int64)
                    ts = np.arange(round_ * 64, round_ * 64 + 64, dtype=float)
                    svc.ingest_batch(tenant, keys, ts)
                assert svc.resident_bytes(refresh=True) <= ceiling
            assert sum(
                svc.registry.get(t).spills for t in ("a", "b", "c", "d")
            ) > 0

    def test_stale_cache_cannot_survive_spill_reload(self, tmp_path):
        """The fatal bug class: a reloaded tenant restarts its watermark,
        so a pre-spill cached answer keyed by the same (method, args,
        watermark) tuple would be served for the *new* state."""
        svc = MultiTenantService(mg_factory, directory=tmp_path)
        with svc:
            keys, ts = batch([5] * 40)
            svc.ingest_batch("a", keys, ts)
            assert svc.drain("a")
            first = svc.estimate_at("a", 5, 100.0)
            assert first == pytest.approx(40.0, abs=2)
            svc.spill("a")
            # same item count again -> same watermark as when the answer
            # above was cached; only the namespace drop prevents a stale hit
            keys2, ts2 = batch([5] * 40, t0=40.0)
            svc.ingest_batch("a", keys2, ts2)
            assert svc.drain("a")
            second = svc.estimate_at("a", 5, 100.0)
            assert second == pytest.approx(80.0, abs=3)


class TestQuotas:
    def test_drop_policy_counts_exactly(self, tmp_path, enabled_telemetry):
        svc = MultiTenantService(
            mg_factory,
            directory=tmp_path,
            default_quota=TenantQuota(rate=1.0, burst=10.0, policy="drop"),
        )
        with svc:
            keys, ts = batch(list(range(10)))
            assert svc.ingest_batch("a", keys, ts).accepted == 10
            rejected = 0
            for _ in range(5):
                receipt = svc.ingest_batch("a", keys, ts)
                if receipt.dropped:
                    rejected += 1
                    assert receipt.seqno == -1 and receipt.accepted == 0
            assert rejected >= 4  # refill may admit at most one more batch
            record = svc.registry.get("a")
            assert record.rejects["rate"] == rejected
            family = TELEMETRY.registry.get("service_tenant_rejects_total")
            counted = sum(
                child.value
                for labels, child in family.samples()
                if labels.get("tenant") == "a" and labels.get("reason") == "rate"
            )
            assert counted == rejected

    def test_error_policy_raises_with_retry_after(self, tmp_path):
        svc = MultiTenantService(
            mg_factory,
            directory=tmp_path,
            default_quota=TenantQuota(rate=1.0, burst=2.0, policy="error"),
        )
        with svc:
            keys, ts = batch([1, 2])
            svc.ingest_batch("a", keys, ts)
            with pytest.raises(TenantQuotaError) as excinfo:
                svc.ingest_batch("a", keys, ts)
            assert excinfo.value.tenant == "a"
            assert excinfo.value.reason == "rate"
            assert excinfo.value.retry_after > 0

    def test_block_policy_waits_for_tokens(self, tmp_path):
        svc = MultiTenantService(
            mg_factory,
            directory=tmp_path,
            default_quota=TenantQuota(rate=200.0, burst=5.0, policy="block"),
        )
        with svc:
            keys, ts = batch([1, 2, 3, 4, 5])
            svc.ingest_batch("a", keys, ts)
            keys2, ts2 = batch([1, 2, 3, 4, 5], t0=5.0)
            # blocks ~25ms for refill instead of rejecting
            receipt = svc.ingest_batch("a", keys2, ts2)
            assert receipt.accepted == 5
            assert svc.registry.get("a").rejects["rate"] == 0

    def test_block_policy_timeout_raises(self, tmp_path):
        svc = MultiTenantService(
            mg_factory,
            directory=tmp_path,
            default_quota=TenantQuota(
                rate=0.001, burst=1.0, policy="block", block_timeout=0.01
            ),
        )
        with svc:
            keys, ts = batch([1])
            svc.ingest_batch("a", keys, ts)
            with pytest.raises(TenantQuotaError):
                svc.ingest_batch("a", keys, ts)
            assert svc.registry.get("a").rejects["rate"] == 1

    def test_byte_quota_rejects_and_block_degrades_to_error(self, tmp_path):
        svc = MultiTenantService(
            mg_factory,
            directory=tmp_path,
            default_quota=TenantQuota(max_resident_bytes=1, policy="block"),
            accounting_interval=8,
        )
        with svc:
            rng = np.random.default_rng(3)
            keys = rng.integers(0, 200, size=64).astype(np.int64)
            ts = np.arange(64, dtype=float)
            svc.ingest_batch("a", keys, ts)  # admitted: not measured yet
            assert svc.drain("a")
            assert svc.resident_bytes("a", refresh=True) > 1
            with pytest.raises(TenantQuotaError) as excinfo:
                svc.ingest_batch("a", keys, ts + 64.0)
            assert excinfo.value.reason == "bytes"
            assert svc.registry.get("a").rejects["bytes"] == 1

    def test_per_tenant_quota_overrides_default(self, tmp_path):
        svc = MultiTenantService(
            mg_factory,
            directory=tmp_path,
            default_quota=TenantQuota(rate=1.0, burst=1.0, policy="error"),
        )
        with svc:
            svc.register_tenant("vip", quota=TenantQuota())
            keys, ts = batch(list(range(50)))
            assert svc.ingest_batch("vip", keys, ts).accepted == 50


class TestObservability:
    def test_label_cardinality_stays_bounded(self, tmp_path, enabled_telemetry):
        svc = MultiTenantService(
            mg_factory,
            directory=tmp_path,
            label_tenants=3,
            max_resident_tenants=4,
        )
        with svc:
            for i in range(20):
                keys, ts = batch([i])
                svc.ingest_batch(f"tenant-{i}", keys, ts)
            family = TELEMETRY.registry.get("service_tenant_ingest_items_total")
            # reset() zeroes but keeps children from earlier tests; only
            # live series count against the cardinality budget
            tenants_seen = {
                labels["tenant"]
                for labels, child in family.samples()
                if child.value > 0
            }
            assert len(tenants_seen) <= 4  # 3 own labels + __other__
            assert OTHER_LABEL in tenants_seen
            assert svc.label_guard.cardinality <= 4

    def test_tenants_payload_and_endpoint(self, tmp_path, enabled_telemetry):
        svc = MultiTenantService(
            mg_factory, directory=tmp_path, max_resident_tenants=4
        )
        with svc:
            for tenant in ("a", "b"):
                keys, ts = batch([1, 2, 3])
                svc.ingest_batch(tenant, keys, ts)
            payload = svc.tenants()
            assert payload["known"] == 2
            assert payload["resident"] == 2
            assert set(payload["tenants"]) == {"a", "b"}
            assert payload["tenants"]["a"]["resident"]
            server = svc.serve_introspection()
            try:
                served = json.loads(
                    urllib.request.urlopen(server.url + "/tenants").read()
                )
                assert served["known"] == 2
                assert set(served["tenants"]) == {"a", "b"}
                metrics = (
                    urllib.request.urlopen(server.url + "/metrics")
                    .read()
                    .decode()
                )
                assert "service_tenants_resident 2" in metrics
            finally:
                server.stop()

    def test_memory_breakdown_by_tenant(self, tmp_path, enabled_telemetry):
        svc = MultiTenantService(
            mg_factory, directory=tmp_path, num_shards=2, label_tenants=1
        )
        with svc:
            for tenant in ("big", "small"):
                keys, ts = batch(list(range(30)))
                svc.ingest_batch(tenant, keys, ts)
            svc.drain()
            svc.publish_memory()
            grouped = breakdown(prefix=TENANT_MEMORY_PREFIX)
            assert "big" in grouped  # first tenant owns its label
            assert OTHER_LABEL in grouped  # "small" rolled up
            assert "small" not in grouped
            assert grouped["big"]["total"] == sum(
                size
                for component, size in grouped["big"].items()
                if component.startswith("shard-")
            )
            # spill removes the gauges: residency, not history
            svc.spill("big")
            svc.publish_memory()
            assert "big" not in breakdown(prefix=TENANT_MEMORY_PREFIX)

    def test_health_aggregates_resident_tenants(self, tmp_path):
        with MultiTenantService(mg_factory, directory=tmp_path) as svc:
            keys, ts = batch([1])
            svc.ingest_batch("a", keys, ts)
            report = svc.health()
            assert report["healthy"]
            assert report["resident"] == 1
            assert report["unhealthy_tenants"] == {}

    def test_stats_include_shared_cache(self, tmp_path):
        with MultiTenantService(mg_factory, directory=tmp_path) as svc:
            keys, ts = batch([1])
            svc.ingest_batch("a", keys, ts)
            svc.drain("a")
            svc.estimate_at("a", 1, 0.0)
            stats = svc.stats()
            assert stats["cache"]["size"] >= 1
            assert "tenant:a" in stats["cache"]["namespaces"]


class TestDurableReopen:
    def test_open_adopts_topology_and_restores_fleet(self, tmp_path):
        svc = MultiTenantService(
            mg_factory, directory=tmp_path, num_shards=2, seed=11
        )
        with svc:
            keys, ts = batch(list(range(6)) * 20)
            svc.ingest_batch("a", keys, ts)
            svc.ingest_batch("b", keys, ts)
            svc.drain()
            expected = svc.estimate_at("a", 3, float(keys.size))

        reopened = MultiTenantService.open(tmp_path, factory=mg_factory)
        with reopened:
            assert reopened.num_shards == 2
            assert reopened.seed == 11
            assert set(reopened.known_tenants()) == {"a", "b"}
            assert reopened.resident_tenants() == []  # all cold
            assert reopened.estimate_at("a", 3, float(keys.size)) == expected

    def test_mismatched_topology_is_rejected(self, tmp_path):
        MultiTenantService(
            mg_factory, directory=tmp_path, num_shards=2
        ).close()
        with pytest.raises(ValueError, match="topology"):
            MultiTenantService(mg_factory, directory=tmp_path, num_shards=3)

    def test_open_without_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            MultiTenantService.open(tmp_path / "nothing", factory=mg_factory)
