"""Shard workers: queue draining, backpressure policies, failure poisoning."""

import threading
import time

import numpy as np
import pytest

from repro.service import BackpressureError, ShardFailedError, ShardWorker
from repro.sketches import CountMinSketch


class RecordingSketch:
    """Test double: records every fused apply it receives."""

    def __init__(self):
        self.applies = []
        self.items = []

    def update(self, value, timestamp, weight=1.0):
        self.items.append((value, timestamp, weight))

    def update_batch(self, values, timestamps, weights=None):
        self.applies.append((np.asarray(values).copy(), np.asarray(timestamps).copy()))
        for index, value in enumerate(np.asarray(values).tolist()):
            weight = 1.0 if weights is None else float(np.asarray(weights)[index])
            self.items.append((value, float(np.asarray(timestamps)[index]), weight))


class FailingSketch:
    """Test double: raises after a set number of batch applies."""

    def __init__(self, after):
        self.after = after
        self.calls = 0

    def update(self, value, timestamp, weight=1.0):
        raise AssertionError("scalar path unused")

    def update_batch(self, values, timestamps, weights=None):
        self.calls += 1
        if self.calls > self.after:
            raise RuntimeError("boom")


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


def make_worker(sketch, **kwargs):
    worker = ShardWorker(0, sketch, **kwargs)
    worker.start()
    return worker


class TestDrainAndSeqnos:
    def test_all_items_applied_in_order(self):
        sketch = RecordingSketch()
        worker = make_worker(sketch)
        for seqno in range(1, 21):
            values = np.arange(seqno * 10, seqno * 10 + 5)
            worker.submit(values, np.full(5, float(seqno)), None, seqno)
        assert wait_until(lambda: worker.applied_seqno == 20)
        worker.stop()
        applied_values = [item[0] for item in sketch.items]
        expected = [v for s in range(1, 21) for v in range(s * 10, s * 10 + 5)]
        assert applied_values == expected
        assert worker.items_applied == 100

    def test_queued_subbatches_fuse_into_one_apply(self):
        sketch = RecordingSketch()
        worker = ShardWorker(0, sketch)  # not started: queue accumulates
        for seqno in range(1, 11):
            worker.submit(np.array([seqno]), np.array([float(seqno)]), None, seqno)
        worker.start()
        assert wait_until(lambda: worker.applied_seqno == 10)
        worker.stop()
        assert len(sketch.applies) == 1
        assert sketch.applies[0][0].tolist() == list(range(1, 11))

    def test_max_drain_items_caps_fused_batch(self):
        sketch = RecordingSketch()
        worker = ShardWorker(0, sketch, max_drain_items=3)
        for seqno in range(1, 7):
            worker.submit(np.array([seqno]), np.array([float(seqno)]), None, seqno)
        worker.start()
        assert wait_until(lambda: worker.applied_seqno == 6)
        worker.stop()
        assert all(len(values) <= 3 for values, _ in sketch.applies)

    def test_stop_drains_pending_items(self):
        sketch = RecordingSketch()
        worker = ShardWorker(0, sketch)
        for seqno in range(1, 6):
            worker.submit(np.array([seqno]), np.array([float(seqno)]), None, seqno)
        worker.start()
        worker.stop()
        assert worker.applied_seqno == 5
        assert len(sketch.items) == 5

    def test_weighted_and_unweighted_subbatches_fuse(self):
        sketch = RecordingSketch()
        worker = ShardWorker(0, sketch)
        worker.submit(np.array([1]), np.array([1.0]), None, 1)
        worker.submit(np.array([2]), np.array([2.0]), np.array([3.0]), 2)
        worker.start()
        worker.stop()
        assert sketch.items == [(1, 1.0, 1.0), (2, 2.0, 3.0)]


class TestBackpressure:
    def test_block_policy_waits_for_capacity(self):
        sketch = RecordingSketch()
        worker = ShardWorker(0, sketch, capacity=10, policy="block")
        worker.submit(np.arange(10), np.zeros(10), None, 1)
        accepted = []

        def producer():
            accepted.append(worker.submit(np.arange(5), np.zeros(5), None, 2))

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)
        assert thread.is_alive()  # blocked: queue is full
        worker.start()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert accepted == [5]
        worker.stop()
        assert worker.items_applied == 15

    def test_drop_policy_counts_dropped_items(self):
        sketch = RecordingSketch()
        worker = ShardWorker(0, sketch, capacity=10, policy="drop")
        assert worker.submit(np.arange(10), np.zeros(10), None, 1) == 10
        assert worker.submit(np.arange(5), np.zeros(5), None, 2) == 0
        assert worker.items_dropped == 5
        assert worker.acked_seqno == 1  # dropped call did not ack
        worker.start()
        worker.stop()
        assert worker.items_applied == 10

    def test_error_policy_raises(self):
        worker = ShardWorker(0, RecordingSketch(), capacity=10, policy="error")
        worker.submit(np.arange(10), np.zeros(10), None, 1)
        with pytest.raises(BackpressureError):
            worker.submit(np.arange(1), np.zeros(1), None, 2)
        worker.start()
        worker.stop()

    def test_oversized_subbatch_admitted_when_queue_empty(self):
        # capacity is a soft bound: an empty queue accepts any sub-batch,
        # so an arrival batch larger than capacity cannot deadlock
        worker = ShardWorker(0, RecordingSketch(), capacity=4, policy="drop")
        assert worker.submit(np.arange(8), np.zeros(8), None, 1) == 8
        assert worker.submit(np.arange(2), np.zeros(2), None, 2) == 0  # now full
        worker.start()
        worker.stop()
        assert worker.items_applied == 8


class TestFailurePoisoning:
    def test_failure_captured_and_submit_raises(self):
        sketch = FailingSketch(after=1)
        worker = make_worker(sketch)
        worker.submit(np.array([1]), np.array([1.0]), None, 1)
        assert wait_until(lambda: worker.applied_seqno == 1)
        worker.submit(np.array([2]), np.array([2.0]), None, 2)
        assert wait_until(lambda: worker.failure is not None)
        with pytest.raises(ShardFailedError) as excinfo:
            worker.submit(np.array([3]), np.array([3.0]), None, 3)
        assert excinfo.value.shard == 0
        assert isinstance(excinfo.value.cause, RuntimeError)
        worker.stop()

    def test_blocked_producer_released_on_failure(self):
        sketch = FailingSketch(after=0)
        worker = ShardWorker(0, sketch, capacity=4, policy="block")
        worker.submit(np.arange(4), np.zeros(4), None, 1)
        results = []

        def producer():
            try:
                worker.submit(np.arange(2), np.zeros(2), None, 2)
                results.append("accepted")
            except ShardFailedError:
                results.append("failed")

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)
        worker.start()  # first apply fails -> producer must wake with the error
        thread.join(timeout=10)
        assert results == ["failed"]
        worker.stop()

    def test_monotone_violation_poisons_worker(self):
        from repro.core import CheckpointChain, MonotoneViolation
        from repro.sketches import CountMinSketch as CMS

        worker = make_worker(CheckpointChain(lambda: CMS(64, 2), eps=0.1))
        worker.submit(np.array([1]), np.array([5.0]), None, 1)
        worker.submit(np.array([2]), np.array([1.0]), None, 2)  # goes backwards
        assert wait_until(lambda: worker.failure is not None)
        assert isinstance(worker.failure, MonotoneViolation)
        worker.stop()


class TestGroupCommit:
    def test_min_drain_items_holds_until_threshold(self):
        sketch = RecordingSketch()
        worker = make_worker(sketch, min_drain_items=10)
        for seqno in range(1, 10):  # 9 items: below threshold
            worker.submit(np.array([seqno]), np.array([float(seqno)]), None, seqno)
        time.sleep(0.05)
        assert worker.applied_seqno == 0  # worker still asleep
        worker.submit(np.array([10]), np.array([10.0]), None, 10)  # crosses
        assert wait_until(lambda: worker.applied_seqno == 10)
        worker.stop()
        assert len(sketch.applies) == 1  # one fused group commit
        assert sketch.applies[0][0].tolist() == list(range(1, 11))

    def test_request_drain_forces_subthreshold_apply(self):
        sketch = RecordingSketch()
        worker = make_worker(sketch, min_drain_items=1000)
        worker.submit(np.arange(5), np.zeros(5), None, 1)
        time.sleep(0.05)
        assert worker.applied_seqno == 0
        worker.request_drain()
        assert wait_until(lambda: worker.applied_seqno == 1)
        worker.stop()
        assert worker.items_applied == 5

    def test_stop_drains_below_threshold(self):
        sketch = RecordingSketch()
        worker = make_worker(sketch, min_drain_items=1000)
        worker.submit(np.arange(3), np.zeros(3), None, 1)
        worker.stop()
        assert worker.items_applied == 3

    def test_blocked_producer_forces_subthreshold_drain(self):
        # queue full but below min_drain_items: the blocking producer must
        # not deadlock against a sleeping worker
        sketch = RecordingSketch()
        worker = make_worker(
            sketch, capacity=10, policy="block", min_drain_items=1000
        )
        worker.submit(np.arange(10), np.zeros(10), None, 1)
        worker.submit(np.arange(5), np.zeros(5), None, 2)  # blocks, then drains
        assert wait_until(lambda: worker.items_applied >= 10)
        worker.stop()  # stop flushes the still-below-threshold tail
        assert worker.items_applied == 15

    def test_linger_delays_then_fuses(self):
        sketch = RecordingSketch()
        worker = make_worker(sketch, linger=0.2)
        worker.submit(np.array([1]), np.array([1.0]), None, 1)
        time.sleep(0.02)  # worker woke, now lingering
        worker.submit(np.array([2]), np.array([2.0]), None, 2)
        assert wait_until(lambda: worker.applied_seqno == 2)
        worker.stop()
        assert len(sketch.applies) == 1  # both arrivals fused by the linger
        assert sketch.applies[0][0].tolist() == [1, 2]


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ShardWorker(0, CountMinSketch(16, 2), capacity=0)
        with pytest.raises(ValueError):
            ShardWorker(0, CountMinSketch(16, 2), policy="spill")
        with pytest.raises(ValueError):
            ShardWorker(0, CountMinSketch(16, 2), max_drain_items=0)
        with pytest.raises(ValueError):
            ShardWorker(0, CountMinSketch(16, 2), min_drain_items=0)
        with pytest.raises(ValueError):
            ShardWorker(
                0, CountMinSketch(16, 2), max_drain_items=8, min_drain_items=9
            )
        with pytest.raises(ValueError):
            ShardWorker(0, CountMinSketch(16, 2), linger=-0.1)


class StallingSketch:
    """Test double: the first apply blocks until released."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()

    def update_batch(self, values, timestamps, weights=None):
        self.started.set()
        assert self.release.wait(timeout=30)


class TestBlockTimeout:
    def test_block_timeout_bounds_producer_wait(self):
        sketch = StallingSketch()
        worker = make_worker(sketch, capacity=4, policy="block", block_timeout=0.2)
        worker.submit(np.array([1]), np.array([1.0]), None, 1)
        assert sketch.started.wait(timeout=10)  # apply thread is now stalled
        worker.submit(np.arange(4), np.arange(4.0), None, 2)  # fills the queue
        start = time.monotonic()
        with pytest.raises(BackpressureError):
            worker.submit(np.array([9]), np.array([9.0]), None, 3)
        elapsed = time.monotonic() - start
        assert 0.1 <= elapsed < 5.0  # expired at the deadline, not never
        sketch.release.set()
        worker.stop()

    def test_per_call_timeout_overrides_default(self):
        sketch = StallingSketch()
        worker = make_worker(sketch, capacity=4, policy="block")  # no default
        worker.submit(np.array([1]), np.array([1.0]), None, 1)
        assert sketch.started.wait(timeout=10)
        worker.submit(np.arange(4), np.arange(4.0), None, 2)
        with pytest.raises(BackpressureError):
            worker.submit(np.array([9]), np.array([9.0]), None, 3, timeout=0.1)
        sketch.release.set()
        worker.stop()

    def test_rejects_nonpositive_block_timeout(self):
        with pytest.raises(ValueError):
            ShardWorker(0, CountMinSketch(16, 2), block_timeout=0.0)
