"""TokenBucket and TenantQuota: admission math under a hand-driven clock."""

import pytest

from repro.service import (
    BACKPRESSURE_POLICIES,
    BackpressureError,
    QUOTA_REASONS,
    TenantQuota,
    TenantQuotaError,
    TokenBucket,
    UNLIMITED_QUOTA,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_starts_full_and_admits_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        assert bucket.try_take(5) == 0.0
        assert bucket.tokens == 0.0

    def test_rejection_returns_wait_and_debits_nothing(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        bucket.try_take(5)
        wait = bucket.try_take(2)
        assert wait == pytest.approx(0.2)
        assert bucket.tokens == 0.0  # failed take leaves the balance alone

    def test_refills_at_rate_capped_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        bucket.try_take(5)
        clock.advance(0.3)
        assert bucket.tokens == pytest.approx(3.0)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(5.0)  # capped

    def test_sustained_rate_is_enforced(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=10.0, clock=clock)
        admitted = 0
        for _ in range(50):
            if bucket.try_take(10) == 0.0:
                admitted += 10
            clock.advance(0.02)
        # 1s elapsed at 100/s plus the initial 10-token burst
        assert admitted <= 110
        assert admitted >= 100

    def test_oversized_request_admits_from_full_bucket(self):
        # n > burst must not be rejected forever: a full bucket grants it
        # and goes negative, borrowing against future refill
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        assert bucket.try_take(50) == 0.0
        assert bucket.tokens == pytest.approx(-45.0)
        wait = bucket.try_take(1)
        assert wait == pytest.approx(4.6)  # pay off the 45-token debt first

    def test_oversized_request_waits_for_full_bucket(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        bucket.try_take(5)
        wait = bucket.try_take(50)
        assert wait == pytest.approx(0.5)  # time to a *full* bucket, not 50
        clock.advance(0.5)
        assert bucket.take(50, timeout=0.0)

    def test_take_times_out_without_debit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        bucket.try_take(5)
        assert not bucket.take(3, timeout=0.0)
        assert bucket.tokens == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)
        bucket = TokenBucket(rate=1.0)
        with pytest.raises(ValueError):
            bucket.try_take(-1)


class TestTenantQuota:
    def test_policies_reuse_backpressure_vocabulary(self):
        for policy in BACKPRESSURE_POLICIES:
            TenantQuota(policy=policy)
        with pytest.raises(ValueError):
            TenantQuota(policy="shrug")

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(rate=0)
        with pytest.raises(ValueError):
            TenantQuota(burst=5)  # burst without rate
        with pytest.raises(ValueError):
            TenantQuota(max_resident_bytes=0)

    def test_unlimited_quota_makes_no_bucket(self):
        assert UNLIMITED_QUOTA.make_bucket() is None

    def test_make_bucket_defaults_burst_to_one_second(self):
        bucket = TenantQuota(rate=7.0).make_bucket(FakeClock())
        assert bucket.burst == 7.0

    def test_quota_error_is_backpressure(self):
        err = TenantQuotaError("t1", "rate", "too fast", retry_after=0.25)
        assert isinstance(err, BackpressureError)
        assert err.tenant == "t1"
        assert err.reason in QUOTA_REASONS
        assert err.retry_after == 0.25
