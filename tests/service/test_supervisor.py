"""Self-healing shards: supervised rebuild, state machine, circuit breaker.

The acceptance scenario is live: a chaos kill poisons a shard mid-stream,
the supervisor rebuilds it in place from snapshot+WAL while its traffic
parks in the redirect buffer, and ``/healthz`` (real HTTP) observes the
full ``REBUILDING -> HEALTHY`` transition without a service restart.  The
recovered service is then verified bit-identical to a fault-free replay.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import ChainCountMin
from repro.service import (
    ChaosController,
    ChaosEvent,
    ShardFailedError,
    ShardRouter,
    ShardedSketchService,
)
from repro.telemetry.registry import TELEMETRY

NUM_SHARDS = 4
SEED = 13
N_ITEMS = 4000


def factory():
    return ChainCountMin(width=512, depth=3, eps_ckpt=0.002, seed=5)


def stream(n=N_ITEMS):
    keys = np.array([(i * i) % 61 for i in range(n)], dtype=np.int64)
    timestamps = np.arange(n, dtype=np.float64)
    return keys, timestamps


def substream(keys, timestamps, shard):
    router = ShardRouter(NUM_SHARDS, mode="hash", seed=SEED)
    mask = router.shards_of(keys) == shard
    return keys[mask], timestamps[mask]


def wait_until(predicate, timeout=20.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def get(url, timeout=10):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def assert_exact_recovery(service, keys, timestamps):
    """Every shard applied exactly its sub-stream, bit-identically."""
    for shard in range(NUM_SHARDS):
        sub_keys, sub_ts = substream(keys, timestamps, shard)
        worker = service._workers[shard]
        assert worker.items_applied == sub_keys.size
        recovered = worker.sketch
        recovered = getattr(recovered, "_inner", recovered)  # ChaosSketch
        recovered = getattr(recovered, "sketch", recovered)  # DurableSketch
        reference = factory()
        reference.update_batch(sub_keys, sub_ts)
        assert np.array_equal(recovered._cm.counters(), reference._cm.counters())
        assert recovered.num_checkpoints() == reference.num_checkpoints()


class GatedWrap:
    """Chaos wrapper whose *rebuild* calls block until released.

    The service wraps every shard sketch at construction and again inside
    the supervisor's rebuild; holding the second call open pins the shard
    in ``REBUILDING`` long enough for the test to observe it over HTTP.
    """

    def __init__(self, controller):
        self.controller = controller
        self.rebuilding = threading.Event()
        self.release = threading.Event()
        self._initial_done = set()

    def __call__(self, shard, sketch):
        if shard in self._initial_done:
            self.rebuilding.set()
            assert self.release.wait(timeout=30), "gate never released"
        self._initial_done.add(shard)
        return self.controller.wrap(shard, sketch)


class TestSupervisedRecovery:
    def test_healthz_observes_rebuilding_then_healthy(self, tmp_path):
        """A poisoned shard heals in place; /healthz sees the transition."""
        keys, timestamps = stream()
        controller = ChaosController([ChaosEvent("kill", shard=1, at_items=200)])
        gate = GatedWrap(controller)
        service = ShardedSketchService(
            factory,
            NUM_SHARDS,
            seed=SEED,
            directory=tmp_path / "state",
            durable_options={"fsync_policy": "always"},
            supervise=True,
            supervisor_options={"backoff_base": 0.01, "poll_interval": 0.02},
            sketch_wrapper=gate,
            block_timeout=10.0,
        )
        try:
            with service.serve_introspection() as server:
                status, payload = get(server.url + "/healthz")
                assert status == 200 and payload["healthy"] is True
                for start in range(0, N_ITEMS, 250):
                    service.ingest_batch(
                        keys[start : start + 250], timestamps[start : start + 250]
                    )
                # the kill fires, the monitor begins the rebuild, and the
                # gate holds the shard in REBUILDING until released
                assert gate.rebuilding.wait(timeout=20)
                status, payload = get(server.url + "/healthz")
                assert status == 503
                assert payload["healthy"] is False
                assert payload["shard_states"]["1"] == "REBUILDING"
                gate.release.set()
                assert wait_until(
                    lambda: service.health()["shard_states"]["1"] == "HEALTHY"
                )
                assert service.drain(timeout=30)
                status, payload = get(server.url + "/healthz")
                assert status == 200
                assert payload["healthy"] is True
                assert payload["shard_states"] == {
                    str(s): "HEALTHY" for s in range(NUM_SHARDS)
                }
                assert payload["supervisor"]["1"]["rebuilds"] == 1
            assert_exact_recovery(service, keys, timestamps)
        finally:
            service.close(force=True)

    def test_rebuild_preserves_exact_state_and_watermark(self, tmp_path):
        keys, timestamps = stream()
        controller = ChaosController(
            [
                ChaosEvent("kill", shard=1, at_items=300),
                ChaosEvent("kill", shard=2, at_items=400),
            ]
        )
        service = ShardedSketchService(
            factory,
            NUM_SHARDS,
            seed=SEED,
            directory=tmp_path / "state",
            durable_options={"fsync_policy": "always"},
            supervise=True,
            supervisor_options={"backoff_base": 0.01, "poll_interval": 0.02},
            sketch_wrapper=controller.wrap,
            block_timeout=10.0,
        )
        try:
            receipt = None
            for start in range(0, N_ITEMS, 125):
                receipt = service.ingest_batch(
                    keys[start : start + 125], timestamps[start : start + 125]
                )
            assert service.wait_for(receipt.seqno, timeout=30)
            assert service.drain(timeout=30)
            assert all(event.fired for event in controller.events)
            health = service.health()
            assert health["healthy"] is True
            assert health["watermark"] == health["acked_seqno"]
            stats = service.stats()["supervisor"]
            assert stats["1"]["rebuilds"] >= 1
            assert stats["2"]["rebuilds"] >= 1
            assert_exact_recovery(service, keys, timestamps)
        finally:
            service.close(force=True)

    def test_rebuild_metrics_and_state_gauge(self, tmp_path):
        TELEMETRY.registry.reset()
        TELEMETRY.enable()
        try:
            keys, timestamps = stream(1000)
            controller = ChaosController(
                [ChaosEvent("kill", shard=0, at_items=50)]
            )
            service = ShardedSketchService(
                factory,
                NUM_SHARDS,
                seed=SEED,
                directory=tmp_path / "state",
                durable_options={"fsync_policy": "always"},
                supervise=True,
                supervisor_options={"backoff_base": 0.01, "poll_interval": 0.02},
                sketch_wrapper=controller.wrap,
                block_timeout=10.0,
            )
            try:
                service.ingest_batch(keys, timestamps)
                assert service.drain(timeout=30)
                assert wait_until(
                    lambda: service.health()["shard_states"]["0"] == "HEALTHY"
                )
                registry = TELEMETRY.registry
                assert registry.counter(
                    "service_rebuilds_total", shard="0"
                ).value >= 1
                assert registry.gauge(
                    "service_shard_state", shard="0"
                ).value == 0  # HEALTHY encodes as 0
                assert registry.counter(
                    "service_chaos_events_total", kind="kill"
                ).value == 1
            finally:
                service.close(force=True)
        finally:
            TELEMETRY.disable()
            TELEMETRY.registry.reset()


class TestCircuitBreaker:
    def test_repeated_kills_open_the_circuit(self, tmp_path):
        """Kills on every apply exhaust max_rebuilds: the shard parks FAILED."""
        keys, timestamps = stream(2000)
        # one kill per attempt, far more events than allowed rebuilds
        controller = ChaosController(
            [ChaosEvent("kill", shard=1, at_items=1) for _ in range(50)]
        )
        service = ShardedSketchService(
            factory,
            NUM_SHARDS,
            seed=SEED,
            directory=tmp_path / "state",
            durable_options={"fsync_policy": "always"},
            supervise=True,
            supervisor_options={
                "max_rebuilds": 3,
                "backoff_base": 0.005,
                "backoff_cap": 0.02,
                "poll_interval": 0.01,
            },
            sketch_wrapper=controller.wrap,
            backpressure="error",
        )
        try:
            with pytest.raises(ShardFailedError):
                for start in range(0, 2000, 100):
                    service.ingest_batch(
                        keys[start : start + 100], timestamps[start : start + 100]
                    )
                    time.sleep(0.01)
                # ingest alone may finish before the circuit opens; a
                # consistency wait must then surface the dead shard
                service.drain(timeout=30)
            assert wait_until(
                lambda: service.health()["shard_states"]["1"] == "FAILED"
            )
            health = service.health()
            assert health["healthy"] is False
            stats = health["supervisor"]["1"]
            assert stats["state"] == "FAILED"
            assert stats["attempts"] == 3
        finally:
            service.close(force=True)

    def test_non_durable_supervised_shard_fails_terminally(self):
        """Without a durable store there is nothing to rebuild from."""
        keys, timestamps = stream(500)
        controller = ChaosController([ChaosEvent("kill", shard=1, at_items=1)])
        service = ShardedSketchService(
            factory,
            NUM_SHARDS,
            seed=SEED,
            supervise=True,
            supervisor_options={"poll_interval": 0.01},
            sketch_wrapper=controller.wrap,
            backpressure="error",
        )
        try:
            service.ingest_batch(keys, timestamps)
            assert wait_until(
                lambda: service.health()["shard_states"]["1"] == "FAILED"
            )
            with pytest.raises(ShardFailedError):
                service.drain(timeout=10)
        finally:
            service.close(force=True)
