"""Explain-plan fidelity: plans list exactly what the structures hold.

The plan hooks (``plan_at``/``plan_since``) must be a faithful account of
the read, not a guess: hypothesis drives random monotone streams and query
times and cross-checks every plan against the structure's actual contents —
``checkpoints_between`` for the chain, ``node_metadata`` plus an
independent re-computation of the greedy cover for the merge tree, and a
transparent counting sketch whose merged total must equal the plan's
``covered_items`` exactly.  Coordinator- and service-level ``explain=True``
behaviour (answer equivalence, cache-hit plans, per-shard entries) is
covered at the bottom.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ChainMisraGries, CheckpointChain, MergeTreePersistence
from repro.service import QueryPlan, ShardedSketchService, ShardPlan
from repro.sketches.misra_gries import MisraGries


class CountingSketch:
    """A transparent mergeable sketch: its state is the exact item count."""

    def __init__(self):
        self.total = 0

    def update(self, value, weight=1.0):
        self.total += 1

    def merge(self, other):
        self.total += other.total

    def memory_bytes(self):
        return 8


def monotone_stream():
    """Lists of positive time gaps; cumsum gives a non-decreasing stream."""
    return st.lists(
        st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
        min_size=1,
        max_size=120,
    )


query_offset = st.floats(min_value=-2.0, max_value=8.0, allow_nan=False)


class TestCheckpointChainPlanFidelity:
    @given(gaps=monotone_stream(), offset=query_offset, eps=st.sampled_from([0.05, 0.3]))
    @settings(max_examples=60, deadline=None)
    def test_plan_names_exactly_the_answering_checkpoint(self, gaps, offset, eps):
        chain = CheckpointChain(lambda: MisraGries(k=8), eps=eps)
        times = np.cumsum(gaps)
        for step, t in enumerate(times):
            chain.update(step % 5, float(t))
        t_query = float(times[0] + offset)
        plan = chain.plan_at(t_query)
        stored = list(chain.checkpoints())
        assert plan["structure"] == "checkpoint_chain"
        assert plan["checkpoints_stored"] == len(stored) == chain.num_checkpoints()
        answer = chain.sketch_at(t_query)
        if plan["source"] == "live":
            assert answer is chain.live
            assert plan["sealed_read"] == 0 and plan["live_partial"] == 1
            assert plan["error_bound"] == 0.0
        elif plan["source"] == "checkpoint":
            index = plan["checkpoint_index"]
            ts, snapshot = stored[index]
            # the named checkpoint is the one the query returns...
            assert answer is snapshot
            assert plan["checkpoint_timestamp"] == ts <= t_query
            # ...and it is the *last* one at or before the query time
            later = [s for s, _ in stored[index + 1:] if s <= t_query]
            assert later == []
            assert ts in chain.checkpoints_between(ts, t_query)
            assert plan["sealed_read"] == 1 and plan["live_partial"] == 0
            assert plan["error_bound"] == eps
        else:
            assert plan["source"] == "empty"
            assert answer is None
            assert chain.checkpoints_between(float("-inf"), t_query) == []

    def test_checkpoints_between_is_inclusive_range(self):
        chain = CheckpointChain(lambda: MisraGries(k=4), eps=0.5)
        for step in range(20):
            chain.update(step % 3, float(step))
        all_ts = [ts for ts, _ in chain.checkpoints()]
        assert chain.checkpoints_between(all_ts[0], all_ts[-1]) == all_ts
        assert chain.checkpoints_between(all_ts[-1] + 1, all_ts[-1] + 2) == []


def reference_cover_at(metadata, block, timestamp):
    """Independent greedy ATTP cover over node metadata (largest-first)."""
    usable = [node for node in metadata if node["t_end"] <= timestamp]
    by_start = {}
    for node in usable:
        best = by_start.get(node["start"])
        if best is None or node["size"] > best["size"]:
            by_start[node["start"]] = node
    cover, position = [], 0
    while position in by_start:
        node = by_start[position]
        cover.append(node)
        position = node["end"]
    return cover


def reference_cover_since(metadata, sealed_edge, timestamp, block_size):
    """Independent BITP walk (largest-first back from the sealed edge)."""
    usable = [node for node in metadata if node["t_start"] >= timestamp]
    by_end = {}
    for node in usable:
        best = by_end.get(node["end"])
        if best is None or node["size"] > best["size"]:
            by_end[node["end"]] = node
    cover, position = [], sealed_edge
    while position in by_end:
        node = by_end[position]
        cover.append(node)
        position = node["start"]
    boundary = None
    for node in metadata:
        if node["end"] == position and (
            boundary is None or node["size"] < boundary["size"]
        ):
            boundary = node
    if boundary is not None and not (
        boundary["size"] <= block_size
        and boundary["t_end"] >= timestamp > boundary["t_start"]
    ):
        boundary = None
    return cover, boundary


class TestMergeTreePlanFidelity:
    @given(gaps=monotone_stream(), offset=query_offset)
    @settings(max_examples=60, deadline=None)
    def test_attp_plan_blocks_are_exactly_the_greedy_cover(self, gaps, offset):
        tree = MergeTreePersistence(CountingSketch, eps=0.2, mode="attp", block_size=4)
        times = np.cumsum(gaps)
        for step, t in enumerate(times):
            tree.update(step, float(t))
        t_query = float(times[0] + offset)
        plan = tree.plan_at(t_query)
        metadata = tree.node_metadata()
        # every listed block is a stored node, and the list *is* the cover
        expected = reference_cover_at(metadata, tree.block_size, t_query)
        assert plan["blocks"] == expected
        for block in plan["blocks"]:
            assert block in metadata
            assert block["t_end"] <= t_query
        # blocks tile [0, position) left to right without gaps or overlap
        position = 0
        for block in plan["blocks"]:
            assert block["start"] == position
            position = block["end"]
        assert plan["sealed_read"] == len(plan["blocks"])
        assert plan["nodes_stored"] == tree.num_nodes() == len(metadata)
        # the counting sketch makes coverage exact: what the query merges
        # is precisely the items the plan claims were covered
        assert tree.sketch_at(t_query).total == plan["covered_items"]

    @given(gaps=monotone_stream(), offset=query_offset)
    @settings(max_examples=60, deadline=None)
    def test_bitp_plan_blocks_are_exactly_the_suffix_cover(self, gaps, offset):
        tree = MergeTreePersistence(CountingSketch, eps=0.2, mode="bitp", block_size=4)
        times = np.cumsum(gaps)
        for step, t in enumerate(times):
            tree.update(step, float(t))
        t_query = float(times[0] + offset)
        plan = tree.plan_since(t_query)
        metadata = tree.node_metadata()
        expected, boundary = reference_cover_since(
            metadata, tree._block_start, t_query, tree.block_size
        )
        assert plan["blocks"] == expected
        assert plan["boundary"] == boundary
        for block in plan["blocks"]:
            assert block in metadata
            assert block["t_start"] >= t_query
        if plan["boundary"] is not None:
            assert plan["boundary"] in metadata
            assert plan["boundary"]["t_end"] >= t_query > plan["boundary"]["t_start"]
        assert plan["sealed_read"] == len(plan["blocks"]) + (
            1 if plan["boundary"] is not None else 0
        )
        assert tree.sketch_since(t_query).total == plan["covered_items"]

    def test_plan_mode_guards(self):
        attp = MergeTreePersistence(CountingSketch, eps=0.5, mode="attp")
        bitp = MergeTreePersistence(CountingSketch, eps=0.5, mode="bitp")
        with pytest.raises(RuntimeError):
            attp.plan_since(0.0)
        with pytest.raises(RuntimeError):
            bitp.plan_at(0.0)


def mg_factory():
    return ChainMisraGries(eps=0.01)


def chain_factory():
    return CheckpointChain(lambda: MisraGries(k=16), eps=0.2)


class TestServiceExplain:
    def test_explain_returns_answer_and_plan(self):
        with ShardedSketchService(mg_factory, num_shards=3, cache_size=0) as service:
            service.ingest_batch(list(range(30)), list(range(30)))
            service.drain()
            plain = service.estimate_at(5, 20.0)
            answer, plan = service.estimate_at(5, 20.0, explain=True)
            assert answer == plain
            assert isinstance(plan, QueryPlan)
            assert plan.method == "estimate_at"
            assert plan.cache_hit is False
            assert plan.wall_seconds > 0
            assert plan.watermark == service.watermark()

    def test_single_shard_query_has_one_shard_plan(self):
        with ShardedSketchService(mg_factory, num_shards=4) as service:
            service.ingest_batch(list(range(40)), list(range(40)))
            service.drain()
            _, plan = service.estimate_at(7, 30.0, explain=True)
            assert plan.shard is not None
            assert len(plan.shards) == 1
            (shard_plan,) = plan.shards
            assert isinstance(shard_plan, ShardPlan)
            assert shard_plan.shard == plan.shard
            assert shard_plan.wall_seconds >= 0

    def test_fanout_explain_covers_every_shard(self):
        with ShardedSketchService(
            mg_factory, num_shards=3, partition="round_robin"
        ) as service:
            service.ingest_batch(list(range(30)), list(range(30)))
            service.drain()
            _, plan = service.estimate_at(5, 20.0, explain=True)
            assert plan.shard is None
            assert [shard_plan.shard for shard_plan in plan.shards] == [0, 1, 2]

    def test_chain_shard_plans_carry_checkpoint_details(self):
        with ShardedSketchService(
            chain_factory, num_shards=2, partition="round_robin"
        ) as service:
            service.ingest_batch(list(range(40)), list(range(40)))
            service.drain()
            sketches, plan = service.query(
                "sketch_at", 20.0, combine="list", explain=True
            )
            assert len(sketches) == len(plan.shards) == 2
            for shard_plan in plan.shards:
                assert shard_plan.structure == "checkpoint_chain"
                details = shard_plan.details
                assert details["source"] in ("live", "checkpoint", "empty")
                assert (
                    details["sealed_read"] + details["live_partial"] >= 1
                )
            assert plan.sealed_reads() + plan.live_partials() >= 2

    def test_cache_hit_plan_has_no_shard_entries(self):
        with ShardedSketchService(mg_factory, num_shards=2) as service:
            service.ingest_batch(list(range(20)), list(range(20)))
            service.drain()
            _, first = service.estimate_at(3, 10.0, explain=True)
            _, second = service.estimate_at(3, 10.0, explain=True)
            assert first.cache_hit is False
            assert second.cache_hit is True
            assert second.shards == ()

    def test_explain_does_not_change_cached_answer_shape(self):
        with ShardedSketchService(mg_factory, num_shards=2) as service:
            service.ingest_batch(list(range(20)), list(range(20)))
            service.drain()
            answer, _ = service.estimate_at(4, 15.0, explain=True)
            assert service.estimate_at(4, 15.0) == answer

    def test_plan_without_hook_reports_wall_time_only(self):
        # elementwise chains keep per-key histories, not checkpoint/block
        # structures, so they have no plan hook — wall time only
        with ShardedSketchService(
            mg_factory, num_shards=2, partition="round_robin"
        ) as service:
            service.ingest_batch([1, 2, 3, 4], [1, 2, 3, 4])
            service.drain()
            _, plan = service.estimate_at(2, 3.0, explain=True)
            assert plan.shards
            for shard_plan in plan.shards:
                assert shard_plan.details is None
                assert shard_plan.structure is None
                assert shard_plan.wall_seconds >= 0
            assert "(no plan hook)" in plan.render()

    def test_plan_render_and_as_dict(self):
        with ShardedSketchService(mg_factory, num_shards=2) as service:
            service.ingest_batch(list(range(20)), list(range(20)))
            service.drain()
            _, plan = service.estimate_at(3, 10.0, explain=True)
            text = plan.render()
            assert "estimate_at" in text and "cache=miss" in text
            payload = plan.as_dict()
            assert payload["method"] == "estimate_at"
            assert len(payload["shards"]) == len(plan.shards)

    def test_merged_sketch_explain(self):
        with ShardedSketchService(
            lambda: MergeTreePersistence(CountingSketch, eps=0.2, block_size=4),
            num_shards=2,
            partition="round_robin",
        ) as service:
            service.ingest_batch(list(range(32)), list(range(32)))
            service.drain()
            merged, plan = service.merged_sketch_at(31.0, explain=True)
            assert plan.method == "sketch_at"
            assert plan.combine == "merge"
            assert len(plan.shards) == 2
            covered = sum(
                shard_plan.details["covered_items"] for shard_plan in plan.shards
            )
            assert merged.total == covered
