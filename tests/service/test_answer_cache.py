"""AnswerCache: namespacing, fair eviction, and cross-service isolation.

The regression that matters (the bug class tenancy makes fatal): two
services sharing one cache and a coordinator-shaped workload — identical
methods, arguments, and watermarks — must never serve each other's
answers.  Before namespacing, ``(method, args, watermark)`` was the whole
key, so two same-shaped services *would* collide.
"""

import numpy as np
import pytest

from repro.core import ChainMisraGries
from repro.service import AnswerCache, ShardedSketchService
from repro.service.coordinator import _MISS


def mg_factory():
    return ChainMisraGries(eps=0.01)


class TestAnswerCacheUnit:
    def test_get_miss_is_sentinel_not_none(self):
        cache = AnswerCache(4)
        assert cache.get("ns", "k") is _MISS
        cache.put("ns", "k", None)
        assert cache.get("ns", "k") is None  # cached None is a hit

    def test_keys_never_cross_namespaces(self):
        cache = AnswerCache(8)
        cache.put("a", ("q", 1), "answer-a")
        cache.put("b", ("q", 1), "answer-b")
        assert cache.get("a", ("q", 1)) == "answer-a"
        assert cache.get("b", ("q", 1)) == "answer-b"
        assert len(cache) == 2

    def test_capacity_is_global_across_namespaces(self):
        cache = AnswerCache(4)
        for i in range(3):
            cache.put("a", i, i)
        for i in range(3):
            cache.put("b", i, i)
        assert len(cache) == 4

    def test_eviction_hits_largest_partition_first(self):
        cache = AnswerCache(4)
        for i in range(4):
            cache.put("hog", i, i)
        cache.put("small", 0, "kept")
        # the hog loses its oldest entry; the small namespace survives
        assert cache.get("small", 0) == "kept"
        assert cache.get("hog", 0) is _MISS
        assert cache.namespace_size("hog") == 3

    def test_lru_within_partition(self):
        cache = AnswerCache(2)
        cache.put("ns", "old", 1)
        cache.put("ns", "new", 2)
        cache.get("ns", "old")  # refresh
        cache.put("ns", "newer", 3)
        assert cache.get("ns", "old") == 1
        assert cache.get("ns", "new") is _MISS

    def test_drop_namespace(self):
        cache = AnswerCache(8)
        cache.put("a", 1, 1)
        cache.put("a", 2, 2)
        cache.put("b", 1, 1)
        assert cache.drop_namespace("a") == 2
        assert cache.drop_namespace("a") == 0
        assert len(cache) == 1
        assert cache.get("b", 1) == 1

    def test_info_and_zero_capacity(self):
        cache = AnswerCache(0)
        cache.put("ns", 1, 1)
        assert len(cache) == 0
        info = AnswerCache(4).info()
        assert info == {"size": 0, "capacity": 4, "namespaces": {}}
        with pytest.raises(ValueError):
            AnswerCache(-1)


class TestSharedCacheIsolation:
    """Two services, one cache, identical workload shape — no bleed."""

    def _twin_services(self, cache):
        a = ShardedSketchService(mg_factory, num_shards=2, cache=cache)
        b = ShardedSketchService(mg_factory, num_shards=2, cache=cache)
        return a, b

    def test_identical_workload_shape_cannot_cross_services(self):
        cache = AnswerCache(64)
        a, b = self._twin_services(cache)
        try:
            timestamps = np.arange(100, dtype=float)
            # same keys, same watermark progression — the cache keys are
            # identical in everything but the namespace
            a.ingest_batch(np.full(100, 7, dtype=np.int64), timestamps)
            b.ingest_batch(np.full(100, 9, dtype=np.int64), timestamps)
            assert a.drain(timeout=30) and b.drain(timeout=30)
            ans_a = a.estimate_at(7, 99.0)
            ans_b = b.estimate_at(7, 99.0)  # same question, other service
            assert ans_a == pytest.approx(100.0, abs=2.0)
            assert ans_b == pytest.approx(0.0, abs=2.0)
            # and the cached second reads stay isolated too
            assert a.estimate_at(7, 99.0) == ans_a
            assert b.estimate_at(7, 99.0) == ans_b
        finally:
            a.close()
            b.close()

    def test_namespaces_are_unique_by_default(self):
        cache = AnswerCache(64)
        a, b = self._twin_services(cache)
        try:
            assert a.cache_info()["namespace"] != b.cache_info()["namespace"]
        finally:
            a.close()
            b.close()

    def test_explicit_namespace_collision_is_callers_choice(self):
        # sharing a namespace deliberately (e.g. replicas of one logical
        # service) is allowed — the isolation default is what changed
        cache = AnswerCache(64)
        a = ShardedSketchService(
            mg_factory, num_shards=2, cache=cache, cache_namespace="same"
        )
        b = ShardedSketchService(
            mg_factory, num_shards=2, cache=cache, cache_namespace="same"
        )
        try:
            assert a.cache_info()["namespace"] == "same"
            assert b.cache_info()["namespace"] == "same"
        finally:
            a.close()
            b.close()

    def test_cache_info_reports_shared_cache(self):
        cache = AnswerCache(64)
        a, b = self._twin_services(cache)
        try:
            a.ingest_batch(np.array([1], dtype=np.int64), np.array([0.0]))
            a.drain(timeout=30)
            a.estimate_at(1, 0.0)
            info = a.cache_info()
            assert info["capacity"] == 64
            assert info["namespace_size"] >= 1
            assert cache.namespace_size(info["namespace"]) == info["namespace_size"]
        finally:
            a.close()
            b.close()
