"""Spill → reload fidelity for the multi-tenant facade.

Three escalating guarantees:

* **bit-identity** (hypothesis): for arbitrary tenant streams, every
  answer after a spill + transparent reload equals the pre-spill answer
  exactly — not approximately;
* **staged ingest**: a tenant with items still sitting in its producer
  staging buffer spills those items too (close flushes the stage before
  snapshotting), so spill never loses acked-but-unrouted data;
* **crash during spill** (``-m crash``): a process kill at any
  filesystem op inside the spill window recovers to the exact pre-spill
  answers — spill is drain + snapshot + close over already-durable
  state, so a crash mid-spill can neither lose nor invent items.

``ChainCountMin`` is the shard sketch throughout: its ATTP answers are
append-stable, which turns "bit-identical" into plain ``==``.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ChainCountMin
from repro.durability import FaultPlan, FaultyFilesystem, SimulatedCrash
from repro.service import MultiTenantService, ShardFailedError

UNIVERSE = 23


def factory():
    return ChainCountMin(width=128, depth=2, eps_ckpt=0.01, seed=3)


def probe(svc, tenant, horizon):
    times = (horizon * 0.25, horizon * 0.5, horizon)
    answers = {
        (key, t): svc.estimate_at(tenant, key, t)
        for key in range(0, UNIVERSE, 3)
        for t in times
    }
    answers["total"] = svc.total_weight_at(tenant, horizon)
    return answers


class TestSpillBitIdentity:
    @given(
        streams=st.lists(
            st.lists(
                st.integers(0, UNIVERSE - 1), min_size=1, max_size=120
            ),
            min_size=1,
            max_size=3,
        )
    )
    @settings(max_examples=8, deadline=None)
    def test_reload_reproduces_every_answer(self, streams):
        with tempfile.TemporaryDirectory() as scratch:
            svc = MultiTenantService(
                factory, directory=Path(scratch), num_shards=2
            )
            with svc:
                horizons = {}
                for i, keys in enumerate(streams):
                    tenant = f"t{i}"
                    values = np.asarray(keys, dtype=np.int64)
                    ts = np.arange(values.size, dtype=float)
                    svc.ingest_batch(tenant, values, ts)
                    horizons[tenant] = float(values.size)
                assert svc.drain(timeout=60)
                before = {
                    tenant: probe(svc, tenant, horizon)
                    for tenant, horizon in horizons.items()
                }
                for tenant in horizons:
                    assert svc.spill(tenant)
                assert svc.resident_tenants() == []
                for tenant, horizon in horizons.items():
                    assert probe(svc, tenant, horizon) == before[tenant]
                    assert svc.registry.get(tenant).reloads == 1

    @given(
        keys=st.lists(st.integers(0, UNIVERSE - 1), min_size=1, max_size=80)
    )
    @settings(max_examples=8, deadline=None)
    def test_spill_flushes_inflight_staging_buffer(self, keys):
        # the staging buffer is far larger than the stream: nothing has
        # been routed to a shard when the spill lands
        with tempfile.TemporaryDirectory() as scratch:
            svc = MultiTenantService(
                factory,
                directory=Path(scratch),
                num_shards=2,
                service_options={"ingest_buffer_items": 100_000},
            )
            with svc:
                values = np.asarray(keys, dtype=np.int64)
                ts = np.arange(values.size, dtype=float)
                receipt = svc.ingest_batch("a", values, ts)
                assert receipt.accepted == values.size
                assert svc.spill("a")
                # never-spilled reference: one sketch fed the whole stream
                reference = factory()
                reference.update_batch(values, ts)
                horizon = float(values.size)
                for key in range(UNIVERSE):
                    assert svc.estimate_at(
                        "a", key, horizon
                    ) == reference.estimate_at(key, horizon)

    def test_reopen_after_staged_spill(self, tmp_path):
        svc = MultiTenantService(
            factory,
            directory=tmp_path,
            service_options={"ingest_buffer_items": 100_000},
        )
        with svc:
            values = np.arange(9, dtype=np.int64) % UNIVERSE
            svc.ingest_batch("a", values, np.arange(9, dtype=float))
            svc.spill("a")
        reopened = MultiTenantService.open(
            tmp_path,
            factory=factory,
            service_options={"ingest_buffer_items": 100_000},
        )
        with reopened:
            assert reopened.total_weight_at("a", 9.0) == 9.0


# -- crash kill-points inside the spill window --------------------------------

N_CRASH_ITEMS = 800
CRASH_SHARDS = 2


def crash_stream():
    keys = np.array(
        [(i * 7) % UNIVERSE for i in range(N_CRASH_ITEMS)], dtype=np.int64
    )
    return keys, np.arange(N_CRASH_ITEMS, dtype=float)


def build_crash_facade(directory, fs):
    return MultiTenantService(
        factory,
        directory=directory,
        num_shards=CRASH_SHARDS,
        fs=fs,
        durable_options={
            "fsync_policy": "always",
            "snapshot_every": 300,
            "segment_bytes": 16 * 1024,
        },
    )


def abandon(svc):
    """Hard kill: stop worker threads, never close the stores."""
    for record in list(svc.registry._records.values()):
        service = record.service
        if service is not None:
            for worker in service._workers:
                try:
                    worker.stop()
                except Exception:
                    pass
    svc._closed = True


def spill_window():
    """Trace a fault-free run; return the op-index span of the spill."""
    keys, ts = crash_stream()
    with tempfile.TemporaryDirectory() as scratch:
        fs = FaultyFilesystem()
        svc = build_crash_facade(Path(scratch) / "root", fs)
        svc.ingest_batch("t", keys, ts)
        assert svc.drain(timeout=60)
        lo = len(fs.ops)
        assert svc.spill("t")
        hi = len(fs.ops)
        svc.close()
    assert hi > lo, "spill produced no filesystem ops"
    return lo, hi


_WINDOW = None


def spill_kill_points():
    global _WINDOW
    if _WINDOW is None:
        _WINDOW = spill_window()
    lo, hi = _WINDOW
    span = max(hi - lo, 1)
    chosen = sorted({lo + (span * k) // 4 for k in range(4)} | {hi - 1})
    return [
        pytest.param(index, mode, id=f"spill-op{index}-{mode}")
        for index in chosen
        for mode in ("before", "after", "torn")
    ]


@pytest.mark.crash
class TestCrashDuringSpill:
    """A kill at any op inside the spill window leaves the tenant
    recoverable with its exact pre-spill answers."""

    @pytest.mark.parametrize("crash_at,mode", spill_kill_points())
    def test_spill_crash_recovers_exact_answers(self, tmp_path, crash_at, mode):
        directory = tmp_path / "root"
        keys, ts = crash_stream()
        fs = FaultyFilesystem(FaultPlan(crash_at=crash_at, crash_mode=mode))
        try:
            svc = build_crash_facade(directory, fs)
            svc.ingest_batch("t", keys, ts)
            settled = svc.drain(timeout=60)
        except (SimulatedCrash, ShardFailedError):
            return  # crashed before the spill: the service sweep owns this
        if not settled or fs.crashed:
            abandon(svc)
            return
        # everything below is durable (drained + fsync always): the spill
        # crash must not change a single answer
        before = probe(svc, "t", float(N_CRASH_ITEMS))
        try:
            svc.spill("t")
        except (SimulatedCrash, ShardFailedError):
            pass
        abandon(svc)
        reopened = MultiTenantService.open(
            directory,
            factory=factory,
            durable_options={
                "fsync_policy": "always",
                "snapshot_every": 300,
                "segment_bytes": 16 * 1024,
            },
        )
        with reopened:
            assert probe(reopened, "t", float(N_CRASH_ITEMS)) == before
