"""Property tests: K-shard service answers vs the single-shard baseline.

The soundness claim behind the whole service layer (ISSUE 4 satellite): for
a random stream and random query timestamps, a ``K``-shard service answer

* is *identical* to the single-shard answer when the combine step is
  deterministic (linear CountMin table addition at the live frontier, HLL
  register-max union), and
* stays within the *combined* error bound — base-sketch error plus the
  persistence (checkpoint / merge-tree) slack over the whole stream —
  otherwise,

for both ATTP (prefix) and BITP (suffix) queries, under both partitioning
modes.  Streams and timestamps are drawn by hypothesis.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ChainMisraGries, CheckpointChain, MergeTreePersistence
from repro.sketches import CountMinSketch, HyperLogLog, KllSketch
from repro.service import ShardedSketchService

EPS_CHAIN = 0.05

stream_params = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**32 - 1),
        "n": st.integers(500, 2_000),
        "universe": st.integers(20, 200),
        "shards": st.integers(2, 4),
        "fraction": st.floats(0.1, 0.95),
    }
)


def make_stream(params):
    rng = np.random.default_rng(params["seed"])
    keys = (rng.zipf(1.4, size=params["n"]) % params["universe"]).astype(np.int64)
    timestamps = np.sort(rng.uniform(0.0, 1000.0, size=params["n"]))
    t = float(np.quantile(timestamps, params["fraction"]))
    return keys, timestamps, t


def run_service(factory, partition, shards, keys, timestamps):
    service = ShardedSketchService(factory, shards, partition=partition)
    with service:
        for start in range(0, len(keys), 256):
            service.ingest_batch(keys[start : start + 256], timestamps[start : start + 256])
        assert service.drain(timeout=60)
        yield service


class TestCountMinAttp:
    @given(params=stream_params)
    @settings(max_examples=15, deadline=None)
    def test_within_combined_bound_and_exact_at_frontier(self, params):
        factory = lambda: CheckpointChain(
            lambda: CountMinSketch(512, 4, seed=9), eps=EPS_CHAIN
        )
        keys, timestamps, t = make_stream(params)
        for service in run_service(factory, "hash", params["shards"], keys, timestamps):
            w_t = int((timestamps <= t).sum())
            eps_cm = np.e / 512
            for key in np.unique(keys)[:10]:
                true = int(((keys == key) & (timestamps <= t)).sum())
                merged = service.merged_sketch_at(t).query(int(key))
                # combined bound: CountMin overestimate + checkpoint slack
                assert true - EPS_CHAIN * w_t - 1e-9 <= merged
                assert merged <= true + eps_cm * w_t + EPS_CHAIN * w_t + 1e-9
            # deterministic at the live frontier: linear tables add exactly
            single = CountMinSketch(512, 4, seed=9)
            single.update_batch(keys)
            frontier = service.merged_sketch_at(float(timestamps[-1]))
            for key in np.unique(keys)[:10]:
                assert frontier.query(int(key)) == single.query(int(key))


class TestCountMinBitp:
    @given(params=stream_params)
    @settings(max_examples=10, deadline=None)
    def test_merge_tree_suffix_within_bound(self, params):
        factory = lambda: MergeTreePersistence(
            lambda: CountMinSketch(512, 4, seed=3), eps=EPS_CHAIN, mode="bitp",
            block_size=32,
        )
        keys, timestamps, t = make_stream(params)
        for service in run_service(factory, "hash", params["shards"], keys, timestamps):
            suffix = keys[timestamps >= t]
            merged = service.merged_sketch_since(t)
            eps_cm = np.e / 512
            n = len(keys)
            for key in np.unique(keys)[:10]:
                true = int((suffix == key).sum())
                estimate = merged.query(int(key))
                # suffix summary may cover up to eps*n extra items before t
                # and carries CountMin overestimate on what it covers
                assert estimate >= true - 1e-9
                assert estimate <= true + eps_cm * n + EPS_CHAIN * n + 1e-9


class TestMisraGriesAttp:
    @given(params=stream_params)
    @settings(max_examples=10, deadline=None)
    def test_estimates_and_recall_within_combined_bound(self, params):
        eps_mg = 0.01
        factory = lambda: ChainMisraGries(eps=eps_mg)
        keys, timestamps, t = make_stream(params)
        for service in run_service(factory, "hash", params["shards"], keys, timestamps):
            prefix = keys[timestamps <= t]
            w_t = prefix.size
            counts = np.bincount(prefix, minlength=params["universe"])
            for key in np.unique(keys)[:10]:
                estimate = service.estimate_at(int(key), t)
                # owner shard holds every occurrence of the key; MG error is
                # eps*W_shard <= eps*W, checkpointing adds another eps*W
                assert estimate <= counts[key] + 1e-9
                assert estimate >= counts[key] - 2 * eps_mg * w_t - len(keys) * 1e-12
            phi = 0.1
            truth = {
                int(k)
                for k in range(params["universe"])
                if counts[k] >= (phi + 2 * eps_mg) * max(w_t, 1)
            }
            reported = {int(k) for k in service.heavy_hitters_at(t, phi)}
            assert truth <= reported


class TestHyperLogLog:
    @given(params=stream_params)
    @settings(max_examples=10, deadline=None)
    def test_register_union_identical_at_frontier(self, params):
        factory = lambda: CheckpointChain(lambda: HyperLogLog(p=10), eps=EPS_CHAIN)
        keys, timestamps, t = make_stream(params)
        for service in run_service(
            factory, "round_robin", params["shards"], keys, timestamps
        ):
            # deterministic merge: register-wise max equals the single-shard
            # registers exactly, for any partition of the stream
            single = HyperLogLog(p=10)
            single.update_batch(keys)
            frontier = service.merged_sketch_at(float(timestamps[-1]))
            assert np.array_equal(frontier._registers, single._registers)
            assert frontier.estimate() == single.estimate()
            # at a random t the snapshot lags by at most the checkpoint
            # slack, so the estimate is bounded by the frontier's
            assert service.cardinality_at(t) <= single.estimate() * 1.3 + 10


class TestKllQuantiles:
    @given(params=stream_params)
    @settings(max_examples=10, deadline=None)
    def test_merged_quantile_within_combined_rank_error(self, params):
        factory = lambda: CheckpointChain(lambda: KllSketch(k=200), eps=EPS_CHAIN)
        keys, timestamps, t = make_stream(params)
        for service in run_service(
            factory, "round_robin", params["shards"], keys, timestamps
        ):
            prefix = np.sort(keys[timestamps <= t])
            if prefix.size < 20:
                return
            phi = 0.5
            answer = service.quantile_at(t, phi)
            # rank of the answer in the true prefix must be within the
            # combined (KLL + checkpoint-slack) rank error of phi
            rank = np.searchsorted(prefix, answer, side="right") / prefix.size
            assert abs(rank - phi) <= 0.05 + 2 * EPS_CHAIN + 10.0 / prefix.size
