"""Process shard backend: shm plumbing, equivalence, crash recovery.

The ``backend="process"`` contract (ISSUE 8): same queueing, consistency,
and failure semantics as the default thread backend, with the shard sketch
living in a forked worker process.  Covered here:

* the transport units — framed pickle pipes, the ref-counted
  :class:`SegmentPool`, and the ``StreamBatch`` <-> shared-memory codec
  (zero-copy read-only views, object-dtype inline fallback);
* **bit-identical equivalence** (hypothesis): for random streams, the
  process-backend service's frontier answers equal the thread-backend
  service's and the single unsharded sketch's, exactly;
* the operational surface — backend validation, ``stats()`` /
  ``health()`` reporting per-shard backend + child PID, manifest
  adoption on ``open()``, query timeouts while a child is busy;
* telemetry wholeness — child-side spans and counters merge into the
  parent registry so one ingest is still one connected trace;
* crash tests (``-m crash``) — ``SIGKILL`` of a worker child mid-stream:
  supervised durable services rebuild to a state bit-identical to a
  fault-free replay; unsupervised workers report the death as a poisoned
  shard rather than hanging.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import ChainCountMin, CheckpointChain, StreamBatch
from repro.service import (
    ProcessShardWorker,
    SHARD_BACKENDS,
    ShardFailedError,
    ShardRouter,
    ShardTimeoutError,
    ShardedSketchService,
)
from repro.service.rpc import (
    ChannelClosed,
    ChildSegmentCache,
    FramedPipe,
    SegmentPool,
    decode_batch,
    encode_batch,
)
from repro.sketches import CountMinSketch
from repro.telemetry.registry import TELEMETRY
from repro.telemetry.spans import SPANS

from tests.service.test_query_equivalence import make_stream, stream_params


def cm_factory():
    return CheckpointChain(lambda: CountMinSketch(256, 3, seed=9), eps=0.05)


def chain_factory():
    return ChainCountMin(width=256, depth=3, eps_ckpt=0.002, seed=5)


class TestFramedPipe:
    def test_round_trip_and_eof(self):
        read_fd, write_fd = os.pipe()
        pipe = FramedPipe(read_fd, write_fd)
        pipe.send((1, "ping", {"payload": list(range(10))}))
        assert pipe.recv() == (1, "ping", {"payload": list(range(10))})
        pipe.close()
        with pytest.raises(ChannelClosed):
            pipe.send((2, "ping", None))

    def test_recv_raises_when_peer_closes(self):
        read_fd, write_fd = os.pipe()
        pipe = FramedPipe(read_fd, None)
        os.close(write_fd)
        with pytest.raises(ChannelClosed):
            pipe.recv()
        pipe.close()


class TestSegmentCodec:
    def test_encode_decode_is_zero_copy_and_read_only(self):
        pool = SegmentPool()
        cache = ChildSegmentCache()
        try:
            batch = StreamBatch(
                np.arange(1000, dtype=np.int64),
                np.arange(1000, dtype=np.float64),
                np.ones(1000, dtype=np.float64),
            )
            descriptor = encode_batch(batch, pool)
            assert descriptor["kind"] == "shm"
            decoded = decode_batch(descriptor, cache)
            assert np.array_equal(decoded.values, batch.values)
            assert np.array_equal(decoded.timestamps, batch.timestamps)
            assert np.array_equal(decoded.weights, batch.weights)
            for column in (decoded.values, decoded.timestamps, decoded.weights):
                assert not column.flags.writeable
            pool.release(descriptor["segment"])
        finally:
            cache.close()
            pool.close()

    def test_pool_recycles_released_segments(self):
        pool = SegmentPool()
        try:
            first = pool.acquire(100)
            name = first.shm.name
            pool.release(name)
            second = pool.acquire(200)
            assert second.shm.name == name
            assert pool.stats()["created"] == 1
            assert pool.stats()["recycled"] == 1
            # segment sizes are powers of two with a 64 KiB floor
            assert second.size >= 1 << 16
            assert second.size & (second.size - 1) == 0
        finally:
            pool.close()

    def test_object_dtype_ships_inline(self):
        pool = SegmentPool()
        try:
            batch = StreamBatch(
                np.array([("a", 1), "b", None], dtype=object),
                np.arange(3, dtype=np.float64),
                None,
            )
            descriptor = encode_batch(batch, pool)
            assert descriptor["kind"] == "inline"
            assert decode_batch(descriptor, ChildSegmentCache()) is batch
            assert pool.stats()["created"] == 0
        finally:
            pool.close()


class TestBackendSelection:
    def test_known_backends(self):
        assert SHARD_BACKENDS == ("thread", "process")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ShardedSketchService(cm_factory, 2, backend="green-threads")

    def test_child_build_error_surfaces_at_construction(self):
        def broken():
            raise ZeroDivisionError("no sketch for you")

        with pytest.raises(ZeroDivisionError, match="no sketch for you"):
            ShardedSketchService(broken, 1, backend="process")

    def test_stats_and_health_report_backend_and_pid(self):
        with ShardedSketchService(cm_factory, 2, backend="process") as service:
            stats = service.stats()
            health = service.health()
            for shard in (0, 1):
                assert stats["shards"][shard]["backend"] == "process"
                entry = health["shard_backends"][str(shard)]
                assert entry["backend"] == "process"
                assert entry["pid"] not in (None, os.getpid())
                assert entry["pid"] > 0
        with ShardedSketchService(cm_factory, 1) as service:
            entry = service.health()["shard_backends"]["0"]
            assert entry == {"backend": "thread", "pid": None}

    def test_busy_child_query_times_out(self):
        with ShardedSketchService(
            chain_factory, 1, backend="process", call_timeout=0.1
        ) as service:
            service.ingest_batch([1, 2, 3], [1.0, 2.0, 3.0])
            assert service.drain(timeout=30)
            service.estimate_at(1, 3.0)  # prime the supports cache
            worker = service._workers[0]
            sleeper = threading.Thread(
                target=lambda: worker._rpc.call("sleep", {"seconds": 0.8}),
                daemon=True,
            )
            sleeper.start()
            time.sleep(0.05)  # let the sleep command reach the child
            with pytest.raises(ShardTimeoutError, match="did not complete"):
                service.estimate_at(2, 3.0)
            sleeper.join(timeout=10)


class TestProcessEquivalence:
    @given(params=stream_params)
    @settings(max_examples=5, deadline=None)
    def test_frontier_identical_to_thread_and_single(self, params):
        keys, timestamps, t = make_stream(params)
        probes = [int(k) for k in np.unique(keys)[:8]]
        tables, answers = {}, {}
        for backend in SHARD_BACKENDS:
            with ShardedSketchService(
                cm_factory, params["shards"], backend=backend
            ) as service:
                for start in range(0, len(keys), 256):
                    service.ingest_batch(
                        keys[start : start + 256],
                        timestamps[start : start + 256],
                    )
                assert service.drain(timeout=60)
                frontier = service.merged_sketch_at(float(timestamps[-1]))
                tables[backend] = frontier._table.copy()
                answers[backend] = [frontier.query(key) for key in probes]
        # process == thread, bit for bit, and both == the unsharded sketch
        assert np.array_equal(tables["process"], tables["thread"])
        assert answers["process"] == answers["thread"]
        single = CountMinSketch(256, 3, seed=9)
        single.update_batch(keys)
        assert answers["process"] == [single.query(key) for key in probes]


class TestManifestAdoption:
    def test_open_adopts_process_backend(self, tmp_path):
        with ShardedSketchService(
            chain_factory, 2, backend="process", directory=tmp_path
        ) as service:
            service.ingest_batch(np.arange(50) % 7, np.arange(50, dtype=float))
            assert service.flush(timeout=30)
            expected = service.estimate_at(3, 49.0)
        with ShardedSketchService.open(chain_factory, tmp_path) as reopened:
            assert reopened.backend == "process"
            assert reopened.estimate_at(3, 49.0) == expected


@pytest.fixture()
def enabled_telemetry():
    TELEMETRY.registry.reset()
    SPANS.clear()
    TELEMETRY.enable()
    yield
    TELEMETRY.disable()
    TELEMETRY.registry.reset()
    SPANS.clear()


class TestTelemetryAcrossTheForkBoundary:
    def test_one_ingest_is_one_connected_trace(self, enabled_telemetry):
        with ShardedSketchService(
            cm_factory, 2, backend="process", partition="round_robin"
        ) as service:
            service.ingest_batch(list(range(8)), [float(i) for i in range(8)])
            assert service.drain(timeout=30)
            pids = {
                entry["pid"]
                for entry in service.health()["shard_backends"].values()
            }
        records = SPANS.snapshot()
        (root,) = [r for r in records if r.name == "service.ingest_batch"]
        trace = SPANS.trace(root.trace_id)
        names = [r.name for r in trace]
        # child-side applies and parent-side ships joined the same trace
        assert names.count("service.apply_batch") == 2
        assert names.count("service.shard_ship") == 2
        ids = {r.span_id for r in trace}
        for record in trace:
            assert record.parent_id is None or record.parent_id in ids
        # the backend info gauge carries each child's PID
        for shard, worker in enumerate(service._workers):
            gauge = TELEMETRY.gauge(
                "service_shard_backend", shard=str(shard), backend="process"
            )
            assert gauge.value in pids


@pytest.mark.crash
class TestChildCrash:
    N_ITEMS = 2_000
    NUM_SHARDS = 2
    SEED = 13

    def stream(self):
        keys = np.array(
            [(i * i) % 41 for i in range(self.N_ITEMS)], dtype=np.int64
        )
        return keys, np.arange(self.N_ITEMS, dtype=float)

    def test_sigkill_mid_stream_rebuilds_exactly(self, tmp_path):
        """A SIGKILLed child is rebuilt from WAL+snapshot with no loss.

        Unlike the thread backend's SimulatedCrash (which always aborts
        before the WAL append), the signal can land anywhere — including
        mid-append — so this also exercises the parent's on-disk
        landed-or-not accounting and torn-tail recovery.
        """
        keys, timestamps = self.stream()
        with ShardedSketchService(
            chain_factory,
            self.NUM_SHARDS,
            seed=self.SEED,
            backend="process",
            directory=tmp_path,
            durable_options={"fsync_policy": "always"},
            supervise=True,
            supervisor_options={"backoff_base": 0.01, "poll_interval": 0.02},
        ) as service:
            victim = service._workers[0].pid
            for start in range(0, self.N_ITEMS, 125):
                service.ingest_batch(
                    keys[start : start + 125], timestamps[start : start + 125]
                )
                if start == 500:
                    os.kill(victim, signal.SIGKILL)
            assert service.drain(timeout=60)
            deadline = time.monotonic() + 30
            while not service.health()["healthy"]:
                assert time.monotonic() < deadline, service.health()
                time.sleep(0.02)
            assert service._workers[0].pid != victim
            # every shard's recovered state equals a fault-free replay
            router = ShardRouter(self.NUM_SHARDS, mode="hash", seed=self.SEED)
            shard_of = router.shards_of(keys)
            for shard, worker in enumerate(service._workers):
                reference = chain_factory()
                reference.update_batch(
                    keys[shard_of == shard], timestamps[shard_of == shard]
                )
                recovered = worker.sketch_state()
                assert np.array_equal(
                    recovered._cm.counters(), reference._cm.counters()
                )
                assert recovered.num_checkpoints() == reference.num_checkpoints()

    def test_unsupervised_death_poisons_the_shard(self):
        keys, timestamps = self.stream()
        service = ShardedSketchService(
            chain_factory, 1, seed=self.SEED, backend="process"
        )
        try:
            service.ingest_batch(keys[:100], timestamps[:100])
            assert service.drain(timeout=30)
            os.kill(service._workers[0].pid, signal.SIGKILL)
            deadline = time.monotonic() + 30
            with pytest.raises(ShardFailedError):
                while time.monotonic() < deadline:
                    service.ingest_batch(
                        keys[100:200], timestamps[100:200]
                    )
                    time.sleep(0.02)
                raise AssertionError("dead child never surfaced as a failure")
            assert service._workers[0].failure is not None
        finally:
            service.close(force=True)

    def test_idle_death_counts_unshipped_telemetry_deltas(
        self, enabled_telemetry
    ):
        """A killed child's unshipped metric deltas are counted, not lost.

        Query replies carry no telemetry piggyback, so child-side counters
        bumped while *serving queries* stay unshipped until the next apply
        ack or pull.  When the child dies idle (the ``_on_channel_dead``
        path — nothing in flight, detection comes from the receiver thread
        hitting EOF), that window of deltas is gone; the parent must
        estimate and expose the loss in
        ``service_telemetry_delta_lost_total`` instead of silently
        under-reporting.
        """
        keys, timestamps = self.stream()
        service = ShardedSketchService(
            chain_factory, 1, seed=self.SEED, backend="process"
        )
        try:
            service.ingest_batch(keys[:100], timestamps[:100])
            assert service.drain(timeout=30)
            # queries bump child counters but ship nothing back (distinct
            # keys — identical queries would be answered from the LRU cache
            # without ever touching the child)
            for key in (0, 1, 4):
                service.estimate_at(key, 50.0)
            worker = service._workers[0]
            assert worker._unshipped_ops >= 3
            os.kill(worker.pid, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while worker.failure is None:
                assert (
                    time.monotonic() < deadline
                ), "idle child death never detected"
                time.sleep(0.02)
            lost = TELEMETRY.counter(
                "service_telemetry_delta_lost_total", shard=0
            )
            assert lost.value >= 3
            assert worker._unshipped_ops == 0  # tallied exactly once
        finally:
            service.close(force=True)
