"""Service-level chaos soak: fault schedules, exact recovery, honest traces.

The soak tests (``-m chaos``, the CI chaos job) drive a supervised durable
service through seeded kill/slow/wedge schedules composed with rate-based
WAL I/O errors, then assert the ISSUE 6 bar: no acknowledged seqno lost,
every rebuilt shard bit-identical to a fault-free replay of its sub-stream,
no producer blocked past its deadline, and every attached certificate
internally consistent.  Set ``REPRO_CHAOS_QUICK=1`` for the single-seed
quick mode CI runs on every push.

The unmarked unit tests (schedule determinism, validation) run in tier-1.
"""

import json
import os
import pathlib

import numpy as np
import pytest

from repro.core import ChainCountMin
from repro.service import (
    ChaosController,
    ChaosEvent,
    ChaosFilesystem,
    random_chaos_schedule,
    run_chaos_soak,
)

QUICK = os.environ.get("REPRO_CHAOS_QUICK", "") not in ("", "0")
SOAK_SEEDS = (3,) if QUICK else (3, 7, 11)
N_ITEMS = 3000 if QUICK else 5000
NUM_SHARDS = 4
SEED = 13


def factory():
    return ChainCountMin(width=256, depth=3, eps_ckpt=0.002, seed=5)


def fingerprint(sketch):
    return (sketch._cm.counters().copy(), sketch.num_checkpoints())


def stream(n=N_ITEMS):
    keys = np.array([(i * i) % 61 for i in range(n)], dtype=np.int64)
    timestamps = np.arange(n, dtype=np.float64)
    return keys, timestamps


class TestScheduleUnit:
    def test_random_schedule_is_deterministic(self):
        first = random_chaos_schedule(4, 5000, seed=9)
        second = random_chaos_schedule(4, 5000, seed=9)
        assert first == second
        assert first != random_chaos_schedule(4, 5000, seed=10)

    def test_schedule_offsets_land_mid_substream(self):
        per_shard = 5000 // 4
        for event in random_chaos_schedule(4, 5000, seed=0, kills=5, slows=5):
            assert 0 <= event.shard < 4
            assert 1 <= event.at_items < per_shard

    def test_event_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ChaosEvent("melt", shard=0, at_items=1)

    def test_filesystem_rejects_bad_error_rate(self):
        with pytest.raises(ValueError):
            ChaosFilesystem(error_rate=1.0)

    def test_controller_trace_roundtrips(self, tmp_path):
        controller = ChaosController([])
        controller.record("event", shard=2, detail="x")
        controller.record("anomaly", detail="y")
        path = tmp_path / "trace.jsonl"
        controller.write_trace(path)
        entries = [json.loads(line) for line in path.read_text().splitlines()]
        assert [entry["kind"] for entry in entries] == ["event", "anomaly"]
        assert all("t" in entry for entry in entries)


@pytest.mark.chaos
class TestSoak:
    @pytest.mark.parametrize("chaos_seed", SOAK_SEEDS)
    def test_soak_recovers_exactly(self, tmp_path, chaos_seed):
        keys, timestamps = stream()
        # CI exports REPRO_CHAOS_TRACE_DIR so failed runs can upload the
        # honest JSONL trace as an artifact; locally it lands in tmp_path
        trace_dir = os.environ.get("REPRO_CHAOS_TRACE_DIR")
        if trace_dir:
            base = pathlib.Path(trace_dir)
            base.mkdir(parents=True, exist_ok=True)
        else:
            base = tmp_path
        trace = base / f"chaos-trace-{chaos_seed}.jsonl"
        report = run_chaos_soak(
            tmp_path / "state",
            factory,
            keys,
            timestamps,
            num_shards=NUM_SHARDS,
            seed=SEED,
            arrival_batch=100,
            chaos_seed=chaos_seed,
            wal_error_rate=0.02,
            probe_keys=(1, 7, 30),
            query_every=2,
            fingerprint=fingerprint,
            trace_path=trace,
        )
        assert report["ok"], report["anomalies"]
        assert report["events_fired"] >= 1
        assert report["rebuilds"] >= 1
        entries = [json.loads(line) for line in trace.read_text().splitlines()]
        assert any(entry["kind"] == "event" for entry in entries)

    def test_soak_recovers_exactly_with_process_backend(self, tmp_path):
        """The same chaos bar holds when shards are worker processes.

        Kills become real SIGKILLs of the children (which may land
        mid-WAL-append), slow/wedge become blocking RPCs in the child's
        command loop — recovery must still be exact.
        """
        keys, timestamps = stream(3000)
        report = run_chaos_soak(
            tmp_path / "state",
            factory,
            keys,
            timestamps,
            num_shards=2,
            seed=SEED,
            backend="process",
            arrival_batch=150,
            chaos_seed=5,
            probe_keys=(1, 7, 30),
            query_every=4,
            fingerprint=fingerprint,
            trace_path=tmp_path / "chaos-trace-process.jsonl",
        )
        assert report["ok"], report["anomalies"]
        assert report["events_fired"] >= 1
        assert report["rebuilds"] >= 1

    def test_soak_under_explicit_kill_storm(self, tmp_path):
        """A dense all-kill schedule still converges to exact recovery."""
        keys, timestamps = stream()
        schedule = [
            ChaosEvent("kill", shard=shard, at_items=offset)
            for shard in range(NUM_SHARDS)
            for offset in (150, 400)
        ]
        report = run_chaos_soak(
            tmp_path / "state",
            factory,
            keys,
            timestamps,
            num_shards=NUM_SHARDS,
            seed=SEED,
            arrival_batch=100,
            schedule=schedule,
            fingerprint=fingerprint,
        )
        assert report["ok"], report["anomalies"]
        # chaos disarms when ingest ends, so late offsets on small
        # sub-streams may never fire — but every shard's early kill must
        assert report["events_fired"] >= NUM_SHARDS
        assert report["rebuilds"] >= NUM_SHARDS
