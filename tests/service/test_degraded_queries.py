"""Degraded-mode queries: error certificates, policies, timeouts, caching.

The certificate property test pins the acceptance criterion: for a known
fault (shard ``k`` poisoned after applying its whole sub-stream plus ``j``
in-flight items), the certificate's covered-shard set and covered fraction
are *exactly* computable offline from the router — and must match.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import ChainCountMin
from repro.service import (
    ChaosController,
    ChaosEvent,
    ErrorCertificate,
    ShardFailedError,
    ShardRouter,
    ShardTimeoutError,
    ShardedSketchService,
)

NUM_SHARDS = 4
SEED = 13
N_ITEMS = 2000
EXTRA = 40  # in-flight items parked on the poisoned worker's queue


def factory():
    return ChainCountMin(width=512, depth=3, eps_ckpt=0.002, seed=5)


def stream(n=N_ITEMS):
    keys = np.array([(i * i) % 61 for i in range(n)], dtype=np.int64)
    timestamps = np.arange(n, dtype=np.float64)
    return keys, timestamps


def wait_until(predicate, timeout=20.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture(params=[0, 1, 2, 3])
def poisoned(request, tmp_path):
    """A durable, unsupervised, ``partial="allow"`` service with shard
    ``request.param`` poisoned after a fully drained base stream plus
    ``EXTRA`` re-parked in-flight items; yields the offline-computable
    expectation alongside the live service."""
    kill_shard = request.param
    keys, timestamps = stream()
    router = ShardRouter(NUM_SHARDS, mode="hash", seed=SEED)
    shard_of = router.shards_of(keys)
    applied = {s: int((shard_of == s).sum()) for s in range(NUM_SHARDS)}
    # the kill fires on the first batch beyond the drained base stream
    controller = ChaosController(
        [ChaosEvent("kill", shard=kill_shard, at_items=applied[kill_shard] + 1)]
    )
    service = ShardedSketchService(
        factory,
        NUM_SHARDS,
        seed=SEED,
        directory=tmp_path / "state",
        durable_options={"fsync_policy": "always"},
        partial="allow",
        call_timeout=5.0,
        backpressure="error",
        sketch_wrapper=controller.wrap,
    )
    try:
        service.ingest_batch(keys, timestamps)
        assert service.drain(timeout=30)
        owned = keys[shard_of == kill_shard]
        extra_keys = np.repeat(owned[:1], EXTRA)
        extra_ts = np.full(EXTRA, float(N_ITEMS), dtype=np.float64)
        service.ingest_batch(extra_keys, extra_ts)
        # the poisoned worker re-parks the never-logged batch on its queue
        assert wait_until(
            lambda: service._workers[kill_shard].failure is not None
        )
        assert service._workers[kill_shard].pending_items == EXTRA
        yield {
            "service": service,
            "kill_shard": kill_shard,
            "applied": applied,
            "keys": keys,
            "owned_key": int(owned[0]),
        }
    finally:
        service.close(force=True)


class TestCertificateProperties:
    def test_fanout_certificate_matches_fault_schedule(self, poisoned):
        service = poisoned["service"]
        k = poisoned["kill_shard"]
        applied = poisoned["applied"]
        answer, plan = service.query(
            "estimate_at", 7, float(N_ITEMS), combine="sum", explain=True
        )
        certificate = plan.certificate
        assert isinstance(certificate, ErrorCertificate)
        assert certificate.covered_shards == tuple(
            s for s in range(NUM_SHARDS) if s != k
        )
        assert certificate.missing_shards == (k,)
        assert certificate.reasons == ("failed",)
        covered_items = sum(applied[s] for s in range(NUM_SHARDS) if s != k)
        missing_items = applied[k] + EXTRA
        assert certificate.covered_items == covered_items
        assert certificate.missing_items == missing_items
        assert certificate.covered_fraction == covered_items / (
            covered_items + missing_items
        )
        assert certificate.widened_error_bound == pytest.approx(
            certificate.error_bound + missing_items
        )
        assert "certificate:" in plan.render()
        payload = plan.as_dict()
        assert payload["certificate"]["missing_shards"] == [k]

    def test_owner_down_answers_combiner_identity(self, poisoned):
        service = poisoned["service"]
        key = poisoned["owned_key"]
        answer, plan = service.estimate_at(key, float(N_ITEMS), explain=True)
        assert answer == 0.0
        certificate = plan.certificate
        assert certificate.covered_shards == ()
        assert certificate.covered_fraction == 0.0
        # the "any" combiner's identity over a dead shard is False (the
        # method is never invoked — the shard cannot be consulted at all)
        k = poisoned["kill_shard"]
        contained, plan = service.query(
            "estimate_at", key, float(N_ITEMS), shard=k, combine="any", explain=True
        )
        assert contained is False
        assert plan.certificate is not None

    def test_reject_policy_stays_strict(self, poisoned):
        service = poisoned["service"]
        with pytest.raises(ShardFailedError):
            service.query(
                "estimate_at",
                7,
                float(N_ITEMS),
                combine="sum",
                partial="reject",
            )

    def test_partial_answers_are_never_cached(self, poisoned):
        service = poisoned["service"]
        coordinator = service._coordinator
        hits_before = coordinator.cache_hits
        for _ in range(2):
            service.query("estimate_at", 7, float(N_ITEMS), combine="sum")
        # identical degraded queries never hit the cache
        assert coordinator.cache_hits == hits_before

    def test_covered_owner_queries_still_cache(self, poisoned):
        service = poisoned["service"]
        k = poisoned["kill_shard"]
        keys = poisoned["keys"]
        router = ShardRouter(NUM_SHARDS, mode="hash", seed=SEED)
        healthy_key = next(
            int(key) for key in keys if router.route(key) != k
        )
        coordinator = service._coordinator
        hits_before = coordinator.cache_hits
        first = service.estimate_at(healthy_key, float(N_ITEMS))
        second = service.estimate_at(healthy_key, float(N_ITEMS))
        assert first == second
        assert coordinator.cache_hits == hits_before + 1


class TestTimeouts:
    def _hold_lock(self, worker, held, release):
        with worker.lock:
            held.set()
            release.wait(timeout=30)

    def test_wedged_shard_times_out_with_certificate(self):
        keys, timestamps = stream(800)
        service = ShardedSketchService(
            factory,
            NUM_SHARDS,
            seed=SEED,
            partial="allow",
            call_timeout=0.05,
            backpressure="error",
        )
        try:
            service.ingest_batch(keys, timestamps)
            assert service.drain(timeout=30)
            worker = service._workers[2]
            held, release = threading.Event(), threading.Event()
            holder = threading.Thread(
                target=self._hold_lock, args=(worker, held, release)
            )
            holder.start()
            try:
                assert held.wait(timeout=10)
                answer, plan = service.query(
                    "estimate_at", 7, 800.0, combine="sum", explain=True
                )
                certificate = plan.certificate
                assert certificate.missing_shards == (2,)
                assert certificate.reasons == ("timeout",)
                with pytest.raises(ShardTimeoutError):
                    service.query(
                        "estimate_at", 7, 800.0, combine="sum", partial="reject"
                    )
            finally:
                release.set()
                holder.join()
            # wedge cleared: the same fan-out now covers every shard
            answer, plan = service.query(
                "estimate_at", 7, 800.0, combine="sum", explain=True
            )
            assert plan.certificate is None
        finally:
            service.close(force=True)
