"""ShardedSketchService: lifecycle, watermarks, queries, durability."""

import threading

import numpy as np
import pytest

from repro.core import ChainMisraGries, CheckpointChain
from repro.durability import read_manifest
from repro.service import ShardFailedError, ShardedSketchService
from repro.sketches import CountMinSketch, HyperLogLog, MisraGries


def mg_factory():
    return ChainMisraGries(eps=0.001)


def cm_chain_factory():
    return CheckpointChain(lambda: CountMinSketch(1024, 4, seed=5), eps=0.05)


def zipf_stream(n=20_000, universe=500, seed=0):
    rng = np.random.default_rng(seed)
    keys = (rng.zipf(1.3, size=n) % universe).astype(np.int64)
    timestamps = np.sort(rng.uniform(0.0, 100.0, size=n))
    return keys, timestamps


class TestLifecycle:
    def test_context_manager_starts_and_closes(self):
        with ShardedSketchService(mg_factory, num_shards=2) as service:
            receipt = service.ingest_batch([1, 2, 3], [0.0, 1.0, 2.0])
            assert receipt.accepted == 3 and receipt.dropped == 0
            assert service.drain(timeout=10)
        with pytest.raises(RuntimeError):
            service.ingest(1, 3.0)

    def test_close_is_idempotent(self):
        service = ShardedSketchService(mg_factory, num_shards=2)
        service.close()
        service.close()

    def test_ingest_before_start_rejected(self):
        service = ShardedSketchService(mg_factory, num_shards=2, start=False)
        with pytest.raises(RuntimeError):
            service.ingest(1, 0.0)
        service.start()
        service.ingest(1, 0.0)
        service.close()

    def test_empty_batch_is_noop(self):
        with ShardedSketchService(mg_factory, num_shards=2) as service:
            receipt = service.ingest_batch([], [])
            assert receipt.accepted == 0
            assert service.watermark() == receipt.seqno


class TestWatermark:
    def test_watermark_reaches_acked_after_drain(self):
        keys, timestamps = zipf_stream(5_000)
        with ShardedSketchService(mg_factory, num_shards=4) as service:
            last = None
            for start in range(0, 5_000, 250):
                last = service.ingest_batch(
                    keys[start : start + 250], timestamps[start : start + 250]
                )
            assert service.drain(timeout=30)
            assert service.watermark() == last.seqno

    def test_wait_for_gives_read_your_writes(self):
        with ShardedSketchService(mg_factory, num_shards=4) as service:
            receipt = service.ingest_batch(
                np.full(1000, 7), np.arange(1000, dtype=float)
            )
            assert service.wait_for(receipt.seqno, timeout=30)
            assert service.estimate_at(7, 999.0) >= 1000

    def test_wait_for_timeout_returns_false(self):
        service = ShardedSketchService(mg_factory, num_shards=2, start=False)
        # nothing acked: seqno 0 is already satisfied, seqno 1 never comes
        assert service.wait_for(0, timeout=0.05) is True
        assert service.wait_for(1, timeout=0.05) is False
        service.start()
        service.close()

    def test_watermark_lags_until_shards_apply(self):
        # not started: acked advances, applied stays 0
        service = ShardedSketchService(mg_factory, num_shards=2, start=False)
        service._started = True  # allow ingest without running workers
        receipt = service.ingest_batch([1, 2, 3, 4], [0.0, 1.0, 2.0, 3.0])
        assert receipt.seqno == 1
        assert service.watermark() == 0
        for worker in service._workers:
            worker.start()
        assert service.drain(timeout=10)
        assert service.watermark() == 1
        service.close()


class TestQueries:
    def test_hash_sharded_estimates_match_single_shard(self):
        keys, timestamps = zipf_stream()
        with ShardedSketchService(mg_factory, num_shards=4) as service:
            service.ingest_batch(keys, timestamps)
            assert service.drain(timeout=30)
            single = mg_factory()
            single.update_batch(keys, timestamps)
            for t in (25.0, 75.0):
                for key in range(10):
                    true = int(((keys == key) & (timestamps <= t)).sum())
                    sharded = service.estimate_at(key, t)
                    # MG estimate error is bounded by eps * W on each side's
                    # own stream; owner-shard routing sees every occurrence
                    assert abs(sharded - true) <= 0.001 * len(keys) + 1e-9

    def test_heavy_hitters_contain_truth(self):
        keys, timestamps = zipf_stream()
        with ShardedSketchService(mg_factory, num_shards=4) as service:
            service.ingest_batch(keys, timestamps)
            assert service.drain(timeout=30)
            t, phi = 60.0, 0.02
            prefix = keys[timestamps <= t]
            counts = np.bincount(prefix, minlength=500)
            truth = {k for k in range(500) if counts[k] >= phi * prefix.size}
            reported = set(int(k) for k in service.heavy_hitters_at(t, phi))
            assert truth <= reported

    def test_round_robin_cardinality(self):
        with ShardedSketchService(
            lambda: CheckpointChain(lambda: HyperLogLog(p=12), eps=0.05),
            num_shards=4,
            partition="round_robin",
        ) as service:
            service.ingest_batch(np.arange(20_000), np.arange(20_000, dtype=float))
            assert service.drain(timeout=30)
            estimate = service.cardinality_at(9_999.0)
            # merged registers carry the single-HLL guarantee; checkpoint
            # snapshots add a (1+eps) weight-slack on top
            assert 0.85 * 10_000 <= estimate <= 1.1 * 10_000

    def test_generic_query_merge_combine(self):
        keys, timestamps = zipf_stream(5_000)
        with ShardedSketchService(cm_chain_factory, num_shards=3) as service:
            service.ingest_batch(keys, timestamps)
            assert service.drain(timeout=30)
            merged = service.merged_sketch_at(50.0)
            true = int(((keys == 1) & (timestamps <= 50.0)).sum())
            assert merged.query(1) >= int(0.95 * true)

    def test_failed_shard_surfaces_in_queries(self):
        with ShardedSketchService(mg_factory, num_shards=2) as service:
            service.ingest_batch([1, 2], [5.0, 6.0])
            assert service.drain(timeout=10)
            service.ingest_batch([3, 4], [1.0, 1.0])  # timestamps go backwards
            with pytest.raises(ShardFailedError):
                service.wait_for(2, timeout=30)
            # fan-out queries touch every shard, so they surface the failure;
            # owner-routed point queries on healthy shards still answer
            with pytest.raises(ShardFailedError):
                service.total_weight_at(10.0)
            service.close(force=True)


class TestAnswerCache:
    def test_repeat_query_hits_cache(self):
        with ShardedSketchService(mg_factory, num_shards=2) as service:
            service.ingest_batch([1, 1, 2], [0.0, 1.0, 2.0])
            assert service.drain(timeout=10)
            first = service.estimate_at(1, 2.0)
            second = service.estimate_at(1, 2.0)
            assert first == second
            info = service.cache_info()
            assert info["hits"] >= 1

    def test_watermark_advance_invalidates(self):
        with ShardedSketchService(mg_factory, num_shards=2) as service:
            service.ingest_batch([1], [0.0])
            assert service.drain(timeout=10)
            assert service.estimate_at(1, 100.0) == 1
            service.ingest_batch([1], [1.0])
            assert service.drain(timeout=10)
            assert service.estimate_at(1, 100.0) == 2

    def test_cache_disabled(self):
        with ShardedSketchService(mg_factory, num_shards=2, cache_size=0) as service:
            service.ingest_batch([1], [0.0])
            assert service.drain(timeout=10)
            service.estimate_at(1, 1.0)
            service.estimate_at(1, 1.0)
            assert service.cache_info()["hits"] == 0


class TestBackpressureIntegration:
    def test_drop_policy_reports_drops(self):
        with ShardedSketchService(
            mg_factory,
            num_shards=1,
            queue_capacity=64,
            backpressure="drop",
            start=False,
        ) as service_ctx:
            pass  # only checking construction/destruction path
        service = ShardedSketchService(
            mg_factory, num_shards=1, queue_capacity=64, backpressure="drop",
            start=False,
        )
        service._started = True  # queue accumulates with no worker running
        total_dropped = 0
        for call in range(10):
            receipt = service.ingest_batch(
                np.arange(48), np.full(48, float(call))
            )
            total_dropped += receipt.dropped
        assert total_dropped > 0
        stats = service.stats()
        assert stats["shards"][0]["items_dropped"] == total_dropped
        for worker in service._workers:
            worker.start()
        service.close()


class TestDurability:
    def test_manifest_written_and_validated(self, tmp_path):
        with ShardedSketchService(
            mg_factory, num_shards=3, seed=9, directory=tmp_path
        ) as service:
            service.ingest_batch([1, 2, 3], [0.0, 1.0, 2.0])
            assert service.flush(timeout=10)
        manifest = read_manifest(tmp_path)
        assert manifest.num_shards == 3 and manifest.seed == 9
        with pytest.raises(ValueError):
            ShardedSketchService(mg_factory, num_shards=4, directory=tmp_path)

    def test_open_restores_answers_and_topology(self, tmp_path):
        keys, timestamps = zipf_stream(4_000)
        with ShardedSketchService(
            mg_factory, num_shards=4, seed=2, directory=tmp_path
        ) as service:
            service.ingest_batch(keys, timestamps)
            assert service.flush(timeout=30)
            expected = {key: service.estimate_at(key, 50.0) for key in range(20)}
        reopened = ShardedSketchService.open(mg_factory, tmp_path)
        with reopened:
            assert reopened.num_shards == 4
            for key, value in expected.items():
                assert reopened.estimate_at(key, 50.0) == value

    def test_open_without_manifest_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardedSketchService.open(mg_factory, tmp_path / "missing")

    def test_recovered_service_keeps_routing_keys_home(self, tmp_path):
        with ShardedSketchService(
            mg_factory, num_shards=4, seed=11, directory=tmp_path
        ) as service:
            owners = {key: service._owner(key) for key in range(100)}
            service.ingest_batch(np.arange(100), np.arange(100, dtype=float))
            assert service.flush(timeout=10)
        reopened = ShardedSketchService.open(mg_factory, tmp_path)
        with reopened:
            assert {key: reopened._owner(key) for key in range(100)} == owners
