"""Concurrent stress: many producers, queries mid-ingest, nothing lost.

The CI ``service-stress`` job runs this module.  Producers hammer one
service from several threads while a reader issues fan-out queries against
moving watermarks; afterwards the applied state must account for every
accepted item exactly (MisraGries totals are exact in ``total_weight``, and
CountMin tables are linear, so sums are checkable).
"""

import threading

import numpy as np
import pytest

from repro.core import CheckpointChain
from repro.service import ShardedSketchService
from repro.sketches import CountMinSketch
from repro.telemetry.registry import TELEMETRY

PRODUCERS = 4
BATCHES_PER_PRODUCER = 40
BATCH = 200


def cm_factory():
    return CheckpointChain(lambda: CountMinSketch(1024, 4, seed=1), eps=0.05)


class TestConcurrentProducers:
    def test_no_item_lost_under_contention(self):
        service = ShardedSketchService(
            cm_factory, num_shards=4, queue_capacity=1024, backpressure="block"
        )
        receipts = []
        clock = {"now": 0.0}
        clock_lock = threading.Lock()
        barrier = threading.Barrier(PRODUCERS)

        def produce(index):
            rng = np.random.default_rng(index)
            barrier.wait()
            for _ in range(BATCHES_PER_PRODUCER):
                keys = rng.integers(0, 500, size=BATCH)
                with clock_lock:
                    # per-shard timestamp monotonicity requires a total
                    # arrival order, so producers share one logical clock
                    timestamps = clock["now"] + np.arange(BATCH, dtype=float)
                    clock["now"] += BATCH
                    receipt = service.ingest_batch(keys, timestamps)
                receipts.append(receipt)

        threads = [
            threading.Thread(target=produce, args=(index,))
            for index in range(PRODUCERS)
        ]
        with service:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert service.drain(timeout=60)
            total_expected = PRODUCERS * BATCHES_PER_PRODUCER * BATCH
            assert sum(r.accepted for r in receipts) == total_expected
            assert sum(r.dropped for r in receipts) == 0
            stats = service.stats()
            assert (
                sum(s["items_applied"] for s in stats["shards"]) == total_expected
            )
            # CountMin is linear: the merged live table mass equals the
            # number of applied items times the depth
            merged = service.merged_sketch_at(float(10**9))
            assert merged.total_weight == total_expected

    def test_queries_run_against_moving_watermark(self):
        service = ShardedSketchService(cm_factory, num_shards=4)
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                try:
                    watermark = service.watermark()
                    merged = service.merged_sketch_at(float(10**9))
                    # a merged snapshot never claims more weight than acked
                    assert merged.total_weight <= service._acked_seqno * BATCH
                    assert service.watermark() >= watermark  # monotone
                except AssertionError as exc:  # pragma: no cover
                    failures.append(exc)
                    return

        thread = threading.Thread(target=reader)
        with service:
            # seed every shard before the reader starts so sketch_at
            # always has at least one non-empty snapshot to merge
            service.ingest_batch(np.arange(BATCH) % 200, np.full(BATCH, -1.0))
            assert service.drain(timeout=30)
            thread.start()
            rng = np.random.default_rng(7)
            for batch in range(60):
                keys = rng.integers(0, 200, size=BATCH)
                timestamps = np.full(BATCH, float(batch))
                service.ingest_batch(keys, timestamps)
            assert service.drain(timeout=60)
            stop.set()
            thread.join(timeout=30)
        assert not failures

    def test_stress_with_telemetry_enabled(self):
        TELEMETRY.enable()
        TELEMETRY.registry.reset()
        try:
            service = ShardedSketchService(cm_factory, num_shards=4)
            with service:
                rng = np.random.default_rng(3)
                for batch in range(30):
                    service.ingest_batch(
                        rng.integers(0, 100, size=BATCH),
                        np.full(BATCH, float(batch)),
                    )
                assert service.drain(timeout=60)
                service.merged_sketch_at(1e9)
            family = TELEMETRY.registry.get("service_ingest_items_total")
            applied = sum(child.value for _, child in family.samples())
            assert applied == 30 * BATCH
        finally:
            TELEMETRY.disable()
            TELEMETRY.registry.reset()
