"""Failure-injection tests: hostile inputs must be rejected loudly.

Errors should never pass silently — every persistent structure validates its
inputs (NaN/inf weights, non-finite timestamps, wrong shapes, time travel)
instead of silently corrupting months of accumulated history.
"""

import math

import numpy as np
import pytest

from repro.core import (
    BitpPrioritySample,
    ChainMisraGries,
    CheckpointChain,
    MergeTreePersistence,
    MonotoneViolation,
    PersistentPrioritySample,
    PersistentTopKSample,
)
from repro.persistent import (
    AttpNormSampling,
    AttpPersistentFrequentDirections,
    AttpSampleHeavyHitter,
)
from repro.sketches import MisraGries


class TestTimeTravel:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: PersistentTopKSample(k=4, seed=0),
            lambda: ChainMisraGries(eps=0.1),
            lambda: CheckpointChain(lambda: MisraGries(4), eps=0.5),
            lambda: MergeTreePersistence(lambda: MisraGries(4), eps=0.5),
            lambda: BitpPrioritySample(k=4, seed=0),
        ],
        ids=["sample", "cmg", "chain", "tree", "bitp"],
    )
    def test_decreasing_timestamps_rejected_state_preserved(self, build):
        sketch = build()
        sketch.update(1, 10.0)
        sketch.update(2, 11.0)
        with pytest.raises(MonotoneViolation):
            sketch.update(3, 9.0)
        # The failed update must not have corrupted the accepted history.
        sketch.update(4, 12.0)
        assert sketch.count == 3

    def test_rejected_update_leaves_attp_answers_unchanged(self):
        # Not just the count: the *query answers* over the accepted history
        # must be identical before and after a rejected offer.
        sketch = AttpSampleHeavyHitter(k=64, seed=3)
        for index in range(500):
            sketch.update(index % 13, float(index))
        times = (100.0, 250.0, 499.0)
        before = [sketch.heavy_hitters_at(t, 0.05) for t in times]
        estimates = [sketch.estimate_at(key, 499.0) for key in range(13)]
        with pytest.raises(MonotoneViolation):
            sketch.update(7, 42.0)  # time travel
        assert [sketch.heavy_hitters_at(t, 0.05) for t in times] == before
        assert [sketch.estimate_at(key, 499.0) for key in range(13)] == estimates

    def test_rejected_update_leaves_bitp_answers_unchanged(self):
        sketch = BitpPrioritySample(k=64, seed=3)
        for index in range(500):
            sketch.update(index % 13, float(index))
        before = sorted(sketch.raw_sample_since(250.0))
        count_before = sketch.suffix_count_since(250.0)
        with pytest.raises(MonotoneViolation):
            sketch.update(7, 42.0)
        assert sorted(sketch.raw_sample_since(250.0)) == before
        assert sketch.suffix_count_since(250.0) == count_before


class TestHostileWeights:
    def test_nan_weight_rejected_by_priority_sampler(self):
        sampler = PersistentPrioritySample(k=4, seed=0)
        with pytest.raises(ValueError):
            sampler.update(1, 0.0, weight=float("nan"))

    def test_negative_and_zero_weights_rejected(self):
        sampler = PersistentPrioritySample(k=4, seed=0)
        for bad in (0.0, -1.0, -math.inf):
            with pytest.raises(ValueError):
                sampler.update(1, 0.0, weight=bad)

    def test_infinite_weight_rejected(self):
        sampler = PersistentPrioritySample(k=4, seed=0)
        with pytest.raises(ValueError):
            sampler.update(1, 0.0, weight=math.inf)

    def test_bitp_sampler_rejects_nan_weight(self):
        sampler = BitpPrioritySample(k=4, seed=0)
        with pytest.raises(ValueError):
            sampler.update(1, 0.0, weight=float("nan"))

    def test_bad_weight_leaves_query_answers_unchanged(self):
        sampler = PersistentPrioritySample(k=16, seed=1)
        for index in range(200):
            sampler.update(index % 7, float(index), weight=1.0 + index % 4)
        before = sorted(sampler.raw_sample_at(199.0))
        tau_before = sampler.tau_at(199.0)
        for bad in (0.0, -2.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                sampler.update(3, 200.0, weight=bad)
        assert sorted(sampler.raw_sample_at(199.0)) == before
        assert sampler.tau_at(199.0) == tau_before


class TestHostileRows:
    def test_nan_row_rejected_by_pfd(self):
        pfd = AttpPersistentFrequentDirections(ell=4, dim=4)
        with pytest.raises(ValueError):
            pfd.update(np.array([1.0, float("nan"), 0.0, 0.0]), 0.0)

    def test_inf_row_rejected_by_pfd(self):
        pfd = AttpPersistentFrequentDirections(ell=4, dim=4)
        with pytest.raises(ValueError):
            pfd.update(np.array([1.0, float("inf"), 0.0, 0.0]), 0.0)

    def test_nan_row_rejected_by_norm_sampling(self):
        ns = AttpNormSampling(k=4, dim=4, seed=0)
        with pytest.raises(ValueError):
            ns.update(np.array([float("nan"), 0.0, 0.0, 0.0]), 0.0)


class TestHostileTimestamps:
    def test_nan_timestamp_rejected(self):
        sketch = AttpSampleHeavyHitter(k=4, seed=0)
        with pytest.raises(ValueError):
            sketch.update(1, float("nan"))

    def test_nan_query_rejected(self):
        sketch = AttpSampleHeavyHitter(k=4, seed=0)
        sketch.update(1, 1.0)
        # NaN comparisons are never true, so a NaN query would silently
        # return garbage — the sampler rejects it instead.
        with pytest.raises(ValueError):
            sketch.heavy_hitters_at(float("nan"), 0.5)
