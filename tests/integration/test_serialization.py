"""Pickle round-trip tests: a persistent sketch is a durable artifact.

The whole point of a persistent sketch is to be kept around and queried
months later — so every public sketch must survive serialisation with its
query behaviour intact, and must keep accepting updates afterwards.
"""

import pickle

import numpy as np
import pytest

from repro.persistent import (
    AttpChainKll,
    AttpChainMisraGries,
    AttpKmvDistinct,
    AttpNormSampling,
    AttpPersistentFrequentDirections,
    AttpSampleHeavyHitter,
    BitpSampleHeavyHitter,
    BitpTreeMisraGries,
)


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def feed_keys(sketch, n=3_000, universe=40, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, universe, size=n)
    for index, key in enumerate(keys):
        sketch.update(int(key), float(index))
    return keys


class TestHeavyHitterSerialization:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: AttpSampleHeavyHitter(k=500, seed=1),
            lambda: AttpChainMisraGries(eps=0.01),
            lambda: BitpSampleHeavyHitter(k=500, seed=1),
            lambda: BitpTreeMisraGries(eps=0.05, block_size=64),
        ],
        ids=["sampling", "cmg", "bitp-sampling", "tmg"],
    )
    def test_queries_identical_after_roundtrip(self, build):
        sketch = build()
        feed_keys(sketch)
        clone = roundtrip(sketch)
        for t in (500.0, 1_500.0, 2_999.0):
            if hasattr(sketch, "heavy_hitters_at"):
                assert sketch.heavy_hitters_at(t, 0.02) == clone.heavy_hitters_at(t, 0.02)
            else:
                assert sketch.heavy_hitters_since(t, 0.02) == clone.heavy_hitters_since(
                    t, 0.02
                )

    def test_updates_continue_after_roundtrip(self):
        sketch = AttpSampleHeavyHitter(k=200, seed=2)
        feed_keys(sketch, n=1_000)
        clone = roundtrip(sketch)
        for index in range(1_000, 1_500):
            clone.update(index % 40, float(index))
        assert clone.count == 1_500
        # Deterministic continuation: feeding the original the same suffix
        # yields identical state (same RNG stream position survived pickling).
        for index in range(1_000, 1_500):
            sketch.update(index % 40, float(index))
        assert sketch.heavy_hitters_at(1_499.0, 0.02) == clone.heavy_hitters_at(
            1_499.0, 0.02
        )


class TestOtherSerialization:
    def test_pfd_roundtrip(self):
        rng = np.random.default_rng(0)
        pfd = AttpPersistentFrequentDirections(ell=6, dim=12)
        for index, row in enumerate(rng.normal(size=(300, 12))):
            pfd.update(row, float(index))
        clone = roundtrip(pfd)
        assert np.allclose(pfd.covariance_at(150.0), clone.covariance_at(150.0))

    def test_norm_sampling_roundtrip(self):
        rng = np.random.default_rng(1)
        ns = AttpNormSampling(k=50, dim=10, seed=3)
        for index, row in enumerate(rng.normal(size=(500, 10))):
            ns.update(row, float(index))
        clone = roundtrip(ns)
        assert np.allclose(ns.covariance_at(250.0), clone.covariance_at(250.0))

    def test_kll_chain_roundtrip(self):
        chain = AttpChainKll(k=100, eps_ckpt=0.1, seed=4)
        for index in range(2_000):
            chain.update(float(index % 250), float(index))
        clone = roundtrip(chain)
        for t in (400.0, 1_999.0):
            assert chain.quantile_at(t, 0.5) == clone.quantile_at(t, 0.5)

    def test_kmv_roundtrip(self):
        kmv = AttpKmvDistinct(k=64, seed=5)
        for index in range(5_000):
            kmv.update(index, float(index))
        clone = roundtrip(kmv)
        assert kmv.distinct_at(2_500.0) == clone.distinct_at(2_500.0)
        assert kmv.distinct_now() == clone.distinct_now()

    def test_norm_sampling_roundtrip_rows_and_continuation(self):
        rng = np.random.default_rng(4)
        ns = AttpNormSampling(k=50, dim=10, seed=8)
        rows = rng.normal(size=(600, 10))
        for index, row in enumerate(rows[:400]):
            ns.update(row, float(index))
        clone = roundtrip(ns)
        kept, kept_clone = ns.sketch_rows_at(200.0), clone.sketch_rows_at(200.0)
        assert np.allclose(kept, kept_clone)
        # The RNG stream position must survive: feeding both the same suffix
        # keeps them identical.
        for index, row in enumerate(rows[400:], start=400):
            ns.update(row, float(index))
            clone.update(row, float(index))
        assert np.allclose(ns.covariance_at(599.0), clone.covariance_at(599.0))

    def test_bitp_priority_sample_roundtrip(self):
        from repro.core import BitpPrioritySample

        sampler = BitpPrioritySample(k=64, seed=9)
        for index in range(3_000):
            sampler.update(index % 50, float(index), weight=1.0 + index % 3)
        clone = roundtrip(sampler)
        for since in (0.0, 1_500.0, 2_900.0):
            assert sampler.raw_sample_since(since) == clone.raw_sample_since(since)
            assert sampler.suffix_count_since(since) == clone.suffix_count_since(since)
        # Deterministic continuation after the roundtrip.
        for index in range(3_000, 3_200):
            sampler.update(index % 50, float(index))
            clone.update(index % 50, float(index))
        assert sampler.raw_sample_since(3_000.0) == clone.raw_sample_since(3_000.0)

    def test_indexed_sampler_roundtrip(self):
        from repro.core.persistent_sampling import PersistentTopKSample

        sampler = PersistentTopKSample(k=10, seed=6)
        for index in range(1_000):
            sampler.update(index, float(index))
        sampler.build_interval_index()
        clone = roundtrip(sampler)
        for t in (100.0, 900.0):
            assert sorted(sampler.sample_at(t)) == sorted(clone.sample_at(t))
