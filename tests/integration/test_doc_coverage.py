"""Documentation coverage: every public item carries a docstring, and the
API reference covers every export.

Deliverable-level checks: the public API (everything re-exported through the
package ``__init__`` modules) must be documented — classes, their public
methods, and module-level functions — and ``docs/API.md`` must mention every
public export of ``repro``, ``repro.sketches``, ``repro.core`` and
``repro.durability`` by name, so a new export cannot ship reference-less.
"""

import inspect
import pathlib

import pytest

import repro
from repro import (
    baselines,
    core,
    durability,
    evaluation,
    persistent,
    service,
    sketches,
    telemetry,
    workloads,
)

PACKAGES = [
    repro,
    baselines,
    core,
    durability,
    evaluation,
    persistent,
    service,
    sketches,
    telemetry,
    workloads,
]

API_MD = pathlib.Path(__file__).resolve().parents[2] / "docs" / "API.md"

# Modules whose entire __all__ must appear, by name, in docs/API.md.
REFERENCE_COVERED = [repro, sketches, core, durability, service, telemetry]


def public_objects():
    seen = set()
    for package in PACKAGES:
        for name in getattr(package, "__all__", []):
            obj = getattr(package, name)
            if id(obj) in seen:
                continue
            seen.add(id(obj))
            yield f"{package.__name__}.{name}", obj


class TestDocCoverage:
    def test_packages_have_docstrings(self):
        for package in PACKAGES:
            assert package.__doc__ and package.__doc__.strip(), package.__name__

    def test_public_objects_have_docstrings(self):
        missing = []
        for qualified, obj in public_objects():
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    missing.append(qualified)
        assert not missing, f"undocumented public items: {missing}"

    def test_public_methods_have_docstrings(self):
        from typing import Protocol

        missing = []
        for qualified, obj in public_objects():
            if not inspect.isclass(obj):
                continue
            if Protocol in getattr(obj, "__mro__", ()):  # structural stubs
                continue
            for name, member in inspect.getmembers(obj):
                if name.startswith("_"):
                    continue
                if inspect.isfunction(member) and member.__qualname__.startswith(
                    obj.__qualname__
                ):
                    if not (member.__doc__ and member.__doc__.strip()):
                        missing.append(f"{qualified}.{name}")
        assert not missing, f"undocumented public methods: {missing}"

    def test_all_lists_are_sorted_and_resolvable(self):
        for package in PACKAGES:
            exported = getattr(package, "__all__", [])
            for name in exported:
                assert hasattr(package, name), f"{package.__name__}.{name} missing"


class TestApiReferenceCoverage:
    """docs/API.md must name every public export of the covered modules."""

    def test_api_md_exists(self):
        assert API_MD.is_file()

    @pytest.mark.parametrize(
        "package", REFERENCE_COVERED, ids=lambda p: p.__name__
    )
    def test_every_export_is_referenced(self, package):
        text = API_MD.read_text()
        missing = [
            name
            for name in getattr(package, "__all__", [])
            if name not in text
        ]
        assert not missing, (
            f"exports of {package.__name__} missing from docs/API.md: {missing} "
            "— add them to the reference (a table row or prose mention)"
        )

    def test_batch_contract_is_linked(self):
        """The reference must point at the batching contract and the WAL
        BATCH frame layout (docs/BATCHING.md satellite)."""
        text = API_MD.read_text()
        assert "BATCHING.md" in text
        assert "update_batch" in text
        assert "WAL on-disk format" in text
