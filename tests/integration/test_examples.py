"""The examples must run end-to-end (scaled down via monkeypatched workloads
where needed, but here they are small enough to run as-is)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "batch_ingest_tutorial.py",
        "website_monitoring.py",
        "sliding_window_trends.py",
        "matrix_anomaly.py",
        "cardinality_and_membership.py",
        "crash_recovery.py",
        "observability_tour.py",
        "sharded_service_tour.py",
        "process_backend_tour.py",
        "multi_tenant_tour.py",
    ],
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()  # produced some report
