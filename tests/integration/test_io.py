"""Tests for the durable sketch-file format."""

import pickle

import pytest

from repro.io import (
    SketchFileError,
    inspect_sketch_file,
    load_sketch,
    save_sketch,
)
from repro.persistent import AttpChainMisraGries, AttpSampleHeavyHitter


def build_sketch():
    sketch = AttpChainMisraGries(eps=0.01)
    for index in range(2_000):
        sketch.update(index % 17, float(index))
    return sketch


class TestSaveLoad:
    def test_roundtrip_preserves_queries(self, tmp_path):
        sketch = build_sketch()
        path = tmp_path / "cmg.sketch"
        written = save_sketch(sketch, path)
        assert written == path.stat().st_size
        loaded = load_sketch(path)
        for t in (100.0, 1_000.0, 1_999.0):
            assert sketch.heavy_hitters_at(t, 0.05) == loaded.heavy_hitters_at(t, 0.05)

    def test_expected_class_accepts_match(self, tmp_path):
        path = tmp_path / "cmg.sketch"
        save_sketch(build_sketch(), path)
        loaded = load_sketch(path, expected_class=AttpChainMisraGries)
        assert loaded.estimate_now(0) > 0

    def test_expected_class_rejects_mismatch(self, tmp_path):
        path = tmp_path / "cmg.sketch"
        save_sketch(build_sketch(), path)
        with pytest.raises(SketchFileError, match="expected"):
            load_sketch(path, expected_class=AttpSampleHeavyHitter)

    def test_expected_class_as_string(self, tmp_path):
        path = tmp_path / "cmg.sketch"
        save_sketch(build_sketch(), path)
        loaded = load_sketch(
            path, expected_class="repro.persistent.heavy_hitters.AttpChainMisraGries"
        )
        assert loaded.count == 2_000

    def test_inspect_without_unpickle(self, tmp_path):
        path = tmp_path / "cmg.sketch"
        save_sketch(build_sketch(), path)
        meta = inspect_sketch_file(path)
        assert meta["class"].endswith("AttpChainMisraGries")
        assert meta["payload_bytes"] > 0


class TestCorruptionDetection:
    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.sketch"
        path.write_bytes(b"NOTASKETCHFILE" + b"\x00" * 100)
        with pytest.raises(SketchFileError, match="magic"):
            load_sketch(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "cmg.sketch"
        save_sketch(build_sketch(), path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SketchFileError):
            load_sketch(path)

    def test_flipped_payload_byte_rejected(self, tmp_path):
        path = tmp_path / "cmg.sketch"
        save_sketch(build_sketch(), path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(SketchFileError, match="digest"):
            load_sketch(path)

    def test_raw_pickle_rejected(self, tmp_path):
        path = tmp_path / "raw.pkl"
        path.write_bytes(pickle.dumps(build_sketch()))
        with pytest.raises(SketchFileError):
            load_sketch(path)

    def test_tiny_file_rejected(self, tmp_path):
        path = tmp_path / "tiny"
        path.write_bytes(b"xy")
        with pytest.raises(SketchFileError, match="too short"):
            load_sketch(path)

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "cmg.sketch"
        save_sketch(build_sketch(), path)
        assert not (tmp_path / "cmg.sketch.tmp").exists()
