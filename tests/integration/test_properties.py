"""Cross-cutting property-based tests (hypothesis) on the core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint_chain import CheckpointChain
from repro.core.elementwise import ChainMisraGries
from repro.core.merge_tree import MergeTreePersistence
from repro.core.persistent_sampling import PersistentTopKSample
from repro.sketches import MisraGries


key_streams = st.lists(
    st.integers(min_value=0, max_value=15), min_size=10, max_size=400
)


class TestAttpEquivalenceAtNow:
    """Querying any ATTP sketch at t_now must match the plain streaming
    sketch run over the same data — persistence adds history, never changes
    the present."""

    @given(keys=key_streams)
    @settings(max_examples=30, deadline=None)
    def test_checkpoint_chain_now(self, keys):
        chain = CheckpointChain(lambda: MisraGries(8), eps=0.3)
        plain = MisraGries(8)
        for index, key in enumerate(keys):
            chain.update(key, float(index))
            plain.update(key)
        now = float(len(keys) - 1)
        live = chain.sketch_at(now)
        assert live.items() == plain.items()

    @given(keys=key_streams)
    @settings(max_examples=30, deadline=None)
    def test_cmg_now(self, keys):
        cmg = ChainMisraGries(eps=0.2)
        plain = MisraGries(cmg.k)
        for index, key in enumerate(keys):
            cmg.update(key, float(index))
            plain.update(key)
        for key in set(keys):
            assert cmg.estimate_now(key) == plain.query(key)


class TestPersistentSampleInvariants:
    @given(keys=key_streams, k=st.integers(min_value=1, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_lifetimes_partition_time(self, keys, k):
        """At every instant the alive records number exactly min(k, i+1)."""
        sampler = PersistentTopKSample(k=k, seed=0)
        for index, key in enumerate(keys):
            sampler.update(key, float(index))
        for t in range(0, len(keys), max(1, len(keys) // 7)):
            alive = [r for r in sampler.records() if r.alive_at(float(t))]
            assert len(alive) == min(k, t + 1)

    @given(keys=key_streams)
    @settings(max_examples=30, deadline=None)
    def test_monotone_record_growth(self, keys):
        """Records are append-only: prefixes of the stream yield prefixes of
        the record list."""
        sampler = PersistentTopKSample(k=4, seed=1)
        sizes = []
        for index, key in enumerate(keys):
            sampler.update(key, float(index))
            sizes.append(len(sampler.records()))
        assert sizes == sorted(sizes)


class TestMergeTreeInvariants:
    @given(keys=key_streams, block=st.sampled_from([4, 8, 16]))
    @settings(max_examples=20, deadline=None)
    def test_attp_coverage_never_exceeds_prefix(self, keys, block):
        tree = MergeTreePersistence(
            lambda: MisraGries(16), eps=0.2, mode="attp", block_size=block
        )
        for index, key in enumerate(keys):
            tree.update(key, float(index))
        for t in range(0, len(keys), max(1, len(keys) // 5)):
            merged = tree.sketch_at(float(t))
            assert merged.total_weight <= t + 1

    @given(keys=key_streams, block=st.sampled_from([4, 8, 16]))
    @settings(max_examples=20, deadline=None)
    def test_bitp_coverage_bounded_by_window_plus_block(self, keys, block):
        tree = MergeTreePersistence(
            lambda: MisraGries(16), eps=0.2, mode="bitp", block_size=block
        )
        for index, key in enumerate(keys):
            tree.update(key, float(index))
        n = len(keys)
        for since in range(0, n, max(1, n // 5)):
            merged = tree.sketch_since(float(since))
            window = n - since
            assert merged.total_weight <= window + block

    @given(keys=key_streams)
    @settings(max_examples=20, deadline=None)
    def test_estimates_never_exceed_true_counts_plus_slack(self, keys):
        """MG under the tree never overestimates a key's prefix count by
        more than the block at the boundary."""
        tree = MergeTreePersistence(
            lambda: MisraGries(16), eps=0.2, mode="attp", block_size=8
        )
        for index, key in enumerate(keys):
            tree.update(key, float(index))
        t = float(len(keys) - 1)
        merged = tree.sketch_at(t)
        for key in set(keys):
            assert merged.query(key) <= keys.count(key)


class TestMemoryAccountingInvariants:
    @given(keys=key_streams)
    @settings(max_examples=20, deadline=None)
    def test_memory_nonnegative_and_monotone_for_persistent_sample(self, keys):
        sampler = PersistentTopKSample(k=3, seed=2)
        last = 0
        for index, key in enumerate(keys):
            sampler.update(key, float(index))
            current = sampler.memory_bytes()
            assert current >= last
            last = current
