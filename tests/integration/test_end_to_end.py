"""End-to-end mini experiments: tiny-scale versions of the paper's figures.

Each test runs the same pipeline as the corresponding bench (workload ->
sketch sweep -> query schedule -> accuracy/memory/time rows) and asserts the
*qualitative* finding the paper reports.
"""

import numpy as np
import pytest

from repro.baselines import (
    ColumnarLogStore,
    PcmHeavyHitter,
    WindowedAggregateStore,
)
from repro.evaluation import (
    average_accuracy,
    covariance_relative_error,
    exact_prefix_covariances,
    exact_prefix_heavy_hitters,
    exact_suffix_heavy_hitters,
    feed_log_stream,
    feed_matrix_stream,
)
from repro.persistent import (
    AttpChainMisraGries,
    AttpNormSampling,
    AttpPersistentFrequentDirections,
    AttpSampleHeavyHitter,
    BitpSampleHeavyHitter,
    BitpTreeMisraGries,
)
from repro.workloads import (
    generate_matrix_stream,
    matrix_query_schedule,
    object_id_stream,
    query_schedule,
)


@pytest.fixture(scope="module")
def hh_stream():
    return object_id_stream(n=12_000, universe=3_000, ratio=400.0, seed=0)


class TestFigure1Shape:
    """Sketch memory is sublinear in the stream; exact stores are linear."""

    def test_memory_scaling_separation(self):
        sizes = [2_048, 8_192, 32_768]  # chunk multiples: no tail-buffer skew
        cmg_memory, store_memory = [], []
        for n in sizes:
            stream = object_id_stream(n=n, universe=2_000, ratio=300.0, seed=1)
            cmg = AttpChainMisraGries(eps=0.002)
            store = ColumnarLogStore(chunk_rows=512)
            feed_log_stream(cmg, stream)
            feed_log_stream(store, stream)
            cmg_memory.append(cmg.memory_bytes())
            store_memory.append(store.memory_bytes())
        store_growth = store_memory[-1] / store_memory[0]
        cmg_growth = cmg_memory[-1] / cmg_memory[0]
        assert store_growth > 10  # ~linear in 16x data
        assert cmg_growth < store_growth / 2  # clearly sublinear

    def test_windowed_agg_loses_granularity_but_saves_space(self):
        # Windowed aggregation wins when rows-per-window far exceeds the
        # distinct keys per window, as in the paper's daily WorldCup setup.
        stream = object_id_stream(n=20_000, universe=200, ratio=50.0, seed=2)
        full = ColumnarLogStore(chunk_rows=1_024)
        windowed = WindowedAggregateStore(window_length=5_000.0)
        feed_log_stream(full, stream)
        feed_log_stream(windowed, stream)
        assert windowed.memory_bytes() < full.memory_bytes()


class TestAttpHeavyHittersShape:
    """Fig 2/5: CMG has recall 1 and best precision-per-memory; SAMPLING is
    close; PCM_HH needs far more memory and update time."""

    def test_sketches_beat_pcm_on_update_time(self, hh_stream):
        phi = 0.01
        cmg = AttpChainMisraGries(eps=0.002)
        sampling = AttpSampleHeavyHitter(k=3_000, seed=0)
        pcm = PcmHeavyHitter(universe_bits=12, eps=0.005, depth=3, pla_delta=8.0)
        t_cmg = feed_log_stream(cmg, hh_stream)
        t_sampling = feed_log_stream(sampling, hh_stream)
        t_pcm = feed_log_stream(pcm, hh_stream)
        assert t_pcm > 5 * t_cmg
        assert t_pcm > 5 * t_sampling

    def test_cmg_recall_one_and_good_precision(self, hh_stream):
        phi = 0.01
        times = query_schedule(hh_stream)
        truth = exact_prefix_heavy_hitters(hh_stream, times, phi)
        cmg = AttpChainMisraGries(eps=0.001)
        feed_log_stream(cmg, hh_stream)
        reported = [cmg.heavy_hitters_at(t, phi) for t in times]
        p, r = average_accuracy(reported, truth)
        assert r == 1.0
        assert p > 0.6

    def test_sampling_accuracy_grows_with_k(self, hh_stream):
        phi = 0.01
        times = query_schedule(hh_stream)
        truth = exact_prefix_heavy_hitters(hh_stream, times, phi)
        scores = []
        for k in (200, 2_000, 8_000):
            sketch = AttpSampleHeavyHitter(k=k, seed=3)
            feed_log_stream(sketch, hh_stream)
            reported = [sketch.heavy_hitters_at(t, phi) for t in times]
            p, r = average_accuracy(reported, truth)
            scores.append((p + r) / 2)
        assert scores[-1] > scores[0]


class TestBitpHeavyHittersShape:
    """Fig 7/10: SAMPLING-BITP reaches high accuracy in small memory; TMG
    guarantees recall but needs more memory."""

    def test_bitp_sampling_small_and_accurate(self, hh_stream):
        phi = 0.01
        times = query_schedule(hh_stream)[:4]
        truth = exact_suffix_heavy_hitters(hh_stream, times, phi)
        sketch = BitpSampleHeavyHitter(k=4_000, seed=0)
        feed_log_stream(sketch, hh_stream)
        reported = [sketch.heavy_hitters_since(t, phi) for t in times]
        p, r = average_accuracy(reported, truth)
        assert p > 0.75 and r > 0.75

    def test_tmg_recall_one_but_bigger(self, hh_stream):
        phi = 0.01
        times = query_schedule(hh_stream)[:4]
        truth = exact_suffix_heavy_hitters(hh_stream, times, phi)
        tmg = BitpTreeMisraGries(eps=0.002, block_size=64)
        sampling = BitpSampleHeavyHitter(k=2_000, seed=0)
        feed_log_stream(tmg, hh_stream)
        feed_log_stream(sampling, hh_stream)
        reported = [tmg.heavy_hitters_since(t, phi) for t in times]
        _, r = average_accuracy(reported, truth)
        assert r == 1.0
        assert tmg.memory_bytes() > sampling.memory_bytes()


class TestAttpMatrixShape:
    """Fig 13/14: PFD has the best error-per-memory but slower updates than
    norm sampling."""

    @pytest.fixture(scope="class")
    def matrix_stream(self):
        return generate_matrix_stream(n=2_000, dim=60, seed=0)

    def test_pfd_best_error_per_memory(self, matrix_stream):
        times = matrix_query_schedule(matrix_stream)
        exact = exact_prefix_covariances(matrix_stream, times)

        pfd = AttpPersistentFrequentDirections(ell=12, dim=60)
        feed_matrix_stream(pfd, matrix_stream)
        pfd_err = np.mean(
            [covariance_relative_error(e, pfd.covariance_at(t)) for e, t in zip(exact, times)]
        )

        # Give NS slightly MORE memory than PFD; PFD must stay on the Pareto
        # front (no worse than NS beyond noise) despite the memory handicap.
        k = max(20, int(pfd.memory_bytes() / (60 * 8 + 28)) + 20)
        ns = AttpNormSampling(k=k, dim=60, seed=1)
        feed_matrix_stream(ns, matrix_stream)
        ns_err = np.mean(
            [covariance_relative_error(e, ns.covariance_at(t)) for e, t in zip(exact, times)]
        )
        assert ns.memory_bytes() >= pfd.memory_bytes()
        assert pfd_err < ns_err + 0.02

    def test_pfd_slower_updates_than_sampling(self, matrix_stream):
        pfd = AttpPersistentFrequentDirections(ell=12, dim=60)
        ns = AttpNormSampling(k=100, dim=60, seed=0)
        t_pfd = feed_matrix_stream(pfd, matrix_stream)
        t_ns = feed_matrix_stream(ns, matrix_stream)
        assert t_pfd > t_ns  # SVDs cost; the paper's Fig 14-16 trade-off
