"""Tests for the Zipf calibration and sampler."""

import numpy as np
import pytest

from repro.workloads import (
    ZipfGenerator,
    calibrate_exponent,
    generalized_harmonic,
    max_to_average_ratio,
)


class TestCalibration:
    def test_harmonic_known_values(self):
        assert generalized_harmonic(1, 1.0) == 1.0
        assert generalized_harmonic(2, 1.0) == pytest.approx(1.5)
        assert generalized_harmonic(4, 0.0) == pytest.approx(4.0)

    def test_ratio_uniform_is_one(self):
        assert max_to_average_ratio(100, 0.0) == pytest.approx(1.0)

    def test_ratio_increases_with_exponent(self):
        ratios = [max_to_average_ratio(1_000, s) for s in (0.0, 0.5, 1.0, 1.5)]
        assert all(b > a for a, b in zip(ratios, ratios[1:]))

    def test_calibrate_hits_target(self):
        for universe, target in ((10_000, 300.0), (2_000, 50.0), (90_000, 1_180.0)):
            s = calibrate_exponent(universe, target)
            achieved = max_to_average_ratio(universe, s)
            assert achieved == pytest.approx(target, rel=0.05)

    def test_calibrate_rejects_unreachable(self):
        with pytest.raises(ValueError):
            calibrate_exponent(100, 0.5)
        with pytest.raises(ValueError):
            calibrate_exponent(100, 200.0)


class TestZipfGenerator:
    def test_keys_in_universe(self):
        gen = ZipfGenerator(universe=500, exponent=1.0, seed=0)
        keys = gen.sample(5_000)
        assert keys.min() >= 0
        assert keys.max() < 500

    def test_deterministic_with_seed(self):
        a = ZipfGenerator(universe=100, exponent=1.0, seed=3).sample(1_000)
        b = ZipfGenerator(universe=100, exponent=1.0, seed=3).sample(1_000)
        assert np.array_equal(a, b)

    def test_empirical_skew_matches_calibration(self):
        universe, target = 1_000, 50.0
        s = calibrate_exponent(universe, target)
        gen = ZipfGenerator(universe, s, seed=1)
        keys = gen.sample(200_000)
        counts = np.bincount(keys, minlength=universe)
        ratio = counts.max() / counts.mean()
        assert 0.6 * target < ratio < 1.4 * target

    def test_heavy_keys_are_spread_by_permutation(self):
        gen = ZipfGenerator(universe=1_000, exponent=1.5, seed=2)
        heavy = gen.expected_heavy_hitters(0.01)
        assert len(heavy) > 0
        assert max(heavy) > 100  # not all clustered at small ids

    def test_probability_of_key_sums(self):
        gen = ZipfGenerator(universe=50, exponent=1.0, seed=0)
        total = sum(gen.probability_of_key(key) for key in range(50))
        assert total == pytest.approx(1.0)

    def test_expected_heavy_hitters_threshold(self):
        gen = ZipfGenerator(universe=100, exponent=1.2, seed=0)
        for key in gen.expected_heavy_hitters(0.05):
            assert gen.probability_of_key(key) >= 0.05

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ZipfGenerator(universe=0, exponent=1.0)
        with pytest.raises(ValueError):
            ZipfGenerator(universe=10, exponent=-1.0)
        gen = ZipfGenerator(universe=10, exponent=1.0)
        with pytest.raises(ValueError):
            gen.sample(-1)
        with pytest.raises(ValueError):
            gen.expected_heavy_hitters(0.0)
