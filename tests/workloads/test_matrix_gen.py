"""Tests for the Section-6.3 synthetic matrix generator."""

import numpy as np
import pytest

from repro.workloads import (
    generate_matrix_stream,
    low_dimension_stream,
    matrix_query_schedule,
    medium_dimension_stream,
)


class TestMatrixGenerator:
    def test_shapes_and_time_order(self):
        stream = generate_matrix_stream(n=500, dim=20, seed=0)
        assert stream.rows.shape == (500, 20)
        assert np.all(np.diff(stream.timestamps) >= 0)

    def test_event_half_concentrated_mid_stream(self):
        stream = generate_matrix_stream(n=2_000, dim=50, horizon=1_000.0, seed=1)
        # Event rows are much longer on average; find them by norm.
        norms = np.linalg.norm(stream.rows, axis=1)
        heavy = norms > np.percentile(norms, 75)
        heavy_times = stream.timestamps[heavy]
        # The heavy rows cluster near horizon/2 with scale ~horizon/50.
        assert abs(np.median(heavy_times) - 500.0) < 50.0
        assert np.std(heavy_times) < 100.0

    def test_event_rows_low_rank(self):
        stream = generate_matrix_stream(n=2_000, dim=50, seed=2)
        norms = np.linalg.norm(stream.rows, axis=1)
        event_rows = stream.rows[norms > np.percentile(norms, 80)]
        singular_values = np.linalg.svd(event_rows, compute_uv=False)
        energy = np.cumsum(singular_values**2) / np.sum(singular_values**2)
        # d/10 = 5 directions carry nearly all event energy.
        assert energy[4] > 0.95

    def test_deterministic_with_seed(self):
        a = generate_matrix_stream(n=100, dim=20, seed=9)
        b = generate_matrix_stream(n=100, dim=20, seed=9)
        assert np.array_equal(a.rows, b.rows)

    def test_iteration(self):
        stream = generate_matrix_stream(n=10, dim=20, seed=0)
        pairs = list(stream)
        assert len(pairs) == 10
        row, timestamp = pairs[0]
        assert row.shape == (20,)

    def test_named_presets(self):
        low = low_dimension_stream(n=100, seed=0)
        assert low.dim == 100
        medium = medium_dimension_stream(n=100, seed=0)
        assert medium.dim == 500

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            generate_matrix_stream(n=1, dim=20)
        with pytest.raises(ValueError):
            generate_matrix_stream(n=100, dim=5)

    def test_query_schedule(self):
        stream = generate_matrix_stream(n=1_000, dim=20, seed=0)
        times = matrix_query_schedule(stream)
        assert len(times) == 5
        sizes = [
            int(np.searchsorted(stream.timestamps, t, side="right")) for t in times
        ]
        assert sizes == [200, 400, 600, 800, 1_000]
