"""Tests for the bursty (non-stationary) workload generator."""

import numpy as np
import pytest

from repro.workloads import bursty_stream, object_id_stream


class TestBurstyStream:
    def test_shape_and_monotone_timestamps(self):
        stream = bursty_stream(n=8_000, seed=0)
        assert len(stream) == 8_000
        assert np.all(np.diff(stream.timestamps) > 0)
        assert stream.keys.min() >= 0
        assert stream.keys.max() < stream.universe

    def test_deterministic_with_seed(self):
        a = bursty_stream(n=2_000, seed=9)
        b = bursty_stream(n=2_000, seed=9)
        assert np.array_equal(a.keys, b.keys)

    def test_popularity_shifts_between_epochs(self):
        stream = bursty_stream(n=16_000, epochs=4, flash_fraction=0.4, seed=1)
        epoch_length = len(stream) // 4
        top_keys = []
        for epoch in range(4):
            segment = stream.keys[epoch * epoch_length : (epoch + 1) * epoch_length]
            counts = np.bincount(segment, minlength=stream.universe)
            top_keys.append(set(np.argsort(counts)[-3:].tolist()))
        # The dominant keys are not identical across all epochs.
        assert len(set.union(*top_keys)) > 3

    def test_flash_keys_dominate_their_epoch(self):
        stream = bursty_stream(n=16_000, epochs=4, flash_fraction=0.5, seed=2)
        epoch_length = len(stream) // 4
        segment = stream.keys[:epoch_length]
        counts = np.bincount(segment, minlength=stream.universe)
        # ~50% of one epoch concentrated on <= universe/1000 flash keys.
        flash_mass = np.sort(counts)[-max(1, stream.universe // 1_000) :].sum()
        assert flash_mass > 0.3 * epoch_length

    def test_zero_flash_fraction_is_stationaryish(self):
        bursty = bursty_stream(n=10_000, flash_fraction=0.0, seed=3)
        stationary = object_id_stream(n=10_000, seed=3)
        # With no flash traffic the generator reduces to the calibrated Zipf.
        assert np.array_equal(bursty.keys, stationary.keys)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            bursty_stream(n=4, epochs=8)
        with pytest.raises(ValueError):
            bursty_stream(n=100, flash_fraction=1.0)
