"""Tests for the WorldCup'98-substitute log generator."""

import numpy as np
import pytest

from repro.workloads import client_id_stream, object_id_stream, query_schedule


class TestLogStreams:
    def test_client_stream_shape(self):
        stream = client_id_stream(n=5_000, seed=0)
        assert len(stream) == 5_000
        assert stream.keys.min() >= 0
        assert stream.keys.max() < stream.universe
        assert np.all(np.diff(stream.timestamps) > 0)  # strictly increasing

    def test_object_stream_more_skewed_than_client(self):
        client = client_id_stream(n=100_000, seed=1)
        obj = object_id_stream(n=100_000, seed=1)
        client_counts = np.bincount(client.keys)
        object_counts = np.bincount(obj.keys)
        client_ratio = client_counts.max() / client_counts[client_counts > 0].mean()
        object_ratio = object_counts.max() / object_counts[object_counts > 0].mean()
        assert object_ratio > client_ratio

    def test_deterministic_with_seed(self):
        a = object_id_stream(n=1_000, seed=5)
        b = object_id_stream(n=1_000, seed=5)
        assert np.array_equal(a.keys, b.keys)

    def test_iteration_yields_pairs(self):
        stream = client_id_stream(n=10, seed=0)
        pairs = list(stream)
        assert len(pairs) == 10
        key, timestamp = pairs[0]
        assert isinstance(key, int)
        assert isinstance(timestamp, float)

    def test_unix_like_timestamps(self):
        stream = client_id_stream(n=100, seed=0)
        assert stream.timestamps[0] >= 900_000_000.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            client_id_stream(n=0)


class TestQuerySchedule:
    def test_five_queries_at_20pct_increments(self):
        stream = client_id_stream(n=1_000, seed=0)
        times = query_schedule(stream)
        assert len(times) == 5
        assert times[-1] == float(stream.timestamps[-1])
        prefix_sizes = [
            int(np.searchsorted(stream.timestamps, t, side="right")) for t in times
        ]
        assert prefix_sizes == [200, 400, 600, 800, 1_000]

    def test_custom_fractions(self):
        stream = client_id_stream(n=100, seed=0)
        times = query_schedule(stream, fractions=(0.5,))
        assert len(times) == 1
        size = int(np.searchsorted(stream.timestamps, times[0], side="right"))
        assert size == 50
