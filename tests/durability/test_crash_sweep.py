"""Kill-point sweep: crash ingestion everywhere, prove recovery exact.

The acceptance bar for the durability layer: run a >=10k-update ingest under
a tracing filesystem, enumerate every labelled filesystem operation (WAL
appends and fsyncs, snapshot temp-writes / fsyncs / renames / dirsyncs, WAL
segment deletions), then re-run the identical ingest crashing at kill points
drawn from *every* operation category — before the op, after it, and (for
data writes) mid-write leaving a torn record.  After each crash, recovery
must produce a sketch whose ``count`` and ATTP/BITP query answers exactly
match a never-crashed reference run over the recovered prefix, and must
never lose an acknowledged update (``fsync_policy='always'``).

Marked ``crash`` so CI can run the sweep as its own job; it also runs in the
plain tier-1 suite (``pytest`` with no ``-m`` filter).
"""

import pytest

from repro.durability import (
    DurableSketch,
    FaultPlan,
    FaultyFilesystem,
    SimulatedCrash,
    recover,
)
from repro.persistent import AttpSampleHeavyHitter, BitpSampleHeavyHitter

pytestmark = pytest.mark.crash

N_UPDATES = 10_000
UNIVERSE = 61
SNAPSHOT_EVERY = 2_500
SEGMENT_BYTES = 64 * 1024  # force several rotations over 10k records
QUERY_TIMES = (0.25, 0.5, 0.75, 1.0)  # fractions of the recovered prefix
PHI = 0.03


def attp_factory():
    return AttpSampleHeavyHitter(k=512, seed=11)


def bitp_factory():
    return BitpSampleHeavyHitter(k=1024, seed=11)


def stream(n=N_UPDATES):
    # Skewed deterministic keys: quadratic residues concentrate mass.
    return [((i * i) % UNIVERSE, float(i)) for i in range(n)]


def ingest(directory, fs, factory, n=N_UPDATES):
    """Run the ingest; returns the number of acknowledged updates."""
    store = DurableSketch.open(
        factory,
        directory,
        fs=fs,
        fsync_policy="always",
        snapshot_every=SNAPSHOT_EVERY,
        segment_bytes=SEGMENT_BYTES,
    )
    acked = 0
    for key, timestamp in stream(n):
        store.update(key, timestamp)
        acked += 1
    store.close()
    return acked


def attp_answers(sketch, count):
    times = [max(0.0, fraction * count - 1) for fraction in QUERY_TIMES]
    return (
        sketch.count,
        [sketch.heavy_hitters_at(t, PHI) for t in times],
        [sketch.estimate_at(key, times[-1]) for key in range(0, UNIVERSE, 7)],
    )


def bitp_answers(sketch, count):
    times = [max(0.0, fraction * count - 1) for fraction in QUERY_TIMES]
    return (
        sketch.count,
        [sketch.heavy_hitters_since(t, PHI) for t in times],
        [sketch.estimate_since(key, times[0]) for key in range(0, UNIVERSE, 7)],
    )


def reference_answers(factory, count, answers):
    ref = factory()
    for key, timestamp in stream(count):
        ref.update(key, timestamp)
    return answers(ref, count)


def trace_ops(tmp_path, factory):
    """One clean traced run; returns the labelled operation sequence."""
    fs = FaultyFilesystem()
    ingest(tmp_path / "trace", fs, factory)
    return fs.ops


def category(label):
    """Collapse a label like 'append:wal-00000003.log' to its op category."""
    kind, _, name = label.partition(":")
    if name.startswith("wal-"):
        return f"{kind}:wal"
    if name.startswith("snapshot-"):
        return f"{kind}:snapshot"
    return kind


def kill_points(ops):
    """Pick sweep points: first / middle / last op of every category,
    in every applicable crash mode."""
    by_category = {}
    for op in ops:
        by_category.setdefault(category(op.label), []).append(op.index)
    points = []
    for cat, indices in sorted(by_category.items()):
        chosen = sorted({indices[0], indices[len(indices) // 2], indices[-1]})
        writes = cat.startswith(("append", "write"))
        modes = ("before", "after", "torn") if writes else ("before", "after")
        for index in chosen:
            for mode in modes:
                points.append(pytest.param(index, mode, id=f"{cat}-op{index}-{mode}"))
    return points


_ATTP_OPS = None


def attp_kill_points():
    # Trace lazily at collection time, once, in a shared temp directory.
    global _ATTP_OPS
    if _ATTP_OPS is None:
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as scratch:
            _ATTP_OPS = trace_ops(Path(scratch), attp_factory)
    return kill_points(_ATTP_OPS)


class TestAttpKillPointSweep:
    @pytest.mark.parametrize("crash_at,mode", attp_kill_points())
    def test_recovery_matches_uncrashed_reference(self, tmp_path, crash_at, mode):
        fs = FaultyFilesystem(FaultPlan(crash_at=crash_at, crash_mode=mode))
        acked = 0
        try:
            directory = tmp_path / "state"
            store = DurableSketch.open(
                attp_factory,
                directory,
                fs=fs,
                fsync_policy="always",
                snapshot_every=SNAPSHOT_EVERY,
                segment_bytes=SEGMENT_BYTES,
            )
            for key, timestamp in stream():
                store.update(key, timestamp)
                acked += 1
            store.close()
        except SimulatedCrash:
            pass
        assert fs.crashed, "kill point was never reached"

        result = recover(directory, attp_factory)
        recovered = result.sketch.count
        # No acknowledged update may be lost; at most the one in-flight,
        # unacknowledged update may additionally survive.
        assert acked <= recovered <= acked + 1
        assert result.last_seqno >= result.snapshot_seqno
        # Exactness: identical answers to a never-crashed run of the prefix.
        assert attp_answers(result.sketch, recovered) == reference_answers(
            attp_factory, recovered, attp_answers
        )

    def test_reingest_after_recovery_reaches_full_stream_state(self, tmp_path):
        """Crash mid-stream, recover, finish the stream: final answers match
        a run that never crashed at all."""
        fs = FaultyFilesystem(FaultPlan(crash_at=9_000, crash_mode="torn"))
        directory = tmp_path / "state"
        acked = 0
        try:
            store = DurableSketch.open(
                attp_factory,
                directory,
                fs=fs,
                fsync_policy="always",
                snapshot_every=SNAPSHOT_EVERY,
                segment_bytes=SEGMENT_BYTES,
            )
            for key, timestamp in stream():
                store.update(key, timestamp)
                acked += 1
        except SimulatedCrash:
            pass
        assert fs.crashed

        resumed = DurableSketch.open(
            attp_factory,
            directory,
            fsync_policy="batch",
            snapshot_every=SNAPSHOT_EVERY,
            segment_bytes=SEGMENT_BYTES,
        )
        for key, timestamp in stream()[resumed.count :]:
            resumed.update(key, timestamp)
        assert resumed.count == N_UPDATES
        assert attp_answers(resumed.sketch, N_UPDATES) == reference_answers(
            attp_factory, N_UPDATES, attp_answers
        )
        resumed.close()


class TestBitpKillPoints:
    """A lighter pass with a BITP sketch: one kill point per category."""

    @pytest.fixture(scope="class")
    def bitp_points(self, tmp_path_factory):
        ops = trace_ops(tmp_path_factory.mktemp("bitp-trace"), bitp_factory)
        by_category = {}
        for op in ops:
            by_category.setdefault(category(op.label), []).append(op.index)
        return sorted(
            indices[len(indices) // 2] for indices in by_category.values()
        )

    def test_recovery_matches_reference_at_each_category(
        self, tmp_path, bitp_points
    ):
        for crash_at in bitp_points:
            directory = tmp_path / f"state-{crash_at}"
            fs = FaultyFilesystem(FaultPlan(crash_at=crash_at, crash_mode="torn"))
            acked = 0
            try:
                store = DurableSketch.open(
                    bitp_factory,
                    directory,
                    fs=fs,
                    fsync_policy="always",
                    snapshot_every=SNAPSHOT_EVERY,
                    segment_bytes=SEGMENT_BYTES,
                )
                for key, timestamp in stream():
                    store.update(key, timestamp)
                    acked += 1
                store.close()
            except SimulatedCrash:
                pass
            assert fs.crashed

            result = recover(directory, bitp_factory)
            recovered = result.sketch.count
            assert acked <= recovered <= acked + 1
            assert bitp_answers(result.sketch, recovered) == reference_answers(
                bitp_factory, recovered, bitp_answers
            )
