"""Unit tests for the segmented write-ahead log."""

import struct

import numpy as np
import pytest

from repro.durability import (
    FaultPlan,
    FaultyFilesystem,
    InjectedIOError,
    WriteAheadLog,
    iter_records,
    list_segments,
    scan_segment,
)
from repro.durability.wal import encode_record, segment_index, segment_name


def fill(wal, n, start=0):
    for i in range(start, start + n):
        wal.append(i % 50, float(i), 1.0 + (i % 3))


class TestFraming:
    def test_roundtrip_records(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync_policy="off") as wal:
            fill(wal, 500)
        records = list(iter_records(tmp_path))
        assert len(records) == 500
        assert [r.seqno for r in records] == list(range(1, 501))
        assert records[7].value == 7 and records[7].timestamp == 7.0
        assert records[7].weight == 1.0 + (7 % 3)

    def test_arbitrary_picklable_values(self, tmp_path):
        row = np.arange(6, dtype=float)
        with WriteAheadLog(tmp_path, fsync_policy="off") as wal:
            wal.append(row, 1.0)
            wal.append(("compound", 3), 2.0)
        records = list(iter_records(tmp_path))
        assert np.array_equal(records[0].value, row)
        assert records[1].value == ("compound", 3)

    def test_invalid_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync_policy"):
            WriteAheadLog(tmp_path, fsync_policy="sometimes")


class TestRotation:
    def test_segments_rotate_at_size(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync_policy="off", segment_bytes=2048) as wal:
            fill(wal, 400)
        segments = list_segments(tmp_path)
        assert len(segments) > 1
        assert [segment_index(p) for p in segments] == list(
            range(1, len(segments) + 1)
        )
        # Records must be continuous across the segment boundary.
        assert [r.seqno for r in iter_records(tmp_path)] == list(range(1, 401))

    def test_reopen_starts_fresh_segment(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync_policy="off") as wal:
            fill(wal, 10)
        with WriteAheadLog(tmp_path, fsync_policy="off", next_seqno=11) as wal:
            fill(wal, 5, start=10)
        assert len(list_segments(tmp_path)) == 2
        assert [r.seqno for r in iter_records(tmp_path)] == list(range(1, 16))


class TestTruncation:
    def test_truncate_through_removes_covered_segments(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync_policy="off", segment_bytes=2048) as wal:
            fill(wal, 400)
            before = len(wal.segments())
            removed = wal.truncate_through(wal.next_seqno - 1)
            assert removed and len(wal.segments()) == before - len(removed)
            # Active segment survives; remaining records still scan clean.
            remaining = [r.seqno for r in iter_records(tmp_path)]
            assert remaining and remaining[-1] == 400

    def test_truncate_keeps_uncovered_segments(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync_policy="off", segment_bytes=2048) as wal:
            fill(wal, 400)
            before = wal.segments()
            assert wal.truncate_through(0) == []
            assert wal.segments() == before


class TestScanDamage:
    def test_torn_tail_detected(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync_policy="off") as wal:
            fill(wal, 50)
        [segment] = list_segments(tmp_path)
        data = segment.read_bytes()
        segment.write_bytes(data[:-3])  # cut the last record short
        scan = scan_segment(segment)
        assert scan.status == "torn"
        assert len(scan.records) == 49
        assert 0 < scan.good_bytes < len(data)

    def test_interior_bitflip_detected_as_corrupt(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync_policy="off") as wal:
            fill(wal, 50)
        [segment] = list_segments(tmp_path)
        data = bytearray(segment.read_bytes())
        data[len(data) // 2] ^= 0xFF
        segment.write_bytes(bytes(data))
        scan = scan_segment(segment)
        assert scan.status == "corrupt"
        assert "CRC" in scan.detail or "sequence" in scan.detail

    def test_bad_segment_magic_is_corrupt(self, tmp_path):
        path = tmp_path / segment_name(1)
        path.write_bytes(b"NOTAWAL!" + b"\x00" * 64)
        assert scan_segment(path).status == "corrupt"

    def test_short_write_caught_by_crc(self, tmp_path):
        # A silent kernel short-write persists a prefix of one record; the
        # CRC catches it at scan time.
        fs = FaultyFilesystem(FaultPlan(short_write_at=6))
        with WriteAheadLog(tmp_path, fs=fs, fsync_policy="off") as wal:
            fill(wal, 8)  # op 1 is the header append; records are ops 2..9
        [segment] = list_segments(tmp_path)
        scan = scan_segment(segment)
        assert scan.status in ("torn", "corrupt")
        assert len(scan.records) < 8

    def test_record_encoding_is_stable(self):
        frame = encode_record(7, 3.0, 2.0, seqno=9)
        crc, length, seqno = struct.unpack(">IIQ", frame[:16])
        assert seqno == 9 and length == len(frame) - 16


class TestIOErrors:
    def test_injected_append_error_propagates(self, tmp_path):
        fs = FaultyFilesystem(FaultPlan(error_at=5))
        with WriteAheadLog(tmp_path, fs=fs, fsync_policy="off") as wal:
            with pytest.raises(InjectedIOError):
                fill(wal, 100)
            # The WAL object survives; appended prefix is intact.
            appended = wal.records_appended
            assert appended < 100
        assert len(list(iter_records(tmp_path))) == appended

    def test_crash_after_landed_write_counts_the_record(self, tmp_path):
        """An append that raises *after* its frame fully landed must still
        count: recovery will replay the on-disk record, so a caller that
        re-submits the "failed" item would double-apply it."""
        from repro.durability import SimulatedCrash

        trace = FaultyFilesystem()
        with WriteAheadLog(tmp_path / "trace", fs=trace, fsync_policy="always") as wal:
            fill(wal, 3)
        append_ops = [op.index for op in trace.ops if op.label.startswith("append:")]
        # append_ops[0] is the segment-header append; [2] = second record
        fs = FaultyFilesystem(FaultPlan(crash_at=append_ops[2], crash_mode="after"))
        wal = WriteAheadLog(tmp_path / "state", fs=fs, fsync_policy="always")
        with pytest.raises(SimulatedCrash):
            fill(wal, 3)
        # the second record's frame is complete on disk: accounted
        assert wal.records_appended == 2
        assert wal.next_seqno == 3
        assert len(list(iter_records(tmp_path / "state"))) == wal.records_appended

    def test_torn_crash_leaves_the_record_unaccounted(self, tmp_path):
        """A torn write (partial frame) is recovery residue, not a record."""
        from repro.durability import SimulatedCrash

        trace = FaultyFilesystem()
        with WriteAheadLog(tmp_path / "trace", fs=trace, fsync_policy="always") as wal:
            fill(wal, 3)
        append_ops = [op.index for op in trace.ops if op.label.startswith("append:")]
        fs = FaultyFilesystem(FaultPlan(crash_at=append_ops[2], crash_mode="torn"))
        wal = WriteAheadLog(tmp_path / "state", fs=fs, fsync_policy="always")
        with pytest.raises(SimulatedCrash):
            fill(wal, 3)
        assert wal.records_appended == 1
        assert wal.next_seqno == 2
        scan = scan_segment(list_segments(tmp_path / "state")[-1])
        assert scan.status == "torn" and len(scan.records) == 1

    def test_fsync_error_propagates_under_always(self, tmp_path):
        fs = FaultyFilesystem(FaultPlan(error_at=4))  # hits the first fsync
        wal = WriteAheadLog(tmp_path, fs=fs, fsync_policy="always")
        with pytest.raises(InjectedIOError):
            fill(wal, 10)
        labels = [op.label for op in fs.ops]
        assert labels[3].startswith("fsync")
