"""BATCH WAL records: framing, replay identity, and crash recovery.

One ``update_batch`` call produces exactly one ``BATCH`` record under one
sequence number.  The record is atomic *in the log* — after a crash it is
either fully framed (CRC-valid) or a torn tail that recovery truncates; a
partially applied batch is never visible after replay except as the same
deterministic prefix-apply the live path produced.
"""

import pytest

from repro.durability import (
    DurableSketch,
    FaultPlan,
    FaultyFilesystem,
    SimulatedCrash,
    WalBatchRecord,
    WalRecord,
    WriteAheadLog,
    iter_records,
    recover,
    scan_segment,
)
from repro.durability.wal import encode_batch_record, encode_record
from repro.persistent import AttpSampleHeavyHitter

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

UNIVERSE = 53
N = 2_000
BATCH = 125


def stream(n=N):
    return [((i * i) % UNIVERSE, float(i)) for i in range(n)]


def factory():
    return AttpSampleHeavyHitter(k=256, seed=13)


def batches(n=N, size=BATCH):
    items = stream(n)
    for start in range(0, n, size):
        chunk = items[start : start + size]
        yield [key for key, _ in chunk], [t for _, t in chunk]


def answers(sketch, count):
    times = [count * fraction for fraction in (0.25, 0.5, 0.75, 1.0)]
    return (
        sketch.count,
        [sketch.heavy_hitters_at(t, 0.03) for t in times],
        [sketch.estimate_at(key, times[-1]) for key in range(0, UNIVERSE, 5)],
    )


class TestBatchFraming:
    def test_roundtrip_through_scan(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_policy="always")
        seqno = wal.append_batch([1, 2, 3], [0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        wal.append(9, 3.0, 1.0)
        wal.close()
        records = list(iter_records(tmp_path))
        assert len(records) == 2
        batch, scalar = records
        assert isinstance(batch, WalBatchRecord)
        assert batch.seqno == seqno
        assert batch.values == [1, 2, 3]
        assert batch.timestamps == [0.0, 1.0, 2.0]
        assert batch.weights == [1.0, 2.0, 3.0]
        assert len(batch) == 3
        assert isinstance(scalar, WalRecord)
        assert scalar.seqno == seqno + 1

    def test_unweighted_batch_keeps_weights_none(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append_batch([4, 5], [0.5, 1.5], None)
        wal.close()
        (record,) = list(iter_records(tmp_path))
        assert record.weights is None

    def test_one_seqno_per_batch(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        first = wal.append_batch(list(range(100)), [float(i) for i in range(100)], None)
        second = wal.append_batch([100], [100.0], None)
        assert second == first + 1
        wal.close()

    def test_torn_batch_tail_truncates_cleanly(self, tmp_path):
        """A BATCH record cut mid-frame is classified torn, not corrupt."""
        wal = WriteAheadLog(tmp_path)
        wal.append_batch([1, 2], [0.0, 1.0], None)
        wal.append_batch([3, 4], [2.0, 3.0], None)
        wal.close()
        (segment,) = sorted(tmp_path.glob("wal-*.log"))
        whole = segment.read_bytes()
        # 24-byte segment header, then the first framed BATCH record.
        boundary = 24 + len(encode_batch_record([1, 2], [0.0, 1.0], None, 1))
        segment.write_bytes(whole[: boundary + 7])  # cut inside record 2
        scan = scan_segment(segment)
        assert scan.status == "torn"
        assert len(scan.records) == 1
        assert scan.good_bytes == boundary

    def test_batch_frame_same_layout_as_scalar(self):
        """Both record kinds share the 16-byte crc/length/seqno header."""
        scalar = encode_record(1, 2.0, 3.0, 7)
        batch = encode_batch_record([1], [2.0], [3.0], 7)
        # Bytes 8..16 are the big-endian seqno in both frames.
        assert scalar[8:16] == batch[8:16]


class TestDurableBatchIngest:
    def test_batch_store_state_equals_scalar_store(self, tmp_path):
        scalar_store = DurableSketch.open(factory, tmp_path / "scalar", snapshot_every=0)
        for key, timestamp in stream():
            scalar_store.update(key, timestamp)
        batch_store = DurableSketch.open(factory, tmp_path / "batch", snapshot_every=0)
        for keys, times in batches():
            batch_store.update_batch(keys, times)
        assert answers(scalar_store.sketch, N) == answers(batch_store.sketch, N)
        # The batch WAL holds one record per batch, not per update.
        assert batch_store.wal.records_appended == (N + BATCH - 1) // BATCH
        assert scalar_store.wal.records_appended == N
        scalar_store.close(final_snapshot=False)
        batch_store.close(final_snapshot=False)

    def test_recovery_replays_batches_exactly(self, tmp_path):
        directory = tmp_path / "state"
        store = DurableSketch.open(factory, directory, snapshot_every=0)
        for keys, times in batches():
            store.update_batch(keys, times)
        expected = answers(store.sketch, N)
        store.wal.flush()
        store.wal.close()  # abandon without snapshot: replay does all the work
        result = recover(directory, factory)
        assert result.replayed == (N + BATCH - 1) // BATCH
        assert answers(result.sketch, N) == expected

    def test_mixed_scalar_and_batch_replay(self, tmp_path):
        directory = tmp_path / "state"
        store = DurableSketch.open(factory, directory, snapshot_every=0)
        items = stream(600)
        for key, timestamp in items[:100]:
            store.update(key, timestamp)
        store.update_batch(
            [k for k, _ in items[100:400]], [t for _, t in items[100:400]]
        )
        for key, timestamp in items[400:450]:
            store.update(key, timestamp)
        store.update_batch(
            [k for k, _ in items[450:600]], [t for _, t in items[450:600]]
        )
        expected = answers(store.sketch, 600)
        store.wal.flush()
        store.wal.close()
        result = recover(directory, factory)
        assert result.replayed == 100 + 1 + 50 + 1
        assert answers(result.sketch, 600) == expected

    def test_snapshot_cadence_counts_updates_not_records(self, tmp_path):
        store = DurableSketch.open(
            factory, tmp_path / "state", snapshot_every=500, keep_snapshots=10
        )
        for keys, times in batches(2_000, 125):  # 16 records, 2000 updates
            store.update_batch(keys, times)
        assert store.snapshots_taken == 4
        store.close(final_snapshot=False)

    def test_rejected_batch_prefix_replays_identically(self, tmp_path):
        from repro.core import MonotoneViolation

        directory = tmp_path / "state"
        store = DurableSketch.open(factory, directory, snapshot_every=0)
        store.update_batch([1, 2], [0.0, 1.0])
        with pytest.raises(MonotoneViolation):
            store.update_batch([3, 4, 5], [2.0, 0.5, 3.0])  # rejected at index 1
        store.update_batch([6], [4.0])
        assert store.updates_rejected == 1
        expected = answers(store.sketch, 4)
        store.wal.flush()
        store.wal.close()
        result = recover(directory, factory)
        assert result.rejected == 1
        assert result.replayed == 2
        assert answers(result.sketch, 4) == expected

    def test_seeded_sampler_batches_recover_bit_identically(self, tmp_path):
        """RNG-bearing sketches replay batches to the same PCG64 position."""
        directory = tmp_path / "state"
        store = DurableSketch.open(factory, directory, snapshot_every=0)
        for keys, times in batches(1_000):
            store.update_batch(keys, times)
        live_rng = store.sketch._sample._rng.bit_generator.state
        store.wal.flush()
        store.wal.close()
        result = recover(directory, factory)
        assert result.sketch._sample._rng.bit_generator.state == live_rng


@pytest.mark.crash
class TestBatchCrashPoints:
    """Kill-point inside a BATCH WAL record: recovery must reach exactly the
    pre-crash acknowledged answers."""

    def _run_until_crash(self, directory, fs):
        acked_updates = 0
        try:
            store = DurableSketch.open(
                factory,
                directory,
                fs=fs,
                fsync_policy="always",
                snapshot_every=500,
                segment_bytes=16 * 1024,
            )
            for keys, times in batches():
                store.update_batch(keys, times)
                acked_updates += len(keys)
            store.close()
        except SimulatedCrash:
            pass
        return acked_updates

    def _wal_append_indices(self, tmp_path):
        fs = FaultyFilesystem()
        self._run_until_crash(tmp_path / "trace", fs)
        return [
            op.index
            for op in fs.ops
            if op.label.startswith("append:wal-")
        ]

    @pytest.mark.parametrize("mode", ["before", "torn", "after"])
    def test_crash_inside_batch_append(self, tmp_path, mode):
        appends = self._wal_append_indices(tmp_path)
        crash_at = appends[len(appends) // 2]
        fs = FaultyFilesystem(FaultPlan(crash_at=crash_at, crash_mode=mode))
        directory = tmp_path / f"state-{mode}"
        acked = self._run_until_crash(directory, fs)
        assert fs.crashed, "kill point was never reached"

        result = recover(directory, factory)
        recovered = result.sketch.count
        # No acknowledged batch may be lost; the unacknowledged in-flight
        # batch may survive whole iff its frame hit the log ('after').
        assert acked <= recovered <= acked + BATCH
        assert recovered % BATCH == 0  # batches are atomic in the log
        reference = factory()
        for key, timestamp in stream(recovered):
            reference.update(key, timestamp)
        assert answers(result.sketch, recovered) == answers(reference, recovered)

    def test_torn_batch_never_partially_applies(self, tmp_path):
        """The torn record's updates are wholly absent — not a prefix."""
        appends = self._wal_append_indices(tmp_path)
        crash_at = appends[2]
        fs = FaultyFilesystem(FaultPlan(crash_at=crash_at, crash_mode="torn"))
        directory = tmp_path / "state"
        self._run_until_crash(directory, fs)
        assert fs.crashed
        result = recover(directory, factory)
        assert result.torn_bytes > 0
        assert result.sketch.count % BATCH == 0
