"""DurableSketch + recovery behaviour (no crash sweep here — see
``test_crash_sweep.py`` for the exhaustive kill-point version)."""

import pickle

import pytest

from repro.core import MonotoneViolation
from repro.durability import (
    DurableSketch,
    WalCorruptionError,
    list_segments,
    recover,
)
from repro.durability.recovery import list_snapshots
from repro.persistent import AttpSampleHeavyHitter, BitpSampleHeavyHitter


def attp_factory():
    return AttpSampleHeavyHitter(k=128, seed=7)


def bitp_factory():
    return BitpSampleHeavyHitter(k=256, seed=7)


def keyed_stream(n):
    # Deterministic skewed keys: key i*i % 37 concentrates mass on residues.
    return [((i * i) % 37, float(i)) for i in range(n)]


def feed(store, n):
    for key, timestamp in keyed_stream(n):
        store.update(key, timestamp)


def reference(factory, n):
    sketch = factory()
    for key, timestamp in keyed_stream(n):
        sketch.update(key, timestamp)
    return sketch


class TestIngestAndReopen:
    def test_reopen_restores_exact_answers(self, tmp_path):
        store = DurableSketch.open(attp_factory, tmp_path, snapshot_every=400)
        feed(store, 1_500)
        expected = store.heavy_hitters_at(1_499.0, 0.05)
        store.wal.close()  # abrupt stop: no final snapshot, no tidy close

        reopened = DurableSketch.open(attp_factory, tmp_path, snapshot_every=400)
        assert reopened.count == 1_500
        assert reopened.heavy_hitters_at(1_499.0, 0.05) == expected
        ref = reference(attp_factory, 1_500)
        assert reopened.estimate_at(0, 1_499.0) == ref.estimate_at(0, 1_499.0)

    def test_reopen_continues_deterministically(self, tmp_path):
        store = DurableSketch.open(attp_factory, tmp_path, snapshot_every=300)
        feed(store, 1_000)
        store.wal.close()
        reopened = DurableSketch.open(attp_factory, tmp_path, snapshot_every=300)
        for key, timestamp in keyed_stream(1_400)[1_000:]:
            reopened.update(key, timestamp)
        ref = reference(attp_factory, 1_400)
        assert reopened.count == 1_400
        assert reopened.heavy_hitters_at(1_399.0, 0.05) == ref.heavy_hitters_at(
            1_399.0, 0.05
        )

    def test_bitp_reopen_restores_window_answers(self, tmp_path):
        store = DurableSketch.open(bitp_factory, tmp_path, snapshot_every=500)
        feed(store, 2_000)
        expected = store.heavy_hitters_since(1_500.0, 0.05)
        store.wal.close()
        reopened = DurableSketch.open(bitp_factory, tmp_path)
        assert reopened.count == 2_000
        assert reopened.heavy_hitters_since(1_500.0, 0.05) == expected

    def test_close_takes_final_snapshot_and_truncates(self, tmp_path):
        store = DurableSketch.open(attp_factory, tmp_path, snapshot_every=0)
        feed(store, 800)
        assert list_snapshots(tmp_path) == []
        store.close()
        snapshots = list_snapshots(tmp_path)
        assert len(snapshots) == 1
        # Recovery from snapshot alone (WAL fully truncated) is exact.
        result = recover(tmp_path, attp_factory)
        assert result.sketch.count == 800 and result.replayed == 0

    def test_snapshot_pruning_keeps_fallbacks(self, tmp_path):
        store = DurableSketch.open(
            attp_factory, tmp_path, snapshot_every=100, keep_snapshots=2
        )
        feed(store, 1_000)
        assert len(list_snapshots(tmp_path)) == 2
        store.close()

    def test_weighted_updates_logged_and_replayed(self, tmp_path):
        from repro.core import PersistentPrioritySample

        factory = lambda: PersistentPrioritySample(k=32, seed=3)
        store = DurableSketch.open(factory, tmp_path, snapshot_every=0)
        for i in range(500):
            store.update(i % 11, float(i), weight=1.0 + (i % 5))
        expected = sorted(store.sketch.raw_sample_at(499.0))
        store.wal.close()
        result = recover(tmp_path, factory)
        assert sorted(result.sketch.raw_sample_at(499.0)) == expected


class TestRejectedUpdates:
    def test_rejected_update_replays_as_rejection(self, tmp_path):
        store = DurableSketch.open(attp_factory, tmp_path, snapshot_every=0)
        feed(store, 100)
        with pytest.raises(MonotoneViolation):
            store.update(5, 1.0)  # time travel: rejected but logged
        feed_more = keyed_stream(150)[100:]
        for key, timestamp in feed_more:
            store.update(key, timestamp)
        answers = store.heavy_hitters_at(149.0, 0.05)
        store.wal.close()

        result = recover(tmp_path, attp_factory)
        assert result.rejected == 1
        assert result.replayed == 150
        assert result.sketch.count == 150
        assert result.sketch.heavy_hitters_at(149.0, 0.05) == answers


class TestDamageHandling:
    def test_torn_final_record_truncated_not_raised(self, tmp_path):
        store = DurableSketch.open(attp_factory, tmp_path, snapshot_every=0)
        feed(store, 300)
        store.wal.close()
        [segment] = list_segments(tmp_path)
        segment.write_bytes(segment.read_bytes()[:-5])

        result = recover(tmp_path, attp_factory)
        assert result.torn_bytes > 0
        assert result.truncated_segment == segment
        assert result.sketch.count == 299
        ref = reference(attp_factory, 299)
        assert result.sketch.heavy_hitters_at(298.0, 0.05) == ref.heavy_hitters_at(
            298.0, 0.05
        )
        # After truncation the directory recovers clean a second time.
        assert recover(tmp_path, attp_factory).clean

    def test_interior_corruption_quarantined_and_raised(self, tmp_path):
        store = DurableSketch.open(
            attp_factory, tmp_path, snapshot_every=0, segment_bytes=4096
        )
        feed(store, 2_000)
        store.wal.close()
        segments = list_segments(tmp_path)
        assert len(segments) > 2
        victim = segments[1]
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0xFF
        victim.write_bytes(bytes(data))

        with pytest.raises(WalCorruptionError, match="quarantined"):
            recover(tmp_path, attp_factory)
        assert not victim.exists()
        assert victim.with_suffix(victim.suffix + ".quarantine").exists()

    def test_non_strict_serves_prefix_before_damage(self, tmp_path):
        store = DurableSketch.open(
            attp_factory, tmp_path, snapshot_every=0, segment_bytes=4096
        )
        feed(store, 2_000)
        store.wal.close()
        segments = list_segments(tmp_path)
        victim = segments[1]
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0xFF
        victim.write_bytes(bytes(data))

        result = recover(tmp_path, attp_factory, strict=False)
        assert result.corruption_detail
        assert 0 < result.sketch.count < 2_000
        ref = reference(attp_factory, result.sketch.count)
        t = float(result.sketch.count - 1)
        assert result.sketch.heavy_hitters_at(t, 0.05) == ref.heavy_hitters_at(t, 0.05)

    def test_corrupt_snapshot_falls_back_to_older(self, tmp_path):
        store = DurableSketch.open(
            attp_factory, tmp_path, snapshot_every=400, keep_snapshots=3
        )
        feed(store, 1_500)
        store.wal.close()
        newest = list_snapshots(tmp_path)[0]
        data = bytearray(newest.read_bytes())
        data[-1] ^= 0xFF
        newest.write_bytes(bytes(data))

        result = recover(tmp_path, attp_factory)
        assert result.snapshot_path is not None
        assert result.snapshot_path != newest
        assert [q for q in result.quarantined if q.name.endswith(".corrupt")]
        # Older snapshot + longer replay still reaches the same final state…
        assert result.sketch.count == 1_500
        ref = reference(attp_factory, 1_500)
        assert result.sketch.heavy_hitters_at(1_499.0, 0.05) == ref.heavy_hitters_at(
            1_499.0, 0.05
        )

    def test_all_snapshots_corrupt_replays_from_scratch(self, tmp_path):
        store = DurableSketch.open(
            attp_factory, tmp_path, snapshot_every=400, segment_bytes=4096
        )
        feed(store, 1_000)
        assert store.wal.segments_removed > 0  # prefix truly truncated
        store.wal.close()
        # Snapshots gone, but the WAL was only truncated up to the newest
        # snapshot — destroying snapshots loses the truncated prefix, so
        # recovery without them must fail loudly via the sequence check,
        # not silently return a partial sketch.
        for snapshot in list_snapshots(tmp_path):
            snapshot.unlink()
        with pytest.raises(WalCorruptionError, match="sequence gap"):
            recover(tmp_path, attp_factory)

    def test_empty_directory_needs_factory(self, tmp_path):
        from repro.io import SketchFileError

        with pytest.raises(SketchFileError, match="no usable snapshot"):
            recover(tmp_path)


class TestDurableSketchErgonomics:
    def test_context_manager_closes_cleanly(self, tmp_path):
        with DurableSketch.open(attp_factory, tmp_path) as store:
            feed(store, 200)
        assert len(list_snapshots(tmp_path)) == 1

    def test_query_forwarding_and_stats(self, tmp_path):
        store = DurableSketch.open(attp_factory, tmp_path, snapshot_every=100)
        feed(store, 350)
        assert store.count == 350  # forwarded to the wrapped sketch
        assert store.k == 128
        stats = store.stats()
        assert stats["records_appended"] == 350
        assert stats["snapshots_taken"] == 3
        with pytest.raises(AttributeError):
            store.no_such_method
        store.close()

    def test_wrapped_sketch_still_pickles(self, tmp_path):
        store = DurableSketch.open(attp_factory, tmp_path, snapshot_every=0)
        feed(store, 100)
        clone = pickle.loads(pickle.dumps(store.sketch))
        assert clone.heavy_hitters_at(99.0, 0.05) == store.heavy_hitters_at(99.0, 0.05)
        store.close()
