"""Registry semantics: counters, gauges, histogram bucket edges, families."""

import pytest

from repro.telemetry.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TELEMETRY,
    timed,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.inc(-1.0)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10.0)
        gauge.inc(5.0)
        gauge.dec(3.0)
        assert gauge.value == 12.0

    def test_may_go_negative(self):
        gauge = Gauge()
        gauge.dec(4.0)
        assert gauge.value == -4.0


class TestHistogramBuckets:
    def test_default_bounds_are_increasing(self):
        bounds = DEFAULT_LATENCY_BUCKETS
        assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))

    def test_observation_on_edge_lands_in_that_bucket(self):
        # Prometheus `le` semantics: a value exactly equal to a bound
        # belongs to that bound's bucket.
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        histogram.observe(2.0)
        assert histogram.bucket_counts == [0, 1, 0, 0]

    def test_observation_between_edges(self):
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        histogram.observe(1.5)
        histogram.observe(0.5)
        histogram.observe(3.0)
        assert histogram.bucket_counts == [1, 1, 1, 0]

    def test_overflow_bucket_catches_large_values(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(100.0)
        assert histogram.bucket_counts == [0, 0, 1]
        # Quantiles clamp to the largest finite bound.
        assert histogram.quantile(0.99) == 2.0

    def test_count_and_sum(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        assert histogram.count == 2
        assert histogram.sum == 2.0
        assert histogram.mean() == 1.0

    def test_quantile_interpolates_within_bucket(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        for _ in range(10):
            histogram.observe(1.5)  # all land in the (1.0, 2.0] bucket
        p50 = histogram.quantile(0.5)
        assert 1.0 <= p50 <= 2.0

    def test_percentiles_trio(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(0.5)
        trio = histogram.percentiles()
        assert set(trio) == {"p50", "p95", "p99"}

    def test_empty_quantile_is_zero(self):
        histogram = Histogram(bounds=(1.0,))
        assert histogram.quantile(0.5) == 0.0
        assert histogram.mean() == 0.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0,)).quantile(1.5)


class TestRegistry:
    def test_same_name_same_labels_returns_same_child(self):
        registry = MetricsRegistry()
        a = registry.counter("events_total", "help", kind="a")
        b = registry.counter("events_total", kind="a")
        assert a is b

    def test_different_labels_different_children(self):
        registry = MetricsRegistry()
        a = registry.counter("events_total", kind="a")
        b = registry.counter("events_total", kind="b")
        assert a is not b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("events_total")
        with pytest.raises(ValueError):
            registry.gauge("events_total")

    def test_rejects_bad_names_and_labels(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("Bad-Name")
        with pytest.raises(ValueError):
            registry.counter("ok_total", **{"Bad-Label": "x"})

    def test_declare_registers_without_children(self):
        registry = MetricsRegistry()
        family = registry.declare("lazy_seconds", "histogram", "later labels")
        assert "lazy_seconds" in registry.names()
        assert family.children == {}
        child = family.labels(op="x")
        assert isinstance(child, Histogram)

    def test_reset_zeroes_values_but_keeps_catalog(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", kind="a")
        histogram = registry.histogram("latency_seconds", op="q")
        counter.inc(7)
        histogram.observe(0.5)
        registry.reset()
        assert registry.names() == ["events_total", "latency_seconds"]
        assert registry.counter("events_total", kind="a").value == 0.0
        assert registry.histogram("latency_seconds", op="q").count == 0

    def test_families_sorted_and_samples_stable(self):
        registry = MetricsRegistry()
        registry.counter("b_total", x="2")
        registry.counter("b_total", x="1")
        registry.counter("a_total")
        assert [f.name for f in registry.families()] == ["a_total", "b_total"]
        labelsets = [labels for labels, _ in registry.get("b_total").samples()]
        assert labelsets == [{"x": "1"}, {"x": "2"}]


class TestFamilyRemove:
    def test_remove_drops_matching_children(self):
        registry = MetricsRegistry()
        registry.gauge("bytes", sketch="a", component="x").set(1)
        registry.gauge("bytes", sketch="a", component="y").set(2)
        registry.gauge("bytes", sketch="b", component="x").set(3)
        family = registry.get("bytes")
        assert family.remove(sketch="a") == 2
        remaining = [labels for labels, _ in family.samples()]
        assert remaining == [{"sketch": "b", "component": "x"}]

    def test_remove_matches_on_a_label_subset(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", op="read", shard="0").inc()
        registry.counter("ops_total", op="write", shard="0").inc()
        family = registry.get("ops_total")
        assert family.remove(shard="0", op="read") == 1
        assert family.remove(op="nope") == 0

    def test_removed_series_can_be_recreated_at_zero(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", op="a").inc(5)
        registry.get("ops_total").remove(op="a")
        assert registry.counter("ops_total", op="a").value == 0.0


class TestTimedDecorator:
    def test_disabled_does_not_observe(self, clean_telemetry):
        histogram = Histogram(bounds=(1.0,))

        @timed(histogram)
        def work():
            """Doc."""
            return 42

        assert work() == 42
        assert histogram.count == 0
        assert work.__doc__ == "Doc."

    def test_enabled_observes_once_per_call(self, enabled_telemetry):
        histogram = Histogram(bounds=(10.0,))

        @timed(histogram)
        def work():
            """Doc."""
            return 42

        assert work() == 42
        assert histogram.count == 1
        assert histogram.sum >= 0.0

    def test_observes_even_when_raising(self, enabled_telemetry):
        histogram = Histogram(bounds=(10.0,))

        @timed(histogram)
        def boom():
            """Doc."""
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            boom()
        assert histogram.count == 1


class TestGlobalControl:
    def test_switch_round_trip(self, clean_telemetry):
        assert TELEMETRY.enabled is False
        TELEMETRY.enable()
        assert TELEMETRY.enabled is True
        TELEMETRY.disable()
        assert TELEMETRY.enabled is False

    def test_package_catalog_is_registered_at_import(self, clean_telemetry):
        # Importing repro registers every metric family the code can emit,
        # even while telemetry is disabled — that is what lets the docs
        # lint enumerate the catalog.
        import repro  # noqa: F401

        names = TELEMETRY.registry.names()
        assert "sketch_updates_total" in names
        assert "wal_records_appended_total" in names
        assert "persistent_query_seconds" in names
        assert "span_wall_seconds" in names
        assert "memory_resident_bytes" in names
