"""Thread-safety of the metrics registry under concurrent shard workers.

The service layer (:mod:`repro.service`) increments shared counter children
from one thread per shard.  A plain ``self.value += amount`` is a
read-modify-write that CPython may preempt between the load and the store,
silently losing increments; these tests hammer one child from many threads
and assert nothing is lost, for every metric kind and for the racy child
creation and registration paths too.
"""

import threading

import pytest

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

THREADS = 8
PER_THREAD = 25_000


def hammer(target, threads=THREADS):
    """Run ``target(thread_index)`` on ``threads`` threads, start-synchronised."""
    barrier = threading.Barrier(threads)

    def run(index):
        barrier.wait()
        target(index)

    workers = [
        threading.Thread(target=run, args=(index,)) for index in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()


class TestCounterUnderContention:
    def test_no_lost_increments(self):
        counter = Counter()
        hammer(lambda _: [counter.inc() for _ in range(PER_THREAD)])
        assert counter.value == THREADS * PER_THREAD

    def test_weighted_increments_sum_exactly(self):
        counter = Counter()
        hammer(lambda i: [counter.inc(i + 1) for _ in range(PER_THREAD)])
        expected = PER_THREAD * sum(range(1, THREADS + 1))
        assert counter.value == expected

    def test_reads_during_writes_never_exceed_total(self):
        counter = Counter()
        seen = []

        def read(_):
            for _ in range(2_000):
                seen.append(counter.value)

        def write(_):
            for _ in range(PER_THREAD):
                counter.inc()

        hammer(lambda i: read(i) if i % 2 else write(i))
        total = (THREADS // 2) * PER_THREAD
        assert counter.value == total
        assert all(0 <= value <= total for value in seen)

    def test_negative_inc_still_rejected(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGaugeUnderContention:
    def test_inc_dec_balance_out(self):
        gauge = Gauge()

        def churn(_):
            for _ in range(PER_THREAD):
                gauge.inc(2.0)
                gauge.dec(2.0)

        hammer(churn)
        assert gauge.value == 0.0

    def test_net_delta_is_exact(self):
        gauge = Gauge()
        hammer(lambda _: [gauge.inc() for _ in range(PER_THREAD)])
        assert gauge.value == THREADS * PER_THREAD


class TestHistogramUnderContention:
    def test_count_and_buckets_agree(self):
        histogram = Histogram(bounds=(1.0, 2.0, 3.0))

        def observe(index):
            for _ in range(PER_THREAD // 5):
                histogram.observe(float(index % 4))

        hammer(observe)
        expected = THREADS * (PER_THREAD // 5)
        assert histogram.count == expected
        assert sum(histogram.bucket_counts) == expected


class TestRegistryRacyPaths:
    def test_concurrent_labels_bind_one_shared_child(self):
        """Two threads binding the same labelset must get the same child —
        a lost child would fork the metric into disconnected copies."""
        registry = MetricsRegistry()
        children = [None] * THREADS

        def bind(index):
            child = registry.counter("service_items_total", shard="3")
            children[index] = child
            for _ in range(PER_THREAD // 25):
                child.inc()

        hammer(bind)
        assert all(child is children[0] for child in children)
        assert children[0].value == THREADS * (PER_THREAD // 25)

    def test_concurrent_registration_is_single_family(self):
        registry = MetricsRegistry()

        def register(index):
            registry.counter("races_total", shard=str(index)).inc()

        hammer(register)
        family = registry.get("races_total")
        assert len(family.children) == THREADS
        assert sum(child.value for _, child in family.samples()) == THREADS

    def test_reset_zeroes_in_place_across_threads(self):
        registry = MetricsRegistry()
        counter = registry.counter("resettable_total")
        hammer(lambda _: [counter.inc() for _ in range(100)])
        registry.reset()
        assert counter.value == 0.0
        counter.inc()
        assert registry.counter("resettable_total").value == 1.0
