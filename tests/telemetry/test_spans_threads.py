"""Thread-safety of the span collector under concurrent shard workers.

The multi-threaded service records finished spans from one thread per shard
plus every producer thread.  A plain ``list.append`` + slice-delete ring
buffer and an unguarded ``dropped`` counter race exactly like the pre-PR 4
metric counters did; these tests hammer one collector from many threads and
assert no record or eviction count is lost (mirroring
``tests/telemetry/test_registry_threads.py``).
"""

import threading

from repro.telemetry.spans import SpanCollector, SpanRecord, span

THREADS = 8
PER_THREAD = 25_000


def hammer(target, threads=THREADS):
    """Run ``target(thread_index)`` on ``threads`` threads, start-synchronised."""
    barrier = threading.Barrier(threads)

    def run(index):
        barrier.wait()
        target(index)

    workers = [
        threading.Thread(target=run, args=(index,)) for index in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()


def make_record(name: str) -> SpanRecord:
    return SpanRecord(
        name=name, depth=0, parent=None, start=0.0, wall_seconds=0.0, cpu_seconds=0.0
    )


class TestCollectorUnderContention:
    def test_no_lost_records_within_capacity(self):
        collector = SpanCollector(capacity=THREADS * PER_THREAD)
        hammer(
            lambda i: [
                collector.record(make_record(f"t{i}")) for _ in range(PER_THREAD)
            ]
        )
        assert len(collector.snapshot()) == THREADS * PER_THREAD
        assert collector.dropped == 0

    def test_retained_plus_dropped_accounts_for_every_record(self):
        collector = SpanCollector(capacity=512)
        hammer(
            lambda i: [
                collector.record(make_record(f"t{i}")) for _ in range(PER_THREAD)
            ]
        )
        assert len(collector.snapshot()) == 512
        assert collector.dropped == THREADS * PER_THREAD - 512

    def test_snapshots_during_writes_are_consistent(self):
        collector = SpanCollector(capacity=1024)
        sizes = []

        def read(_):
            for _ in range(2_000):
                sizes.append(len(collector.snapshot()))

        def write(index):
            for _ in range(PER_THREAD // 5):
                collector.record(make_record(f"t{index}"))

        hammer(lambda i: read(i) if i % 2 else write(i))
        assert all(0 <= size <= 1024 for size in sizes)
        total = (THREADS // 2) * (PER_THREAD // 5)
        assert len(collector.snapshot()) + collector.dropped == total

    def test_concurrent_clear_never_corrupts(self):
        collector = SpanCollector(capacity=256)

        def churn(index):
            for _ in range(PER_THREAD // 25):
                collector.record(make_record(f"t{index}"))
                if index == 0:
                    collector.clear()

        hammer(churn)
        # No structural invariant beyond "didn't crash and stayed bounded".
        assert len(collector.snapshot()) <= 256

    def test_context_manager_spans_from_many_threads(self, enabled_telemetry):
        from repro.telemetry.spans import SPANS

        def trace(index):
            for _ in range(2_000):
                with span(f"thread.{index}"):
                    pass

        hammer(trace)
        retained = len(SPANS.snapshot())
        assert retained + SPANS.dropped == THREADS * 2_000
        # per-thread nesting stacks must be back to empty everywhere
        assert SPANS._stack() == []
