"""Memory accountant: breakdowns sum to memory_bytes, bounds are sane."""

import pytest

from repro.core.bitp_sampling import BitpPrioritySample
from repro.core.checkpoint_chain import CheckpointChain
from repro.core.merge_tree import MergeTreePersistence
from repro.core.persistent_priority import (
    PersistentPrioritySample,
    PersistentWeightedWR,
)
from repro.core.persistent_sampling import (
    PersistentReservoirChains,
    PersistentTopKSample,
)
from repro.sketches import CountMinSketch, MisraGries
from repro.telemetry.accounting import (
    account,
    account_and_publish,
    breakdown,
    publish,
    unpublish,
)
from repro.telemetry.registry import TELEMETRY


def _accounted_structures():
    chain = CheckpointChain(lambda: MisraGries(8), eps=0.2)
    tree = MergeTreePersistence(
        lambda: CountMinSketch.from_error(0.05, 0.05, seed=1),
        block_size=64,
        eps=0.5,
    )
    topk = PersistentTopKSample(k=4, seed=0)
    chains = PersistentReservoirChains(k=4, seed=0)
    priority = PersistentPrioritySample(k=4, seed=0)
    wwr = PersistentWeightedWR(k=4, seed=0)
    bitp = BitpPrioritySample(k=4, seed=0)
    structures = [chain, tree, topk, chains, priority, wwr, bitp]
    for index in range(500):
        for structure in structures:
            structure.update(index % 50, float(index))
    return structures


class TestBreakdownInvariant:
    def test_components_sum_to_memory_bytes(self):
        for structure in _accounted_structures():
            breakdown = structure.memory_breakdown()
            assert sum(breakdown.values()) == structure.memory_bytes(), type(
                structure
            ).__name__
            assert all(size >= 0 for size in breakdown.values())

    def test_resident_within_space_bound(self):
        # The paper's bounds are worst-case; resident memory must not
        # exceed them at any stream position we exercise.
        for structure in _accounted_structures():
            bound = structure.space_bound_bytes()
            assert structure.memory_bytes() <= bound, type(structure).__name__


class TestAccount:
    def test_report_components_match_breakdown(self):
        sampler = PersistentTopKSample(k=4, seed=0)
        for index in range(100):
            sampler.update(index, float(index))
        report = account(sampler)
        assert report.name == "PersistentTopKSample"
        assert report.resident_bytes == sampler.memory_bytes()
        assert report.bound_bytes == sampler.space_bound_bytes()
        assert report.utilization == pytest.approx(
            sampler.memory_bytes() / sampler.space_bound_bytes()
        )
        names = {component.name for component in report.components}
        assert names == set(sampler.memory_breakdown())

    def test_falls_back_to_single_total_component(self):
        sketch = MisraGries(8)
        sketch.update(1)
        report = account(sketch, name="mg")
        assert [component.name for component in report.components] == ["total"]
        assert report.resident_bytes == sketch.memory_bytes()
        assert report.bound_bytes is None
        assert report.utilization is None

    def test_as_dict_flattens(self):
        sampler = PersistentTopKSample(k=2, seed=0)
        sampler.update(1, 1.0)
        payload = account(sampler).as_dict()
        assert payload["resident_bytes"] == sampler.memory_bytes()
        assert "records" in payload["components"]


class TestPublish:
    def test_gauges_carry_components_and_bound(self, enabled_telemetry):
        sampler = PersistentTopKSample(k=4, seed=0)
        for index in range(100):
            sampler.update(index, float(index))
        report = account_and_publish(sampler, name="topk")
        resident = TELEMETRY.registry.get("memory_resident_bytes")
        samples = {
            (labels["sketch"], labels["component"]): child.value
            for labels, child in resident.samples()
        }
        assert samples[("topk", "total")] == report.resident_bytes
        for component in report.components:
            assert samples[("topk", component.name)] == component.resident_bytes
        bound = TELEMETRY.registry.get("memory_bound_bytes")
        bound_samples = {
            labels["sketch"]: child.value for labels, child in bound.samples()
        }
        assert bound_samples["topk"] == report.bound_bytes

    def test_republish_overwrites(self, enabled_telemetry):
        sampler = PersistentTopKSample(k=4, seed=0)
        sampler.update(1, 1.0)
        publish(account(sampler, name="topk"))
        before = TELEMETRY.registry.gauge(
            "memory_resident_bytes", sketch="topk", component="total"
        ).value
        for index in range(2, 200):
            sampler.update(index, float(index))
        publish(account(sampler, name="topk"))
        after = TELEMETRY.registry.gauge(
            "memory_resident_bytes", sketch="topk", component="total"
        ).value
        assert after > before


class _Wrapper:
    """Stand-in for DurableSketch-style wrappers: delegates, holds _sketch."""

    def __init__(self, sketch):
        self._sketch = sketch

    def memory_bytes(self):
        return self._sketch.memory_bytes()


class TestOwnerUnwrap:
    def test_wrapped_sketch_reports_under_inner_type(self):
        sampler = PersistentTopKSample(k=4, seed=0)
        sampler.update(1, 1.0)
        report = account(_Wrapper(sampler))
        assert report.name == "PersistentTopKSample"

    def test_unwrap_follows_nested_wrappers(self):
        sampler = PersistentTopKSample(k=4, seed=0)
        sampler.update(1, 1.0)
        report = account(_Wrapper(_Wrapper(sampler)))
        assert report.name == "PersistentTopKSample"

    def test_explicit_name_still_wins(self):
        sampler = PersistentTopKSample(k=4, seed=0)
        sampler.update(1, 1.0)
        assert account(_Wrapper(sampler), name="mine").name == "mine"


class TestBreakdownAndUnpublish:
    def _publish_two(self):
        for name in ("tenant/a", "tenant/b"):
            sampler = PersistentTopKSample(k=4, seed=0)
            for index in range(50):
                sampler.update(index, float(index))
            publish(account(sampler, name=name))

    def test_breakdown_groups_components_by_owner(self, enabled_telemetry):
        self._publish_two()
        grouped = breakdown()
        assert set(grouped) >= {"tenant/a", "tenant/b"}
        components = grouped["tenant/a"]
        assert "total" in components
        assert components["total"] == sum(
            size for key, size in components.items() if key != "total"
        )

    def test_breakdown_prefix_filters_and_strips(self, enabled_telemetry):
        self._publish_two()
        sampler = PersistentTopKSample(k=4, seed=0)
        sampler.update(1, 1.0)
        publish(account(sampler, name="unrelated"))
        grouped = breakdown(prefix="tenant/")
        # telemetry.reset() zeroes but keeps children, so earlier tests in
        # the same process may leave zero-valued owners behind — only the
        # live ones are this test's concern.
        live = {
            owner
            for owner, components in grouped.items()
            if any(components.values())
        }
        assert live == {"a", "b"}
        assert "unrelated" not in grouped

    def test_unpublish_removes_both_gauge_families(self, enabled_telemetry):
        self._publish_two()
        assert unpublish("tenant/a") > 0
        assert "tenant/a" not in breakdown()
        assert "tenant/b" in breakdown()
        assert unpublish("tenant/a") == 0  # idempotent
