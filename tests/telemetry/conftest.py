"""Telemetry test fixtures: a clean, enabled registry per test.

The registry and span collector are process-global, so every test here
zeroes the values before running and turns the switch back off afterwards —
the rest of the suite must keep seeing telemetry in its default (disabled,
zero-cost) state.
"""

import pytest

import repro.telemetry as telemetry


@pytest.fixture()
def enabled_telemetry():
    """Telemetry on, values zeroed; restored to off-and-zeroed afterwards."""
    telemetry.reset()
    telemetry.enable()
    yield telemetry
    telemetry.disable()
    telemetry.reset()


@pytest.fixture()
def clean_telemetry():
    """Telemetry left off but zeroed — for testing the disabled path."""
    telemetry.disable()
    telemetry.reset()
    yield telemetry
    telemetry.disable()
    telemetry.reset()
