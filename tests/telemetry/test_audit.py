"""AccuracyAuditor: ground truth, replay, bound judging, service wiring.

The unit tests drive the auditor against hand-built fake services whose
answers (and certificates) are chosen exactly, so in-bound / violation
judgements are verified to the tolerance.  The integration tests attach
it to a real :class:`ShardedSketchService` and check the paper's own
contract: a fault-free CountMin-backed service audits with zero
violations, and the auditor survives a supervisor rebuild untouched.
"""

import numpy as np
import pytest

from repro.core import ChainCountMin
from repro.service import ShardedSketchService
from repro.telemetry import OBSERVED_ERROR_BUCKETS, AccuracyAuditor
from repro.telemetry.registry import TELEMETRY


def unit_stream(n=400, universe=23, seed=3):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, universe, size=n).astype(np.int64)
    return keys, np.arange(n, dtype=np.float64)


class ExactService:
    """Answers every query with the exact truth (never violates)."""

    def __init__(self, truth):
        self._truth = truth

    def estimate_at(self, key, timestamp, explain=False):
        answer = self._truth.truth_at(key, timestamp)
        return (answer, None) if explain else answer

    def estimate_since(self, key, timestamp, explain=False):
        answer = self._truth.truth_since(key, timestamp)
        return (answer, None) if explain else answer


class BrokenService:
    """Overestimates every answer by a fixed absolute amount."""

    def __init__(self, truth, off_by):
        self._truth = truth
        self.off_by = off_by

    def estimate_at(self, key, timestamp, explain=False):
        answer = self._truth.truth_at(key, timestamp) + self.off_by
        return (answer, None) if explain else answer

    def estimate_since(self, key, timestamp, explain=False):
        answer = self._truth.truth_since(key, timestamp) + self.off_by
        return (answer, None) if explain else answer


class CertifiedService(BrokenService):
    """Wrong answers, but carrying an honestly widened certificate."""

    class _Plan:
        def __init__(self, widened):
            self.certificate = type(
                "Cert", (), {"widened_error_bound": widened}
            )()

    def estimate_at(self, key, timestamp, explain=False):
        answer = self._truth.truth_at(key, timestamp) + self.off_by
        if explain:
            return answer, self._Plan(widened=self.off_by + 1.0)
        return answer


def fed_auditor(service_cls=ExactService, off_by=None, **kwargs):
    kwargs.setdefault("epsilon", 0.01)
    kwargs.setdefault("sample_fraction", 1.0)
    kwargs.setdefault("seed", 7)
    auditor = AccuracyAuditor(**kwargs)
    keys, times = unit_stream()
    auditor.observe_batch(keys, times)
    truth = auditor._truth[None]
    if service_cls is not None:
        service_args = (truth,) if off_by is None else (truth, off_by)
        auditor.bind(service_cls(*service_args))
    return auditor, truth


class TestGroundTruth:
    def test_exact_prefix_and_suffix_weights(self):
        auditor, truth = fed_auditor(service_cls=None)
        keys, times = unit_stream()
        key = int(keys[0])
        cut = 200.0
        assert truth.truth_at(key, cut) == np.sum(
            (keys == key) & (times <= cut)
        )
        assert truth.truth_since(key, cut) == np.sum(
            (keys == key) & (times >= cut)
        )
        assert truth.total_at(cut) == np.sum(times <= cut)

    def test_weights_respected(self):
        auditor = AccuracyAuditor(epsilon=0.01, sample_fraction=1.0)
        auditor.observe_batch([1, 1, 2], [0.0, 1.0, 2.0],
                              weights=[2.0, 3.0, 10.0])
        truth = auditor._truth[None]
        assert truth.truth_at(1, 1.5) == 5.0
        assert truth.total_since(1.0) == 13.0

    def test_key_sampling_is_deterministic(self):
        first, _ = fed_auditor(service_cls=None)
        second, _ = fed_auditor(service_cls=None)
        assert (first._truth[None].sampled_keys
                == second._truth[None].sampled_keys)
        assert first._truth[None].sampled_keys  # actually sampled some

    def test_max_items_saturates_and_freezes_frontier(self):
        auditor = AccuracyAuditor(epsilon=0.01, sample_fraction=1.0,
                                  max_items=10)
        auditor.observe_batch(np.arange(8), np.arange(8, dtype=float))
        frontier = auditor._truth[None].frontier
        auditor.observe_batch(np.arange(8), np.arange(8, 16, dtype=float))
        truth = auditor._truth[None]
        assert truth.saturated
        assert truth.items == 8  # the overflowing batch was not recorded
        assert truth.frontier == frontier

    def test_observe_batch_never_raises(self):
        auditor = AccuracyAuditor(epsilon=0.01)
        auditor.observe_batch(object(), object())  # garbage in, no blowup

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AccuracyAuditor(epsilon=0.0)
        with pytest.raises(ValueError):
            AccuracyAuditor(epsilon=0.01, sample_fraction=0.0)


class TestBoundJudging:
    def test_exact_service_audits_clean(self):
        auditor, _ = fed_auditor(ExactService)
        report = auditor.run_audit(queries=20)
        assert report["queries"] == 20
        assert report["violations"] == 0
        assert report["max_observed_error"] == 0.0

    def test_out_of_bound_answers_are_violations(self):
        # eps * W <= 0.01 * 400 = 4; +50 absolute is far outside
        auditor, _ = fed_auditor(BrokenService, off_by=50.0)
        report = auditor.run_audit(queries=20)
        assert report["violations"] == 20

    def test_widened_certificate_excuses_degraded_answers(self):
        auditor, _ = fed_auditor(CertifiedService, off_by=50.0)
        report = auditor.run_audit(queries=20, kinds=("attp",))
        assert report["queries"] == 20
        assert report["violations"] == 0  # inside the widened bound

    def test_violation_metrics(self, enabled_telemetry):
        auditor, _ = fed_auditor(BrokenService, off_by=50.0)
        auditor.run_audit(queries=10, kinds=("attp",))
        registry = TELEMETRY.registry
        violations = registry.get(
            "audit_bound_violations_total"
        ).labels()
        assert violations.value == 10
        issued = registry.get("audit_queries_total").labels(kind="attp")
        assert issued.value == 10
        hist = registry.get("audit_observed_error").labels(kind="attp")
        assert hist.count == 10
        assert hist.bounds == OBSERVED_ERROR_BUCKETS

    def test_unsupported_kind_redirects_budget(self):
        class AttpOnly(ExactService):
            def estimate_since(self, key, timestamp, explain=False):
                raise AttributeError("estimate_since")

        auditor, _ = fed_auditor(AttpOnly)
        report = auditor.run_audit(queries=16)
        # one bitp probe learns "unsupported", the rest redirect to attp
        assert report["queries"] == 15
        assert report["skipped"] == 1
        assert report["violations"] == 0

    def test_no_data_skips_whole_round(self):
        auditor = AccuracyAuditor(epsilon=0.01)
        report = auditor.run_audit(queries=8)
        assert report == {
            "queries": 0, "skipped": 8, "violations": 0,
            "max_observed_error": 0.0, "p99_observed_error": 0.0,
        }

    def test_status_summary(self):
        auditor, _ = fed_auditor(ExactService)
        auditor.run_audit(queries=4)
        status = auditor.status()
        assert status["audited"] == 4
        assert status["violations"] == 0
        assert status["tenants"]["None"]["items"] == 400
        assert status["tenants"]["None"]["sampled_keys"] > 0


class TestServiceIntegration:
    def make_service(self, **kwargs):
        return ShardedSketchService(
            lambda: ChainCountMin(width=512, depth=4, eps_ckpt=0.002,
                                  seed=11),
            num_shards=2,
            seed=5,
            **kwargs,
        )

    def test_fault_free_countmin_service_audits_clean(self):
        auditor = AccuracyAuditor(epsilon=0.01, sample_fraction=1.0,
                                  seed=3)
        with self.make_service() as service:
            service.attach_auditor(auditor)
            keys, times = unit_stream(n=2_000, universe=31)
            service.ingest_batch(keys, times)
            assert service.drain(timeout=30)
            report = auditor.run_audit(queries=40, kinds=("attp",))
        assert report["queries"] == 40
        assert report["violations"] == 0
        assert report["p99_observed_error"] <= auditor.epsilon

    def test_ground_truth_survives_rebuild(self, tmp_path):
        """A supervisor rebuild replays shard WALs; the auditor's record
        lives parent-side and must not double-count or drift."""
        import os
        import signal
        import time as _time

        auditor = AccuracyAuditor(epsilon=0.01, sample_fraction=1.0,
                                  seed=3)
        with self.make_service(
            backend="process",
            directory=tmp_path,
            durable_options={"fsync_policy": "always"},
            supervise=True,
            supervisor_options={"backoff_base": 0.01,
                                "poll_interval": 0.02},
        ) as service:
            service.attach_auditor(auditor)
            keys, times = unit_stream(n=1_000, universe=31)
            service.ingest_batch(keys[:500], times[:500])
            assert service.drain(timeout=30)
            items_before = auditor._truth[None].items
            os.kill(service._workers[0].pid, signal.SIGKILL)
            service.ingest_batch(keys[500:], times[500:])
            assert service.drain(timeout=60)
            deadline = _time.monotonic() + 30
            while not service.health()["healthy"]:
                assert _time.monotonic() < deadline
                _time.sleep(0.02)
            # the rebuild replayed 500 items inside the shard; the
            # auditor saw exactly the 1000 accepted batches, once each
            assert auditor._truth[None].items == 1_000
            assert items_before == 500
            report = auditor.run_audit(queries=30, kinds=("attp",))
        assert report["violations"] == 0
