"""Docs lint: catalogs stay live, cross-links stay unbroken.

docs/OBSERVABILITY.md claims to be complete; this test makes that claim
executable.  Every metric family registered after ``import repro`` must be
named in the guide, every span name emitted by the instrumentation must be
listed, and the overhead table must be generated from the committed bench
JSON (same workloads, same stream size).

The same module lints the docs pages as a *graph*: every relative
markdown link on every page (docs/*.md, README.md, DESIGN.md) must point
at a file that exists, and anchored links must name a real heading of the
target page — a renamed page or section fails CI instead of silently
stranding readers.  docs/INGEST.md additionally gets the catalog checks:
any span or metric name it mentions must be one the instrumentation
actually emits.
"""

import json
import re
from pathlib import Path

import repro  # noqa: F401 — importing registers the full metric catalog
from repro.telemetry.registry import TELEMETRY

REPO_ROOT = Path(__file__).resolve().parents[2]
GUIDE = REPO_ROOT / "docs" / "OBSERVABILITY.md"
BENCH_JSON = REPO_ROOT / "benchmarks" / "results" / "BENCH_telemetry.json"

#: Span names emitted by instrumentation sites (grep for ``span(`` in src).
KNOWN_SPANS = (
    "store.snapshot",
    "recovery.recover",
    "harness.feed_log_stream",
    "harness.feed_matrix_stream",
    "harness.time_calls",
    "service.ingest_batch",
    "service.stage_flush",
    "service.enqueue",
    "service.queue_wait",
    "service.apply_batch",
    "service.shard_ship",
    "service.query",
    "service.shard_call",
    "service.combine",
    "service.rebuild",
    "service.redirect_replay",
    "wal.append",
    "wal.fsync",
)


class TestGuideCoversCatalog:
    def test_guide_exists(self):
        assert GUIDE.is_file()

    def test_every_registered_family_is_documented(self):
        text = GUIDE.read_text()
        missing = [name for name in TELEMETRY.registry.names() if name not in text]
        assert not missing, f"docs/OBSERVABILITY.md missing metrics: {missing}"

    def test_every_documented_metric_exists(self):
        """The guide must not document metrics that no longer exist."""
        text = GUIDE.read_text()
        documented = set(
            re.findall(r"`([a-z_]+(?:_total|_seconds|_bytes))`", text)
        )
        registered = set(TELEMETRY.registry.names())
        stale = documented - registered
        assert not stale, f"docs/OBSERVABILITY.md documents unknown metrics: {stale}"

    def test_every_span_name_is_documented(self):
        text = GUIDE.read_text()
        missing = [name for name in KNOWN_SPANS if name not in text]
        assert not missing, f"docs/OBSERVABILITY.md missing spans: {missing}"


class TestWatcherFamiliesAreCatalogued:
    """The self-watching layer's own families stay declared and documented.

    These families are declared at *import time* by the timeseries /
    alerts / audit modules (so the lint above sees them without any
    poller or auditor ever being constructed); this class pins the
    inventory so a renamed family fails loudly with its own message
    rather than vanishing from the catalog unnoticed.
    """

    POLLER_FAMILIES = (
        "poller_ticks_total",
        "poller_tick_seconds",
        "poller_series",
        "poller_series_dropped_total",
    )
    ALERT_FAMILIES = (
        "alerts_evaluations_total",
        "alerts_transitions_total",
        "alerts_firing",
    )
    AUDIT_FAMILIES = (
        "audit_observed_error",
        "audit_bound_violations_total",
        "audit_queries_total",
        "audit_queries_skipped_total",
        "audit_sampled_items_total",
        "audit_sampled_keys",
        "audit_runs_total",
    )

    def test_families_registered_at_import(self):
        registered = set(TELEMETRY.registry.names())
        for family in (self.POLLER_FAMILIES + self.ALERT_FAMILIES
                       + self.AUDIT_FAMILIES):
            assert family in registered, (
                f"{family} must be declare()d at module import time"
            )

    def test_families_documented_in_guide(self):
        text = GUIDE.read_text()
        for family in (self.POLLER_FAMILIES + self.ALERT_FAMILIES
                       + self.AUDIT_FAMILIES):
            assert family in text, (
                f"docs/OBSERVABILITY.md must catalogue {family}"
            )

    def test_delta_loss_counter_catalogued(self):
        """The process-backend loss counter (crash under-count window)."""
        assert "service_telemetry_delta_lost_total" in set(
            TELEMETRY.registry.names()
        )
        assert "service_telemetry_delta_lost_total" in GUIDE.read_text()


class TestOverheadTableMatchesBench:
    def test_bench_json_committed(self):
        assert BENCH_JSON.is_file()
        payload = json.loads(BENCH_JSON.read_text())
        assert set(payload["results"]) == {
            "countmin_scalar",
            "countmin_batch",
            "checkpoint_chain_scalar",
            "bitp_sampler_scalar",
            "service_ingest_traced",
        }

    def test_guide_table_names_every_workload(self):
        text = GUIDE.read_text()
        for workload in json.loads(BENCH_JSON.read_text())["results"]:
            assert workload in text, workload


DOCS_DIR = REPO_ROOT / "docs"
#: Pages whose outgoing links are linted: every docs page plus the two
#: root pages that link into docs/.
LINTED_PAGES = sorted(DOCS_DIR.glob("*.md")) + [
    REPO_ROOT / "README.md",
    REPO_ROOT / "DESIGN.md",
]

_MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:")


def _heading_anchors(path):
    """GitHub-style anchor slugs for every heading of a markdown page."""
    anchors = set()
    for line in path.read_text().splitlines():
        if not line.startswith("#"):
            continue
        title = line.lstrip("#").strip().replace("`", "")
        slug = re.sub(r"[^a-z0-9 _-]", "", title.lower())
        anchors.add(slug.replace(" ", "-"))
    return anchors


def _local_links(page):
    for target in _MARKDOWN_LINK.findall(page.read_text()):
        if not target.startswith(_EXTERNAL):
            yield target


class TestCrossLinks:
    def test_pages_exist(self):
        assert len(LINTED_PAGES) > 2

    def test_no_dangling_links(self):
        """Every relative link on every docs page resolves to a file."""
        dangling = []
        for page in LINTED_PAGES:
            for target in _local_links(page):
                relative = target.split("#", 1)[0]
                if not relative:  # same-page #anchor
                    continue
                if not (page.parent / relative).is_file():
                    dangling.append(f"{page.relative_to(REPO_ROOT)} -> {target}")
        assert not dangling, f"dangling cross-links: {dangling}"

    def test_anchored_links_name_real_headings(self):
        """`page.md#section` links must match a heading of the target."""
        broken = []
        for page in LINTED_PAGES:
            for target in _local_links(page):
                if "#" not in target:
                    continue
                relative, anchor = target.split("#", 1)
                destination = page.parent / relative if relative else page
                if not destination.is_file() or destination.suffix != ".md":
                    continue
                if anchor not in _heading_anchors(destination):
                    broken.append(f"{page.relative_to(REPO_ROOT)} -> {target}")
        assert not broken, f"links to missing headings: {broken}"


class TestIngestPageCatalog:
    """docs/INGEST.md names only spans and metrics that really exist."""

    INGEST = DOCS_DIR / "INGEST.md"

    def test_page_exists(self):
        assert self.INGEST.is_file()

    def test_span_names_are_emitted(self):
        text = self.INGEST.read_text()
        mentioned = set(
            re.findall(r"`((?:service|wal|store|recovery|harness)\.[a-z_]+)`", text)
        )
        unknown = mentioned - set(KNOWN_SPANS)
        assert not unknown, f"docs/INGEST.md names unknown spans: {unknown}"

    def test_metric_names_are_registered(self):
        text = self.INGEST.read_text()
        documented = set(
            re.findall(r"`([a-z_]+(?:_total|_seconds|_bytes))`", text)
        )
        registered = set(TELEMETRY.registry.names())
        stale = documented - registered
        assert not stale, f"docs/INGEST.md documents unknown metrics: {stale}"


class TestScalingPageCatalog:
    """docs/SCALING.md names only spans and metrics that really exist."""

    SCALING = DOCS_DIR / "SCALING.md"

    def test_page_exists(self):
        assert self.SCALING.is_file()

    def test_span_names_are_emitted(self):
        text = self.SCALING.read_text()
        mentioned = set(
            re.findall(r"`((?:service|wal|store|recovery|harness)\.[a-z_]+)`", text)
        )
        unknown = mentioned - set(KNOWN_SPANS)
        assert not unknown, f"docs/SCALING.md names unknown spans: {unknown}"

    def test_metric_names_are_registered(self):
        text = self.SCALING.read_text()
        documented = set(
            re.findall(r"`([a-z_]+(?:_total|_seconds|_bytes))`", text)
        )
        registered = set(TELEMETRY.registry.names())
        stale = documented - registered
        assert not stale, f"docs/SCALING.md documents unknown metrics: {stale}"

    def test_backend_gauge_documented(self):
        """The per-shard backend info gauge must stay on the page."""
        assert "service_shard_backend" in self.SCALING.read_text()
