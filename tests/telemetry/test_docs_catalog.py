"""Docs lint: the operator's guide must document the live metric catalog.

docs/OBSERVABILITY.md claims to be complete; this test makes that claim
executable.  Every metric family registered after ``import repro`` must be
named in the guide, every span name emitted by the instrumentation must be
listed, and the overhead table must be generated from the committed bench
JSON (same workloads, same stream size).
"""

import json
import re
from pathlib import Path

import repro  # noqa: F401 — importing registers the full metric catalog
from repro.telemetry.registry import TELEMETRY

REPO_ROOT = Path(__file__).resolve().parents[2]
GUIDE = REPO_ROOT / "docs" / "OBSERVABILITY.md"
BENCH_JSON = REPO_ROOT / "benchmarks" / "results" / "BENCH_telemetry.json"

#: Span names emitted by instrumentation sites (grep for ``span(`` in src).
KNOWN_SPANS = (
    "store.snapshot",
    "recovery.recover",
    "harness.feed_log_stream",
    "harness.feed_matrix_stream",
    "harness.time_calls",
    "service.ingest_batch",
    "service.stage_flush",
    "service.enqueue",
    "service.queue_wait",
    "service.apply_batch",
    "service.query",
    "service.shard_call",
    "service.combine",
    "service.rebuild",
    "service.redirect_replay",
    "wal.append",
    "wal.fsync",
)


class TestGuideCoversCatalog:
    def test_guide_exists(self):
        assert GUIDE.is_file()

    def test_every_registered_family_is_documented(self):
        text = GUIDE.read_text()
        missing = [name for name in TELEMETRY.registry.names() if name not in text]
        assert not missing, f"docs/OBSERVABILITY.md missing metrics: {missing}"

    def test_every_documented_metric_exists(self):
        """The guide must not document metrics that no longer exist."""
        text = GUIDE.read_text()
        documented = set(
            re.findall(r"`([a-z_]+(?:_total|_seconds|_bytes))`", text)
        )
        registered = set(TELEMETRY.registry.names())
        stale = documented - registered
        assert not stale, f"docs/OBSERVABILITY.md documents unknown metrics: {stale}"

    def test_every_span_name_is_documented(self):
        text = GUIDE.read_text()
        missing = [name for name in KNOWN_SPANS if name not in text]
        assert not missing, f"docs/OBSERVABILITY.md missing spans: {missing}"


class TestOverheadTableMatchesBench:
    def test_bench_json_committed(self):
        assert BENCH_JSON.is_file()
        payload = json.loads(BENCH_JSON.read_text())
        assert set(payload["results"]) == {
            "countmin_scalar",
            "countmin_batch",
            "checkpoint_chain_scalar",
            "bitp_sampler_scalar",
            "service_ingest_traced",
        }

    def test_guide_table_names_every_workload(self):
        text = GUIDE.read_text()
        for workload in json.loads(BENCH_JSON.read_text())["results"]:
            assert workload in text, workload
