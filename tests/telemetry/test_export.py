"""Exporter round-trips: JSON lines and the Prometheus text format."""

import json
import math

from repro.telemetry.export import (
    iter_samples,
    load_jsonl,
    prometheus_text,
    snapshot_lines,
    write_jsonl,
)
from repro.telemetry.registry import MetricsRegistry


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("events_total", "Things that happened.", kind="a").inc(3)
    registry.gauge("live_bytes", "Resident bytes.").set(128)
    histogram = registry.histogram(
        "latency_seconds", "Latency.", buckets=(0.1, 1.0), op="q"
    )
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(5.0)  # overflow bucket
    return registry


class TestJsonl:
    def test_snapshot_lines_are_valid_json(self):
        lines = snapshot_lines(_populated_registry())
        assert len(lines) == 3
        for line in lines:
            json.loads(line)

    def test_infinity_bound_spelled_plus_inf(self):
        lines = snapshot_lines(_populated_registry())
        histogram_line = next(line for line in lines if "latency" in line)
        payload = json.loads(histogram_line)
        assert payload["buckets"][-1][0] == "+Inf"

    def test_round_trip(self, tmp_path):
        registry = _populated_registry()
        path = write_jsonl(tmp_path / "metrics.jsonl", registry)
        samples = load_jsonl(path)
        by_name = {sample.name: sample for sample in samples}
        assert by_name["events_total"].value == 3
        assert by_name["events_total"].labels == {"kind": "a"}
        assert by_name["live_bytes"].value == 128
        histogram = by_name["latency_seconds"]
        assert histogram.count == 3
        assert histogram.sum == 5.55
        assert histogram.buckets[-1] == [math.inf, 1]
        # Loaded samples carry the same payload as a re-export would.
        assert {s.name for s in iter_samples(registry)} == set(by_name)

    def test_empty_registry_writes_empty_file(self, tmp_path):
        path = write_jsonl(tmp_path / "empty.jsonl", MetricsRegistry())
        assert path.read_text() == ""
        assert load_jsonl(path) == []


class TestHarnessSnapshot:
    def test_emit_round_trips_through_loader(self, enabled_telemetry, tmp_path):
        from repro.evaluation.harness import emit_telemetry_snapshot
        from repro.sketches import CountMinSketch
        from repro.telemetry.registry import TELEMETRY

        sketch = CountMinSketch(width=64, depth=2, seed=0)
        for key in range(50):
            sketch.update(key)
        path = tmp_path / "snapshot.jsonl"
        assert emit_telemetry_snapshot(path) is True
        by_name = {
            (s.name, tuple(sorted(s.labels.items()))): s for s in load_jsonl(path)
        }
        updates = by_name[("sketch_updates_total", (("sketch", "countmin"),))]
        assert updates.value == 50
        # Every exported sample belongs to a registered family (families
        # declared without label-bound children emit no samples).
        assert set(s.name for s in by_name.values()) <= set(
            TELEMETRY.registry.names()
        )

    def test_emit_is_noop_while_disabled(self, clean_telemetry, tmp_path):
        from repro.evaluation.harness import emit_telemetry_snapshot

        path = tmp_path / "snapshot.jsonl"
        assert emit_telemetry_snapshot(path) is False
        assert not path.exists()


class TestPrometheusText:
    def test_help_type_and_samples(self):
        text = prometheus_text(_populated_registry())
        assert "# HELP events_total Things that happened." in text
        assert "# TYPE events_total counter" in text
        assert 'events_total{kind="a"} 3' in text
        assert "# TYPE live_bytes gauge" in text
        assert "live_bytes 128" in text

    def test_histogram_expansion_is_cumulative(self):
        text = prometheus_text(_populated_registry())
        assert 'latency_seconds_bucket{le="0.1",op="q"} 1' in text
        assert 'latency_seconds_bucket{le="1",op="q"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf",op="q"} 3' in text
        assert 'latency_seconds_sum{op="q"} 5.55' in text
        assert 'latency_seconds_count{op="q"} 3' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", path='a"b\\c').inc()
        text = prometheus_text(registry)
        assert 'odd_total{path="a\\"b\\\\c"} 1' in text
