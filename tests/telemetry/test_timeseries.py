"""MetricPoller ring buffers, derived series, and their edge cases.

The poller watches a *live* registry, so the interesting behaviour is at
the seams: a ``MetricsRegistry.reset()`` landing between two ticks (bench
repetitions do this), tenant label churn being folded into ``__other__``
by :class:`TenantLabelGuard`, and histogram windows where some (or all)
bucket deltas are zero.  Ticks are driven manually with an injected clock
— no sleeping, fully deterministic.
"""

import pytest

from repro.service.tenancy import OTHER_LABEL, TenantLabelGuard
from repro.telemetry import (
    DEFAULT_QUANTILES,
    MetricPoller,
    TimeSeries,
    delta_quantile,
)
from repro.telemetry.registry import MetricsRegistry


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds
        return self.now


def make_poller(registry, **kwargs):
    clock = FakeClock()
    kwargs.setdefault("interval", 1.0)
    kwargs.setdefault("capacity", 16)
    return MetricPoller(registry=registry, clock=clock, **kwargs), clock


def series_of(poller, name, kind):
    return [
        entry
        for entry in poller.series()["series"]
        if entry["name"] == name and entry["kind"] == kind
    ]


class TestCounterSeries:
    def test_raw_and_rate_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("reqs_total")
        poller, clock = make_poller(registry)
        counter.inc(5)
        poller.tick()
        counter.inc(15)
        clock.advance(2.0)
        poller.tick()
        (raw,) = series_of(poller, "reqs_total", "counter")
        assert [v for _, v in raw["points"]] == [5.0, 20.0]
        (rate,) = series_of(poller, "reqs_total", "rate")
        assert [v for _, v in rate["points"]] == [7.5]  # 15 over 2s

    def test_registry_reset_mid_poll_keeps_rates_nonnegative(self):
        """A counter that went *down* is a restart, not a negative rate."""
        registry = MetricsRegistry()
        counter = registry.counter("reqs_total")
        poller, clock = make_poller(registry)
        counter.inc(100)
        poller.tick()
        registry.reset()  # bench repetition boundary
        counter.inc(4)
        clock.advance(2.0)
        poller.tick()
        (rate,) = series_of(poller, "reqs_total", "rate")
        assert [v for _, v in rate["points"]] == [2.0]  # 4 over 2s, not -48
        assert all(v >= 0 for _, v in rate["points"])

    def test_ring_buffer_evicts_oldest(self):
        registry = MetricsRegistry()
        counter = registry.counter("reqs_total")
        poller, clock = make_poller(registry, capacity=3)
        for step in range(5):
            counter.inc()
            poller.tick(now=clock.advance(1.0))
        (raw,) = series_of(poller, "reqs_total", "counter")
        assert [v for _, v in raw["points"]] == [3.0, 4.0, 5.0]

    def test_max_series_bound_drops_new_labelsets(self):
        registry = MetricsRegistry()
        poller, clock = make_poller(registry, max_series=2)
        for index in range(4):
            registry.counter("reqs_total", shard=str(index)).inc()
        poller.tick()
        assert poller.series()["series_count"] == 2


class TestLabelChurn:
    def test_other_rollup_series_stays_monotone(self):
        """Churning tenants fold into one monotone ``__other__`` series.

        ``TenantLabelGuard`` maps every tenant past the top-K to
        ``OTHER_LABEL``, so the underlying counter child only ever goes
        up no matter how many distinct tenants hide behind it — and the
        poller's raw series must reflect that: no resets, no dips, and
        exactly one series despite unbounded churn.
        """
        registry = MetricsRegistry()
        guard = TenantLabelGuard(top_k=2)
        poller, clock = make_poller(registry)
        for wave in range(6):
            # two stable heavies plus a fresh churner every wave
            for tenant in ("alpha", "beta", f"churn-{wave}"):
                registry.counter(
                    "tenant_items_total", tenant=guard.label(tenant)
                ).inc()
            poller.tick(now=clock.advance(1.0))
        rollup = [
            entry
            for entry in series_of(poller, "tenant_items_total", "counter")
            if entry["labels"]["tenant"] == OTHER_LABEL
        ]
        assert len(rollup) == 1  # churn did not mint new series
        values = [v for _, v in rollup[0]["points"]]
        assert values == sorted(values)  # monotone
        assert values[-1] == 6.0
        rates = [
            entry
            for entry in series_of(poller, "tenant_items_total", "rate")
            if entry["labels"]["tenant"] == OTHER_LABEL
        ]
        assert all(v >= 0 for _, v in rates[0]["points"])


class TestHistogramWindows:
    BOUNDS = (1.0, 2.0, 4.0)

    def test_zero_delta_buckets_are_skipped(self):
        """Quantiles interpolate over only the buckets that moved."""
        # window deltas: nothing in (0,1], 4 obs in (1,2], nothing above
        deltas = [0, 4, 0, 0]
        assert delta_quantile(self.BOUNDS, deltas, 0.5) == pytest.approx(1.5)
        assert delta_quantile(self.BOUNDS, deltas, 1.0) == pytest.approx(2.0)
        # all mass in the overflow bucket clamps to the largest bound
        assert delta_quantile(self.BOUNDS, [0, 0, 0, 3], 0.5) == 4.0

    def test_empty_window_appends_no_point(self):
        """No traffic between ticks means a gap, not a zero latency."""
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=self.BOUNDS)
        poller, clock = make_poller(registry)
        poller.tick()  # baseline
        hist.observe(1.5)
        poller.tick(now=clock.advance(1.0))  # window with traffic
        poller.tick(now=clock.advance(1.0))  # idle window
        hist.observe(3.0)
        poller.tick(now=clock.advance(1.0))  # traffic again
        p50 = [
            entry
            for entry in series_of(poller, "lat_seconds", "quantile")
            if entry["labels"]["quantile"] == "p50"
        ]
        # two points (the two trafficked windows), not three
        assert len(p50) == 1 and len(p50[0]["points"]) == 2
        assert p50[0]["points"][0][1] == pytest.approx(1.5)
        assert p50[0]["points"][1][1] == pytest.approx(3.0)

    def test_histogram_reset_treats_lifetime_as_window(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=self.BOUNDS)
        poller, clock = make_poller(registry)
        hist.observe(0.5)
        hist.observe(0.6)
        poller.tick()
        registry.reset()
        hist.observe(3.0)
        poller.tick(now=clock.advance(1.0))
        p50 = [
            entry
            for entry in series_of(poller, "lat_seconds", "quantile")
            if entry["labels"]["quantile"] == "p50"
        ][0]
        assert p50["points"][-1][1] == pytest.approx(3.0)

    def test_delta_quantile_validates_and_handles_empty(self):
        assert delta_quantile(self.BOUNDS, [0, 0, 0, 0], 0.5) == 0.0
        with pytest.raises(ValueError):
            delta_quantile(self.BOUNDS, [1, 0, 0, 0], 1.5)


class TestExportSurface:
    def test_series_payload_shape(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total").inc()
        poller, _ = make_poller(registry)
        poller.tick()
        payload = poller.series()
        assert payload["ticks"] == 1
        assert payload["series_count"] == len(payload["series"])
        entry = payload["series"][0]
        assert set(entry) == {"name", "labels", "kind", "points"}

    def test_latest_filters_by_kind_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", shard="0").inc(3)
        registry.counter("reqs_total", shard="1").inc(5)
        poller, clock = make_poller(registry)
        poller.tick()
        points = poller.latest("reqs_total", kind="counter",
                               labels={"shard": "1"})
        assert [(labels["shard"], value) for labels, _, value in points] == [
            ("1", 5.0)
        ]

    def test_dashboard_html_is_self_contained(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total").inc()
        poller, clock = make_poller(registry)
        poller.tick()
        poller.tick(now=clock.advance(1.0))
        page = poller.dashboard_html()
        assert page.startswith("<!doctype html>")
        assert "<svg" in page and "reqs_total" in page
        assert "src=" not in page and "<script" not in page

    def test_timeseries_ring_is_bounded(self):
        series = TimeSeries("x", {}, "gauge", capacity=2)
        for step in range(5):
            series.append(float(step), float(step))
        assert series.as_dict()["points"] == [[3.0, 3.0], [4.0, 4.0]]

    def test_listener_exceptions_are_swallowed(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total").inc()
        poller, _ = make_poller(registry)
        seen = []
        poller.add_listener(lambda now: seen.append(now))
        poller.add_listener(lambda now: 1 / 0)
        poller.tick()
        assert len(seen) == 1

    def test_quantile_labels_follow_default_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=self.bounds())
        poller, clock = make_poller(registry)
        hist.observe(0.5)
        poller.tick()
        hist.observe(0.5)
        poller.tick(now=clock.advance(1.0))
        names = {
            entry["labels"]["quantile"]
            for entry in series_of(poller, "lat_seconds", "quantile")
        }
        assert names == {label for label, _ in DEFAULT_QUANTILES}

    @staticmethod
    def bounds():
        return (1.0, 2.0)
