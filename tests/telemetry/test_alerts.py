"""AlertRule validation and the AlertEngine state machine.

Evaluation is driven manually with injected clocks — no poll thread, no
sleeping — so hold-down timing (``for_seconds``) is tested to the second.
"""

import pytest

from repro.telemetry import (
    ALERT_STATES,
    AlertEngine,
    AlertRule,
    MetricPoller,
    default_service_rules,
)
from repro.telemetry.registry import MetricsRegistry


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds
        return self.now


def make_stack(rules, **poller_kwargs):
    """(registry, poller, engine, clock) wired together on a fake clock."""
    registry = MetricsRegistry()
    clock = FakeClock()
    poller_kwargs.setdefault("interval", 1.0)
    poller = MetricPoller(registry=registry, clock=clock, **poller_kwargs)
    engine = AlertEngine(rules, poller=poller, clock=clock)
    return registry, poller, engine, clock


class TestAlertRule:
    def test_defaults_round_trip(self):
        rule = AlertRule(name="r", metric="m")
        assert rule.kind == "threshold" and rule.severity == "warning"
        assert rule.as_dict()["name"] == "r"

    @pytest.mark.parametrize(
        "bad",
        [
            {"kind": "window"},
            {"op": "=="},
            {"aggregate": "median"},
            {"severity": "page"},
            {"for_seconds": -1.0},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            AlertRule(name="r", metric="m", **bad)

    def test_duplicate_rule_names_rejected(self):
        rules = [AlertRule(name="r", metric="m"),
                 AlertRule(name="r", metric="n")]
        with pytest.raises(ValueError, match="duplicate"):
            AlertEngine(rules)

    def test_states_constant(self):
        assert ALERT_STATES == ("ok", "pending", "firing")


class TestThresholdRules:
    def test_fires_immediately_without_holddown(self):
        rule = AlertRule(name="depth", metric="queue_depth",
                         op=">", threshold=10.0)
        registry, poller, engine, clock = make_stack([rule])
        gauge = registry.gauge("queue_depth")
        gauge.set(5)
        poller.tick()  # listener evaluates on every tick
        assert engine.state("depth") == "ok"
        gauge.set(50)
        poller.tick(now=clock.advance(1.0))
        assert engine.state("depth") == "firing"
        gauge.set(3)
        poller.tick(now=clock.advance(1.0))
        assert engine.state("depth") == "ok"

    def test_holddown_passes_through_pending(self):
        rule = AlertRule(name="depth", metric="queue_depth",
                         op=">", threshold=10.0, for_seconds=5.0)
        registry, poller, engine, clock = make_stack([rule])
        gauge = registry.gauge("queue_depth")
        gauge.set(50)
        engine.evaluate(now=clock.now)
        assert engine.state("depth") == "pending"
        engine.evaluate(now=clock.advance(3.0))
        assert engine.state("depth") == "pending"  # held 3s < 5s
        engine.evaluate(now=clock.advance(3.0))
        assert engine.state("depth") == "firing"   # held 6s >= 5s

    def test_blip_shorter_than_holddown_never_fires(self):
        rule = AlertRule(name="depth", metric="queue_depth",
                         op=">", threshold=10.0, for_seconds=5.0)
        registry, poller, engine, clock = make_stack([rule])
        gauge = registry.gauge("queue_depth")
        gauge.set(50)
        engine.evaluate(now=clock.now)
        gauge.set(1)
        engine.evaluate(now=clock.advance(2.0))
        assert engine.state("depth") == "ok"
        gauge.set(50)  # a fresh breach restarts the hold-down
        engine.evaluate(now=clock.advance(1.0))
        engine.evaluate(now=clock.advance(4.0))
        assert engine.state("depth") == "pending"

    def test_label_filter_and_aggregate(self):
        rule = AlertRule(name="depth", metric="queue_depth", op=">",
                         threshold=10.0, labels={"shard": "1"},
                         aggregate="sum")
        registry, poller, engine, clock = make_stack([rule])
        registry.gauge("queue_depth", shard="0").set(100)
        registry.gauge("queue_depth", shard="1").set(4)
        engine.evaluate(now=clock.now)
        assert engine.state("depth") == "ok"  # shard 0's spike filtered out

    def test_histogram_threshold_uses_windowed_quantile(self):
        rule = AlertRule(name="lat", metric="lat_seconds", quantile="p99",
                         op=">", threshold=1.0)
        registry, poller, engine, clock = make_stack([rule])
        hist = registry.histogram("lat_seconds", buckets=(0.5, 1.0, 4.0))
        poller.tick()  # baseline
        hist.observe(0.2)
        poller.tick(now=clock.advance(1.0))
        assert engine.state("lat") == "ok"
        for _ in range(10):
            hist.observe(3.0)
        poller.tick(now=clock.advance(1.0))
        assert engine.state("lat") == "firing"


class TestRateAndAbsenceRules:
    def test_rate_rule_fires_on_counter_movement(self):
        rule = AlertRule(name="errs", metric="errors_total", kind="rate",
                         op=">", threshold=0.0)
        registry, poller, engine, clock = make_stack([rule])
        errors = registry.counter("errors_total")
        poller.tick()
        poller.tick(now=clock.advance(1.0))
        assert engine.state("errs") == "ok"  # zero rate
        errors.inc(3)
        poller.tick(now=clock.advance(1.0))
        assert engine.state("errs") == "firing"
        poller.tick(now=clock.advance(1.0))
        assert engine.state("errs") == "ok"  # movement stopped

    def test_absence_rule(self):
        rule = AlertRule(name="heartbeat", metric="ticks_total",
                         kind="absence")
        registry, poller, engine, clock = make_stack([rule])
        engine.evaluate(now=clock.now)
        assert engine.state("heartbeat") == "firing"  # never registered
        registry.counter("ticks_total").inc()
        engine.evaluate(now=clock.advance(1.0))
        assert engine.state("heartbeat") == "ok"


class TestIntrospectionPayloads:
    def test_summary_and_status(self):
        rules = [
            AlertRule(name="a", metric="queue_depth", op=">", threshold=1.0,
                      severity="critical"),
            AlertRule(name="b", metric="queue_depth", op=">",
                      threshold=1e9),
        ]
        registry, poller, engine, clock = make_stack(rules)
        registry.gauge("queue_depth").set(10)
        engine.evaluate(now=clock.now)
        summary = engine.summary()
        assert summary == {
            "rules": 2, "firing": 1, "pending": 0,
            "critical_firing": ["a"],
        }
        assert engine.firing() == ["a"]
        assert engine.firing(severity="warning") == []
        status = engine.status()
        assert status["firing"] == 1 and status["ok"] == 1
        (event,) = status["history"]
        assert (event["rule"], event["to"]) == ("a", "firing")

    def test_transition_metrics(self, enabled_telemetry):
        rule = AlertRule(name="a", metric="queue_depth", op=">",
                         threshold=1.0)
        registry, poller, engine, clock = make_stack([rule])
        registry.gauge("queue_depth").set(10)
        engine.evaluate(now=clock.now)
        tel = enabled_telemetry.TELEMETRY
        fired = tel.registry.get("alerts_transitions_total").labels(
            to="firing"
        )
        assert fired.value == 1
        assert tel.registry.get("alerts_firing").labels().value == 1


class TestDefaultServiceRules:
    def test_pack_shape(self):
        rules = default_service_rules(error_p99=0.05, for_seconds=2.0)
        names = {rule.name for rule in rules}
        assert names == {
            "shard_unhealthy", "audit_error_budget",
            "audit_bound_violation", "queue_backlog", "query_latency",
        }
        by_name = {rule.name: rule for rule in rules}
        assert by_name["shard_unhealthy"].severity == "critical"
        assert by_name["audit_error_budget"].threshold == 0.05
        assert all(rule.for_seconds == 2.0 for rule in rules)

    def test_shard_unhealthy_tracks_supervisor_state_codes(self):
        (rule,) = [r for r in default_service_rules()
                   if r.name == "shard_unhealthy"]
        registry, poller, engine, clock = make_stack([rule])
        state = registry.gauge("service_shard_state", shard="0")
        state.set(0)  # HEALTHY
        engine.evaluate(now=clock.now)
        assert engine.state("shard_unhealthy") == "ok"
        state.set(1)  # REBUILDING
        engine.evaluate(now=clock.advance(1.0))
        assert engine.state("shard_unhealthy") == "firing"
        state.set(0)
        engine.evaluate(now=clock.advance(1.0))
        assert engine.state("shard_unhealthy") == "ok"
