"""Trace identities: ids, parent links, attributes, cross-thread propagation.

PR 3 spans only knew their *name* and per-thread nesting depth; these tests
cover the request-scoped upgrade — every finished span carries a
``trace_id``/``span_id``/``parent_id`` triple and key-value attributes, an
explicit :class:`TraceContext` crosses threads, :func:`record_span`
synthesises after-the-fact phases into a trace, and the JSONL trace
exporter round-trips it all.
"""

import threading

import pytest

from repro.telemetry.export import load_traces_jsonl, write_traces_jsonl
from repro.telemetry.spans import (
    SPANS,
    SpanCollector,
    SpanRecord,
    TraceContext,
    current_trace,
    new_span_id,
    record_span,
    span,
)


class TestTraceIdentity:
    def test_top_level_span_starts_a_fresh_trace(self, enabled_telemetry):
        with span("a"):
            pass
        with span("b"):
            pass
        a, b = SPANS.snapshot()
        assert a.trace_id and b.trace_id and a.trace_id != b.trace_id
        assert a.parent_id is None and b.parent_id is None

    def test_nested_spans_share_the_trace_and_link_parents(self, enabled_telemetry):
        with span("outer"):
            with span("middle"):
                with span("inner"):
                    pass
        inner, middle, outer = SPANS.snapshot()
        assert inner.trace_id == middle.trace_id == outer.trace_id
        assert inner.parent_id == middle.span_id
        assert middle.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_span_ids_are_unique(self, enabled_telemetry):
        for _ in range(50):
            with span("x"):
                pass
        ids = [record.span_id for record in SPANS.snapshot()]
        assert len(set(ids)) == len(ids)

    def test_new_span_id_is_16_hex_and_distinct(self):
        first, second = new_span_id(), new_span_id()
        assert first != second
        for value in (first, second):
            assert len(value) == 16
            int(value, 16)

    def test_records_carry_thread_name(self, enabled_telemetry):
        with span("threaded"):
            pass
        (record,) = SPANS.snapshot()
        assert record.thread == threading.current_thread().name


class TestAttributes:
    def test_kwargs_become_attrs(self, enabled_telemetry):
        with span("op", shard=3, items=100):
            pass
        (record,) = SPANS.snapshot()
        assert record.attrs == {"shard": 3, "items": 100}

    def test_set_attr_mid_flight(self, enabled_telemetry):
        with span("op") as active:
            active.set_attr("seqno", 7).set_attr("cache", "miss")
        (record,) = SPANS.snapshot()
        assert record.attrs == {"seqno": 7, "cache": "miss"}

    def test_disabled_span_accepts_attrs_and_set_attr(self, clean_telemetry):
        with span("op", shard=1) as inactive:
            assert inactive.set_attr("k", "v") is inactive
            assert inactive.context is None
        assert SPANS.snapshot() == []


class TestCrossThreadPropagation:
    def test_context_property_matches_record(self, enabled_telemetry):
        with span("parent") as parent:
            ctx = parent.context
        (record,) = SPANS.snapshot()
        assert isinstance(ctx, TraceContext)
        assert ctx.trace_id == record.trace_id
        assert ctx.span_id == record.span_id
        assert ctx.name == "parent"

    def test_explicit_parent_joins_trace_across_threads(self, enabled_telemetry):
        handoff = {}

        def worker():
            with span("child", parent=handoff["ctx"]):
                pass

        with span("producer") as producer:
            handoff["ctx"] = producer.context
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        child, parent = SPANS.snapshot()
        assert child.name == "child" and parent.name == "producer"
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        assert child.parent == "producer"

    def test_explicit_parent_beats_enclosing_stack(self, enabled_telemetry):
        foreign = TraceContext(trace_id="t-foreign", span_id="s-foreign", name="far")
        with span("enclosing"):
            with span("adopted", parent=foreign):
                pass
        adopted = SPANS.snapshot()[0]
        assert adopted.trace_id == "t-foreign"
        assert adopted.parent_id == "s-foreign"

    def test_current_trace_reflects_stack_top(self, enabled_telemetry):
        assert current_trace() is None
        with span("outer"):
            outer_ctx = current_trace()
            with span("inner") as inner:
                assert current_trace() == inner.context
            assert current_trace() == outer_ctx
        assert current_trace() is None

    def test_current_trace_is_none_when_disabled(self, clean_telemetry):
        assert current_trace() is None


class TestRecordSpan:
    def test_synthesises_finished_span_into_parent_trace(self, enabled_telemetry):
        with span("enqueue") as enq:
            ctx = enq.context
        record = record_span(
            "queue_wait", start=1.0, wall_seconds=0.25, parent=ctx, shard=2
        )
        assert record is not None
        assert record.trace_id == ctx.trace_id
        assert record.parent_id == ctx.span_id
        assert record.attrs == {"shard": 2}
        assert record.wall_seconds == 0.25
        assert record in SPANS.snapshot()

    def test_without_parent_starts_own_trace(self, enabled_telemetry):
        record = record_span("orphan", start=0.0, wall_seconds=0.1)
        assert record.parent_id is None
        assert record.trace_id

    def test_feeds_span_wall_histogram(self, enabled_telemetry):
        record_span("fed", start=0.0, wall_seconds=0.5)
        child = enabled_telemetry.TELEMETRY.histogram("span_wall_seconds", span="fed")
        assert child.count == 1

    def test_noop_when_disabled(self, clean_telemetry):
        assert record_span("off", start=0.0, wall_seconds=0.1) is None
        assert SPANS.snapshot() == []


class TestCollectorTraceViews:
    def test_trace_filters_by_id(self, enabled_telemetry):
        with span("a"):
            with span("a.child"):
                pass
        with span("b"):
            pass
        a_trace = SPANS.trace(SPANS.snapshot()[1].trace_id)
        assert [record.name for record in a_trace] == ["a.child", "a"]

    def test_trace_ids_first_seen_order(self, enabled_telemetry):
        with span("first"):
            pass
        with span("second"):
            pass
        first, second = SPANS.snapshot()
        assert SPANS.trace_ids() == [first.trace_id, second.trace_id]

    def test_unknown_trace_is_empty(self, enabled_telemetry):
        assert SPANS.trace("no-such-trace") == []


class TestTraceExporter:
    def test_round_trip_preserves_every_field(self, enabled_telemetry, tmp_path):
        with span("outer", shard=1):
            with span("inner", items=3):
                pass
        record_span("late", start=5.0, wall_seconds=0.125, phase="wait")
        path = write_traces_jsonl(tmp_path / "traces.jsonl")
        loaded = load_traces_jsonl(path)
        assert loaded == SPANS.snapshot()

    def test_exports_explicit_collector(self, tmp_path):
        collector = SpanCollector(capacity=4)
        collector.record(
            SpanRecord(
                name="manual",
                depth=0,
                parent=None,
                start=0.0,
                wall_seconds=1.0,
                cpu_seconds=0.5,
                trace_id="t1",
                span_id="s1",
                attrs={"k": "v"},
                thread="main",
            )
        )
        path = write_traces_jsonl(tmp_path / "t.jsonl", spans=collector)
        (loaded,) = load_traces_jsonl(path)
        assert loaded == collector.snapshot()[0]

    def test_empty_collector_writes_empty_file(self, tmp_path):
        collector = SpanCollector()
        path = write_traces_jsonl(tmp_path / "empty.jsonl", spans=collector)
        assert path.read_text() == ""
        assert load_traces_jsonl(path) == []

    def test_bad_json_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            load_traces_jsonl(path)

    def test_loader_defaults_legacy_records_without_trace_fields(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text(
            '{"name": "old", "depth": 0, "parent": null, "start": 1.0, '
            '"wall_seconds": 0.1, "cpu_seconds": 0.05}\n'
        )
        (record,) = load_traces_jsonl(path)
        assert record.name == "old"
        assert record.trace_id == "" and record.span_id == ""
        assert record.parent_id is None
        assert record.attrs == {} and record.thread == ""
