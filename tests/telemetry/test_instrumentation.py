"""End-to-end instrumentation: a real ingest emits internally consistent
metrics, and the disabled path emits exactly nothing.

This is the integration check promised by docs/OBSERVABILITY.md: 10k updates
through an ATTP structure (checkpoint-chained CountMin behind a DurableSketch)
and a BITP priority sampler, then every emitted counter is cross-checked
against the structure's own ground truth (chain length, WAL bookkeeping,
compaction counters, record counts).
"""

import pytest

from repro.core.bitp_sampling import BitpPrioritySample
from repro.core.checkpoint_chain import CheckpointChain
from repro.core.persistent_sampling import PersistentTopKSample
from repro.durability.store import DurableSketch
from repro.sketches import CountMinSketch
from repro.telemetry.registry import TELEMETRY

N = 10_000


def _counter_value(name: str, **labels) -> float:
    return TELEMETRY.registry.counter(name, **labels).value


def _chain_factory():
    return CheckpointChain(
        lambda: CountMinSketch.from_error(0.05, 0.05, seed=7), eps=0.1
    )


def _ingest(directory):
    store = DurableSketch(
        _chain_factory(),
        directory,
        fsync_policy="off",
        snapshot_every=4_000,
    )
    bitp = BitpPrioritySample(k=16, seed=3)
    topk = PersistentTopKSample(k=16, seed=3)
    for index in range(N):
        store.update(index % 97, float(index))
        bitp.update(index % 97, float(index))
        topk.update(index % 97, float(index))
    store.close(final_snapshot=False)
    return store, bitp, topk


class TestEmittedMetricsAreConsistent:
    @pytest.fixture()
    def ingested(self, enabled_telemetry, tmp_path):
        return _ingest(tmp_path / "wal")

    def test_chain_updates_and_seals(self, ingested):
        store, _, _ = ingested
        chain = store.sketch
        assert _counter_value(
            "persistent_updates_total", structure="checkpoint_chain"
        ) == chain.count == N
        assert _counter_value(
            "checkpoint_seals_total", structure="checkpoint_chain"
        ) == chain.num_checkpoints()

    def test_base_sketch_saw_every_item(self, ingested):
        # The chain applies each stream item to the live CountMin, whose own
        # instrumentation layer ticks once per scalar update.
        assert _counter_value("sketch_updates_total", sketch="countmin") == N

    def test_wal_counters_match_store_bookkeeping(self, ingested):
        store, _, _ = ingested
        assert _counter_value("wal_records_appended_total") == (
            store.wal.records_appended
        ) == N
        assert _counter_value("wal_segment_rotations_total") == len(
            store.wal.segments()
        ) + store.wal.segments_removed
        assert _counter_value("wal_segments_removed_total") == (
            store.wal.segments_removed
        )
        assert _counter_value("store_snapshots_total") == store.snapshots_taken
        assert store.snapshots_taken == N // 4_000
        assert _counter_value("wal_bytes_appended_total") > 0

    def test_bitp_compactions_and_sampler_records(self, ingested):
        _, bitp, topk = ingested
        assert _counter_value(
            "persistent_updates_total", structure="bitp_priority"
        ) == N
        assert _counter_value("bitp_compaction_scans_total") == (
            bitp.compaction_scans
        )
        assert bitp.compaction_scans > 0
        assert _counter_value(
            "sampler_records_total", sampler="persistent_topk"
        ) == len(topk.records())

    def test_queries_feed_latency_histograms(self, ingested):
        store, bitp, _ = ingested
        for t in (100.0, 5_000.0, 9_999.0):
            store.sketch.sketch_at(t)
            bitp.sample_since(t)
        chain_latency = TELEMETRY.registry.histogram(
            "persistent_query_seconds", structure="checkpoint_chain", op="sketch_at"
        )
        bitp_latency = TELEMETRY.registry.histogram(
            "persistent_query_seconds", structure="bitp_priority", op="sample_since"
        )
        assert chain_latency.count == 3
        assert bitp_latency.count == 3
        assert chain_latency.percentiles()["p99"] >= 0.0

    def test_snapshot_span_recorded(self, ingested):
        from repro.telemetry.spans import SPANS

        names = {record.name for record in SPANS.records}
        assert "store.snapshot" in names


class TestDisabledPathEmitsNothing:
    def test_all_counters_stay_zero(self, clean_telemetry, tmp_path):
        store, bitp, topk = _ingest(tmp_path / "wal")
        assert store.sketch.count == N  # the ingest itself really ran
        assert bitp.compaction_scans > 0
        assert len(topk.records()) > 0
        registry = TELEMETRY.registry
        for family in registry.families():
            for labels, child in family.samples():
                if family.kind == "histogram":
                    assert child.count == 0, (family.name, labels)
                else:
                    assert child.value == 0.0, (family.name, labels)
