"""Tracing spans: nesting, timing, the disabled no-op, buffer bounds."""

import pytest

from repro.telemetry.registry import TELEMETRY
from repro.telemetry.spans import (
    SPANS,
    SpanCollector,
    SpanRecord,
    _NULL_SPAN,
    span,
)


class TestDisabledPath:
    def test_span_is_shared_noop_when_disabled(self, clean_telemetry):
        first = span("a.b")
        second = span("c.d")
        assert first is _NULL_SPAN
        assert second is _NULL_SPAN
        with first:
            pass
        assert SPANS.records == []


class TestEnabledSpans:
    def test_records_name_and_wall_time(self, enabled_telemetry):
        with span("wal.rotate"):
            pass
        assert len(SPANS.records) == 1
        record = SPANS.records[0]
        assert record.name == "wal.rotate"
        assert record.depth == 0
        assert record.parent is None
        assert record.wall_seconds >= 0.0
        assert record.cpu_seconds >= 0.0

    def test_nesting_depth_and_parent(self, enabled_telemetry):
        with span("outer.op"):
            with span("inner.op"):
                pass
        # Inner finishes first.
        inner, outer = SPANS.records
        assert inner.name == "inner.op"
        assert inner.depth == 1
        assert inner.parent == "outer.op"
        assert outer.name == "outer.op"
        assert outer.depth == 0
        assert outer.parent is None

    def test_feeds_span_wall_seconds_histogram(self, enabled_telemetry):
        with span("merge_tree.seal_block"):
            pass
        family = TELEMETRY.registry.get("span_wall_seconds")
        children = {
            labels["span"]: child for labels, child in family.samples()
        }
        assert children["merge_tree.seal_block"].count == 1

    def test_exception_still_records_span(self, enabled_telemetry):
        with pytest.raises(RuntimeError):
            with span("store.snapshot"):
                raise RuntimeError("boom")
        assert SPANS.records[-1].name == "store.snapshot"


class TestCollectorBounds:
    def test_capacity_evicts_oldest(self):
        collector = SpanCollector(capacity=2)
        for index in range(4):
            collector.record(
                SpanRecord(
                    name=f"s{index}", depth=0, parent=None,
                    start=0.0, wall_seconds=0.0, cpu_seconds=0.0,
                )
            )
        assert [record.name for record in collector.records] == ["s2", "s3"]
        assert collector.dropped == 2

    def test_clear_drops_records(self):
        collector = SpanCollector(capacity=2)
        collector.record(
            SpanRecord(
                name="s", depth=0, parent=None,
                start=0.0, wall_seconds=0.0, cpu_seconds=0.0,
            )
        )
        collector.clear()
        assert collector.records == []
        assert collector.dropped == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SpanCollector(capacity=0)
