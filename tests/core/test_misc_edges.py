"""Edge-case tests across core modules not covered elsewhere."""

import numpy as np
import pytest

from repro.core.checkpoint_chain import CheckpointChain
from repro.core.merge_tree import MergeTreePersistence
from repro.sketches import MisraGries
from repro.sketches.hashing import mix64


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345, 7) == mix64(12345, 7)

    def test_seed_changes_output(self):
        assert mix64(12345, 7) != mix64(12345, 8)

    def test_avalanche_on_sequential_keys(self):
        # Adjacent keys must differ in ~half their 64 bits.
        flips = []
        for key in range(500):
            xor = mix64(key, 0) ^ mix64(key + 1, 0)
            flips.append(bin(xor).count("1"))
        assert 24 < np.mean(flips) < 40

    def test_high_bits_unbiased_for_sequential_keys(self):
        # The defect that motivated mix64: multiply-shift's per-residue high
        # bits are correlated for sequential keys; mix64's must not be.
        top_bits = [mix64(key, 0) >> 63 for key in range(2_000)]
        assert 0.45 < np.mean(top_bits) < 0.55

    def test_output_in_64_bit_range(self):
        for key in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= mix64(key, 0) < 2**64


class TestCheckpointChainCustomization:
    def test_custom_snapshot_function(self):
        # Snapshot only the counters dict instead of deep-copying the sketch.
        snapshots = []

        def light_snapshot(sketch):
            state = dict(sketch.items())
            snapshots.append(state)
            return _DictView(state)

        chain = CheckpointChain(
            lambda: MisraGries(8), eps=0.5, snapshot=light_snapshot
        )
        for index in range(200):
            chain.update(index % 3, float(index))
        assert snapshots  # custom snapshotting was used
        historical = chain.sketch_at(50.0)
        assert isinstance(historical, _DictView)

    def test_checkpoints_iterate_in_time_order(self):
        chain = CheckpointChain(lambda: MisraGries(4), eps=0.3)
        for index in range(500):
            chain.update(0, float(index))
        times = [t for t, _ in chain.checkpoints()]
        assert times == sorted(times)


class _DictView:
    def __init__(self, state):
        self.state = state

    def memory_bytes(self):
        return len(self.state) * 12


class TestMergeTreeWeighted:
    def test_weighted_updates_flow_to_nodes(self):
        tree = MergeTreePersistence(
            lambda: MisraGries(16), eps=0.2, mode="attp", block_size=8
        )
        for index in range(256):
            tree.update(index % 2, float(index), weight=3)
        merged = tree.sketch_at(255.0)
        assert merged.total_weight >= (1 - 0.2) * 256 * 3 - 8 * 3

    def test_single_item_stream(self):
        tree = MergeTreePersistence(
            lambda: MisraGries(4), eps=0.5, mode="attp", block_size=4
        )
        tree.update(9, 100.0)
        merged = tree.sketch_at(100.0)
        assert merged.query(9) == 1


class TestTreeRecallToggles:
    def test_bitp_tmg_without_recall_margin(self, small_object_stream):
        from repro.persistent import BitpTreeMisraGries

        sketch = BitpTreeMisraGries(eps=0.002, block_size=64)
        for key, timestamp in small_object_stream:
            sketch.update(key, timestamp)
        since = float(small_object_stream.timestamps[5_000])
        with_margin = set(sketch.heavy_hitters_since(since, 0.01))
        without = set(sketch.heavy_hitters_since(since, 0.01, guarantee_recall=False))
        assert without <= with_margin  # margin only adds candidates

    def test_attp_tree_without_recall_margin(self, small_object_stream):
        from repro.persistent import AttpTreeMisraGries

        sketch = AttpTreeMisraGries(eps=0.002, block_size=64)
        for key, timestamp in small_object_stream:
            sketch.update(key, timestamp)
        t = float(small_object_stream.timestamps[5_000])
        with_margin = set(sketch.heavy_hitters_at(t, 0.01))
        without = set(sketch.heavy_hitters_at(t, 0.01, guarantee_recall=False))
        assert without <= with_margin


class TestReservoirChainsEdge:
    def test_empty_chains(self):
        from repro.core.persistent_sampling import PersistentReservoirChains

        chains = PersistentReservoirChains(k=3, seed=0)
        assert chains.sample_at(100.0) == []
        assert chains.total_records() == 0
        assert chains.memory_bytes() == 0
