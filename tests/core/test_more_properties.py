"""Additional property tests on core invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitp_sampling import BitpPrioritySample
from repro.core.persistent_priority import PersistentPrioritySample
from repro.core.timeindex import GeometricHistory
from repro.persistent import AttpKmvDistinct


class TestGeometricHistoryProperties:
    @given(
        increments=st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=1,
            max_size=300,
        ),
        delta=st.sampled_from([0.01, 0.1, 0.5]),
    )
    @settings(max_examples=50, deadline=None)
    def test_recorded_value_sandwiched(self, increments, delta):
        history = GeometricHistory(delta=delta)
        running = 0.0
        observed = []
        for step, increment in enumerate(increments):
            running += increment
            history.observe(float(step), running)
            observed.append((float(step), running))
        for t, true_value in observed:
            recorded = history.value_at(t)
            assert recorded <= true_value + 1e-9
            # Either within the geometric factor, or nothing recorded yet
            # (only possible while the value is still zero).
            if true_value > 0:
                assert recorded * (1 + delta) >= min(
                    v for s, v in observed if s <= t and v > 0
                ) * (1 - 1e-12) or recorded > 0

    @given(
        increments=st.lists(
            st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_entries_grow_geometrically(self, increments):
        delta = 0.1
        history = GeometricHistory(delta=delta)
        running = 0.0
        for step, increment in enumerate(increments):
            running += increment
            history.observe(float(step), running)
        values = [value for _, value in history._history]
        for a, b in zip(values, values[1:]):
            assert b >= a * (1 + delta) - 1e-9


class TestWeightedSamplerProperties:
    @given(
        weights=st.lists(
            st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
            min_size=5,
            max_size=150,
        ),
        k=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_tau_monotone_in_time(self, weights, k):
        sampler = PersistentPrioritySample(k=k, seed=11)
        for index, weight in enumerate(weights):
            sampler.update(index, float(index), weight)
        taus = [sampler.tau_at(float(t)) for t in range(len(weights))]
        assert taus == sorted(taus)

    @given(
        weights=st.lists(
            st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
            min_size=5,
            max_size=150,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_adjusted_weights_cover_raw(self, weights):
        sampler = PersistentPrioritySample(k=4, seed=12)
        for index, weight in enumerate(weights):
            sampler.update(index, float(index), weight)
        t = float(len(weights) - 1)
        raw = dict(sampler.raw_sample_at(t))
        adjusted = dict(sampler.sample_at(t))
        assert set(raw) == set(adjusted)
        for value in raw:
            assert adjusted[value] >= raw[value] - 1e-12


class TestBitpProperties:
    @given(
        n=st.integers(min_value=20, max_value=400),
        k=st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=30, deadline=None)
    def test_window_nesting(self, n, k):
        """A larger window's sample always covers at least as much priority
        mass: the top-k of [s1, now] and [s2, now] with s1 < s2 must agree on
        any item both contain."""
        sampler = BitpPrioritySample(k=k, seed=13)
        for index in range(n):
            sampler.update(index, float(index))
        wide = dict(sampler.raw_sample_since(0.0))
        narrow = dict(sampler.raw_sample_since(float(n // 2)))
        # Items in the narrow sample that also appear in the wide sample
        # carry identical weights (they are the same entries).
        for value in set(wide) & set(narrow):
            assert wide[value] == narrow[value]

    @given(n=st.integers(min_value=30, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_suffix_count_bounds(self, n):
        sampler = BitpPrioritySample(k=8, seed=14)
        for index in range(n):
            sampler.update(index, float(index))
        for since in range(0, n, max(1, n // 4)):
            estimate = sampler.suffix_count_since(float(since))
            assert 0 <= estimate <= n


class TestKmvProperties:
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=400)
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_below_k(self, keys):
        kmv = AttpKmvDistinct(k=1_024, seed=15)
        for index, key in enumerate(keys):
            kmv.update(key, float(index))
        # With k far above the distinct count, the estimate is exact.
        assert kmv.distinct_now() == len(set(keys))

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200)
    )
    @settings(max_examples=40, deadline=None)
    def test_distinct_monotone_in_time(self, keys):
        kmv = AttpKmvDistinct(k=256, seed=16)
        for index, key in enumerate(keys):
            kmv.update(key, float(index))
        estimates = [kmv.distinct_at(float(t)) for t in range(len(keys))]
        for a, b in zip(estimates, estimates[1:]):
            assert b >= a - 1e-9
