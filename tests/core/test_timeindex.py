"""Tests for History and GeometricHistory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timeindex import GeometricHistory, History, count_at_or_before


class TestHistory:
    def test_value_at_returns_latest_before(self):
        h = History()
        h.append(1.0, "a")
        h.append(5.0, "b")
        h.append(9.0, "c")
        assert h.value_at(0.5) is None
        assert h.value_at(1.0) == "a"
        assert h.value_at(4.9) == "a"
        assert h.value_at(5.0) == "b"
        assert h.value_at(100.0) == "c"

    def test_default_when_before_first(self):
        h = History()
        h.append(10.0, 1)
        assert h.value_at(5.0, default=-1) == -1

    def test_entry_at(self):
        h = History()
        h.append(1.0, "x")
        h.append(2.0, "y")
        assert h.entry_at(1.5) == (1.0, "x")
        assert h.entry_at(0.0) is None

    def test_rejects_decreasing_timestamps(self):
        h = History()
        h.append(5.0, 1)
        with pytest.raises(ValueError):
            h.append(4.0, 2)

    def test_equal_timestamps_allowed(self):
        h = History()
        h.append(5.0, 1)
        h.append(5.0, 2)
        assert h.value_at(5.0) == 2  # latest entry wins

    def test_last_and_len_and_iter(self):
        h = History()
        assert h.last() is None
        h.append(1.0, "a")
        h.append(2.0, "b")
        assert h.last() == (2.0, "b")
        assert len(h) == 2
        assert list(h) == [(1.0, "a"), (2.0, "b")]

    @given(
        times=st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_lookup_matches_linear_scan(self, times):
        times = sorted(times)
        h = History()
        for index, t in enumerate(times):
            h.append(t, index)
        for probe in times + [times[0] - 1, times[-1] + 1]:
            expected = None
            for index, t in enumerate(times):
                if t <= probe:
                    expected = index
            assert h.value_at(probe) == expected


class TestGeometricHistory:
    def test_underestimates_within_factor(self):
        g = GeometricHistory(delta=0.1)
        value = 0.0
        for step in range(1, 1_000):
            value += 1.0
            g.observe(float(step), value)
        for probe in (10.0, 100.0, 500.0, 999.0):
            recorded = g.value_at(probe)
            assert recorded <= probe
            assert recorded >= probe / 1.1 - 1.0

    def test_logarithmic_size(self):
        g = GeometricHistory(delta=0.1)
        value = 0.0
        for step in range(1, 100_000):
            value += 1.0
            g.observe(float(step), value)
        assert len(g) < 150  # ~ log(1e5)/log(1.1) ~ 120

    def test_rejects_decreasing_value(self):
        g = GeometricHistory(delta=0.1)
        g.observe(1.0, 10.0)
        with pytest.raises(ValueError):
            g.observe(2.0, 5.0)

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            GeometricHistory(delta=0.0)

    def test_zero_before_first(self):
        g = GeometricHistory(delta=0.1)
        assert g.value_at(5.0) == 0.0

    def test_memory_model(self):
        g = GeometricHistory(delta=0.5)
        g.observe(1.0, 1.0)
        g.observe(2.0, 2.0)
        assert g.memory_bytes() == len(g) * 16


def test_count_at_or_before():
    times = [1.0, 2.0, 2.0, 5.0]
    assert count_at_or_before(times, 0.5) == 0
    assert count_at_or_before(times, 2.0) == 3
    assert count_at_or_before(times, 9.0) == 4
