"""Tests for ATTP persistent weighted samples (Section 3.1)."""

import numpy as np
import pytest

from repro.core.base import MonotoneViolation
from repro.core.persistent_priority import (
    PersistentPrioritySample,
    PersistentWeightedWR,
)


def brute_force_top_k(offers, k, t):
    prefix = [
        (priority, value)
        for value, timestamp, _, priority in offers
        if timestamp <= t
    ]
    prefix.sort(key=lambda pair: -pair[0])
    return sorted(value for _, value in prefix[:k])


class TestPersistentPrioritySample:
    def test_sample_at_equals_bruteforce(self):
        rng = np.random.default_rng(0)
        k = 6
        sampler = PersistentPrioritySample(k=k, seed=0)
        offers = []
        for index in range(150):
            weight = 1.0 + index % 4
            priority = weight / float(rng.uniform(0.01, 1.0))
            offers.append((index, float(index), weight, priority))
            sampler.count += 1
            sampler.total_weight += weight
            sampler._offer(index, float(index), weight, priority)
        for t in (5.0, 40.0, 90.0, 149.0):
            got = sorted(value for value, _ in sampler.raw_sample_at(t))
            assert got == brute_force_top_k(offers, k, t)

    def test_tau_at_is_k_plus_1_largest(self):
        rng = np.random.default_rng(1)
        k = 4
        sampler = PersistentPrioritySample(k=k, seed=0)
        priorities = []
        for index in range(100):
            weight = 1.0
            priority = weight / float(rng.uniform(0.01, 1.0))
            priorities.append(priority)
            sampler.count += 1
            sampler.total_weight += weight
            sampler._offer(index, float(index), weight, priority)
            if index >= k:
                expected_tau = sorted(priorities, reverse=True)[k]
                assert sampler.tau_at(float(index)) == pytest.approx(expected_tau)

    def test_subset_sum_unbiased_at_historical_time(self):
        weights = [1.0 + (index % 10) for index in range(400)]
        t = 199.0
        true = sum(w for index, w in enumerate(weights) if index <= t and index < 100)
        estimates = []
        for seed in range(200):
            sampler = PersistentPrioritySample(k=40, seed=seed)
            for index, weight in enumerate(weights):
                sampler.update(index, float(index), weight)
            estimates.append(
                sampler.estimate_subset_sum_at(t, lambda value: value < 100)
            )
        mean = float(np.mean(estimates))
        assert abs(mean - true) < 0.1 * true

    def test_records_bounded(self):
        # Theorem 3.2: O(k (log n + log U)) records for U-bounded weights.
        n, k = 5_000, 20
        sampler = PersistentPrioritySample(k=k, seed=0)
        rng = np.random.default_rng(0)
        for index in range(n):
            sampler.update(index, float(index), float(rng.uniform(1.0, 16.0)))
        bound = 4 * k * (np.log(n) + np.log(16))
        assert len(sampler) < bound

    def test_sample_at_adjusted_weights_at_least_tau(self):
        sampler = PersistentPrioritySample(k=5, seed=2)
        for index in range(200):
            sampler.update(index, float(index), 1.0 + index % 3)
        t = 150.0
        tau = sampler.tau_at(t)
        for _, weight in sampler.sample_at(t):
            assert weight >= tau - 1e-12

    def test_rejects_nonpositive_weight(self):
        sampler = PersistentPrioritySample(k=2, seed=0)
        with pytest.raises(ValueError):
            sampler.update(1, 1.0, 0.0)

    def test_rejects_decreasing_timestamps(self):
        sampler = PersistentPrioritySample(k=2, seed=0)
        sampler.update(1, 5.0, 1.0)
        with pytest.raises(MonotoneViolation):
            sampler.update(2, 4.0, 1.0)

    def test_memory_includes_tau_history(self):
        sampler = PersistentPrioritySample(k=2, seed=0)
        for index in range(100):
            sampler.update(index, float(index), 1.0)
        assert sampler.memory_bytes() > len(sampler) * 36


class TestPersistentWeightedWR:
    def test_sample_size_is_k(self):
        wr = PersistentWeightedWR(k=12, seed=0)
        for index in range(100):
            wr.update(index, float(index), 1.0)
        assert len(wr.sample_at(50.0)) == 12

    def test_sample_values_in_prefix(self):
        wr = PersistentWeightedWR(k=6, seed=1)
        for index in range(300):
            wr.update(index, float(index), 1.0 + index % 5)
        for t in (20.0, 150.0, 299.0):
            assert all(value <= t for value, _ in wr.sample_at(t))

    def test_total_weight_at_tracks_geometrically(self):
        wr = PersistentWeightedWR(k=2, seed=0)
        for index in range(1_000):
            wr.update(index, float(index), 1.0)
        w = wr.total_weight_at(499.0)
        assert 450 <= w <= 500

    def test_subset_sum_estimate_reasonable(self):
        weights = [1.0 + (index % 10) for index in range(300)]
        t = 299.0
        true = sum(w for index, w in enumerate(weights) if index < 150)
        estimates = []
        for seed in range(150):
            wr = PersistentWeightedWR(k=60, seed=seed)
            for index, weight in enumerate(weights):
                wr.update(index, float(index), weight)
            estimates.append(wr.estimate_subset_sum_at(t, lambda value: value < 150))
        assert abs(np.mean(estimates) - true) < 0.12 * true

    def test_weighted_marginals_at_history(self):
        hits = {0: 0, 1: 0}
        for seed in range(300):
            wr = PersistentWeightedWR(k=4, seed=seed)
            wr.update(0, 0.0, 1.0)
            wr.update(1, 1.0, 3.0)
            wr.update(2, 2.0, 100.0)  # later heavy item must not affect t=1
            for value, _ in wr.sample_at(1.0):
                hits[value] += 1
        ratio = hits[1] / max(1, hits[0])
        assert 2.0 < ratio < 4.5

    def test_records_logarithmic_for_uniform_weights(self):
        n, k = 5_000, 10
        wr = PersistentWeightedWR(k=k, seed=3)
        for index in range(n):
            wr.update(index, float(index), 1.0)
        assert wr.total_records() < 4 * k * (1 + np.log(n))

    def test_rejects_nonpositive_weight(self):
        wr = PersistentWeightedWR(k=2, seed=0)
        with pytest.raises(ValueError):
            wr.update(1, 1.0, -1.0)

    def test_empty_estimate(self):
        wr = PersistentWeightedWR(k=2, seed=0)
        assert wr.estimate_subset_sum_at(10.0, lambda value: True) == 0.0
