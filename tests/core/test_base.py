"""Tests for shared stream types and protocols."""

import pytest

from repro.core.base import (
    MergeableSketch,
    MonotoneViolation,
    Sketch,
    StreamItem,
    TimestampGuard,
)
from repro.sketches import CountMinSketch, MisraGries


class TestStreamItem:
    def test_defaults(self):
        item = StreamItem(value=7, timestamp=1.0)
        assert item.weight == 1.0

    def test_frozen(self):
        item = StreamItem(value=7, timestamp=1.0)
        with pytest.raises(AttributeError):
            item.value = 8


class TestTimestampGuard:
    def test_accepts_nondecreasing(self):
        guard = TimestampGuard()
        guard.check(1.0)
        guard.check(1.0)
        guard.check(2.0)

    def test_rejects_decreasing(self):
        guard = TimestampGuard()
        guard.check(5.0)
        with pytest.raises(MonotoneViolation):
            guard.check(4.9)

    def test_monotone_violation_is_value_error(self):
        assert issubclass(MonotoneViolation, ValueError)


class TestProtocols:
    def test_countmin_satisfies_mergeable(self):
        assert isinstance(CountMinSketch(16), Sketch)
        assert isinstance(CountMinSketch(16), MergeableSketch)

    def test_misra_gries_satisfies_mergeable(self):
        assert isinstance(MisraGries(4), MergeableSketch)

    def test_non_sketch_rejected(self):
        assert not isinstance(object(), Sketch)
