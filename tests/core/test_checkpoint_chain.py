"""Tests for the generic checkpoint chain (Section 4, Lemma 4.1)."""

import numpy as np
import pytest

from repro.core.base import MonotoneViolation
from repro.core.checkpoint_chain import CheckpointChain
from repro.sketches import CountMinSketch, KllSketch, MisraGries


class TestCheckpointChain:
    def test_checkpoint_count_logarithmic(self):
        # Lemma 4.1: O((1/eps) log W) checkpoints.
        eps = 0.1
        chain = CheckpointChain(lambda: MisraGries(10), eps=eps)
        n = 50_000
        for index in range(n):
            chain.update(index % 5, float(index))
        bound = 3 * (1.0 / eps) * np.log(n)
        assert chain.num_checkpoints() <= bound

    def test_staleness_bounded_by_eps(self):
        # The snapshot used for time t misses at most eps * W(t) weight.
        eps = 0.05
        chain = CheckpointChain(lambda: MisraGries(100), eps=eps)
        n = 10_000
        for index in range(n):
            chain.update(index % 3, float(index))
        for t in (100.0, 1_000.0, 5_000.0, 9_999.0):
            snapshot = chain.sketch_at(t)
            missing = (t + 1) - snapshot.total_weight
            assert 0 <= missing <= eps * (t + 1) + 1

    def test_query_at_current_time_is_live(self):
        chain = CheckpointChain(lambda: MisraGries(10), eps=0.5)
        for index in range(100):
            chain.update(1, float(index))
        live = chain.sketch_at(99.0)
        assert live is chain.live
        assert live.query(1) == 100

    def test_historical_estimates_track_prefix(self):
        chain = CheckpointChain(lambda: CountMinSketch(1024, 3, seed=0), eps=0.02)
        for index in range(20_000):
            chain.update(index % 7, float(index))
        t = 9_999.0
        snapshot = chain.sketch_at(t)
        true = 10_000 / 7
        assert abs(snapshot.query(0) - true) <= 0.05 * 10_000

    def test_snapshot_timestamp_before_crossing_item(self):
        # The checkpoint stamped when item i crosses the threshold reflects
        # the state *before* item i: its weight must be below the item count.
        chain = CheckpointChain(lambda: MisraGries(5), eps=0.3)
        for index in range(1_000):
            chain.update(0, float(index))
        for t, snapshot in chain.checkpoints():
            assert snapshot.total_weight <= t + 1

    def test_query_before_first_item_is_none(self):
        chain = CheckpointChain(lambda: MisraGries(5), eps=0.5)
        chain.update(1, 10.0)
        assert chain.sketch_at(5.0) is None

    def test_weighted_updates(self):
        chain = CheckpointChain(lambda: MisraGries(5), eps=0.5)
        chain.update(1, 1.0, weight=10.0)
        chain.update(2, 2.0, weight=5.0)
        assert chain.total_weight == 15.0

    def test_unweighted_sketch_rejects_weights(self):
        chain = CheckpointChain(lambda: KllSketch(16), eps=0.5)
        chain.update(1.0, 1.0)
        with pytest.raises(ValueError):
            chain.update(2.0, 2.0, weight=3.0)

    def test_kll_chain_quantiles(self):
        chain = CheckpointChain(lambda: KllSketch(128, seed=0), eps=0.05)
        rng = np.random.default_rng(0)
        values = rng.normal(size=5_000)
        for index, value in enumerate(values):
            chain.update(float(value), float(index))
        snapshot = chain.sketch_at(2_499.0)
        median = snapshot.quantile(0.5)
        true_median = float(np.median(values[:2500]))
        assert abs(median - true_median) < 0.15

    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            CheckpointChain(lambda: MisraGries(5), eps=0.0)
        with pytest.raises(ValueError):
            CheckpointChain(lambda: MisraGries(5), eps=1.0)

    def test_rejects_nonpositive_weight(self):
        chain = CheckpointChain(lambda: MisraGries(5), eps=0.5)
        with pytest.raises(ValueError):
            chain.update(1, 1.0, weight=0.0)

    def test_rejects_decreasing_timestamps(self):
        chain = CheckpointChain(lambda: MisraGries(5), eps=0.5)
        chain.update(1, 5.0)
        with pytest.raises(MonotoneViolation):
            chain.update(1, 4.0)

    def test_memory_sums_snapshots(self):
        chain = CheckpointChain(lambda: MisraGries(5), eps=0.2)
        for index in range(1_000):
            chain.update(index % 3, float(index))
        manual = chain.live.memory_bytes()
        for _, snapshot in chain.checkpoints():
            # snapshot body + chain entry (8-byte timestamp + 8-byte pointer)
            manual += snapshot.memory_bytes() + 16
        assert chain.memory_bytes() == manual
        breakdown = chain.memory_breakdown()
        assert sum(breakdown.values()) == chain.memory_bytes()
        assert breakdown["chain_entries"] == chain.num_checkpoints() * 16
