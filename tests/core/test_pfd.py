"""Tests for Persistent Frequent Directions (Algorithm 1, Theorem 4.3)."""

import numpy as np
import pytest

from repro.core.base import MonotoneViolation
from repro.core.pfd import PersistentFrequentDirections


def gaussian_stream(n, d, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, d))


class TestPersistentFrequentDirections:
    def test_error_bound_at_all_times(self):
        # Theorem 4.3: ||A(t)^T A(t) - G^T G||_2 <= 2 ||A(t)||_F^2 / ell.
        a = gaussian_stream(600, 20, seed=0)
        ell = 10
        pfd = PersistentFrequentDirections(ell=ell, dim=20)
        for index, row in enumerate(a):
            pfd.update(row, float(index))
        for t_index in (59, 149, 299, 599):
            prefix = a[: t_index + 1]
            frob_sq = np.linalg.norm(prefix, "fro") ** 2
            err = np.linalg.norm(
                prefix.T @ prefix - pfd.covariance_at(float(t_index)), 2
            )
            assert err <= 2 * frob_sq / ell + 1e-6

    def test_detects_mid_stream_burst(self):
        rng = np.random.default_rng(1)
        noise = rng.normal(scale=0.1, size=(400, 30))
        direction = rng.normal(size=30)
        direction /= np.linalg.norm(direction)
        burst = np.outer(rng.normal(scale=5.0, size=50), direction)
        a = np.vstack([noise[:200], burst, noise[200:]])
        pfd = PersistentFrequentDirections(ell=8, dim=30)
        for index, row in enumerate(a):
            pfd.update(row, float(index))
        before = pfd.covariance_at(199.0)
        after = pfd.covariance_at(249.0)
        gain = float(direction @ (after - before) @ direction)
        true_gain = float(direction @ (burst.T @ burst) @ direction)
        assert gain > 0.5 * true_gain

    def test_partial_checkpoint_count_bounded(self):
        # Theorem 4.3: O((1/eps) log(||A||_F / ||a_1||)) partial checkpoints.
        a = gaussian_stream(2_000, 10, seed=2)
        ell = 10
        pfd = PersistentFrequentDirections(ell=ell, dim=10)
        for index, row in enumerate(a):
            pfd.update(row, float(index))
        frob = np.linalg.norm(a, "fro")
        first = np.linalg.norm(a[0])
        bound = 4 * ell * np.log(frob / first) + 2 * ell
        assert pfd.num_partial_checkpoints() <= bound

    def test_full_checkpoints_every_ell_partials(self):
        a = gaussian_stream(2_000, 10, seed=3)
        pfd = PersistentFrequentDirections(ell=5, dim=10)
        for index, row in enumerate(a):
            pfd.update(row, float(index))
        assert pfd.num_full_checkpoints() == pfd.num_partial_checkpoints() // 5

    def test_query_before_first_checkpoint_empty(self):
        pfd = PersistentFrequentDirections(ell=4, dim=8)
        sketch = pfd.sketch_at(0.0)
        assert sketch.shape == (0, 8)
        assert np.allclose(pfd.covariance_at(0.0), np.zeros((8, 8)))

    def test_covariance_now_includes_residual(self):
        a = gaussian_stream(100, 8, seed=4)
        pfd = PersistentFrequentDirections(ell=4, dim=8)
        for index, row in enumerate(a):
            pfd.update(row, float(index))
        err_now = np.linalg.norm(a.T @ a - pfd.covariance_now(), 2)
        err_at = np.linalg.norm(a.T @ a - pfd.covariance_at(99.0), 2)
        assert err_now <= err_at + 1e-9

    def test_from_error_sizing(self):
        pfd = PersistentFrequentDirections.from_error(0.1, dim=16)
        assert pfd.ell == 20
        with pytest.raises(ValueError):
            PersistentFrequentDirections.from_error(0.0, dim=16)

    def test_squared_frobenius_tracked(self):
        a = gaussian_stream(50, 8, seed=5)
        pfd = PersistentFrequentDirections(ell=4, dim=8)
        for index, row in enumerate(a):
            pfd.update(row, float(index))
        assert pfd.squared_frobenius == pytest.approx(np.linalg.norm(a, "fro") ** 2)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            PersistentFrequentDirections(ell=0, dim=8)
        with pytest.raises(ValueError):
            PersistentFrequentDirections(ell=4, dim=0)
        pfd = PersistentFrequentDirections(ell=4, dim=8)
        with pytest.raises(ValueError):
            pfd.update(np.zeros(5), 0.0)
        pfd.update(np.ones(8), 5.0)
        with pytest.raises(MonotoneViolation):
            pfd.update(np.ones(8), 4.0)

    def test_memory_accounts_checkpoints(self):
        a = gaussian_stream(500, 10, seed=6)
        pfd = PersistentFrequentDirections(ell=5, dim=10)
        for index, row in enumerate(a):
            pfd.update(row, float(index))
        expected = (
            pfd.num_partial_checkpoints() * (10 * 8 + 8)
            + pfd.num_full_checkpoints() * (5 * 10 * 8 + 8)
            + pfd._residual.memory_bytes()
        )
        assert pfd.memory_bytes() == expected
