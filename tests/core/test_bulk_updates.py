"""Tests for the bulk-ingest (update_many) APIs."""

import time

import numpy as np
import pytest

from repro.core.bitp_sampling import BitpPrioritySample
from repro.core.persistent_sampling import PersistentTopKSample
from repro.persistent import AttpSampleHeavyHitter, BitpSampleHeavyHitter


class TestPersistentTopKBulk:
    def test_identical_to_sequential(self):
        n = 5_000
        values = list(range(n))
        timestamps = [float(index) for index in range(n)]
        sequential = PersistentTopKSample(k=16, seed=7)
        for value, timestamp in zip(values, timestamps):
            sequential.update(value, timestamp)
        bulk = PersistentTopKSample(k=16, seed=7)
        bulk.update_many(values, timestamps)
        assert len(sequential) == len(bulk)
        for t in (0.0, 1_234.0, 4_999.0):
            assert sorted(sequential.sample_at(t)) == sorted(bulk.sample_at(t))

    def test_mixed_bulk_and_single(self):
        a = PersistentTopKSample(k=8, seed=1)
        b = PersistentTopKSample(k=8, seed=1)
        values = list(range(1_000))
        times = [float(v) for v in values]
        for value, timestamp in zip(values, times):
            a.update(value, timestamp)
        b.update_many(values[:500], times[:500])
        for value, timestamp in zip(values[500:], times[500:]):
            b.update(value, timestamp)
        assert sorted(a.sample_now()) == sorted(b.sample_now())

    def test_length_mismatch_rejected(self):
        sampler = PersistentTopKSample(k=4, seed=0)
        with pytest.raises(ValueError):
            sampler.update_many([1, 2], [0.0])

    def test_monotonicity_enforced_in_bulk(self):
        from repro.core.base import MonotoneViolation

        sampler = PersistentTopKSample(k=4, seed=0)
        with pytest.raises(MonotoneViolation):
            sampler.update_many([1, 2, 3], [0.0, 2.0, 1.0])
        assert sampler.count == 2  # items before the violation were accepted

    def test_bulk_is_faster(self):
        n = 200_000
        values = np.arange(n)
        times = np.arange(n, dtype=float)
        slow = PersistentTopKSample(k=16, seed=2)
        start = time.perf_counter()
        for index in range(n):
            slow.update(int(values[index]), float(times[index]))
        sequential_seconds = time.perf_counter() - start
        fast = PersistentTopKSample(k=16, seed=2)
        start = time.perf_counter()
        fast.update_many(values.tolist(), times.tolist())
        bulk_seconds = time.perf_counter() - start
        assert bulk_seconds < sequential_seconds


class TestBitpBulk:
    def test_identical_to_sequential(self):
        n = 5_000
        values = list(range(n))
        timestamps = [float(index) for index in range(n)]
        sequential = BitpPrioritySample(k=32, seed=7)
        for value, timestamp in zip(values, timestamps):
            sequential.update(value, timestamp)
        bulk = BitpPrioritySample(k=32, seed=7)
        bulk.update_many(values, timestamps)
        for since in (0.0, 2_500.0, 4_990.0):
            assert sequential.raw_sample_since(since) == bulk.raw_sample_since(since)

    def test_weighted_bulk(self):
        weights = [1.0 + (index % 5) for index in range(2_000)]
        sequential = BitpPrioritySample(k=16, seed=3)
        bulk = BitpPrioritySample(k=16, seed=3)
        for index in range(2_000):
            sequential.update(index, float(index), weights[index])
        bulk.update_many(list(range(2_000)), [float(i) for i in range(2_000)], weights)
        assert sequential.raw_sample_since(1_000.0) == bulk.raw_sample_since(1_000.0)

    def test_bad_weights_rejected(self):
        sampler = BitpPrioritySample(k=4, seed=0)
        with pytest.raises(ValueError):
            sampler.update_many([1], [0.0], [0.0])
        with pytest.raises(ValueError):
            sampler.update_many([1, 2], [0.0, 1.0], [1.0])


class TestPublicApiBulk:
    def test_attp_hh_bulk_matches_sequential(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 30, size=4_000).tolist()
        times = [float(index) for index in range(4_000)]
        a = AttpSampleHeavyHitter(k=600, seed=5)
        b = AttpSampleHeavyHitter(k=600, seed=5)
        for key, timestamp in zip(keys, times):
            a.update(key, timestamp)
        b.update_many(keys, times)
        for t in (1_000.0, 3_999.0):
            assert a.heavy_hitters_at(t, 0.05) == b.heavy_hitters_at(t, 0.05)

    def test_bitp_hh_bulk_matches_sequential(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 30, size=4_000).tolist()
        times = [float(index) for index in range(4_000)]
        a = BitpSampleHeavyHitter(k=600, seed=5)
        b = BitpSampleHeavyHitter(k=600, seed=5)
        for key, timestamp in zip(keys, times):
            a.update(key, timestamp)
        b.update_many(keys, times)
        for since in (1_000.0, 3_500.0):
            assert a.heavy_hitters_since(since, 0.05) == b.heavy_hitters_since(
                since, 0.05
            )
