"""Tests for elementwise checkpoint chains: CMG and CCM (Section 4.1)."""

import numpy as np
import pytest

from repro.core.base import MonotoneViolation
from repro.core.elementwise import ChainCountMin, ChainMisraGries


def zipf_stream(n, universe, seed=0, a=1.3):
    rng = np.random.default_rng(seed)
    return (rng.zipf(a, size=n) % universe).astype(int)


class TestChainMisraGries:
    def test_estimate_at_additive_error(self):
        eps = 0.02
        cmg = ChainMisraGries(eps=eps)
        n = 20_000
        keys = zipf_stream(n, 100, seed=0)
        for index, key in enumerate(keys):
            cmg.update(int(key), float(index))
        for t_index in (4_999, 9_999, 19_999):
            prefix = keys[: t_index + 1]
            counts = np.bincount(prefix, minlength=100)
            for key in range(100):
                err = abs(cmg.estimate_at(key, float(t_index)) - counts[key])
                assert err <= eps * (t_index + 1) + 1

    def test_never_overestimates_beyond_drift(self):
        eps = 0.05
        cmg = ChainMisraGries(eps=eps)
        n = 5_000
        keys = zipf_stream(n, 50, seed=1)
        for index, key in enumerate(keys):
            cmg.update(int(key), float(index))
        t = float(n - 1)
        counts = np.bincount(keys, minlength=50)
        for key in range(50):
            # MG never overestimates; only checkpoint drift can push above.
            assert cmg.estimate_at(key, t) <= counts[key] + (eps / 2) * n + 1

    def test_recall_guaranteed(self):
        cmg = ChainMisraGries(eps=0.005)
        n = 30_000
        keys = zipf_stream(n, 500, seed=2)
        for index, key in enumerate(keys):
            cmg.update(int(key), float(index))
        phi = 0.02
        for t_index in (9_999, 29_999):
            prefix = keys[: t_index + 1]
            counts = np.bincount(prefix, minlength=500)
            truth = {k for k in range(500) if counts[k] >= phi * (t_index + 1)}
            reported = set(cmg.heavy_hitters_at(float(t_index), phi))
            assert truth <= reported

    def test_precision_without_margin(self):
        cmg = ChainMisraGries(eps=0.001)
        n = 30_000
        keys = zipf_stream(n, 500, seed=3)
        for index, key in enumerate(keys):
            cmg.update(int(key), float(index))
        phi = 0.02
        t = float(n - 1)
        counts = np.bincount(keys, minlength=500)
        near = {k for k in range(500) if counts[k] >= (phi - 0.002) * n}
        reported = set(cmg.heavy_hitters_at(t, phi, guarantee_recall=False))
        assert reported <= near  # no wild false positives

    def test_checkpoints_logarithmic(self):
        eps = 0.01
        cmg = ChainMisraGries(eps=eps)
        n = 50_000
        for index in range(n):
            cmg.update(index % 5, float(index))
        # O((1/eps) log W) total checkpoints across all counters.
        bound = 6 * (1.0 / eps) * np.log(n)
        assert cmg.num_checkpoints() <= bound

    def test_query_now_matches_plain_mg(self):
        from repro.sketches import MisraGries

        cmg = ChainMisraGries(eps=0.02)
        mg = MisraGries(cmg.k)
        keys = zipf_stream(2_000, 30, seed=4)
        for index, key in enumerate(keys):
            cmg.update(int(key), float(index))
            mg.update(int(key))
        for key in range(30):
            assert cmg.estimate_now(key) == mg.query(key)

    def test_total_weight_at_underestimates_slightly(self):
        cmg = ChainMisraGries(eps=0.1)
        for index in range(10_000):
            cmg.update(0, float(index))
        w = cmg.total_weight_at(4_999.0)
        assert 4_500 <= w <= 5_000

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ChainMisraGries(eps=0.0)
        cmg = ChainMisraGries(eps=0.1)
        with pytest.raises(ValueError):
            cmg.update(1, 1.0, weight=0)
        cmg.update(1, 5.0)
        with pytest.raises(MonotoneViolation):
            cmg.update(1, 4.0)
        with pytest.raises(ValueError):
            cmg.heavy_hitters_at(5.0, 0.0)

    def test_memory_grows_with_checkpoints(self):
        cmg = ChainMisraGries(eps=0.05)
        cmg.update(1, 1.0)
        small = cmg.memory_bytes()
        for index in range(2, 5_000):
            cmg.update(index % 7, float(index))
        assert cmg.memory_bytes() > small


class TestChainCountMin:
    def test_point_estimates_track_prefix(self):
        ccm = ChainCountMin(width=512, depth=3, eps_ckpt=0.005, seed=0)
        n = 10_000
        keys = zipf_stream(n, 50, seed=5)
        for index, key in enumerate(keys):
            ccm.update(int(key), float(index))
        t_index = 4_999
        counts = np.bincount(keys[: t_index + 1], minlength=50)
        for key in range(0, 50, 5):
            err = abs(ccm.estimate_at(key, float(t_index)) - counts[key])
            assert err <= 0.02 * (t_index + 1) + 2

    def test_estimate_now_matches_live_countmin(self):
        ccm = ChainCountMin(width=256, depth=3, eps_ckpt=0.01, seed=1)
        keys = zipf_stream(3_000, 40, seed=6)
        for index, key in enumerate(keys):
            ccm.update(int(key), float(index))
        for key in range(40):
            assert ccm.estimate_now(key) == ccm._cm.query(key)

    def test_heavy_hitters_with_candidates(self):
        ccm = ChainCountMin(width=1024, depth=3, eps_ckpt=0.002, seed=2)
        n = 20_000
        keys = zipf_stream(n, 200, seed=7)
        for index, key in enumerate(keys):
            ccm.update(int(key), float(index))
        phi = 0.03
        t = float(n - 1)
        counts = np.bincount(keys, minlength=200)
        truth = {k for k in range(200) if counts[k] >= phi * n}
        reported = set(ccm.heavy_hitters_at(t, phi, candidates=range(200)))
        # CountMin overestimates and the chain underestimates; near-threshold
        # keys can flip, but clear hitters are found.
        clear = {k for k in range(200) if counts[k] >= 1.3 * phi * n}
        assert clear <= reported
        assert reported <= {k for k in range(200) if counts[k] >= 0.7 * phi * n}

    def test_checkpoints_bounded(self):
        ccm = ChainCountMin(width=128, depth=3, eps_ckpt=0.01, seed=3)
        n = 20_000
        for index in range(n):
            ccm.update(index % 4, float(index))
        # h-component bound: O(depth * (1/eps) * log W).
        bound = 6 * 3 * (1.0 / 0.01) * np.log(n)
        assert ccm.num_checkpoints() <= bound

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ChainCountMin(width=16, eps_ckpt=0.0)
        ccm = ChainCountMin(width=16, eps_ckpt=0.1)
        with pytest.raises(ValueError):
            ccm.update(1, 1.0, weight=-1)
