"""Tests for merge-tree persistence (Section 5, Theorem 5.1)."""

import numpy as np
import pytest

from repro.core.base import MonotoneViolation
from repro.core.merge_tree import MergeTreePersistence
from repro.sketches import FastFrequentDirections, KllSketch, MisraGries


def mg_factory():
    return MisraGries(50)


class TestMergeTreeAttp:
    def test_prefix_coverage_within_eps(self):
        eps = 0.1
        tree = MergeTreePersistence(mg_factory, eps=eps, mode="attp", block_size=16)
        n = 8_000
        for index in range(n):
            tree.update(index % 3, float(index))
        for t in (999.0, 3_999.0, 7_999.0):
            merged = tree.sketch_at(t)
            covered = merged.total_weight
            target = t + 1
            assert covered <= target
            assert covered >= (1 - eps) * target - tree.block_size

    def test_estimates_track_prefix(self):
        tree = MergeTreePersistence(mg_factory, eps=0.05, mode="attp", block_size=16)
        n = 6_000
        for index in range(n):
            tree.update(index % 5, float(index))
        merged = tree.sketch_at(2_999.0)
        true = 3_000 / 5
        assert abs(merged.query(0) - true) <= 0.15 * 3_000

    def test_node_count_logarithmic(self):
        eps = 0.1
        tree = MergeTreePersistence(mg_factory, eps=eps, mode="attp", block_size=16)
        n = 20_000
        for index in range(n):
            tree.update(index % 3, float(index))
        blocks = n / 16
        bound = 6 * (2 / eps) * np.log2(blocks)
        assert tree.num_nodes() <= bound

    def test_query_at_zero_prefix(self):
        tree = MergeTreePersistence(mg_factory, eps=0.1, mode="attp", block_size=4)
        tree.update(1, 10.0)
        merged = tree.sketch_at(5.0)
        assert merged.total_weight == 0

    def test_bitp_query_rejected_in_attp_mode(self):
        tree = MergeTreePersistence(mg_factory, eps=0.1, mode="attp")
        with pytest.raises(RuntimeError):
            tree.sketch_since(0.0)

    def test_includes_live_partial_block(self):
        tree = MergeTreePersistence(mg_factory, eps=0.1, mode="attp", block_size=100)
        for index in range(50):  # never fills a block
            tree.update(1, float(index))
        merged = tree.sketch_at(49.0)
        assert merged.total_weight == 50


class TestMergeTreeBitp:
    def test_suffix_coverage_within_eps(self):
        eps = 0.1
        tree = MergeTreePersistence(mg_factory, eps=eps, mode="bitp", block_size=16)
        n = 8_000
        for index in range(n):
            tree.update(index % 3, float(index))
        for since in (7_000.0, 4_000.0, 1_000.0):
            merged = tree.sketch_since(since)
            window = n - since
            covered = merged.total_weight
            assert covered <= window + tree.block_size
            assert covered >= (1 - eps) * window - tree.block_size

    def test_window_estimates(self):
        tree = MergeTreePersistence(mg_factory, eps=0.05, mode="bitp", block_size=16)
        n = 6_000
        for index in range(n):
            tree.update(index % 5, float(index))
        merged = tree.sketch_since(3_000.0)
        true = 3_000 / 5
        assert abs(merged.query(0) - true) <= 0.15 * 3_000

    def test_pruning_keeps_space_bounded(self):
        eps = 0.1
        tree = MergeTreePersistence(mg_factory, eps=eps, mode="bitp", block_size=16)
        n = 20_000
        for index in range(n):
            tree.update(index % 3, float(index))
        blocks = n / 16
        bound = 6 * (2 / eps) * np.log2(blocks)
        assert tree.num_nodes() <= bound

    def test_newest_data_always_covered(self):
        # Sub-block windows are answered at block granularity: the result
        # covers at least the window and at most one extra block.
        tree = MergeTreePersistence(mg_factory, eps=0.1, mode="bitp", block_size=8)
        for index in range(1_000):
            tree.update(7, float(index))
        merged = tree.sketch_since(996.0)
        assert 4 <= merged.total_weight <= 4 + tree.block_size

    def test_attp_query_rejected_in_bitp_mode(self):
        tree = MergeTreePersistence(mg_factory, eps=0.1, mode="bitp")
        with pytest.raises(RuntimeError):
            tree.sketch_at(0.0)

    def test_peak_memory_tracked(self):
        tree = MergeTreePersistence(mg_factory, eps=0.1, mode="bitp", block_size=16)
        for index in range(2_000):
            tree.update(index % 3, float(index))
        assert tree.peak_memory_bytes > 0


class TestMergeTreeGeneric:
    def test_kll_merge_tree_quantiles(self):
        tree = MergeTreePersistence(
            lambda: KllSketch(64, seed=0), eps=0.1, mode="bitp", block_size=32
        )
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 100, size=4_000)
        for index, value in enumerate(values):
            tree.update(float(value), float(index))
        merged = tree.sketch_since(2_000.0)
        median = merged.quantile(0.5)
        true = float(np.median(values[2_000:]))
        assert abs(median - true) < 10

    def test_fd_merge_tree(self):
        dim = 10
        tree = MergeTreePersistence(
            lambda: FastFrequentDirections(6, dim),
            eps=0.2,
            mode="bitp",
            block_size=16,
            apply_update=lambda sketch, value, weight: sketch.update(value),
        )
        rng = np.random.default_rng(1)
        rows = rng.normal(size=(500, dim))
        for index, row in enumerate(rows):
            tree.update(row, float(index))
        merged = tree.sketch_since(250.0)
        window = rows[250:]
        err = np.linalg.norm(window.T @ window - merged.covariance(), 2)
        frob_sq = np.linalg.norm(window, "fro") ** 2
        # FD error + tree slack (eps fraction of window mass missing).
        assert err <= frob_sq / 6 + 0.25 * frob_sq

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            MergeTreePersistence(mg_factory, eps=0.0)
        with pytest.raises(ValueError):
            MergeTreePersistence(mg_factory, eps=0.1, mode="both")
        with pytest.raises(ValueError):
            MergeTreePersistence(mg_factory, eps=0.1, block_size=0)

    def test_rejects_decreasing_timestamps(self):
        tree = MergeTreePersistence(mg_factory, eps=0.1)
        tree.update(1, 5.0)
        with pytest.raises(MonotoneViolation):
            tree.update(1, 4.0)
