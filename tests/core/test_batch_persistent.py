"""Batch ≡ scalar-loop equivalence through the persistence layers.

The persistence constructions have side effects at *positions* in the stream
— checkpoint triggers in the chain, block seals in the merge tree, death
marks in the persistent samplers — so batch ingest must reproduce them at
exactly the scalar positions, not merely end in an equivalent summary.
These tests feed identical streams through a scalar loop and through
``update_batch`` (with batch edges deliberately straddling checkpoint and
block boundaries) and assert identical historical answers, identical
structure, and — on mid-batch violations — identical prefix-apply state.
"""

import functools

import numpy as np
import pytest

from repro.core import (
    BitpPrioritySample,
    CheckpointChain,
    MergeTreePersistence,
    MonotoneViolation,
    PersistentPrioritySample,
    PersistentReservoirChains,
    PersistentTopKSample,
    PersistentWeightedWR,
)
from repro.sketches import CountMinSketch, KllSketch

N = 600
RNG = np.random.default_rng(1234)
KEYS = RNG.integers(0, 120, size=N).tolist()
VALUES = RNG.normal(size=N).tolist()
TIMESTAMPS = np.sort(RNG.random(N) * 100.0).tolist()
WEIGHTS = (RNG.random(N) + 0.1).tolist()
QUERY_TIMES = [1.0, 13.0, 42.0, 77.0, 99.99]
# Deliberately awkward batch sizes: straddle checkpoint/block boundaries,
# include size-1 and empty slices.
CHUNKS = [1, 63, 64, 65, 200, 0, 7, 300]


def feed_scalar(obj, items, times, weights=None):
    for i in range(len(items)):
        if weights is None:
            obj.update(items[i], times[i])
        else:
            obj.update(items[i], times[i], weights[i])


def feed_batch(obj, items, times, weights=None):
    position = 0
    for chunk in CHUNKS:
        stop = min(position + chunk, len(items))
        if weights is None:
            obj.update_batch(items[position:stop], times[position:stop])
        else:
            obj.update_batch(
                items[position:stop], times[position:stop], weights[position:stop]
            )
        position = stop
    if position < len(items):
        obj.update_batch(items[position:], times[position:], *(
            () if weights is None else (weights[position:],)
        ))


class TestCheckpointChain:
    def test_countmin_chain_checkpoints_and_answers_identical(self):
        scalar = CheckpointChain(functools.partial(CountMinSketch, 64, seed=3), eps=0.05)
        batch = CheckpointChain(functools.partial(CountMinSketch, 64, seed=3), eps=0.05)
        feed_scalar(scalar, KEYS, TIMESTAMPS)
        feed_batch(batch, KEYS, TIMESTAMPS)
        assert scalar.num_checkpoints() == batch.num_checkpoints()
        assert scalar.count == batch.count
        assert scalar.total_weight == batch.total_weight
        for t in QUERY_TIMES:
            a, b = scalar.sketch_at(t), batch.sketch_at(t)
            if a is None:
                assert b is None
                continue
            assert np.array_equal(a._table, b._table)

    def test_kll_chain_quantiles_identical(self):
        scalar = CheckpointChain(functools.partial(KllSketch, 60, seed=3), eps=0.05)
        batch = CheckpointChain(functools.partial(KllSketch, 60, seed=3), eps=0.05)
        feed_scalar(scalar, VALUES, TIMESTAMPS)
        feed_batch(batch, VALUES, TIMESTAMPS)
        assert scalar.num_checkpoints() == batch.num_checkpoints()
        for t in QUERY_TIMES:
            a, b = scalar.sketch_at(t), batch.sketch_at(t)
            if a is None:
                assert b is None
                continue
            for phi in (0.1, 0.5, 0.9):
                assert a.quantile(phi) == b.quantile(phi)

    def test_one_giant_batch_crosses_many_checkpoints(self):
        """A single batch spanning dozens of checkpoint triggers must place
        every checkpoint at its scalar position."""
        scalar = CheckpointChain(functools.partial(CountMinSketch, 64, seed=3), eps=0.01)
        batch = CheckpointChain(functools.partial(CountMinSketch, 64, seed=3), eps=0.01)
        feed_scalar(scalar, KEYS, TIMESTAMPS)
        batch.update_batch(KEYS, TIMESTAMPS)
        assert scalar.num_checkpoints() == batch.num_checkpoints() > 20
        for (ta, _), (tb, _) in zip(scalar.checkpoints(), batch.checkpoints()):
            assert ta == tb

    def test_weighted_chain_respects_error_budget_at_boundaries(self):
        """Checkpoint spacing (Lemma 4.1's (1+eps) growth) is preserved by
        batch ingest: consecutive checkpoint weights grow by >= eps."""
        chain = CheckpointChain(functools.partial(CountMinSketch, 64, seed=3), eps=0.1)
        weights = [float(w) for w in RNG.integers(1, 5, size=N)]
        feed_batch(chain, KEYS, TIMESTAMPS, weights)
        checkpoint_weights = []
        running = 0.0
        position = 0
        # Recompute the cumulative weight at each checkpoint time.
        cumulative = np.cumsum(weights)
        for t, _ in chain.checkpoints():
            idx = np.searchsorted(np.asarray(TIMESTAMPS), t, side="right") - 1
            checkpoint_weights.append(float(cumulative[idx]))
        for earlier, later in zip(checkpoint_weights, checkpoint_weights[1:]):
            assert later - earlier >= 0.0  # monotone
        assert chain.total_weight == pytest.approx(float(cumulative[-1]))


class TestMergeTree:
    @pytest.mark.parametrize("mode", ["attp", "bitp"])
    def test_tree_structure_and_answers_identical(self, mode):
        factory = functools.partial(CountMinSketch, 64, seed=5)
        scalar = MergeTreePersistence(factory, eps=0.1, mode=mode, block_size=64)
        batch = MergeTreePersistence(factory, eps=0.1, mode=mode, block_size=64)
        feed_scalar(scalar, KEYS, TIMESTAMPS)
        feed_batch(batch, KEYS, TIMESTAMPS)
        assert scalar.count == batch.count
        assert scalar.num_nodes() == batch.num_nodes()
        assert scalar.peak_memory_bytes == batch.peak_memory_bytes
        for t in QUERY_TIMES:
            if mode == "attp":
                a, b = scalar.sketch_at(t), batch.sketch_at(t)
            else:
                a, b = scalar.sketch_since(t), batch.sketch_since(t)
            assert np.array_equal(a._table, b._table)

    def test_batch_smaller_and_larger_than_block(self):
        """Seals happen at exact scalar positions whether a batch is a
        fraction of a block or spans several blocks."""
        factory = functools.partial(CountMinSketch, 32, seed=5)
        scalar = MergeTreePersistence(factory, eps=0.1, block_size=16)
        batch = MergeTreePersistence(factory, eps=0.1, block_size=16)
        feed_scalar(scalar, KEYS[:200], TIMESTAMPS[:200])
        batch.update_batch(KEYS[:5], TIMESTAMPS[:5])  # partial block
        batch.update_batch(KEYS[5:150], TIMESTAMPS[5:150])  # many blocks
        batch.update_batch(KEYS[150:200], TIMESTAMPS[150:200])
        assert scalar.num_nodes() == batch.num_nodes()
        assert np.array_equal(
            scalar.sketch_at(TIMESTAMPS[199])._table,
            batch.sketch_at(TIMESTAMPS[199])._table,
        )


class TestPersistentSamplers:
    """Seeded-RNG determinism: batch must consume PCG64 exactly as scalar."""

    def test_topk_sample(self):
        scalar = PersistentTopKSample(32, seed=7)
        batch = PersistentTopKSample(32, seed=7)
        feed_scalar(scalar, KEYS, TIMESTAMPS)
        feed_batch(batch, KEYS, TIMESTAMPS)
        assert [
            (r.value, r.birth, r.death, r.priority) for r in scalar.records()
        ] == [(r.value, r.birth, r.death, r.priority) for r in batch.records()]
        for t in QUERY_TIMES:
            assert scalar.sample_at(t) == batch.sample_at(t)
        assert scalar._rng.bit_generator.state == batch._rng.bit_generator.state

    def test_reservoir_chains(self):
        scalar = PersistentReservoirChains(8, seed=7)
        batch = PersistentReservoirChains(8, seed=7)
        feed_scalar(scalar, KEYS, TIMESTAMPS)
        feed_batch(batch, KEYS, TIMESTAMPS)
        for t in QUERY_TIMES:
            assert scalar.sample_at(t) == batch.sample_at(t)
        assert scalar.total_records() == batch.total_records()
        assert scalar._rng.bit_generator.state == batch._rng.bit_generator.state

    def test_priority_sample_weighted(self):
        scalar = PersistentPrioritySample(32, seed=7)
        batch = PersistentPrioritySample(32, seed=7)
        feed_scalar(scalar, KEYS, TIMESTAMPS, WEIGHTS)
        feed_batch(batch, KEYS, TIMESTAMPS, WEIGHTS)
        for t in QUERY_TIMES:
            assert scalar.sample_at(t) == batch.sample_at(t)
        assert scalar.total_weight == batch.total_weight
        assert scalar._rng.bit_generator.state == batch._rng.bit_generator.state

    def test_weighted_wr_chains(self):
        scalar = PersistentWeightedWR(8, seed=7)
        batch = PersistentWeightedWR(8, seed=7)
        feed_scalar(scalar, KEYS, TIMESTAMPS, WEIGHTS)
        feed_batch(batch, KEYS, TIMESTAMPS, WEIGHTS)
        for t in QUERY_TIMES:
            assert scalar.sample_at(t) == batch.sample_at(t)
        assert scalar._rng.bit_generator.state == batch._rng.bit_generator.state

    def test_bitp_priority_sample(self):
        scalar = BitpPrioritySample(32, seed=7)
        batch = BitpPrioritySample(32, seed=7)
        feed_scalar(scalar, KEYS, TIMESTAMPS, WEIGHTS)
        feed_batch(batch, KEYS, TIMESTAMPS, WEIGHTS)
        for t in QUERY_TIMES:
            assert scalar.raw_sample_since(t) == batch.raw_sample_since(t)
        assert scalar.kept_count() == batch.kept_count()
        assert scalar.peak_memory_bytes == batch.peak_memory_bytes
        assert scalar._rng.bit_generator.state == batch._rng.bit_generator.state


class TestPrefixApplyOnViolation:
    """A mid-batch violation applies the valid prefix, then raises the
    scalar exception — matching the scalar loop item for item."""

    def test_monotone_violation_applies_prefix(self):
        scalar = PersistentTopKSample(8, seed=1)
        batch = PersistentTopKSample(8, seed=1)
        values = [10, 20, 30, 40]
        times = [0.0, 1.0, 0.5, 2.0]
        with pytest.raises(MonotoneViolation):
            feed_scalar(scalar, values, times)
        with pytest.raises(MonotoneViolation):
            batch.update_batch(values, times)
        assert scalar.count == batch.count == 2
        assert scalar.sample_at(1.0) == batch.sample_at(1.0)
        assert scalar._rng.bit_generator.state == batch._rng.bit_generator.state

    def test_bad_weight_applies_prefix_and_matches_scalar_error(self):
        scalar = PersistentPrioritySample(8, seed=1)
        batch = PersistentPrioritySample(8, seed=1)
        values = [10, 20, 30]
        times = [0.0, 1.0, 2.0]
        weights = [1.0, -2.0, 1.0]
        scalar_error = batch_error = None
        try:
            feed_scalar(scalar, values, times, weights)
        except ValueError as error:
            scalar_error = str(error)
        try:
            batch.update_batch(values, times, weights)
        except ValueError as error:
            batch_error = str(error)
        assert scalar_error is not None and scalar_error == batch_error
        assert scalar.count == batch.count == 1
        assert scalar._rng.bit_generator.state == batch._rng.bit_generator.state

    def test_violating_batch_can_be_resumed(self):
        """After a rejected batch, a corrected batch continues cleanly and
        matches the scalar feed of the same accepted stream."""
        batch = PersistentTopKSample(8, seed=1)
        with pytest.raises(MonotoneViolation):
            batch.update_batch([1, 2, 3], [0.0, 5.0, 4.0])
        batch.update_batch([4, 5], [6.0, 7.0])
        scalar = PersistentTopKSample(8, seed=1)
        for value, timestamp in [(1, 0.0), (2, 5.0), (4, 6.0), (5, 7.0)]:
            scalar.update(value, timestamp)
        assert scalar.sample_at(7.0) == batch.sample_at(7.0)
        assert scalar._rng.bit_generator.state == batch._rng.bit_generator.state

    def test_chain_rejects_mid_batch_then_matches_scalar(self):
        scalar = CheckpointChain(functools.partial(CountMinSketch, 32, seed=1), eps=0.1)
        batch = CheckpointChain(functools.partial(CountMinSketch, 32, seed=1), eps=0.1)
        values = [1, 2, 3, 4]
        times = [0.0, 1.0, 0.25, 2.0]
        with pytest.raises(MonotoneViolation):
            feed_scalar(scalar, values, times)
        with pytest.raises(MonotoneViolation):
            batch.update_batch(values, times)
        assert scalar.count == batch.count == 2
        assert scalar.num_checkpoints() == batch.num_checkpoints()


class TestProblemLayerSpotChecks:
    """End-to-end through the Section 3/6 problem classes."""

    def test_attp_sample_heavy_hitter(self):
        from repro.persistent import AttpSampleHeavyHitter

        scalar = AttpSampleHeavyHitter(64, seed=4)
        batch = AttpSampleHeavyHitter(64, seed=4)
        feed_scalar(scalar, KEYS, TIMESTAMPS)
        feed_batch(batch, KEYS, TIMESTAMPS)
        assert scalar.count == batch.count
        for t in QUERY_TIMES:
            assert scalar.heavy_hitters_at(t, 0.05) == batch.heavy_hitters_at(t, 0.05)
            assert scalar.estimate_at(7, t) == batch.estimate_at(7, t)

    def test_attp_sample_heavy_hitter_violation_observes_prefix(self):
        from repro.persistent import AttpSampleHeavyHitter

        scalar = AttpSampleHeavyHitter(16, seed=1)
        batch = AttpSampleHeavyHitter(16, seed=1)
        with pytest.raises(MonotoneViolation):
            feed_scalar(scalar, [1, 2, 3, 4], [0.0, 1.0, 0.5, 2.0])
        with pytest.raises(MonotoneViolation):
            batch.update_batch([1, 2, 3, 4], [0.0, 1.0, 0.5, 2.0])
        assert scalar.count == batch.count == 2
        assert scalar.estimate_at(1, 1.0) == batch.estimate_at(1, 1.0)

    def test_attp_kmv_distinct(self):
        from repro.persistent.distinct import AttpKmvDistinct

        scalar = AttpKmvDistinct(32, seed=9)
        batch = AttpKmvDistinct(32, seed=9)
        feed_scalar(scalar, KEYS, TIMESTAMPS)
        feed_batch(batch, KEYS, TIMESTAMPS)
        assert scalar.num_records() == batch.num_records()
        for t in QUERY_TIMES:
            assert scalar.distinct_at(t) == batch.distinct_at(t)

    def test_attp_norm_sampling_with_zero_rows(self):
        from repro.persistent.matrix import AttpNormSampling

        rows = RNG.normal(size=(N, 5))
        rows[::40] = 0.0  # zero rows are skipped, exactly as in scalar
        scalar = AttpNormSampling(24, 5, seed=6)
        batch = AttpNormSampling(24, 5, seed=6)
        feed_scalar(scalar, list(rows), TIMESTAMPS)
        feed_batch(batch, rows, TIMESTAMPS)
        assert scalar.count == batch.count
        for t in QUERY_TIMES:
            assert np.array_equal(scalar.covariance_at(t), batch.covariance_at(t))

    def test_attp_norm_sampling_nonfinite_row_prefix(self):
        from repro.persistent.matrix import AttpNormSampling

        rows = np.ones((4, 2))
        rows[2, 0] = np.nan
        scalar = AttpNormSampling(8, 2, seed=1)
        batch = AttpNormSampling(8, 2, seed=1)
        scalar_error = batch_error = None
        try:
            feed_scalar(scalar, list(rows), [0.0, 1.0, 2.0, 3.0])
        except ValueError as error:
            scalar_error = str(error)
        try:
            batch.update_batch(rows, [0.0, 1.0, 2.0, 3.0])
        except ValueError as error:
            batch_error = str(error)
        assert scalar_error is not None and scalar_error == batch_error
        assert scalar.count == batch.count == 2

    def test_attp_quantiles_family(self):
        from repro.persistent.quantiles import AttpChainKll, AttpSampleQuantiles

        for cls in (AttpSampleQuantiles, AttpChainKll):
            scalar = cls(k=60, seed=3)
            batch = cls(k=60, seed=3)
            feed_scalar(scalar, VALUES, TIMESTAMPS)
            feed_batch(batch, VALUES, TIMESTAMPS)
            for t in QUERY_TIMES:
                for phi in (0.25, 0.5, 0.75):
                    try:
                        expected = scalar.quantile_at(t, phi)
                    except ValueError:
                        with pytest.raises(ValueError):
                            batch.quantile_at(t, phi)
                        continue
                    assert expected == batch.quantile_at(t, phi)

    def test_durable_range_counting_history(self):
        from repro.persistent.range_counting import AttpRangeCounting

        points = RNG.normal(size=(N, 2))
        scalar = AttpRangeCounting(32, 2, seed=8)
        batch = AttpRangeCounting(32, 2, seed=8)
        feed_scalar(scalar, list(points), TIMESTAMPS)
        feed_batch(batch, points, TIMESTAMPS)
        for t in QUERY_TIMES:
            assert scalar.range_count_at(t, [-1, -1], [1, 1]) == batch.range_count_at(
                t, [-1, -1], [1, 1]
            )
