"""Tests for the elementwise Count sketch chain (CCS) and FATP differencing."""

import numpy as np
import pytest

from repro.core.base import MonotoneViolation
from repro.core.elementwise import ChainCountMin, ChainCountSketch


class TestChainCountSketch:
    def test_point_estimates_track_prefix(self):
        ccs = ChainCountSketch(width=1024, depth=5, eps_ckpt=0.005, seed=0)
        n = 10_000
        rng = np.random.default_rng(0)
        keys = (rng.zipf(1.4, size=n) % 50).astype(int)
        for index, key in enumerate(keys):
            ccs.update(int(key), float(index))
        t_index = 4_999
        counts = np.bincount(keys[: t_index + 1], minlength=50)
        heavy = np.argsort(counts)[-5:]
        for key in heavy:
            err = abs(ccs.estimate_at(int(key), float(t_index)) - counts[key])
            assert err <= 0.03 * (t_index + 1) + 2

    def test_turnstile_deletions(self):
        ccs = ChainCountSketch(width=512, depth=5, eps_ckpt=0.01, seed=1)
        t = 0.0
        for _ in range(500):
            ccs.update(7, t, weight=2)
            t += 1.0
        for _ in range(400):
            ccs.update(7, t, weight=-2)
            t += 1.0
        # Now key 7 holds 2*500 - 2*400 = 200.
        assert abs(ccs.estimate_now(7) - 200) <= 50
        # Historically (t=499), it held 1000.
        assert abs(ccs.estimate_at(7, 499.0) - 1_000) <= 100

    def test_estimate_now_matches_live(self):
        ccs = ChainCountSketch(width=256, depth=5, eps_ckpt=0.01, seed=2)
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 40, size=2_000)
        for index, key in enumerate(keys):
            ccs.update(int(key), float(index))
        for key in range(40):
            assert ccs.estimate_now(key) == ccs._cs.query(key)

    def test_estimate_between_differences(self):
        ccs = ChainCountSketch(width=1024, depth=5, eps_ckpt=0.002, seed=3)
        for index in range(9_000):
            ccs.update(index % 3, float(index))
        middle = ccs.estimate_between(0, 2_999.0, 5_999.0)
        assert abs(middle - 1_000) <= 300

    def test_rejects_zero_weight_and_decreasing_time(self):
        ccs = ChainCountSketch(width=64, eps_ckpt=0.1)
        with pytest.raises(ValueError):
            ccs.update(1, 0.0, weight=0)
        ccs.update(1, 5.0)
        with pytest.raises(MonotoneViolation):
            ccs.update(1, 4.0)
        with pytest.raises(ValueError):
            ccs.estimate_between(1, 5.0, 4.0)

    def test_checkpoints_bounded(self):
        ccs = ChainCountSketch(width=128, depth=3, eps_ckpt=0.01, seed=4)
        n = 20_000
        for index in range(n):
            ccs.update(index % 4, float(index))
        bound = 8 * 3 * (1.0 / 0.01) * np.log(n)
        assert ccs.num_checkpoints() <= bound


class TestChainCountMinBetween:
    def test_fatp_interval_estimates(self):
        ccm = ChainCountMin(width=1024, depth=3, eps_ckpt=0.002, seed=0)
        for index in range(9_000):
            ccm.update(index % 3, float(index))
        middle = ccm.estimate_between(0, 2_999.0, 5_999.0)
        assert abs(middle - 1_000) <= 300

    def test_empty_interval_rejected(self):
        ccm = ChainCountMin(width=64, eps_ckpt=0.1)
        ccm.update(1, 1.0)
        with pytest.raises(ValueError):
            ccm.estimate_between(1, 2.0, 1.0)

    def test_interval_estimate_nonnegative(self):
        ccm = ChainCountMin(width=256, depth=3, eps_ckpt=0.01, seed=1)
        for index in range(2_000):
            ccm.update(index % 7, float(index))
        assert ccm.estimate_between(3, 100.0, 1_500.0) >= 0.0
