"""Tests for BITP priority sampling (Section 3.2)."""

import numpy as np
import pytest

from repro.core.base import MonotoneViolation
from repro.core.bitp_sampling import BitpPrioritySample


class TestBitpPrioritySample:
    def test_sample_is_suffix_topk(self):
        # With deterministic feeding we cannot know the priorities, but the
        # invariant "sample contains only window items, at most k, distinct"
        # must hold for every query.
        sampler = BitpPrioritySample(k=20, seed=0)
        for index in range(2_000):
            sampler.update(index, float(index))
        for since in (0.0, 500.0, 1_500.0, 1_990.0):
            sample = sampler.raw_sample_since(since)
            values = [value for value, _ in sample]
            assert all(value >= since for value in values)
            assert len(values) == min(20, 2_000 - int(since))
            assert len(set(values)) == len(values)

    def test_survivor_rule_never_loses_window_topk(self):
        """Every query's top-k must match a brute-force run with the same
        priorities; we capture priorities by mirroring the RNG sequence."""
        seed, k, n = 7, 5, 400
        sampler = BitpPrioritySample(k=k, seed=seed, slack=1)
        from repro.core.bitp_sampling import _RNG_SALT_BITP

        rng = np.random.default_rng([seed, _RNG_SALT_BITP])
        priorities = []
        for index in range(n):
            u = float(rng.random())
            while u == 0.0:
                u = float(rng.random())
            priorities.append(1.0 / u)  # weight 1
            sampler.update(index, float(index), weight=1.0)
        for since in (0, 100, 250, 390):
            window = [(priorities[i], i) for i in range(since, n)]
            window.sort(key=lambda pair: -pair[0])
            expected = sorted(i for _, i in window[:k])
            got = sorted(v for v, _ in sampler.raw_sample_since(float(since)))
            assert got == expected

    def test_space_logarithmic(self):
        n, k = 20_000, 50
        sampler = BitpPrioritySample(k=k, seed=1)
        for index in range(n):
            sampler.update(index, float(index))
        sampler._compact()
        # O(k log(n/k)) survivors expected; allow constant-factor slack.
        bound = 6 * k * (1 + np.log(n / k))
        assert sampler.kept_count() < bound

    def test_peak_memory_tracked(self):
        sampler = BitpPrioritySample(k=10, seed=2)
        for index in range(5_000):
            sampler.update(index, float(index))
        assert sampler.peak_memory_bytes >= sampler.memory_bytes()
        assert sampler.compaction_scans > 0

    def test_suffix_count_estimate(self):
        sampler = BitpPrioritySample(k=50, seed=3)
        n = 5_000
        for index in range(n):
            sampler.update(index, float(index))
        for since in (1_000, 3_000, 4_900):
            estimate = sampler.suffix_count_since(float(since))
            true = n - since
            assert abs(estimate - true) <= max(5, 0.2 * true)

    def test_subset_sum_estimate_reasonable(self):
        estimates = []
        true = 500.0  # items 500..999, weight 1 each, subset = first half
        for seed in range(100):
            sampler = BitpPrioritySample(k=80, seed=seed)
            for index in range(1_000):
                sampler.update(index, float(index))
            estimates.append(
                sampler.estimate_subset_sum_since(500.0, lambda value: value < 750)
            )
        # subset = items 500..749 -> true weight 250
        assert abs(np.mean(estimates) - 250.0) < 35.0

    def test_most_recent_k_always_present(self):
        sampler = BitpPrioritySample(k=10, seed=4)
        for index in range(1_000):
            sampler.update(index, float(index))
        sample = sampler.raw_sample_since(995.0)
        assert sorted(v for v, _ in sample) == list(range(995, 1_000))

    def test_rejects_nonpositive_weight(self):
        sampler = BitpPrioritySample(k=2, seed=0)
        with pytest.raises(ValueError):
            sampler.update(1, 1.0, weight=0.0)

    def test_rejects_decreasing_timestamps(self):
        sampler = BitpPrioritySample(k=2, seed=0)
        sampler.update(1, 5.0)
        with pytest.raises(MonotoneViolation):
            sampler.update(2, 4.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BitpPrioritySample(k=0)
        with pytest.raises(ValueError):
            BitpPrioritySample(k=1, slack=-1)
        with pytest.raises(ValueError):
            BitpPrioritySample(k=1, batch_factor=0.0)

    def test_weighted_priorities_favor_heavy(self):
        hits = 0
        for seed in range(100):
            sampler = BitpPrioritySample(k=1, seed=seed)
            sampler.update("light", 0.0, weight=1.0)
            sampler.update("heavy", 1.0, weight=50.0)
            (value, _), = sampler.raw_sample_since(0.0)
            if value == "heavy":
                hits += 1
        assert hits > 80  # P(heavy wins) = 50/51
