"""Tests for ATTP persistent uniform samples (Section 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import MonotoneViolation
from repro.core.persistent_sampling import (
    PersistentReservoirChains,
    PersistentTopKSample,
)


def brute_force_topk(offers, k, t):
    """Top-k values by priority among offers with timestamp <= t."""
    prefix = [(priority, value) for value, timestamp, priority in offers if timestamp <= t]
    prefix.sort(key=lambda pair: -pair[0])
    return sorted(value for _, value in prefix[:k])


class TestPersistentTopKSample:
    def test_sample_at_equals_bruteforce_topk(self):
        rng = np.random.default_rng(0)
        k = 5
        sampler = PersistentTopKSample(k=k, seed=0)
        offers = []
        for index in range(200):
            priority = float(rng.random())
            offers.append((index, float(index), priority))
            sampler._offer(index, float(index), priority)
        for t in (0.0, 3.0, 10.0, 57.0, 123.0, 199.0):
            assert sorted(sampler.sample_at(t)) == brute_force_topk(offers, k, t)

    def test_sample_now_matches_sample_at_end(self):
        sampler = PersistentTopKSample(k=10, seed=1)
        for index in range(500):
            sampler.update(index, float(index))
        assert sorted(sampler.sample_now()) == sorted(sampler.sample_at(499.0))

    def test_sample_size_is_min_k_prefix(self):
        sampler = PersistentTopKSample(k=10, seed=2)
        for index in range(100):
            sampler.update(index, float(index))
        assert len(sampler.sample_at(4.0)) == 5
        assert len(sampler.sample_at(50.0)) == 10

    def test_expected_records_harmonic(self):
        # Lemma 3.1: E[records] ~ k * (1 + ln(n/k)) for the top-k process.
        n, k = 5_000, 20
        totals = []
        for seed in range(10):
            sampler = PersistentTopKSample(k=k, seed=seed)
            for index in range(n):
                sampler.update(index, float(index))
            totals.append(len(sampler))
        expected = k * (1 + np.log(n / k))
        assert 0.5 * expected < np.mean(totals) < 2.0 * expected

    def test_historical_sample_uniform(self):
        # The sample at t should be uniform over the prefix: check marginals.
        n, k, t_index = 40, 4, 19
        hits = np.zeros(n)
        for seed in range(600):
            sampler = PersistentTopKSample(k=k, seed=seed)
            for index in range(n):
                sampler.update(index, float(index))
            for value in sampler.sample_at(float(t_index)):
                hits[value] += 1
        prefix_hits = hits[: t_index + 1]
        assert hits[t_index + 1 :].sum() == 0
        expected = 600 * k / (t_index + 1)
        assert np.all(np.abs(prefix_hits - expected) < 5 * np.sqrt(expected))

    def test_death_after_birth(self):
        sampler = PersistentTopKSample(k=3, seed=3)
        for index in range(200):
            sampler.update(index, float(index))
        for record in sampler.records():
            if record.death is not None:
                assert record.death > record.birth

    def test_alive_records_exactly_k(self):
        sampler = PersistentTopKSample(k=7, seed=4)
        for index in range(300):
            sampler.update(index, float(index))
        alive = [record for record in sampler.records() if record.death is None]
        assert len(alive) == 7

    def test_rejects_decreasing_timestamps(self):
        sampler = PersistentTopKSample(k=2, seed=0)
        sampler.update(1, 5.0)
        with pytest.raises(MonotoneViolation):
            sampler.update(2, 4.0)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            PersistentTopKSample(k=0)

    def test_memory_model(self):
        sampler = PersistentTopKSample(k=2, seed=0)
        for index in range(50):
            sampler.update(index, float(index))
        # Records at 28 bytes each, plus the live top-k heap at 12 bytes
        # per (priority, index) entry.
        expected = len(sampler.records()) * 28 + min(2, 50) * 12
        assert sampler.memory_bytes() == expected
        breakdown = sampler.memory_breakdown()
        assert sum(breakdown.values()) == sampler.memory_bytes()
        assert breakdown["live_heap"] == 2 * 12

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=60))
    @settings(max_examples=30, deadline=None)
    def test_property_sample_at_subset_of_prefix(self, k, n):
        sampler = PersistentTopKSample(k=k, seed=99)
        for index in range(n):
            sampler.update(index, float(index))
        for t in range(0, n, max(1, n // 5)):
            sample = sampler.sample_at(float(t))
            assert len(sample) == min(k, t + 1)
            assert all(value <= t for value in sample)
            assert len(set(sample)) == len(sample)  # without replacement


class TestPersistentReservoirChains:
    def test_sample_at_size(self):
        chains = PersistentReservoirChains(k=8, seed=0)
        for index in range(100):
            chains.update(index, float(index))
        assert len(chains.sample_at(50.0)) == 8
        assert len(chains.sample_at(0.0)) == 8  # all chains hold item 0

    def test_sample_values_in_prefix(self):
        chains = PersistentReservoirChains(k=5, seed=1)
        for index in range(200):
            chains.update(index, float(index))
        for t in (10.0, 99.0, 150.0):
            assert all(value <= t for value in chains.sample_at(t))

    def test_lemma_3_1_expected_records(self):
        # E[total records] = k * H_n.
        n, k = 2_000, 10
        totals = []
        for seed in range(10):
            chains = PersistentReservoirChains(k=k, seed=seed)
            for index in range(n):
                chains.update(index, float(index))
            totals.append(chains.total_records())
        harmonic = float(np.sum(1.0 / np.arange(1, n + 1)))
        expected = k * harmonic
        assert abs(np.mean(totals) - expected) < 0.25 * expected

    def test_marginal_uniformity(self):
        n, t_index = 30, 29
        hits = np.zeros(n)
        for seed in range(400):
            chains = PersistentReservoirChains(k=3, seed=seed)
            for index in range(n):
                chains.update(index, float(index))
            for value in chains.sample_at(float(t_index)):
                hits[value] += 1
        expected = 400 * 3 / n
        assert np.all(np.abs(hits - expected) < 5 * np.sqrt(expected))

    def test_empty_before_first(self):
        chains = PersistentReservoirChains(k=3, seed=0)
        chains.update(1, 10.0)
        assert chains.sample_at(5.0) == []

    def test_rejects_decreasing_timestamps(self):
        chains = PersistentReservoirChains(k=2, seed=0)
        chains.update(1, 5.0)
        with pytest.raises(MonotoneViolation):
            chains.update(2, 1.0)

    def test_memory_model(self):
        chains = PersistentReservoirChains(k=2, seed=0)
        for index in range(20):
            chains.update(index, float(index))
        assert chains.memory_bytes() == chains.total_records() * 12
