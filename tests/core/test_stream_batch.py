"""StreamBatch: the columnar zero-copy unit of the ingest spine.

Covers the contract documented in docs/INGEST.md — length agreement,
``weights=None`` preservation, and (the regression the spine depends on)
that slicing and single-part concat never copy: ``np.shares_memory``
must hold between a sub-batch and its parent arrays.
"""

import numpy as np
import pytest

from repro.core import StreamBatch


def make_batch(n=100, weighted=True):
    rng = np.random.default_rng(0)
    return StreamBatch.from_arrays(
        rng.integers(0, 50, size=n),
        np.arange(n, dtype=float),
        rng.random(n) if weighted else None,
    )


class TestConstruction:
    def test_from_arrays_coerces_lists(self):
        batch = StreamBatch.from_arrays([1, 2, 3], [0.0, 1.0, 2.0])
        assert isinstance(batch.values, np.ndarray)
        assert isinstance(batch.timestamps, np.ndarray)
        assert batch.weights is None
        assert len(batch) == 3

    def test_from_arrays_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            StreamBatch.from_arrays([1, 2, 3], [0.0, 1.0])
        with pytest.raises(ValueError):
            StreamBatch.from_arrays([1, 2], [0.0, 1.0], [1.0])

    def test_from_arrays_is_zero_copy_for_arrays(self):
        values = np.arange(10)
        timestamps = np.arange(10, dtype=float)
        weights = np.ones(10)
        batch = StreamBatch.from_arrays(values, timestamps, weights)
        assert batch.values is values
        assert batch.timestamps is timestamps
        assert batch.weights is weights

    def test_repr_names_weighting(self):
        assert "unit-weight" in repr(make_batch(weighted=False))
        assert "weighted" in repr(make_batch(weighted=True))


class TestTake:
    def test_contiguous_slice_shares_memory(self):
        batch = make_batch()
        part = batch.take(slice(10, 60))
        assert len(part) == 50
        assert np.shares_memory(part.values, batch.values)
        assert np.shares_memory(part.timestamps, batch.timestamps)
        assert np.shares_memory(part.weights, batch.weights)

    def test_strided_slice_shares_memory(self):
        batch = make_batch()
        part = batch.take(slice(3, None, 4))
        assert np.shares_memory(part.values, batch.values)
        assert np.shares_memory(part.timestamps, batch.timestamps)
        assert np.shares_memory(part.weights, batch.weights)
        np.testing.assert_array_equal(part.values, batch.values[3::4])

    def test_take_preserves_weights_none(self):
        part = make_batch(weighted=False).take(slice(0, 5))
        assert part.weights is None

    def test_weights_or_ones(self):
        assert np.all(make_batch(weighted=False).weights_or_ones() == 1.0)
        batch = make_batch(weighted=True)
        assert batch.weights_or_ones() is batch.weights


class TestConcat:
    def test_empty_returns_none(self):
        assert StreamBatch.concat([]) is None

    def test_single_part_returned_as_is(self):
        batch = make_batch()
        assert StreamBatch.concat([batch]) is batch

    def test_multi_part_preserves_order(self):
        batch = make_batch()
        fused = StreamBatch.concat([batch.take(slice(0, 40)), batch.take(slice(40, None))])
        np.testing.assert_array_equal(fused.values, batch.values)
        np.testing.assert_array_equal(fused.timestamps, batch.timestamps)
        np.testing.assert_array_equal(fused.weights, batch.weights)

    def test_all_unit_weight_parts_stay_none(self):
        a = make_batch(weighted=False)
        fused = StreamBatch.concat([a.take(slice(0, 10)), a.take(slice(10, 20))])
        assert fused.weights is None

    def test_mixed_weight_parts_fill_ones(self):
        weighted = make_batch(n=10, weighted=True)
        unit = make_batch(n=10, weighted=False)
        fused = StreamBatch.concat([unit, weighted])
        assert fused.weights is not None
        np.testing.assert_array_equal(fused.weights[:10], np.ones(10))
        np.testing.assert_array_equal(fused.weights[10:], weighted.weights)
