"""Tests for the interval index (Section 3 query acceleration)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval_index import IntervalIndex
from repro.core.persistent_sampling import PersistentTopKSample


def brute_stab(intervals, t):
    out = []
    for start, end, payload in intervals:
        if end is None:
            end = float("inf")
        if start <= t < end:
            out.append(payload)
    return sorted(out)


class TestIntervalIndex:
    def test_simple_stab(self):
        index = IntervalIndex([(0.0, 10.0, "a"), (5.0, None, "b"), (12.0, 20.0, "c")])
        assert sorted(index.stab(0.0)) == ["a"]
        assert sorted(index.stab(7.0)) == ["a", "b"]
        assert sorted(index.stab(11.0)) == ["b"]
        assert sorted(index.stab(15.0)) == ["b", "c"]
        assert sorted(index.stab(100.0)) == ["b"]
        assert index.stab(-1.0) == []

    def test_half_open_boundaries(self):
        index = IntervalIndex([(0.0, 5.0, "a")])
        assert index.stab(0.0) == ["a"]
        assert index.stab(4.999) == ["a"]
        assert index.stab(5.0) == []

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            IntervalIndex([(5.0, 5.0, "x")])

    def test_empty_index(self):
        index = IntervalIndex([])
        assert index.stab(3.0) == []
        assert len(index) == 0

    def test_memory_model(self):
        index = IntervalIndex([(0.0, 1.0, "a"), (0.5, 2.0, "b")])
        assert index.memory_bytes() == 2 * 40

    @given(
        intervals=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=110, allow_nan=False),
            ),
            min_size=1,
            max_size=80,
        ),
        probes=st.lists(
            st.floats(min_value=-5, max_value=115, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_bruteforce(self, intervals, probes):
        cleaned = [
            (min(a, b), max(a, b), index)
            for index, (a, b) in enumerate(intervals)
            if a != b
        ]
        index = IntervalIndex(cleaned)
        for probe in probes:
            assert sorted(index.stab(probe)) == brute_stab(cleaned, probe)


class TestIndexedSampler:
    def test_indexed_sample_matches_scan(self):
        sampler = PersistentTopKSample(k=8, seed=0)
        for i in range(2_000):
            sampler.update(i, float(i))
        probes = [0.0, 13.0, 499.0, 1_234.0, 1_999.0]
        scans = [sorted(sampler.sample_at(t)) for t in probes]
        sampler.build_interval_index()
        indexed = [sorted(sampler.sample_at(t)) for t in probes]
        assert scans == indexed

    def test_index_invalidated_by_updates(self):
        sampler = PersistentTopKSample(k=4, seed=1)
        for i in range(100):
            sampler.update(i, float(i))
        sampler.build_interval_index()
        sampler.update(100, 100.0)
        # Falls back to the scan (correct answer including the new item).
        assert len(sampler.sample_at(100.0)) == 4
        assert all(v <= 100 for v in sampler.sample_at(100.0))

    def test_indexed_query_faster_on_large_history(self):
        import time

        sampler = PersistentTopKSample(k=10, seed=2)
        for i in range(100_000):
            sampler.update(i, float(i))
        probes = [float(p) for p in range(1_000, 100_000, 1_000)]
        start = time.perf_counter()
        for t in probes:
            sampler.sample_at(t)
        scan_time = time.perf_counter() - start
        sampler.build_interval_index()
        start = time.perf_counter()
        for t in probes:
            sampler.sample_at(t)
        indexed_time = time.perf_counter() - start
        assert indexed_time < scan_time


class TestIndexedWeightedSampler:
    def test_indexed_weighted_sample_matches_scan(self):
        from repro.core.persistent_priority import PersistentPrioritySample

        sampler = PersistentPrioritySample(k=8, seed=0)
        for i in range(2_000):
            sampler.update(i, float(i), weight=1.0 + i % 5)
        probes = [0.0, 77.0, 640.0, 1_999.0]
        scans = [sorted(sampler.sample_at(t)) for t in probes]
        sampler.build_interval_index()
        indexed = [sorted(sampler.sample_at(t)) for t in probes]
        assert scans == indexed

    def test_weighted_index_invalidated_by_updates(self):
        from repro.core.persistent_priority import PersistentPrioritySample

        sampler = PersistentPrioritySample(k=4, seed=1)
        for i in range(200):
            sampler.update(i, float(i), weight=1.0)
        sampler.build_interval_index()
        sampler.update(200, 200.0, weight=1.0)
        sample = sampler.sample_at(200.0)
        assert len(sample) == 4
