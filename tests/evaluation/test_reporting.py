"""Tests for the reporting helpers."""

from repro.evaluation import memory_column, print_series, print_table


class TestPrintTable:
    def test_prints_title_and_rows(self, capsys):
        print_table("Demo", ["a", "b"], [[1, 2.5], ["x", 0.001]])
        out = capsys.readouterr().out
        assert "== Demo ==" in out
        assert "a" in out and "b" in out
        assert "2.5000" in out
        assert "1.00e-03" in out

    def test_column_alignment(self, capsys):
        print_table("T", ["col"], [["short"], ["a-much-longer-cell"]])
        out = capsys.readouterr().out.splitlines()
        data_lines = [line for line in out if "cell" in line or line.strip() == "short"]
        assert len(data_lines) == 2


class TestPrintSeries:
    def test_series_layout(self, capsys):
        print_series(
            "Fig X", "memory", [1, 2], {"CMG": [0.9, 0.95], "SAMPLING": [0.8, 0.85]}
        )
        out = capsys.readouterr().out
        assert "Fig X" in out
        assert "CMG" in out and "SAMPLING" in out
        assert "0.9500" in out


def test_memory_column():
    rendered = memory_column([1024, 1024 * 1024])
    assert rendered == ["1.0 KiB", "1.0 MiB"]
