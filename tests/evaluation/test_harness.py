"""Tests for the experiment harness."""

import numpy as np
import pytest

from repro.evaluation import (
    SweepRow,
    average_accuracy,
    exact_prefix_covariances,
    exact_prefix_heavy_hitters,
    exact_suffix_heavy_hitters,
    feed_log_stream,
    feed_matrix_stream,
    memory_of,
    time_calls,
)
from repro.workloads import (
    generate_matrix_stream,
    matrix_query_schedule,
    object_id_stream,
    query_schedule,
)


class TestFeeding:
    def test_feed_log_stream(self, small_object_stream):
        from repro.baselines import ExactStreamOracle

        oracle = ExactStreamOracle()
        elapsed = feed_log_stream(oracle, small_object_stream)
        assert oracle.count == len(small_object_stream)
        assert elapsed > 0

    def test_feed_matrix_stream(self, small_matrix_stream):
        from repro.baselines import ExactMatrixOracle

        oracle = ExactMatrixOracle(dim=small_matrix_stream.dim)
        elapsed = feed_matrix_stream(oracle, small_matrix_stream)
        assert oracle.count == len(small_matrix_stream)
        assert elapsed > 0


class TestExactReferences:
    def test_prefix_hh_match_oracle(self, small_object_stream):
        from repro.baselines import ExactStreamOracle

        stream = small_object_stream
        oracle = ExactStreamOracle()
        feed_log_stream(oracle, stream)
        times = query_schedule(stream)
        fast = exact_prefix_heavy_hitters(stream, times, 0.01)
        slow = [oracle.heavy_hitters_at(t, 0.01) for t in times]
        assert fast == slow

    def test_suffix_hh_match_oracle(self, small_object_stream):
        from repro.baselines import ExactStreamOracle

        stream = small_object_stream
        oracle = ExactStreamOracle()
        feed_log_stream(oracle, stream)
        times = query_schedule(stream)[:4]
        fast = exact_suffix_heavy_hitters(stream, times, 0.01)
        slow = [oracle.heavy_hitters_since(t, 0.01) for t in times]
        assert fast == slow

    def test_prefix_covariances_match_direct(self, small_matrix_stream):
        stream = small_matrix_stream
        times = matrix_query_schedule(stream)
        covariances = exact_prefix_covariances(stream, times)
        for t, cov in zip(times, covariances):
            end = int(np.searchsorted(stream.timestamps, t, side="right"))
            prefix = stream.rows[:end]
            assert np.allclose(cov, prefix.T @ prefix)

    def test_prefix_covariances_unsorted_times(self, small_matrix_stream):
        stream = small_matrix_stream
        times = matrix_query_schedule(stream)
        shuffled = [times[2], times[0], times[4]]
        covariances = exact_prefix_covariances(stream, shuffled)
        for t, cov in zip(shuffled, covariances):
            end = int(np.searchsorted(stream.timestamps, t, side="right"))
            prefix = stream.rows[:end]
            assert np.allclose(cov, prefix.T @ prefix)


class TestHelpers:
    def test_time_calls(self):
        results, elapsed = time_calls(lambda x: x * 2, [(1,), (2,), (3,)])
        assert results == [2, 4, 6]
        assert elapsed >= 0

    def test_average_accuracy(self):
        p, r = average_accuracy([[1, 2], [3]], [[1], [3, 4]])
        assert p == pytest.approx((0.5 + 1.0) / 2)
        assert r == pytest.approx((1.0 + 0.5) / 2)

    def test_average_accuracy_validates(self):
        with pytest.raises(ValueError):
            average_accuracy([[1]], [])
        with pytest.raises(ValueError):
            average_accuracy([], [])

    def test_memory_of_prefers_peak(self):
        class Fake:
            peak_memory_bytes = 100

            def memory_bytes(self):
                return 40

        assert memory_of(Fake()) == 100

    def test_memory_of_without_peak(self):
        class Fake:
            def memory_bytes(self):
                return 40

        assert memory_of(Fake()) == 40

    def test_sweep_row_as_dict(self):
        row = SweepRow(
            sketch="CMG",
            param="eps=1e-4",
            memory_bytes=100,
            update_seconds=1.0,
            query_seconds=0.5,
            extras={"precision": 0.9},
        )
        d = row.as_dict()
        assert d["sketch"] == "CMG"
        assert d["precision"] == 0.9
