"""Tests for the memory model constants and formatting."""

import pytest

from repro.evaluation.memory import (
    CHECKPOINT_ENTRY_BYTES,
    COUNTER_CHECKPOINT_BYTES,
    HEAP_ENTRY_BYTES,
    LOG_ROW_BYTES,
    MG_COUNTER_BYTES,
    PLA_BREAKPOINT_BYTES,
    SAMPLE_RECORD_BYTES,
    WEIGHTED_SAMPLE_RECORD_BYTES,
    format_bytes,
    mib,
)


class TestConstants:
    def test_record_layouts(self):
        assert SAMPLE_RECORD_BYTES == 28
        assert WEIGHTED_SAMPLE_RECORD_BYTES == 36
        assert COUNTER_CHECKPOINT_BYTES == 20
        assert MG_COUNTER_BYTES == 12
        assert PLA_BREAKPOINT_BYTES == 16
        assert LOG_ROW_BYTES == 12
        assert HEAP_ENTRY_BYTES == 12
        assert CHECKPOINT_ENTRY_BYTES == 16

    def test_sketches_use_the_constants(self):
        from repro.core.persistent_sampling import PersistentTopKSample
        from repro.sketches import MisraGries

        sampler = PersistentTopKSample(k=2, seed=0)
        for index in range(10):
            sampler.update(index, float(index))
        # Records plus the live top-k heap (k entries once warm).
        assert sampler.memory_bytes() == (
            len(sampler) * SAMPLE_RECORD_BYTES + 2 * HEAP_ENTRY_BYTES
        )

        mg = MisraGries(4)
        for key in range(4):
            mg.update(key)
        assert mg.memory_bytes() == 4 * MG_COUNTER_BYTES


class TestFormatting:
    def test_mib(self):
        assert mib(1024 * 1024) == 1.0

    def test_format_bytes_scales(self):
        assert format_bytes(512) == "512.0 B"
        assert format_bytes(2_048) == "2.0 KiB"
        assert format_bytes(3 * 1024 * 1024) == "3.0 MiB"
        assert "GiB" in format_bytes(5 * 1024**3)

    def test_format_rejects_negative(self):
        with pytest.raises(ValueError):
            format_bytes(-1)
