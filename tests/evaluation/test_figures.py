"""Tests for the installable figure machinery and the experiments CLI."""

import pathlib
import subprocess
import sys

import pytest

from repro.evaluation import figures
from repro.experiments import EXPERIMENTS, run_experiment


class TestFiguresModule:
    def test_streams_cached(self):
        assert figures.client_stream() is figures.client_stream()
        assert figures.object_stream() is figures.object_stream()

    def test_configs_cover_three_sketches(self):
        for dataset in ("client", "object"):
            attp_names = [name for name, _ in figures.attp_hh_configs(dataset)]
            assert any(name.startswith("CMG") for name in attp_names)
            assert any(name.startswith("SAMPLING") for name in attp_names)
            assert any(name.startswith("PCM_HH") for name in attp_names)
            bitp_names = [name for name, _ in figures.bitp_hh_configs(dataset)]
            assert any(name.startswith("TMG") for name in bitp_names)

    def test_record_figure_writes_when_dir_set(self, tmp_path, capsys):
        figures.set_results_dir(tmp_path)
        try:
            figures.record_figure("demo", "Demo title", ["a"], [[1], [2]])
        finally:
            figures._results_dir = None
        out = capsys.readouterr().out
        assert "Demo title" in out
        content = (tmp_path / "demo.txt").read_text()
        assert content.startswith("# Demo title")
        assert "1" in content and "2" in content

    def test_record_figure_print_only_without_dir(self, capsys):
        figures._results_dir = None
        figures.record_figure("demo2", "T", ["a"], [[1]])
        assert "T" in capsys.readouterr().out

    def test_hh_table_shape(self):
        rows = [
            {
                "sketch": "X",
                "memory_mib": 1.0,
                "update_s": 0.5,
                "query_s": 0.1,
                "precision": 0.9,
                "recall": 1.0,
            }
        ]
        table = figures.hh_rows_to_table(rows)
        assert table == [["X", 1.0, 0.5, 0.1, 0.9, 1.0]]
        assert len(figures.HH_COLUMNS) == len(table[0])

    def test_log_scaling_series(self):
        from repro.persistent import AttpSampleHeavyHitter

        stream = figures.object_stream(1_000)
        checkpoints, series = figures.log_scaling_series(
            stream, {"S": lambda: AttpSampleHeavyHitter(k=50, seed=0)}
        )
        assert checkpoints == [250, 500, 750, 1_000]
        assert len(series["S"]) == 4
        assert all(b >= 0 for b in series["S"])


class TestExperimentRegistry:
    def test_all_sixteen_figures_registered(self):
        assert sorted(EXPERIMENTS) == [f"fig{i:02d}" for i in range(1, 17)]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_cli_list(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "list"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "fig01" in result.stdout
        assert "fig16" in result.stdout

    def test_cli_runs_one_figure(self, tmp_path):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.experiments",
                "fig14",
                "--out",
                str(tmp_path),
            ],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stderr
        assert (tmp_path / "fig14.txt").exists()
        assert "PFD" in (tmp_path / "fig14.txt").read_text()
