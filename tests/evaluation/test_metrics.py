"""Tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.evaluation import (
    covariance_relative_error,
    f1_score,
    frequency_additive_error,
    precision,
    quantile_rank_error,
    recall,
    spectral_norm,
)


class TestSetMetrics:
    def test_perfect(self):
        assert precision([1, 2], [1, 2]) == 1.0
        assert recall([1, 2], [1, 2]) == 1.0
        assert f1_score([1, 2], [1, 2]) == 1.0

    def test_half_precision(self):
        assert precision([1, 2, 3, 4], [1, 2]) == 0.5

    def test_half_recall(self):
        assert recall([1], [1, 2]) == 0.5

    def test_empty_reported(self):
        assert precision([], [1]) == 0.0
        assert precision([], []) == 1.0

    def test_empty_truth(self):
        assert recall([1, 2], []) == 1.0

    def test_f1_zero_when_disjoint(self):
        assert f1_score([1], [2]) == 0.0

    def test_duplicates_ignored(self):
        assert precision([1, 1, 2], [1, 2]) == 1.0


class TestMatrixMetrics:
    def test_zero_error_for_identical(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(50, 5))
        cov = a.T @ a
        assert covariance_relative_error(cov, cov) == 0.0

    def test_error_normalised_by_frobenius(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(50, 5))
        cov = a.T @ a
        perturbed = cov + 0.01 * np.trace(cov) * np.eye(5)
        err = covariance_relative_error(cov, perturbed)
        assert err == pytest.approx(0.01, rel=1e-6)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            covariance_relative_error(np.eye(3), np.eye(4))

    def test_zero_trace_rejected(self):
        with pytest.raises(ValueError):
            covariance_relative_error(np.zeros((2, 2)), np.eye(2))

    def test_spectral_norm(self):
        assert spectral_norm(np.diag([3.0, 1.0])) == pytest.approx(3.0)


class TestOtherMetrics:
    def test_quantile_rank_error_exact(self):
        values = list(range(100))
        assert quantile_rank_error(values, 49, 0.5) == pytest.approx(0.0)

    def test_quantile_rank_error_off(self):
        values = list(range(100))
        assert quantile_rank_error(values, 74, 0.5) == pytest.approx(0.25)

    def test_quantile_rank_error_empty_rejected(self):
        with pytest.raises(ValueError):
            quantile_rank_error([], 0.0, 0.5)

    def test_frequency_additive_error(self):
        estimates = {1: 10.0, 2: 5.0}
        truth = {1: 12.0, 3: 4.0}
        err = frequency_additive_error(estimates, truth, total=100)
        assert err == pytest.approx(0.05)  # key 2 off by 5

    def test_frequency_error_rejects_bad_total(self):
        with pytest.raises(ValueError):
            frequency_additive_error({}, {}, total=0)
