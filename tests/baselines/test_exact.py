"""Tests for the exact oracles."""

import numpy as np
import pytest

from repro.baselines import ExactMatrixOracle, ExactStreamOracle


class TestExactStreamOracle:
    def test_prefix_and_suffix_counts(self):
        oracle = ExactStreamOracle()
        for index in range(100):
            oracle.update(index % 3, float(index))
        assert oracle.count_at(49.0) == 50
        assert oracle.count_since(50.0) == 50
        assert oracle.count == 100

    def test_frequencies(self):
        oracle = ExactStreamOracle()
        for index in range(90):
            oracle.update(index % 3, float(index))
        assert oracle.frequency_at(0, 29.0) == 10
        assert oracle.frequency_since(0, 60.0) == 10

    def test_heavy_hitters_prefix_suffix(self):
        oracle = ExactStreamOracle()
        for index in range(100):
            oracle.update(0 if index < 50 else 1, float(index))
        assert oracle.heavy_hitters_at(49.0, 0.9) == [0]
        assert oracle.heavy_hitters_since(50.0, 0.9) == [1]
        assert sorted(oracle.heavy_hitters_at(99.0, 0.4)) == [0, 1]

    def test_quantile_at(self):
        oracle = ExactStreamOracle()
        for index in range(101):
            oracle.update(index, float(index))
        assert oracle.quantile_at(100.0, 0.5) == 50

    def test_quantile_empty_raises(self):
        oracle = ExactStreamOracle()
        oracle.update(1, 10.0)
        with pytest.raises(ValueError):
            oracle.quantile_at(5.0, 0.5)

    def test_rejects_decreasing_timestamps(self):
        oracle = ExactStreamOracle()
        oracle.update(1, 5.0)
        with pytest.raises(ValueError):
            oracle.update(1, 4.0)

    def test_memory_is_linear(self):
        oracle = ExactStreamOracle()
        for index in range(100):
            oracle.update(index, float(index))
        assert oracle.memory_bytes() == 100 * 12


class TestExactMatrixOracle:
    def test_prefix_covariance(self):
        oracle = ExactMatrixOracle(dim=3)
        rng = np.random.default_rng(0)
        rows = rng.normal(size=(50, 3))
        for index, row in enumerate(rows):
            oracle.update(row, float(index))
        prefix = rows[:25]
        assert np.allclose(oracle.covariance_at(24.0), prefix.T @ prefix)

    def test_suffix_covariance(self):
        oracle = ExactMatrixOracle(dim=3)
        rng = np.random.default_rng(1)
        rows = rng.normal(size=(50, 3))
        for index, row in enumerate(rows):
            oracle.update(row, float(index))
        window = rows[25:]
        assert np.allclose(oracle.covariance_since(25.0), window.T @ window)

    def test_squared_frobenius(self):
        oracle = ExactMatrixOracle(dim=2)
        oracle.update([3.0, 4.0], 0.0)
        assert oracle.squared_frobenius_at(0.0) == pytest.approx(25.0)

    def test_empty_prefix(self):
        oracle = ExactMatrixOracle(dim=2)
        oracle.update([1.0, 1.0], 10.0)
        assert oracle.matrix_at(5.0).shape == (0, 2)
        assert oracle.matrix_since(20.0).shape == (0, 2)

    def test_rejects_wrong_shape(self):
        oracle = ExactMatrixOracle(dim=2)
        with pytest.raises(ValueError):
            oracle.update([1.0], 0.0)

    def test_rejects_decreasing_timestamps(self):
        oracle = ExactMatrixOracle(dim=1)
        oracle.update([1.0], 5.0)
        with pytest.raises(ValueError):
            oracle.update([1.0], 4.0)
