"""Property tests: the stores agree with the exact oracle.

The columnar store is exact at any timestamp; the windowed store is exact at
window boundaries.  Both are cross-validated against ExactStreamOracle on
random streams — any divergence is a bug in one of the three.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    ColumnarLogStore,
    ExactStreamOracle,
    WindowedAggregateStore,
)

key_streams = st.lists(
    st.integers(min_value=0, max_value=12), min_size=5, max_size=200
)


class TestColumnarEquivalence:
    @given(keys=key_streams, chunk=st.sampled_from([3, 7, 16]))
    @settings(max_examples=40, deadline=None)
    def test_frequencies_match_oracle_at_any_time(self, keys, chunk):
        store = ColumnarLogStore(chunk_rows=chunk)
        oracle = ExactStreamOracle()
        for index, key in enumerate(keys):
            store.update(key, float(index))
            oracle.update(key, float(index))
        for t in (0.0, len(keys) / 3, len(keys) - 1.0, len(keys) + 10.0):
            assert store.count_at(t) == oracle.count_at(t)
            for key in set(keys):
                assert store.frequency_at(key, t) == oracle.frequency_at(key, t)

    @given(keys=key_streams)
    @settings(max_examples=40, deadline=None)
    def test_heavy_hitters_match_oracle(self, keys):
        store = ColumnarLogStore(chunk_rows=8)
        oracle = ExactStreamOracle()
        for index, key in enumerate(keys):
            store.update(key, float(index))
            oracle.update(key, float(index))
        for phi in (0.1, 0.3, 0.6):
            t = float(len(keys) - 1)
            assert store.heavy_hitters_at(t, phi) == oracle.heavy_hitters_at(t, phi)


class TestWindowedEquivalence:
    @given(keys=key_streams, window=st.sampled_from([5.0, 10.0, 50.0]))
    @settings(max_examples=40, deadline=None)
    def test_exact_at_window_boundaries(self, keys, window):
        store = WindowedAggregateStore(window_length=window)
        oracle = ExactStreamOracle()
        for index, key in enumerate(keys):
            store.update(key, float(index))
            oracle.update(key, float(index))
        # Probe only at boundaries strictly before the last sealed window's
        # end; the current window is not yet visible to the store.
        last_window_start = (len(keys) - 1) // window * window
        boundaries = np.arange(0.0, last_window_start + 1e-9, window)
        for boundary in boundaries:
            assert store.count_at(float(boundary)) == oracle.count_at(
                float(boundary) - 0.5
            )

    @given(keys=key_streams)
    @settings(max_examples=30, deadline=None)
    def test_total_count_preserved(self, keys):
        store = WindowedAggregateStore(window_length=4.0)
        for index, key in enumerate(keys):
            store.update(key, float(index))
        # A query past every window boundary sees the full stream (the open
        # window is included once the timestamp passes its end).
        assert store.count_at(1e12) == len(keys)
