"""Tests for the columnar log store (the Vertica stand-in)."""

import numpy as np
import pytest

from repro.baselines import ColumnarLogStore


def fill(store, n=5_000, universe=100, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, universe, size=n)
    for index, key in enumerate(keys):
        store.update(int(key), float(index))
    return keys


class TestColumnarLogStore:
    def test_exact_counts(self):
        store = ColumnarLogStore(chunk_rows=512)
        keys = fill(store)
        counts = np.bincount(keys[:2_500], minlength=100)
        for key in range(0, 100, 10):
            assert store.frequency_at(key, 2_499.0) == counts[key]

    def test_exact_heavy_hitters(self):
        store = ColumnarLogStore(chunk_rows=512)
        rng = np.random.default_rng(1)
        keys = (rng.zipf(1.5, size=6_000) % 50).astype(int)
        for index, key in enumerate(keys):
            store.update(key, float(index))
        phi = 0.05
        t = 2_999.0
        prefix = keys[:3_000]
        counts = np.bincount(prefix, minlength=50)
        truth = sorted(int(k) for k in range(50) if counts[k] >= phi * 3_000)
        assert store.heavy_hitters_at(t, phi) == truth

    def test_count_at(self):
        store = ColumnarLogStore(chunk_rows=128)
        fill(store, n=1_000)
        assert store.count_at(499.0) == 500
        assert store.count_at(-1.0) == 0
        assert store.count_at(10_000.0) == 1_000

    def test_buffer_rows_visible_before_seal(self):
        store = ColumnarLogStore(chunk_rows=1_000)
        for index in range(10):  # never seals
            store.update(7, float(index))
        assert store.frequency_at(7, 9.0) == 10

    def test_memory_linear_in_rows(self):
        # Use multiples of the chunk size so the uncompressed tail buffer
        # does not skew the comparison.
        small = ColumnarLogStore(chunk_rows=512)
        large = ColumnarLogStore(chunk_rows=512)
        fill(small, n=2_048)
        fill(large, n=20_480)
        ratio = large.memory_bytes() / small.memory_bytes()
        assert 5 < ratio < 20  # linear up to compression constants

    def test_compression_beats_raw(self):
        store = ColumnarLogStore(chunk_rows=1_024)
        fill(store, n=10_000, universe=16)
        raw = 10_000 * 12
        assert store.memory_bytes() < raw

    def test_rejects_decreasing_timestamps(self):
        store = ColumnarLogStore(chunk_rows=4)
        store.update(1, 5.0)
        with pytest.raises(ValueError):
            store.update(1, 4.0)
        for t in (5.0, 6.0, 7.0):  # seal a chunk
            store.update(1, t)
        with pytest.raises(ValueError):
            store.update(1, 1.0)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            ColumnarLogStore(chunk_rows=0)

    def test_phi_validated(self):
        store = ColumnarLogStore()
        store.update(1, 0.0)
        with pytest.raises(ValueError):
            store.heavy_hitters_at(0.0, 0.0)
