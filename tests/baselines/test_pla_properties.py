"""Property tests for the piecewise-linear counter approximation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import PiecewiseLinearCounter

increments = st.lists(st.integers(min_value=0, max_value=5), min_size=2, max_size=300)


class TestPlaProperties:
    @given(increments=increments, delta=st.sampled_from([1.0, 4.0, 16.0]))
    @settings(max_examples=50, deadline=None)
    def test_breakpoints_subset_of_observations(self, increments, delta):
        pla = PiecewiseLinearCounter(delta=delta)
        observed = {}
        value = 0.0
        for step, increment in enumerate(increments):
            value += increment
            pla.observe(float(step), value)
            observed[float(step)] = value
        # Every breakpoint records an actually-observed (t, v) pair.
        for t, v in zip(pla._times, pla._values):
            assert observed[t] == v

    @given(increments=increments)
    @settings(max_examples=50, deadline=None)
    def test_value_at_breakpoints_is_exact(self, increments):
        pla = PiecewiseLinearCounter(delta=2.0)
        value = 0.0
        for step, increment in enumerate(increments):
            value += increment
            pla.observe(float(step), value)
        for t, v in zip(list(pla._times), list(pla._values)):
            assert pla.value_at(t) == v

    @given(increments=increments, delta=st.sampled_from([2.0, 8.0]))
    @settings(max_examples=50, deadline=None)
    def test_fewer_breakpoints_with_larger_delta(self, increments, delta):
        tight = PiecewiseLinearCounter(delta=delta)
        loose = PiecewiseLinearCounter(delta=4 * delta)
        value = 0.0
        for step, increment in enumerate(increments):
            value += increment
            tight.observe(float(step), value)
            loose.observe(float(step), value)
        assert loose.num_breakpoints() <= tight.num_breakpoints()

    @given(increments=increments)
    @settings(max_examples=50, deadline=None)
    def test_interpolation_monotone_between_breakpoints(self, increments):
        # Counters are non-decreasing, so interpolated values between two
        # consecutive breakpoints must be non-decreasing too.
        pla = PiecewiseLinearCounter(delta=3.0)
        value = 0.0
        for step, increment in enumerate(increments):
            value += increment
            pla.observe(float(step), value)
        times = list(pla._times)
        for t1, t2 in zip(times, times[1:]):
            probes = np.linspace(t1, t2, 5)
            interpolated = [pla.value_at(float(p)) for p in probes]
            assert all(b >= a - 1e-9 for a, b in zip(interpolated, interpolated[1:]))

    def test_zero_increment_stream_single_breakpoint(self):
        pla = PiecewiseLinearCounter(delta=1.0)
        for step in range(100):
            pla.observe(float(step), 10.0)
        assert pla.num_breakpoints() == 1
        assert pla.value_at(50.0) == 10.0
