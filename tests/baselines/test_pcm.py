"""Tests for the persistent Count-Min baseline."""

import numpy as np
import pytest

from repro.baselines import PersistentCountMin, PiecewiseLinearCounter


class TestPiecewiseLinearCounter:
    def test_linear_counter_needs_few_breakpoints(self):
        pla = PiecewiseLinearCounter(delta=4.0)
        for step in range(1, 10_000):
            pla.observe(float(step), float(step))  # perfectly linear
        assert pla.num_breakpoints() < 10

    def test_bursty_counter_needs_many_breakpoints(self):
        pla = PiecewiseLinearCounter(delta=4.0)
        value = 0.0
        rng = np.random.default_rng(0)
        for step in range(1, 2_000):
            if rng.random() < 0.05:
                value += 100.0  # bursts break linearity
            pla.observe(float(step), value)
        assert pla.num_breakpoints() > 20

    def test_interpolation_between_breakpoints(self):
        pla = PiecewiseLinearCounter(delta=0.5)
        pla.observe(0.0, 0.0)
        pla.observe(10.0, 100.0)
        assert pla.value_at(5.0) == pytest.approx(50.0)

    def test_extrapolation_past_end(self):
        pla = PiecewiseLinearCounter(delta=0.5)
        pla.observe(0.0, 0.0)
        pla.observe(10.0, 100.0)
        assert pla.value_at(20.0) == pytest.approx(200.0)

    def test_zero_before_first(self):
        pla = PiecewiseLinearCounter(delta=1.0)
        pla.observe(10.0, 5.0)
        assert pla.value_at(5.0) == 0.0

    def test_same_timestamp_updates_collapse(self):
        pla = PiecewiseLinearCounter(delta=1.0)
        pla.observe(1.0, 1.0)
        pla.observe(1.0, 50.0)
        assert pla.num_breakpoints() == 1
        assert pla.value_at(1.0) == 50.0

    def test_accuracy_at_observed_times(self):
        pla = PiecewiseLinearCounter(delta=8.0)
        rng = np.random.default_rng(1)
        value = 0.0
        observations = []
        for step in range(1, 3_000):
            value += float(rng.integers(0, 3))
            pla.observe(float(step), value)
            observations.append((float(step), value))
        # Drift between breakpoints stays within a few deltas.
        errors = [abs(pla.value_at(t) - v) for t, v in observations[::50]]
        assert max(errors) < 5 * 8.0

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCounter(delta=0.0)

    def test_memory_model(self):
        pla = PiecewiseLinearCounter(delta=1.0)
        pla.observe(1.0, 10.0)
        assert pla.memory_bytes() == 16


class TestPersistentCountMin:
    def test_estimates_track_history(self):
        pcm = PersistentCountMin(width=512, depth=3, pla_delta=4.0, seed=0)
        rng = np.random.default_rng(0)
        keys = rng.zipf(1.4, size=8_000) % 100
        for index, key in enumerate(keys):
            pcm.update(int(key), float(index))
        t_index = 3_999
        counts = np.bincount(keys[: t_index + 1], minlength=100)
        heavy = np.argsort(counts)[-5:]
        for key in heavy:
            estimate = pcm.estimate_at(int(key), float(t_index))
            assert abs(estimate - counts[key]) < 0.05 * (t_index + 1)

    def test_total_weight_interpolated(self):
        pcm = PersistentCountMin(width=64, depth=2, pla_delta=4.0, seed=1)
        for index in range(5_000):
            pcm.update(index % 10, float(index))
        w = pcm.total_weight_at(2_499.0)
        assert abs(w - 2_500) < 100

    def test_memory_grows_with_stream_on_bursty_data(self):
        # The paper's point: PCM memory scales with the stream for
        # non-random arrival patterns.
        pcm = PersistentCountMin(width=64, depth=2, pla_delta=2.0, seed=2)
        rng = np.random.default_rng(2)
        checkpoints = []
        for index in range(20_000):
            # bursty: key popularity shifts every 1000 steps
            key = int(rng.integers(0, 8)) + (index // 1_000) % 8
            pcm.update(key, float(index))
            if (index + 1) % 5_000 == 0:
                checkpoints.append(pcm.memory_bytes())
        assert checkpoints[-1] > 1.5 * checkpoints[0]

    def test_estimate_now_is_live_countmin(self):
        pcm = PersistentCountMin(width=256, depth=3, seed=3)
        for index in range(1_000):
            pcm.update(index % 5, float(index))
        assert pcm.estimate_now(0) >= 200

    def test_rejects_nonpositive_weight(self):
        pcm = PersistentCountMin(width=16, depth=2)
        with pytest.raises(ValueError):
            pcm.update(1, 1.0, weight=0)

    def test_breakpoint_count_exposed(self):
        pcm = PersistentCountMin(width=16, depth=2, pla_delta=1.0)
        for index in range(100):
            pcm.update(index % 3, float(index))
        assert pcm.num_breakpoints() > 0
