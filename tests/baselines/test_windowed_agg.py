"""Tests for the windowed aggregate store."""

import numpy as np
import pytest

from repro.baselines import WindowedAggregateStore


class TestWindowedAggregateStore:
    def test_counts_at_window_granularity(self):
        store = WindowedAggregateStore(window_length=100.0)
        for index in range(1_000):
            store.update(index % 5, float(index))
        # Query inside window 4 (t=450): only windows 0-3 are counted.
        assert store.count_at(450.0) == 400
        # Query at a window boundary includes everything before it.
        assert store.count_at(500.0) == 500

    def test_frequency_at(self):
        store = WindowedAggregateStore(window_length=10.0)
        for index in range(100):
            store.update(index % 2, float(index))
        assert store.frequency_at(0, 50.0) == 25
        assert store.frequency_at(1, 50.0) == 25

    def test_heavy_hitters_exact_at_boundaries(self):
        store = WindowedAggregateStore(window_length=100.0)
        rng = np.random.default_rng(0)
        keys = (rng.zipf(1.5, size=2_000) % 30).astype(int)
        for index, key in enumerate(keys):
            store.update(key, float(index))
        phi = 0.05
        prefix = keys[:1_000]
        counts = np.bincount(prefix, minlength=30)
        truth = sorted(int(k) for k in range(30) if counts[k] >= phi * 1_000)
        assert store.heavy_hitters_at(1_000.0, phi) == truth

    def test_memory_much_smaller_than_raw(self):
        store = WindowedAggregateStore(window_length=1_000.0)
        for index in range(50_000):
            store.update(index % 20, float(index))
        raw = 50_000 * 12
        assert store.memory_bytes() < raw / 10

    def test_memory_grows_with_windows(self):
        few = WindowedAggregateStore(window_length=10_000.0)
        many = WindowedAggregateStore(window_length=100.0)
        for index in range(20_000):
            few.update(index % 50, float(index))
            many.update(index % 50, float(index))
        assert many.memory_bytes() > few.memory_bytes()

    def test_rejects_decreasing_windows(self):
        store = WindowedAggregateStore(window_length=10.0)
        store.update(1, 25.0)
        with pytest.raises(ValueError):
            store.update(1, 5.0)

    def test_rejects_bad_window_length(self):
        with pytest.raises(ValueError):
            WindowedAggregateStore(window_length=0.0)

    def test_empty_store(self):
        store = WindowedAggregateStore(window_length=10.0)
        assert store.count_at(100.0) == 0
        assert store.heavy_hitters_at(100.0, 0.5) == []
