"""Tests for the PCM_HH baseline."""

import numpy as np
import pytest

from repro.baselines import PcmHeavyHitter
from repro.evaluation import (
    average_accuracy,
    exact_prefix_heavy_hitters,
    exact_suffix_heavy_hitters,
    feed_log_stream,
)
from repro.workloads import object_id_stream, query_schedule


@pytest.fixture(scope="module")
def fed_pcm():
    stream = object_id_stream(n=8_000, universe=2_000, ratio=300.0, seed=0)
    pcm = PcmHeavyHitter(universe_bits=11, eps=0.002, depth=3, pla_delta=4.0, seed=0)
    feed_log_stream(pcm, stream)
    return stream, pcm


class TestPcmHeavyHitter:
    def test_attp_accuracy_at_high_memory(self, fed_pcm):
        stream, pcm = fed_pcm
        phi = 0.01
        times = query_schedule(stream)
        truth = exact_prefix_heavy_hitters(stream, times, phi)
        reported = [pcm.heavy_hitters_at(t, phi) for t in times]
        p, r = average_accuracy(reported, truth)
        assert p > 0.6
        assert r > 0.8

    def test_bitp_emulation_via_differencing(self, fed_pcm):
        stream, pcm = fed_pcm
        phi = 0.01
        times = query_schedule(stream)[:4]
        truth = exact_suffix_heavy_hitters(stream, times, phi)
        reported = [pcm.heavy_hitters_since(t, phi) for t in times]
        _, r = average_accuracy(reported, truth)
        assert r > 0.5  # differencing compounds error; recall degrades

    def test_point_estimates(self, fed_pcm):
        stream, pcm = fed_pcm
        counts = np.bincount(stream.keys[:4_000])
        top = int(np.argmax(counts))
        t = float(stream.timestamps[3_999])
        estimate = pcm.estimate_at(top, t)
        assert abs(estimate - counts[top]) < 0.1 * 4_000

    def test_memory_larger_than_sketches(self, fed_pcm):
        stream, pcm = fed_pcm
        from repro.persistent import AttpChainMisraGries

        cmg = AttpChainMisraGries(eps=0.002)
        feed_log_stream(cmg, stream)
        assert pcm.memory_bytes() > cmg.memory_bytes()

    def test_rejects_out_of_universe(self):
        pcm = PcmHeavyHitter(universe_bits=4, eps=0.1)
        with pytest.raises(ValueError):
            pcm.update(16, 0.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            PcmHeavyHitter(universe_bits=0, eps=0.1)
        with pytest.raises(ValueError):
            PcmHeavyHitter(universe_bits=4, eps=0.0)

    def test_phi_validated(self, fed_pcm):
        _, pcm = fed_pcm
        with pytest.raises(ValueError):
            pcm.heavy_hitters_at(1.0, 0.0)

    def test_empty_window_reports_nothing(self):
        pcm = PcmHeavyHitter(universe_bits=4, eps=0.1)
        for index in range(100):
            pcm.update(index % 16, float(index))
        assert pcm.heavy_hitters_since(1_000.0, 0.5) == []
