"""Shared fixtures: small seeded streams used across the test suite."""

import numpy as np
import pytest

from repro.workloads import client_id_stream, generate_matrix_stream, object_id_stream


@pytest.fixture(scope="session")
def small_object_stream():
    """A 10k-row skewed keyed stream (Object-ID-like)."""
    return object_id_stream(n=10_000, universe=2_000, ratio=300.0, seed=42)


@pytest.fixture(scope="session")
def small_client_stream():
    """A 10k-row mildly-skewed keyed stream (Client-ID-like)."""
    return client_id_stream(n=10_000, universe=5_000, ratio=100.0, seed=42)


@pytest.fixture(scope="session")
def small_matrix_stream():
    """A 1k-row, 20-dimensional Section-6.3-style matrix stream."""
    return generate_matrix_stream(n=1_000, dim=20, horizon=1_000.0, seed=42)


@pytest.fixture()
def rng():
    """A fresh seeded generator per test."""
    return np.random.default_rng(1234)
