"""Tests for the Bloom filter."""

import pytest

from repro.sketches import BloomFilter


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter.from_capacity(1_000, fp_rate=0.01, seed=0)
        for key in range(1_000):
            bf.update(key)
        assert all(bf.query(key) for key in range(1_000))

    def test_false_positive_rate_near_target(self):
        bf = BloomFilter.from_capacity(2_000, fp_rate=0.01, seed=1)
        for key in range(2_000):
            bf.update(key)
        false_positives = sum(1 for key in range(10_000, 30_000) if bf.query(key))
        assert false_positives / 20_000 < 0.05

    def test_empty_filter_rejects_everything(self):
        bf = BloomFilter(bits=1024, num_hashes=3, seed=0)
        assert not bf.query(42)
        assert bf.fill_ratio() == 0.0

    def test_merge_is_union(self):
        a = BloomFilter(bits=4096, num_hashes=4, seed=5)
        b = BloomFilter(bits=4096, num_hashes=4, seed=5)
        for key in range(100):
            a.update(key)
        for key in range(100, 200):
            b.update(key)
        a.merge(b)
        assert all(a.query(key) for key in range(200))

    def test_merge_rejects_mismatched(self):
        a = BloomFilter(bits=1024, num_hashes=4, seed=5)
        b = BloomFilter(bits=1024, num_hashes=4, seed=6)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_from_capacity_validates(self):
        with pytest.raises(ValueError):
            BloomFilter.from_capacity(0)
        with pytest.raises(ValueError):
            BloomFilter.from_capacity(10, fp_rate=1.5)

    def test_memory_model(self):
        bf = BloomFilter(bits=8192, num_hashes=2)
        assert bf.memory_bytes() == 8192 // 8
