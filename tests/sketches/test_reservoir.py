"""Tests for reservoir and top-k priority sampling."""

import numpy as np
import pytest

from repro.sketches import ReservoirSample, TopKPrioritySample


class TestReservoirSample:
    def test_keeps_first_k(self):
        rs = ReservoirSample(k=10, seed=0)
        for item in range(5):
            rs.update(item)
        assert sorted(rs.sample()) == [0, 1, 2, 3, 4]

    def test_size_capped_at_k(self):
        rs = ReservoirSample(k=10, seed=0)
        for item in range(1_000):
            rs.update(item)
        assert len(rs) == 10

    def test_uniformity(self):
        # Each of 20 items should land in a k=5 sample ~ k/n of the time.
        hits = np.zeros(20)
        for seed in range(400):
            rs = ReservoirSample(k=5, seed=seed)
            for item in range(20):
                rs.update(item)
            for item in rs.sample():
                hits[item] += 1
        expected = 400 * 5 / 20
        assert np.all(np.abs(hits - expected) < 5 * np.sqrt(expected))

    def test_independent_chains_mode(self):
        rs = ReservoirSample(k=8, seed=1, independent_chains=True)
        for item in range(100):
            rs.update(item)
        sample = rs.sample()
        assert len(sample) == 8  # one item per chain, duplicates allowed
        assert all(0 <= item < 100 for item in sample)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            ReservoirSample(k=0)

    def test_memory_model(self):
        rs = ReservoirSample(k=4, seed=0)
        for item in range(10):
            rs.update(item)
        assert rs.memory_bytes() == 4 * 4


class TestTopKPrioritySample:
    def test_without_replacement(self):
        tk = TopKPrioritySample(k=50, seed=0)
        for item in range(500):
            tk.update(item)
        sample = tk.sample()
        assert len(sample) == 50
        assert len(set(sample)) == 50

    def test_uniformity(self):
        hits = np.zeros(20)
        for seed in range(400):
            tk = TopKPrioritySample(k=5, seed=seed)
            for item in range(20):
                tk.update(item)
            for item in tk.sample():
                hits[item] += 1
        expected = 400 * 5 / 20
        assert np.all(np.abs(hits - expected) < 5 * np.sqrt(expected))

    def test_threshold_is_kth_largest(self):
        tk = TopKPrioritySample(k=3, seed=0)
        for item, priority in enumerate([0.9, 0.5, 0.7, 0.3, 0.8]):
            tk.offer(item, priority)
        assert tk.threshold() == pytest.approx(0.7)

    def test_threshold_zero_when_underfull(self):
        tk = TopKPrioritySample(k=10, seed=0)
        tk.update(1)
        assert tk.threshold() == 0.0

    def test_merge_equals_union_topk(self):
        a = TopKPrioritySample(k=5, seed=0)
        b = TopKPrioritySample(k=5, seed=1)
        offers_a = [(item, 0.1 * item) for item in range(10)]
        offers_b = [(item + 100, 0.05 * item) for item in range(10)]
        for item, priority in offers_a:
            a.offer(item, priority)
        for item, priority in offers_b:
            b.offer(item, priority)
        a.merge(b)
        all_offers = sorted(offers_a + offers_b, key=lambda pair: -pair[1])[:5]
        assert sorted(a.sample()) == sorted(item for item, _ in all_offers)

    def test_merge_rejects_mismatched_k(self):
        with pytest.raises(ValueError):
            TopKPrioritySample(3).merge(TopKPrioritySample(4))

    def test_count_tracks_stream(self):
        tk = TopKPrioritySample(k=2, seed=0)
        for item in range(7):
            tk.update(item)
        assert tk.count == 7

    def test_memory_model(self):
        tk = TopKPrioritySample(k=3, seed=0)
        for item in range(10):
            tk.update(item)
        assert tk.memory_bytes() == 3 * 12
