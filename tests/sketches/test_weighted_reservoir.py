"""Tests for the weighted with-replacement reservoir chains."""

import numpy as np
import pytest

from repro.sketches import WeightedReservoirWR


class TestWeightedReservoirWR:
    def test_sample_size_is_k(self):
        wr = WeightedReservoirWR(k=16, seed=0)
        for item in range(100):
            wr.update(item, 1.0)
        assert len(wr.sample()) == 16

    def test_first_item_fills_all_chains(self):
        wr = WeightedReservoirWR(k=8, seed=0)
        wr.update(42, 3.0)
        assert wr.sample() == [42] * 8

    def test_weighted_marginals(self):
        # Item weights 1:3 -> inclusion odds 1:3 per chain.
        hits = {0: 0, 1: 0}
        for seed in range(300):
            wr = WeightedReservoirWR(k=4, seed=seed)
            wr.update(0, 1.0)
            wr.update(1, 3.0)
            for item in wr.sample():
                hits[item] += 1
        ratio = hits[1] / max(1, hits[0])
        assert 2.0 < ratio < 4.5

    def test_subset_weight_estimate(self):
        weights = [1.0 + (item % 10) for item in range(400)]
        true = sum(w for item, w in enumerate(weights) if item < 200)
        estimates = []
        for seed in range(150):
            wr = WeightedReservoirWR(k=60, seed=seed)
            for item, weight in enumerate(weights):
                wr.update(item, weight)
            estimates.append(wr.estimate_subset_weight(lambda item: item < 200))
        assert abs(np.mean(estimates) - true) < 0.08 * true

    def test_rejects_nonpositive_weight(self):
        wr = WeightedReservoirWR(k=2, seed=0)
        with pytest.raises(ValueError):
            wr.update(1, 0.0)

    def test_total_weight_tracked(self):
        wr = WeightedReservoirWR(k=2, seed=0)
        for item in range(5):
            wr.update(item, 2.5)
        assert wr.total_weight == pytest.approx(12.5)

    def test_empty_estimate_is_zero(self):
        wr = WeightedReservoirWR(k=2, seed=0)
        assert wr.estimate_subset_weight(lambda item: True) == 0.0

    def test_memory_model(self):
        wr = WeightedReservoirWR(k=6, seed=0)
        wr.update(1, 1.0)
        assert wr.memory_bytes() == 6 * 4
