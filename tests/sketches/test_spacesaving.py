"""Tests for the SpaceSaving sketch, including cross-validation vs Misra-Gries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import MisraGries, SpaceSaving


class TestSpaceSaving:
    def test_never_underestimates(self):
        ss = SpaceSaving(k=10)
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 100, size=5_000)
        for key in keys:
            ss.update(int(key))
        counts = np.bincount(keys, minlength=100)
        for key in range(100):
            if ss.query(key) > 0:
                assert ss.query(key) >= counts[key] or key not in ss.items()

    def test_tracked_keys_overestimate(self):
        ss = SpaceSaving(k=10)
        rng = np.random.default_rng(1)
        keys = rng.zipf(1.5, size=8_000) % 50
        for key in keys:
            ss.update(int(key))
        counts = np.bincount(keys, minlength=50)
        for key, estimate in ss.items().items():
            assert estimate >= counts[key]
            assert estimate - counts[key] <= len(keys) / ss.k + 1e-9

    def test_guaranteed_count_is_lower_bound(self):
        ss = SpaceSaving(k=5)
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 30, size=2_000)
        for key in keys:
            ss.update(int(key))
        counts = np.bincount(keys, minlength=30)
        for key in ss.items():
            assert ss.guaranteed_count(key) <= counts[key]

    def test_no_false_negatives(self):
        ss = SpaceSaving.from_error(0.02)
        rng = np.random.default_rng(3)
        keys = rng.zipf(1.4, size=10_000) % 200
        for key in keys:
            ss.update(int(key))
        counts = np.bincount(keys, minlength=200)
        phi = 0.05
        truth = {key for key in range(200) if counts[key] >= phi * len(keys)}
        reported = set(ss.heavy_hitters(phi))
        assert truth <= reported

    def test_capacity_respected(self):
        ss = SpaceSaving(k=6)
        for key in range(500):
            ss.update(key)
        assert len(ss) <= 6

    def test_rejects_nonpositive_weight(self):
        ss = SpaceSaving(k=3)
        with pytest.raises(ValueError):
            ss.update(1, -1)

    def test_memory_model(self):
        ss = SpaceSaving(k=4)
        for key in range(4):
            ss.update(key)
        assert ss.memory_bytes() == 4 * 20

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=300),
        k=st.integers(min_value=2, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_isomorphic_error_to_misra_gries(self, keys, k):
        """SS with k counters and MG with k counters have the same worst-case
        additive error n/k vs n/(k+1); check both stay within n/k."""
        ss = SpaceSaving(k=k)
        mg = MisraGries(k=k)
        for key in keys:
            ss.update(key)
            mg.update(key)
        n = len(keys)
        for key in set(keys):
            true = keys.count(key)
            assert abs(ss.query(key) - true) <= n / k + 1e-9
            assert abs(mg.query(key) - true) <= n / k + 1e-9


class TestSpaceSavingMerge:
    def _exact(self, keys, minlength):
        return np.bincount(keys, minlength=minlength)

    def test_merge_preserves_combined_error_bound(self):
        rng = np.random.default_rng(10)
        left_keys = rng.zipf(1.5, size=6_000) % 80
        right_keys = rng.zipf(1.5, size=4_000) % 80
        left = SpaceSaving(k=20)
        right = SpaceSaving(k=20)
        for key in left_keys:
            left.update(int(key))
        for key in right_keys:
            right.update(int(key))
        left.merge(right)
        counts = self._exact(np.concatenate([left_keys, right_keys]), 80)
        total = len(left_keys) + len(right_keys)
        assert left.total_weight == total
        for key, estimate in left.items().items():
            assert estimate >= counts[key]
            assert estimate - counts[key] <= total / left.k + 1e-9

    def test_merge_keeps_guaranteed_count_lower_bound(self):
        rng = np.random.default_rng(11)
        left_keys = rng.integers(0, 40, size=3_000)
        right_keys = rng.integers(0, 40, size=3_000)
        left = SpaceSaving(k=8)
        right = SpaceSaving(k=8)
        for key in left_keys:
            left.update(int(key))
        for key in right_keys:
            right.update(int(key))
        left.merge(right)
        counts = self._exact(np.concatenate([left_keys, right_keys]), 40)
        for key in left.items():
            assert left.guaranteed_count(key) <= counts[key]

    def test_merge_heavy_hitters_no_false_negatives(self):
        rng = np.random.default_rng(12)
        streams = [rng.zipf(1.3, size=8_000) % 150 for _ in range(2)]
        summaries = [SpaceSaving.from_error(0.01) for _ in streams]
        for summary, stream in zip(summaries, streams):
            for key in stream:
                summary.update(int(key))
        merged, other = summaries
        merged.merge(other)
        all_keys = np.concatenate(streams)
        counts = self._exact(all_keys, 150)
        phi = 0.05
        truth = {key for key in range(150) if counts[key] >= phi * len(all_keys)}
        assert truth <= set(merged.heavy_hitters(phi))

    def test_merge_respects_capacity(self):
        left = SpaceSaving(k=5)
        right = SpaceSaving(k=5)
        for key in range(100):
            left.update(key)
            right.update(key + 100)
        left.merge(right)
        assert len(left) <= 5

    def test_merge_with_empty_is_identity(self):
        left = SpaceSaving(k=4)
        for key in [1, 1, 2, 3]:
            left.update(key)
        before = left.items()
        left.merge(SpaceSaving(k=4))
        assert left.items() == before
        assert left.total_weight == 4

    def test_merge_rejects_mismatched_k(self):
        with pytest.raises(ValueError):
            SpaceSaving(k=4).merge(SpaceSaving(k=8))

    @given(
        left_keys=st.lists(st.integers(0, 30), max_size=300),
        right_keys=st.lists(st.integers(0, 30), max_size=300),
        k=st.integers(2, 12),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_bound_holds_for_random_splits(self, left_keys, right_keys, k):
        left = SpaceSaving(k=k)
        right = SpaceSaving(k=k)
        for key in left_keys:
            left.update(key)
        for key in right_keys:
            right.update(key)
        left.merge(right)
        counts = np.bincount(np.asarray(left_keys + right_keys, dtype=np.int64), minlength=31)
        total = len(left_keys) + len(right_keys)
        for key, estimate in left.items().items():
            assert counts[key] <= estimate <= counts[key] + 2 * total / k + 1e-9
            assert left.guaranteed_count(key) <= counts[key]
