"""Tests for the SpaceSaving sketch, including cross-validation vs Misra-Gries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import MisraGries, SpaceSaving


class TestSpaceSaving:
    def test_never_underestimates(self):
        ss = SpaceSaving(k=10)
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 100, size=5_000)
        for key in keys:
            ss.update(int(key))
        counts = np.bincount(keys, minlength=100)
        for key in range(100):
            if ss.query(key) > 0:
                assert ss.query(key) >= counts[key] or key not in ss.items()

    def test_tracked_keys_overestimate(self):
        ss = SpaceSaving(k=10)
        rng = np.random.default_rng(1)
        keys = rng.zipf(1.5, size=8_000) % 50
        for key in keys:
            ss.update(int(key))
        counts = np.bincount(keys, minlength=50)
        for key, estimate in ss.items().items():
            assert estimate >= counts[key]
            assert estimate - counts[key] <= len(keys) / ss.k + 1e-9

    def test_guaranteed_count_is_lower_bound(self):
        ss = SpaceSaving(k=5)
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 30, size=2_000)
        for key in keys:
            ss.update(int(key))
        counts = np.bincount(keys, minlength=30)
        for key in ss.items():
            assert ss.guaranteed_count(key) <= counts[key]

    def test_no_false_negatives(self):
        ss = SpaceSaving.from_error(0.02)
        rng = np.random.default_rng(3)
        keys = rng.zipf(1.4, size=10_000) % 200
        for key in keys:
            ss.update(int(key))
        counts = np.bincount(keys, minlength=200)
        phi = 0.05
        truth = {key for key in range(200) if counts[key] >= phi * len(keys)}
        reported = set(ss.heavy_hitters(phi))
        assert truth <= reported

    def test_capacity_respected(self):
        ss = SpaceSaving(k=6)
        for key in range(500):
            ss.update(key)
        assert len(ss) <= 6

    def test_rejects_nonpositive_weight(self):
        ss = SpaceSaving(k=3)
        with pytest.raises(ValueError):
            ss.update(1, -1)

    def test_memory_model(self):
        ss = SpaceSaving(k=4)
        for key in range(4):
            ss.update(key)
        assert ss.memory_bytes() == 4 * 20

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=300),
        k=st.integers(min_value=2, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_isomorphic_error_to_misra_gries(self, keys, k):
        """SS with k counters and MG with k counters have the same worst-case
        additive error n/k vs n/(k+1); check both stay within n/k."""
        ss = SpaceSaving(k=k)
        mg = MisraGries(k=k)
        for key in keys:
            ss.update(key)
            mg.update(key)
        n = len(keys)
        for key in set(keys):
            true = keys.count(key)
            assert abs(ss.query(key) - true) <= n / k + 1e-9
            assert abs(mg.query(key) - true) <= n / k + 1e-9
