"""Tests for the seeded hash families."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.hashing import HashFamily, MultiplyShiftHash, SignHash, next_pow2_bits


class TestMultiplyShiftHash:
    def test_output_range(self):
        h = HashFamily(0).draw_multiply_shift(8)
        outputs = [h(key) for key in range(1000)]
        assert all(0 <= out < 256 for out in outputs)

    def test_deterministic(self):
        h1 = HashFamily(7).draw_multiply_shift(10)
        h2 = HashFamily(7).draw_multiply_shift(10)
        assert [h1(key) for key in range(100)] == [h2(key) for key in range(100)]

    def test_different_seeds_differ(self):
        h1 = HashFamily(1).draw_multiply_shift(16)
        h2 = HashFamily(2).draw_multiply_shift(16)
        outs1 = [h1(key) for key in range(200)]
        outs2 = [h2(key) for key in range(200)]
        assert outs1 != outs2

    def test_vectorized_matches_scalar(self):
        h = HashFamily(3).draw_multiply_shift(12)
        keys = np.arange(500, dtype=np.uint64)
        vector = h(keys)
        scalar = [h(int(key)) for key in keys]
        assert vector.tolist() == scalar

    def test_roughly_uniform(self):
        h = HashFamily(5).draw_multiply_shift(4)  # 16 buckets
        counts = np.bincount([h(key) for key in range(16_000)], minlength=16)
        # Each bucket should get about 1000; allow generous slack.
        assert counts.min() > 500
        assert counts.max() < 2000

    def test_even_multiplier_rejected(self):
        with pytest.raises(ValueError):
            MultiplyShiftHash(4, 1, 8)

    def test_out_bits_bounds(self):
        with pytest.raises(ValueError):
            MultiplyShiftHash(3, 1, 0)
        with pytest.raises(ValueError):
            MultiplyShiftHash(3, 1, 65)

    def test_range_size(self):
        h = MultiplyShiftHash(3, 1, 6)
        assert h.range_size == 64


class TestSignHash:
    def test_outputs_are_signs(self):
        s = HashFamily(0).draw_sign()
        assert set(s(key) for key in range(1000)) == {-1, 1}

    def test_balanced(self):
        s = HashFamily(1).draw_sign()
        total = sum(s(key) for key in range(10_000))
        assert abs(total) < 600  # ~3 sigma for fair signs

    def test_vectorized_matches_scalar(self):
        s = HashFamily(2).draw_sign()
        keys = np.arange(300, dtype=np.uint64)
        assert s(keys).tolist() == [s(int(key)) for key in keys]

    def test_even_multiplier_rejected(self):
        with pytest.raises(ValueError):
            SignHash(2, 0)


class TestNextPow2Bits:
    @given(st.integers(min_value=1, max_value=2**30))
    @settings(max_examples=200)
    def test_covers_width(self, width):
        bits = next_pow2_bits(width)
        assert 2**bits >= width
        assert 2 ** (bits - 1) < width or bits == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next_pow2_bits(0)
