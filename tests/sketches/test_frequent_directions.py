"""Tests for Frequent Directions (slow and fast variants)."""

import numpy as np
import pytest

from repro.sketches import FastFrequentDirections, FrequentDirections


def random_matrix(n, d, seed=0, rank=None):
    rng = np.random.default_rng(seed)
    if rank is None:
        return rng.normal(size=(n, d))
    left = rng.normal(size=(n, rank))
    right = rng.normal(size=(rank, d))
    return left @ right


class TestFrequentDirections:
    def test_error_bound(self):
        a = random_matrix(300, 15, seed=0)
        fd = FrequentDirections(ell=8, dim=15)
        for row in a:
            fd.update(row)
        err = np.linalg.norm(a.T @ a - fd.covariance(), 2)
        assert err <= (np.linalg.norm(a, "fro") ** 2) / fd.ell + 1e-6

    def test_exact_for_low_rank(self):
        a = random_matrix(200, 12, seed=1, rank=3)
        fd = FrequentDirections(ell=6, dim=12)
        for row in a:
            fd.update(row)
        # rank 3 < ell: the sketch should capture the matrix near-exactly in
        # the principal subspace; error stays far below the generic bound.
        err = np.linalg.norm(a.T @ a - fd.covariance(), 2)
        assert err <= 0.35 * (np.linalg.norm(a, "fro") ** 2) / fd.ell

    def test_top_direction_is_sorted_first(self):
        a = random_matrix(100, 10, seed=2)
        fd = FrequentDirections(ell=5, dim=10)
        for row in a:
            fd.update(row)
        sigma_sq, v = fd.top_direction()
        b = fd.sketch_matrix()
        norms = (b * b).sum(axis=1)
        assert sigma_sq == pytest.approx(norms.max())
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_remove_top_direction(self):
        a = random_matrix(100, 10, seed=3)
        fd = FrequentDirections(ell=5, dim=10)
        for row in a:
            fd.update(row)
        before = fd.covariance()
        sigma_sq, v = fd.top_direction()
        spilled = fd.remove_top_direction()
        after = fd.covariance()
        assert np.allclose(before - np.outer(spilled, spilled), after, atol=1e-8)
        assert float(spilled @ spilled) == pytest.approx(sigma_sq)

    def test_squared_frobenius_tracked(self):
        a = random_matrix(50, 8, seed=4)
        fd = FrequentDirections(ell=4, dim=8)
        for row in a:
            fd.update(row)
        assert fd.squared_frobenius == pytest.approx(np.linalg.norm(a, "fro") ** 2)

    def test_merge_error_bound(self):
        a = random_matrix(200, 10, seed=5)
        half = len(a) // 2
        fd1 = FrequentDirections(ell=8, dim=10)
        fd2 = FrequentDirections(ell=8, dim=10)
        for row in a[:half]:
            fd1.update(row)
        for row in a[half:]:
            fd2.update(row)
        fd1.merge(fd2)
        err = np.linalg.norm(a.T @ a - fd1.covariance(), 2)
        assert err <= (np.linalg.norm(a, "fro") ** 2) / fd1.ell + 1e-6

    def test_rejects_wrong_shape(self):
        fd = FrequentDirections(ell=4, dim=8)
        with pytest.raises(ValueError):
            fd.update(np.zeros(5))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            FrequentDirections(0, 5)
        with pytest.raises(ValueError):
            FrequentDirections(5, 0)

    def test_memory_model(self):
        fd = FrequentDirections(ell=4, dim=8)
        assert fd.memory_bytes() == 4 * 8 * 8


class TestFastFrequentDirections:
    def test_error_bound(self):
        a = random_matrix(400, 12, seed=6)
        fd = FastFrequentDirections(ell=8, dim=12)
        for row in a:
            fd.update(row)
        err = np.linalg.norm(a.T @ a - fd.covariance(), 2)
        assert err <= (np.linalg.norm(a, "fro") ** 2) / fd.ell + 1e-6

    def test_agrees_with_slow_on_error_scale(self):
        a = random_matrix(300, 10, seed=7)
        slow = FrequentDirections(ell=6, dim=10)
        fast = FastFrequentDirections(ell=6, dim=10)
        for row in a:
            slow.update(row)
            fast.update(row)
        bound = (np.linalg.norm(a, "fro") ** 2) / 6
        err_slow = np.linalg.norm(a.T @ a - slow.covariance(), 2)
        err_fast = np.linalg.norm(a.T @ a - fast.covariance(), 2)
        assert err_slow <= bound + 1e-6
        assert err_fast <= bound + 1e-6

    def test_merge_error_bound(self):
        a = random_matrix(200, 10, seed=8)
        half = len(a) // 2
        fd1 = FastFrequentDirections(ell=8, dim=10)
        fd2 = FastFrequentDirections(ell=8, dim=10)
        for row in a[:half]:
            fd1.update(row)
        for row in a[half:]:
            fd2.update(row)
        fd1.merge(fd2)
        err = np.linalg.norm(a.T @ a - fd1.covariance(), 2)
        assert err <= (np.linalg.norm(a, "fro") ** 2) / fd1.ell + 1e-6

    def test_merge_rejects_mismatched(self):
        with pytest.raises(ValueError):
            FastFrequentDirections(4, 8).merge(FastFrequentDirections(4, 9))

    def test_memory_model_is_double_buffer(self):
        fd = FastFrequentDirections(ell=4, dim=8)
        assert fd.memory_bytes() == 2 * 4 * 8 * 8
