"""Tests for the dyadic CountMin hierarchy."""

import numpy as np
import pytest

from repro.sketches import DyadicCountMin


class TestDyadicCountMin:
    def test_point_query_overestimates(self):
        dy = DyadicCountMin(universe_bits=8, width=256, seed=0)
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 256, size=3_000)
        for key in keys:
            dy.update(int(key))
        counts = np.bincount(keys, minlength=256)
        for key in range(256):
            assert dy.query(key) >= counts[key]

    def test_range_sum_accurate_when_wide(self):
        dy = DyadicCountMin(universe_bits=8, width=1024, depth=4, seed=1)
        for key in range(200):
            dy.update(key, key + 1)
        true = sum(key + 1 for key in range(10, 101))
        assert dy.range_sum(10, 100) == pytest.approx(true, rel=0.05)

    def test_range_sum_full_universe(self):
        dy = DyadicCountMin(universe_bits=6, width=256, depth=4, seed=2)
        for key in range(64):
            dy.update(key, 2)
        assert dy.range_sum(0, 63) >= 128

    def test_heavy_hitters_found(self):
        dy = DyadicCountMin(universe_bits=10, width=1024, depth=4, seed=3)
        rng = np.random.default_rng(3)
        for _ in range(2_000):
            dy.update(int(rng.integers(0, 1024)))
        for _ in range(500):
            dy.update(777)
        hitters = dy.heavy_hitters(0.1)
        assert 777 in hitters
        assert len(hitters) < 20

    def test_heavy_hitters_empty_stream(self):
        dy = DyadicCountMin(universe_bits=4, width=16)
        assert dy.heavy_hitters(0.5) == []

    def test_rejects_out_of_universe(self):
        dy = DyadicCountMin(universe_bits=4, width=16)
        with pytest.raises(ValueError):
            dy.update(16)

    def test_rejects_empty_range(self):
        dy = DyadicCountMin(universe_bits=4, width=16)
        with pytest.raises(ValueError):
            dy.range_sum(5, 2)

    def test_memory_is_sum_of_levels(self):
        dy = DyadicCountMin(universe_bits=4, width=16, depth=2)
        per_level = 16 * 2 * 8
        assert dy.memory_bytes() == per_level * 5  # levels 0..4


class TestDyadicMerge:
    def test_merge_counter_identical_to_single_stream(self):
        rng = np.random.default_rng(20)
        keys = rng.integers(0, 256, size=4_000)
        split = 2_500
        single = DyadicCountMin(universe_bits=8, width=256, depth=4, seed=7)
        left = DyadicCountMin(universe_bits=8, width=256, depth=4, seed=7)
        right = DyadicCountMin(universe_bits=8, width=256, depth=4, seed=7)
        single.update_batch(keys)
        left.update_batch(keys[:split])
        right.update_batch(keys[split:])
        left.merge(right)
        assert left.total_weight == single.total_weight
        for merged_level, single_level in zip(left.levels, single.levels):
            assert np.array_equal(merged_level._table, single_level._table)

    def test_merge_preserves_range_sums_and_hitters(self):
        rng = np.random.default_rng(21)
        keys = np.concatenate([rng.integers(0, 512, size=2_000), np.full(800, 77)])
        rng.shuffle(keys)
        left = DyadicCountMin(universe_bits=9, width=1024, depth=4, seed=3)
        right = DyadicCountMin(universe_bits=9, width=1024, depth=4, seed=3)
        left.update_batch(keys[:1_400])
        right.update_batch(keys[1_400:])
        left.merge(right)
        counts = np.bincount(keys, minlength=512)
        assert left.range_sum(50, 100) >= int(counts[50:101].sum())
        assert 77 in left.heavy_hitters(0.1)

    def test_merge_rejects_mismatched_universe(self):
        with pytest.raises(ValueError):
            DyadicCountMin(universe_bits=4, width=16).merge(
                DyadicCountMin(universe_bits=5, width=16)
            )

    def test_merge_rejects_mismatched_levels(self):
        with pytest.raises(ValueError):
            DyadicCountMin(universe_bits=4, width=16, seed=0).merge(
                DyadicCountMin(universe_bits=4, width=16, seed=9)
            )
