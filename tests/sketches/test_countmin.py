"""Tests for the CountMin sketch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import CountMinSketch


def feed_zipfish(sketch, n=5_000, universe=200, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.zipf(1.3, size=n) % universe
    for key in keys:
        sketch.update(int(key))
    return keys


class TestCountMin:
    def test_never_underestimates(self):
        cm = CountMinSketch(width=64, depth=3, seed=0)
        keys = feed_zipfish(cm)
        counts = np.bincount(keys)
        for key, true_count in enumerate(counts):
            assert cm.query(key) >= true_count

    def test_error_bound(self):
        eps = 0.01
        cm = CountMinSketch.from_error(eps, delta=0.01, seed=1)
        keys = feed_zipfish(cm, n=20_000)
        counts = np.bincount(keys)
        overshoot = max(cm.query(key) - counts[key] for key in range(len(counts)))
        assert overshoot <= eps * len(keys)

    def test_exact_when_wide(self):
        cm = CountMinSketch(width=4096, depth=5, seed=2)
        for key in range(10):
            for _ in range(key + 1):
                cm.update(key)
        for key in range(10):
            assert cm.query(key) == key + 1

    def test_weighted_updates(self):
        cm = CountMinSketch(width=256, depth=3, seed=3)
        cm.update(5, 100)
        cm.update(5, 23)
        assert cm.query(5) >= 123

    def test_negative_weights_linear(self):
        cm = CountMinSketch(width=256, depth=3, seed=4)
        cm.update(5, 100)
        cm.update(5, -40)
        assert cm.query(5) >= 60
        assert cm.total_weight == 60

    def test_merge_equals_union(self):
        a = CountMinSketch(width=128, depth=3, seed=7)
        b = CountMinSketch(width=128, depth=3, seed=7)
        both = CountMinSketch(width=128, depth=3, seed=7)
        for key in range(50):
            a.update(key)
            both.update(key)
        for key in range(25, 75):
            b.update(key)
            both.update(key)
        a.merge(b)
        assert np.array_equal(a.counters(), both.counters())
        assert a.total_weight == both.total_weight

    def test_merge_rejects_mismatched(self):
        a = CountMinSketch(width=128, depth=3, seed=7)
        b = CountMinSketch(width=128, depth=3, seed=8)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_conservative_tighter_than_plain(self):
        plain = CountMinSketch(width=32, depth=3, seed=9)
        conservative = CountMinSketch(width=32, depth=3, seed=9, conservative=True)
        keys = feed_zipfish(plain, n=5_000, universe=500, seed=9)
        for key in keys:
            conservative.update(int(key))
        counts = np.bincount(keys, minlength=500)
        plain_err = sum(plain.query(key) - counts[key] for key in range(500))
        cons_err = sum(conservative.query(key) - counts[key] for key in range(500))
        assert cons_err <= plain_err
        for key in range(500):  # still never underestimates
            assert conservative.query(key) >= counts[key]

    def test_conservative_rejects_deletion_and_merge(self):
        conservative = CountMinSketch(width=32, depth=3, seed=1, conservative=True)
        with pytest.raises(ValueError):
            conservative.update(1, -1)
        other = CountMinSketch(width=32, depth=3, seed=1)
        with pytest.raises(ValueError):
            other.merge(conservative)

    def test_width_rounded_to_pow2(self):
        cm = CountMinSketch(width=100, depth=2)
        assert cm.width == 128

    def test_memory_model(self):
        cm = CountMinSketch(width=128, depth=3)
        assert cm.memory_bytes() == 128 * 3 * 8

    def test_from_error_validates(self):
        with pytest.raises(ValueError):
            CountMinSketch.from_error(0.0)
        with pytest.raises(ValueError):
            CountMinSketch.from_error(0.1, delta=1.5)

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=300)
    )
    @settings(max_examples=50, deadline=None)
    def test_property_overestimate_only(self, keys):
        cm = CountMinSketch(width=32, depth=3, seed=11)
        for key in keys:
            cm.update(key)
        for key in set(keys):
            assert cm.query(key) >= keys.count(key)
