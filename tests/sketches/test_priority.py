"""Tests for weighted priority sampling."""

import numpy as np
import pytest

from repro.sketches import PrioritySample


class TestPrioritySample:
    def test_keeps_k_items(self):
        ps = PrioritySample(k=20, seed=0)
        for item in range(200):
            ps.update(item, 1.0 + item % 5)
        assert len(ps) == 20
        assert len(ps.sample()) == 20

    def test_subset_sum_unbiased(self):
        # Average the estimator over many independent runs.
        true = sum(1.0 + (item % 10) for item in range(300) if item < 150)
        estimates = []
        for seed in range(200):
            ps = PrioritySample(k=40, seed=seed)
            for item in range(300):
                ps.update(item, 1.0 + (item % 10))
            estimates.append(ps.estimate_subset_sum(lambda item: item < 150))
        mean = float(np.mean(estimates))
        stderr = float(np.std(estimates)) / np.sqrt(len(estimates))
        assert abs(mean - true) < 4 * stderr + 0.01 * true

    def test_total_sum_estimate(self):
        total = sum(1.0 + (item % 7) for item in range(500))
        estimates = []
        for seed in range(100):
            ps = PrioritySample(k=50, seed=seed)
            for item in range(500):
                ps.update(item, 1.0 + (item % 7))
            estimates.append(ps.estimate_subset_sum(lambda item: True))
        assert abs(np.mean(estimates) - total) < 0.05 * total

    def test_heavy_items_always_kept(self):
        ps = PrioritySample(k=10, seed=3)
        for item in range(100):
            ps.update(item, 1.0)
        ps.update(999, 1e9)  # priority ~ 1e9/u, astronomically large
        assert 999 in [item for item, _ in ps.sample()]

    def test_adjusted_weights_at_least_tau(self):
        ps = PrioritySample(k=5, seed=1)
        for item in range(100):
            ps.update(item, 1.0 + item % 3)
        tau = ps.threshold()
        assert tau > 0
        for _, weight in ps.sample():
            assert weight >= tau - 1e-12

    def test_raw_sample_preserves_weights(self):
        ps = PrioritySample(k=5, seed=2)
        for item in range(50):
            ps.update(item, float(item + 1))
        for item, weight in ps.raw_sample():
            assert weight == float(item + 1)

    def test_rejects_nonpositive_weight(self):
        ps = PrioritySample(k=3, seed=0)
        with pytest.raises(ValueError):
            ps.update(1, 0.0)
        with pytest.raises(ValueError):
            ps.update(1, -1.0)

    def test_total_weight_tracked(self):
        ps = PrioritySample(k=3, seed=0)
        for item in range(10):
            ps.update(item, 2.0)
        assert ps.total_weight == pytest.approx(20.0)

    def test_memory_model(self):
        ps = PrioritySample(k=4, seed=0)
        for item in range(10):
            ps.update(item, 1.0)
        assert ps.memory_bytes() == 4 * 20
