"""Tests for the HyperLogLog sketch."""

import numpy as np
import pytest

from repro.sketches import HyperLogLog


class TestHyperLogLog:
    def test_estimate_within_error(self):
        hll = HyperLogLog(p=12, seed=0)
        for key in range(50_000):
            hll.update(key)
        estimate = hll.estimate()
        assert abs(estimate - 50_000) < 0.05 * 50_000

    def test_duplicates_do_not_inflate(self):
        hll = HyperLogLog(p=10, seed=1)
        for _ in range(20):
            for key in range(1_000):
                hll.update(key)
        assert abs(hll.estimate() - 1_000) < 0.15 * 1_000

    def test_small_range_correction(self):
        hll = HyperLogLog(p=10, seed=2)
        for key in range(10):
            hll.update(key)
        assert abs(hll.estimate() - 10) < 3

    def test_merge_is_union(self):
        a = HyperLogLog(p=11, seed=3)
        b = HyperLogLog(p=11, seed=3)
        union = HyperLogLog(p=11, seed=3)
        for key in range(10_000):
            a.update(key)
            union.update(key)
        for key in range(5_000, 20_000):
            b.update(key)
            union.update(key)
        a.merge(b)
        assert np.array_equal(a._registers, union._registers)
        assert abs(a.estimate() - 20_000) < 0.1 * 20_000

    def test_merge_rejects_mismatched(self):
        with pytest.raises(ValueError):
            HyperLogLog(p=10, seed=0).merge(HyperLogLog(p=11, seed=0))
        with pytest.raises(ValueError):
            HyperLogLog(p=10, seed=0).merge(HyperLogLog(p=10, seed=1))

    def test_from_error_sizing(self):
        hll = HyperLogLog.from_error(0.02)
        assert 1.04 / np.sqrt(hll.m) <= 0.025
        with pytest.raises(ValueError):
            HyperLogLog.from_error(0.0)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            HyperLogLog(p=3)
        with pytest.raises(ValueError):
            HyperLogLog(p=19)

    def test_memory_model(self):
        hll = HyperLogLog(p=10)
        assert hll.memory_bytes() == 1024

    def test_deterministic_with_seed(self):
        a = HyperLogLog(p=10, seed=5)
        b = HyperLogLog(p=10, seed=5)
        for key in range(1_000):
            a.update(key)
            b.update(key)
        assert a.estimate() == b.estimate()
