"""Tests for the Count sketch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import CountSketch


class TestCountSketch:
    def test_accurate_on_heavy_keys(self):
        cs = CountSketch(width=512, depth=5, seed=0)
        rng = np.random.default_rng(0)
        keys = rng.zipf(1.5, size=20_000) % 1_000
        for key in keys:
            cs.update(int(key))
        counts = np.bincount(keys, minlength=1_000)
        l2 = float(np.sqrt((counts.astype(float) ** 2).sum()))
        heavy = np.argsort(counts)[-10:]
        for key in heavy:
            assert abs(cs.query(int(key)) - counts[key]) <= 0.2 * l2

    def test_supports_deletions(self):
        cs = CountSketch(width=256, depth=5, seed=1)
        cs.update(42, 10)
        cs.update(42, -10)
        assert cs.query(42) == 0

    def test_linearity_via_merge(self):
        a = CountSketch(width=128, depth=5, seed=2)
        b = CountSketch(width=128, depth=5, seed=2)
        combined = CountSketch(width=128, depth=5, seed=2)
        for key in range(100):
            a.update(key, key)
            combined.update(key, key)
        for key in range(100):
            b.update(key, 1)
            combined.update(key, 1)
        a.merge(b)
        assert np.array_equal(a.counters(), combined.counters())

    def test_merge_rejects_mismatched_seed(self):
        a = CountSketch(width=128, depth=5, seed=2)
        b = CountSketch(width=128, depth=5, seed=3)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_unbiasedness_across_seeds(self):
        # Mean estimate over many independent sketches approaches the truth.
        estimates = []
        for seed in range(30):
            cs = CountSketch(width=16, depth=1, seed=seed)
            for key in range(40):
                cs.update(key, 5)
            estimates.append(cs.query(0))
        assert abs(np.mean(estimates) - 5) < 10

    def test_memory_model(self):
        cs = CountSketch(width=64, depth=5)
        assert cs.memory_bytes() == 64 * 5 * 8

    def test_from_error_sizes(self):
        cs = CountSketch.from_error(0.1, delta=0.01)
        assert cs.width >= 3 / 0.1**2
        with pytest.raises(ValueError):
            CountSketch.from_error(2.0)

    @given(
        updates=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=-20, max_value=20),
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_exact_when_wide(self, updates):
        # With width far above the number of distinct keys and depth 5, the
        # median estimate is exact for most keys; check total preserved.
        cs = CountSketch(width=4096, depth=5, seed=5)
        truth = {}
        for key, weight in updates:
            if weight == 0:
                continue
            cs.update(key, weight)
            truth[key] = truth.get(key, 0) + weight
        for key, expected in truth.items():
            assert cs.query(key) == expected
