"""Property tests: ``update_batch`` ≡ the scalar ``update`` loop.

Two contracts, per docs/BATCHING.md:

* **Exact equivalence** — deterministic sketches (CountMin, Count sketch,
  Bloom, HyperLogLog, KLL, dyadic CountMin) and the seeded samplers
  (reservoir, top-k priority, priority, weighted reservoir) must end in
  *bit-identical* state: same tables/registers, same heap contents, and —
  for the samplers — the same PCG64 position, so interleaving scalar and
  batch ingest stays deterministic.
* **Guarantee-level equivalence** — Misra-Gries and SpaceSaving pre-aggregate
  the batch (documented deviation: they are order-dependent summaries), so
  the test asserts their error guarantees and total weight instead of state.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import (
    BloomFilter,
    CountMinSketch,
    CountSketch,
    DyadicCountMin,
    HyperLogLog,
    KllSketch,
    MisraGries,
    PrioritySample,
    ReservoirSample,
    SpaceSaving,
    TopKPrioritySample,
    WeightedReservoirWR,
)

keys_strategy = st.lists(st.integers(min_value=0, max_value=500), max_size=300)
weights_strategy = st.integers(min_value=1, max_value=9)
values_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), max_size=300
)


def scalar_loop(sketch, items, weights=None):
    if weights is None:
        for item in items:
            sketch.update(item)
    else:
        for item, weight in zip(items, weights):
            sketch.update(item, weight)


def rng_state(sketch):
    return sketch._rng.bit_generator.state


class TestExactDeterministic:
    @given(keys=keys_strategy, weights=st.lists(weights_strategy, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_countmin(self, keys, weights):
        n = min(len(keys), len(weights))
        keys, weights = keys[:n], weights[:n]
        for conservative in (False, True):
            scalar = CountMinSketch(width=64, depth=3, seed=5, conservative=conservative)
            batch = CountMinSketch(width=64, depth=3, seed=5, conservative=conservative)
            scalar_loop(scalar, keys, weights)
            batch.update_batch(keys, weights)
            assert np.array_equal(scalar._table, batch._table)
            assert scalar.total_weight == batch.total_weight

    @given(keys=keys_strategy)
    @settings(max_examples=30, deadline=None)
    def test_countmin_unweighted(self, keys):
        scalar = CountMinSketch(width=64, depth=3, seed=5)
        batch = CountMinSketch(width=64, depth=3, seed=5)
        scalar_loop(scalar, keys)
        batch.update_batch(keys)
        assert np.array_equal(scalar._table, batch._table)

    @given(keys=keys_strategy, weights=st.lists(weights_strategy, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_countsketch(self, keys, weights):
        n = min(len(keys), len(weights))
        scalar = CountSketch(width=64, depth=3, seed=7)
        batch = CountSketch(width=64, depth=3, seed=7)
        scalar_loop(scalar, keys[:n], weights[:n])
        batch.update_batch(keys[:n], weights[:n])
        assert np.array_equal(scalar.counters(), batch.counters())

    @given(keys=keys_strategy)
    @settings(max_examples=30, deadline=None)
    def test_bloom(self, keys):
        scalar = BloomFilter(1024, num_hashes=4, seed=3)
        batch = BloomFilter(1024, num_hashes=4, seed=3)
        scalar_loop(scalar, keys)
        batch.update_batch(keys)
        assert np.array_equal(scalar._array, batch._array)
        assert scalar.count == batch.count

    @given(keys=keys_strategy)
    @settings(max_examples=30, deadline=None)
    def test_hyperloglog(self, keys):
        scalar = HyperLogLog(p=8, seed=9)
        batch = HyperLogLog(p=8, seed=9)
        scalar_loop(scalar, keys)
        batch.update_batch(keys)
        assert np.array_equal(scalar._registers, batch._registers)
        assert scalar.count == batch.count
        assert scalar.estimate() == batch.estimate()

    @given(values=values_strategy)
    @settings(max_examples=30, deadline=None)
    def test_kll(self, values):
        scalar = KllSketch(k=60, seed=2)
        batch = KllSketch(k=60, seed=2)
        scalar_loop(scalar, values)
        batch.update_batch(values)
        assert scalar._levels == batch._levels
        assert rng_state(scalar) == rng_state(batch)
        if values:
            for phi in (0.0, 0.25, 0.5, 0.75, 1.0):
                assert scalar.quantile(phi) == batch.quantile(phi)

    @given(keys=st.lists(st.integers(min_value=0, max_value=255), max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_dyadic_countmin(self, keys):
        scalar = DyadicCountMin(universe_bits=8, width=64, seed=4)
        batch = DyadicCountMin(universe_bits=8, width=64, seed=4)
        scalar_loop(scalar, keys)
        batch.update_batch(keys)
        for lo, hi in ((0, 255), (10, 20), (100, 101)):
            assert scalar.range_sum(lo, hi) == batch.range_sum(lo, hi)


class TestExactSeededSamplers:
    """Batch ingest must consume the PCG64 stream exactly as the scalar loop."""

    @given(values=values_strategy)
    @settings(max_examples=30, deadline=None)
    def test_reservoir_classic(self, values):
        scalar = ReservoirSample(8, seed=6)
        batch = ReservoirSample(8, seed=6)
        scalar_loop(scalar, values)
        batch.update_batch(values)
        assert scalar.sample() == batch.sample()
        assert rng_state(scalar) == rng_state(batch)

    @given(values=values_strategy)
    @settings(max_examples=30, deadline=None)
    def test_reservoir_independent_chains(self, values):
        scalar = ReservoirSample(8, seed=6, independent_chains=True)
        batch = ReservoirSample(8, seed=6, independent_chains=True)
        scalar_loop(scalar, values)
        batch.update_batch(values)
        assert scalar.sample() == batch.sample()
        assert rng_state(scalar) == rng_state(batch)

    @given(values=values_strategy)
    @settings(max_examples=30, deadline=None)
    def test_topk_priority(self, values):
        scalar = TopKPrioritySample(8, seed=1)
        batch = TopKPrioritySample(8, seed=1)
        scalar_loop(scalar, values)
        batch.update_batch(values)
        assert sorted(scalar._heap) == sorted(batch._heap)
        assert rng_state(scalar) == rng_state(batch)

    @given(values=values_strategy)
    @settings(max_examples=30, deadline=None)
    def test_priority_sample(self, values):
        weights = [abs(v) + 1.0 for v in values]
        scalar = PrioritySample(8, seed=1)
        batch = PrioritySample(8, seed=1)
        for value, weight in zip(values, weights):
            scalar.update(value, weight)
        batch.update_batch(values, weights)
        assert sorted(scalar.raw_sample()) == sorted(batch.raw_sample())
        assert scalar.threshold() == batch.threshold()
        assert rng_state(scalar) == rng_state(batch)

    @given(values=values_strategy)
    @settings(max_examples=30, deadline=None)
    def test_weighted_reservoir(self, values):
        weights = [abs(v) + 0.5 for v in values]
        scalar = WeightedReservoirWR(4, seed=1)
        batch = WeightedReservoirWR(4, seed=1)
        for value, weight in zip(values, weights):
            scalar.update(value, weight)
        batch.update_batch(values, weights)
        assert scalar.sample() == batch.sample()
        assert rng_state(scalar) == rng_state(batch)

    def test_interleaving_scalar_and_batch_is_deterministic(self):
        """A mixed scalar/batch feed equals the all-scalar feed item by item."""
        rng = np.random.default_rng(0)
        values = rng.normal(size=200).tolist()
        scalar = TopKPrioritySample(16, seed=3)
        mixed = TopKPrioritySample(16, seed=3)
        scalar_loop(scalar, values)
        mixed.update_batch(values[:50])
        for value in values[50:80]:
            mixed.update(value)
        mixed.update_batch(values[80:])
        assert sorted(scalar._heap) == sorted(mixed._heap)
        assert rng_state(scalar) == rng_state(mixed)


class TestGuaranteeLevelAggregators:
    """Misra-Gries / SpaceSaving pre-aggregate: guarantees, not bit-identity."""

    @given(keys=st.lists(st.integers(min_value=0, max_value=40), max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_misra_gries_guarantee(self, keys):
        batch = MisraGries(8)
        batch.update_batch(keys)
        truth = {key: keys.count(key) for key in set(keys)}
        total = len(keys)
        assert batch.total_weight == total
        for key, count in truth.items():
            estimate = batch.query(key)
            assert estimate <= count  # never overestimates
            assert estimate >= count - total / (8 + 1)  # W/(k+1) bound

    @given(keys=st.lists(st.integers(min_value=0, max_value=40), max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_spacesaving_guarantee(self, keys):
        batch = SpaceSaving(8)
        batch.update_batch(keys)
        truth = {key: keys.count(key) for key in set(keys)}
        total = len(keys)
        assert batch.total_weight == total
        for key, count in truth.items():
            estimate = batch.query(key)
            if estimate:
                assert estimate >= count  # never underestimates (once kept)
                assert estimate <= count + total / 8  # W/k bound

    @pytest.mark.parametrize("cls", [MisraGries, SpaceSaving])
    def test_invalid_weight_rejects_batch_atomically(self, cls):
        sketch = cls(8)
        sketch.update_batch([1, 2, 3])
        before = dict(sketch.items()) if hasattr(sketch, "items") else dict(sketch._counters)
        with pytest.raises(ValueError):
            sketch.update_batch([4, 5, 6], [1, 0, 2])
        after = dict(sketch.items()) if hasattr(sketch, "items") else dict(sketch._counters)
        assert before == after


class TestEmptyAndEdgeBatches:
    def test_empty_batches_are_noops(self):
        for sketch in (
            CountMinSketch(width=32, seed=0),
            BloomFilter(256, seed=0),
            HyperLogLog(p=6, seed=0),
            KllSketch(k=40, seed=0),
            MisraGries(4),
            SpaceSaving(4),
            ReservoirSample(4, seed=0),
            TopKPrioritySample(4, seed=0),
        ):
            sketch.update_batch([])
            assert getattr(sketch, "count", getattr(sketch, "total_weight", 0)) == 0

    def test_numpy_and_list_inputs_agree(self):
        keys = list(range(100)) * 3
        a = CountMinSketch(width=64, seed=1)
        b = CountMinSketch(width=64, seed=1)
        a.update_batch(keys)
        b.update_batch(np.asarray(keys))
        assert np.array_equal(a._table, b._table)
