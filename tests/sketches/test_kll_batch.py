"""Vectorised KLL batch path ≡ scalar loop, bit for bit.

The two-phase batch compactor (size-only schedule simulation, then
level-matrix execution — see ``KllSketch._update_batch_vectorized``)
must leave the sketch in *exactly* the state the per-item loop would:
identical level buffers (same floats, same order) **and** identical
PCG64 position, so scalar and batch ingest interleave deterministically.
Hypothesis drives stream shapes deep enough to force hierarchy growth,
odd-capacity compactions, and the chunked fallback dtypes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import KllSketch


def scalar_twin(sketch, items):
    for item in items:
        sketch.update(item)


def assert_identical(a, b):
    assert a._levels == b._levels
    assert a.count == b.count
    assert a._rng.bit_generator.state == b._rng.bit_generator.state


values_strategy = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False), max_size=400
)


class TestBitIdentity:
    @given(values=values_strategy, k=st.sampled_from([4, 8, 37, 128]))
    @settings(max_examples=40, deadline=None)
    def test_one_shot_batch(self, values, k):
        batch = KllSketch(k=k, seed=5)
        scalar = KllSketch(k=k, seed=5)
        batch.update_batch(values)
        scalar_twin(scalar, values)
        assert_identical(batch, scalar)

    @given(
        values=values_strategy,
        k=st.sampled_from([4, 16, 64]),
        cuts=st.lists(st.integers(min_value=1, max_value=150), max_size=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_incremental_batches(self, values, k, cuts):
        batch = KllSketch(k=k, seed=9)
        scalar = KllSketch(k=k, seed=9)
        position = 0
        for cut in cuts:
            chunk = values[position : position + cut]
            batch.update_batch(chunk)
            scalar_twin(scalar, chunk)
            position += cut
        rest = values[position:]
        batch.update_batch(rest)
        scalar_twin(scalar, rest)
        assert_identical(batch, scalar)

    @given(values=values_strategy, k=st.sampled_from([4, 32]))
    @settings(max_examples=25, deadline=None)
    def test_interleaved_scalar_and_batch(self, values, k):
        # exercises the _float_safe invalidation: scalar updates between
        # batches force the vectorized path to re-validate level buffers
        a = KllSketch(k=k, seed=3)
        b = KllSketch(k=k, seed=3)
        half = len(values) // 2
        a.update_batch(values[:half])
        scalar_twin(b, values[:half])
        for value in values[half:]:
            a.update(value)
            b.update(value)
        a.update_batch(values)
        scalar_twin(b, values)
        assert_identical(a, b)

    def test_deep_hierarchy(self):
        # 200k items through k=32 builds a tall compactor hierarchy; the
        # schedule simulation must track every growth fixpoint exactly
        stream = np.random.default_rng(11).normal(size=200_000)
        batch = KllSketch(k=32, seed=1)
        scalar = KllSketch(k=32, seed=1)
        for start in range(0, len(stream), 4096):
            batch.update_batch(stream[start : start + 4096])
        scalar_twin(scalar, stream.tolist())
        assert_identical(batch, scalar)

    def test_infinities_survive_the_pad(self):
        # the matrix compactor pads ragged rows with +inf; real ±inf values
        # in the stream must still compact identically to the scalar path
        rng = np.random.default_rng(2)
        values = rng.normal(size=3000)
        values[::97] = np.inf
        values[::101] = -np.inf
        batch = KllSketch(k=16, seed=4)
        scalar = KllSketch(k=16, seed=4)
        batch.update_batch(values)
        scalar_twin(scalar, values.tolist())
        assert_identical(batch, scalar)


class TestFallbackDtypes:
    """Dtypes the float64 matrix cannot represent exactly take the chunked
    scalar-order path — still bit-identical to the per-item loop."""

    def test_strings(self):
        words = [f"w{i % 37:03d}" for i in range(500)]
        batch = KllSketch(k=16, seed=7)
        scalar = KllSketch(k=16, seed=7)
        batch.update_batch(words)
        scalar_twin(scalar, words)
        assert_identical(batch, scalar)

    def test_integers_beyond_float64_exactness(self):
        big = [2**53 + delta for delta in range(300)]
        batch = KllSketch(k=16, seed=7)
        scalar = KllSketch(k=16, seed=7)
        batch.update_batch(big)
        scalar_twin(scalar, big)
        assert_identical(batch, scalar)
        # and the retained items kept integer exactness
        assert all(
            isinstance(item, int) for level in batch._levels for item in level
        )

    def test_nan_rejected_like_scalar(self):
        values = [1.0, float("nan"), 2.0]
        batch = KllSketch(k=16, seed=7)
        scalar = KllSketch(k=16, seed=7)
        batch.update_batch(values)
        scalar_twin(scalar, values)
        assert_identical(batch, scalar)

    def test_small_ints_take_the_exact_path(self):
        keys = np.random.default_rng(0).integers(0, 1000, size=2000)
        batch = KllSketch(k=24, seed=7)
        scalar = KllSketch(k=24, seed=7)
        batch.update_batch(keys)
        scalar_twin(scalar, [int(key) for key in keys])
        assert_identical(batch, scalar)
