"""Tests for the KLL quantile sketch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import KllSketch


def rank_error(values, sketch, probes=50):
    ordered = np.sort(values)
    worst = 0.0
    for phi in np.linspace(0.02, 0.98, probes):
        estimate = sketch.quantile(phi)
        true_rank = np.searchsorted(ordered, estimate, side="right") / len(ordered)
        worst = max(worst, abs(true_rank - phi))
    return worst


class TestKllSketch:
    def test_rank_error_bound(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=20_000)
        kll = KllSketch(k=200, seed=0)
        for value in values:
            kll.update(float(value))
        assert rank_error(values, kll) < 0.03

    def test_exact_when_small(self):
        kll = KllSketch(k=64, seed=0)
        values = list(range(50))
        for value in values:
            kll.update(value)
        assert kll.quantile(0.0) == 0
        assert kll.quantile(1.0) == 49
        assert abs(kll.quantile(0.5) - 24.5) <= 1

    def test_cdf_monotone(self):
        rng = np.random.default_rng(1)
        kll = KllSketch(k=100, seed=1)
        for value in rng.uniform(0, 100, size=5_000):
            kll.update(float(value))
        cdf_values = [kll.cdf(x) for x in np.linspace(0, 100, 21)]
        assert all(b >= a for a, b in zip(cdf_values, cdf_values[1:]))
        assert cdf_values[0] <= 0.1 and cdf_values[-1] >= 0.9

    def test_rank_counts_weighted_items(self):
        kll = KllSketch(k=100, seed=0)
        for value in range(1_000):
            kll.update(value)
        assert kll.rank(499) == pytest.approx(500, rel=0.05)

    def test_space_sublinear(self):
        kll = KllSketch(k=100, seed=2)
        for value in range(100_000):
            kll.update(value)
        assert kll.retained() < 3_000

    def test_merge_rank_error(self):
        rng = np.random.default_rng(3)
        values_a = rng.normal(0, 1, size=8_000)
        values_b = rng.normal(3, 1, size=8_000)
        a = KllSketch(k=200, seed=3)
        b = KllSketch(k=200, seed=4)
        for value in values_a:
            a.update(float(value))
        for value in values_b:
            b.update(float(value))
        a.merge(b)
        assert a.count == 16_000
        assert rank_error(np.concatenate([values_a, values_b]), a) < 0.04

    def test_merge_rejects_mismatched_k(self):
        with pytest.raises(ValueError):
            KllSketch(k=100).merge(KllSketch(k=128))

    def test_empty_queries_raise(self):
        kll = KllSketch(k=16)
        with pytest.raises(ValueError):
            kll.quantile(0.5)
        with pytest.raises(ValueError):
            kll.cdf(0.0)

    def test_phi_validated(self):
        kll = KllSketch(k=16)
        kll.update(1.0)
        with pytest.raises(ValueError):
            kll.quantile(1.5)

    def test_from_error_sizing(self):
        kll = KllSketch.from_error(0.01)
        assert kll.k >= 200

    def test_memory_model(self):
        kll = KllSketch(k=16)
        for value in range(10):
            kll.update(value)
        assert kll.memory_bytes() == kll.retained() * 8

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=500,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_quantiles_within_range(self, values):
        kll = KllSketch(k=32, seed=5)
        for value in values:
            kll.update(value)
        lo, hi = min(values), max(values)
        for phi in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert lo <= kll.quantile(phi) <= hi
