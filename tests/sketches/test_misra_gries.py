"""Tests for the Misra-Gries summary."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import MisraGries


class TestMisraGries:
    def test_never_overestimates(self):
        mg = MisraGries(k=10)
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 100, size=5_000)
        for key in keys:
            mg.update(int(key))
        counts = np.bincount(keys, minlength=100)
        for key in range(100):
            assert mg.query(key) <= counts[key]

    def test_error_bound(self):
        k = 9  # eps = 1/(k+1) = 0.1
        mg = MisraGries(k=k)
        rng = np.random.default_rng(1)
        keys = rng.zipf(1.2, size=10_000) % 50
        for key in keys:
            mg.update(int(key))
        counts = np.bincount(keys, minlength=50)
        bound = len(keys) / (k + 1)
        for key in range(50):
            assert counts[key] - mg.query(key) <= bound + 1e-9

    def test_decrement_bound_tracks_error(self):
        mg = MisraGries(k=5)
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 40, size=3_000)
        for key in keys:
            mg.update(int(key))
        counts = np.bincount(keys, minlength=40)
        for key in range(40):
            assert counts[key] - mg.query(key) <= mg.decrement_bound

    def test_exact_with_few_keys(self):
        mg = MisraGries(k=10)
        for key in range(5):
            for _ in range(key + 1):
                mg.update(key)
        for key in range(5):
            assert mg.query(key) == key + 1

    def test_weighted_updates(self):
        mg = MisraGries(k=4)
        mg.update(1, 100)
        mg.update(2, 50)
        assert mg.query(1) == 100
        assert mg.total_weight == 150

    def test_heavy_weight_survives_eviction_round(self):
        mg = MisraGries(k=2)
        mg.update(1, 1)
        mg.update(2, 1)
        mg.update(3, 10)  # forces a decrement round, 3 must survive
        assert mg.query(3) >= 8
        assert mg.total_weight == 12

    def test_rejects_nonpositive_weight(self):
        mg = MisraGries(k=3)
        with pytest.raises(ValueError):
            mg.update(1, 0)
        with pytest.raises(ValueError):
            mg.update(1, -2)

    def test_at_most_k_counters(self):
        mg = MisraGries(k=7)
        for key in range(1_000):
            mg.update(key)
        assert len(mg) <= 7

    def test_heavy_hitters_finds_majority(self):
        mg = MisraGries.from_error(0.05)
        for _ in range(600):
            mg.update(1)
        for key in range(2, 402):
            mg.update(key)
        hitters = mg.heavy_hitters(0.3)
        assert hitters == [1]

    def test_merge_preserves_error_bound(self):
        k = 19
        a = MisraGries(k=k)
        b = MisraGries(k=k)
        rng = np.random.default_rng(3)
        keys_a = rng.zipf(1.3, size=4_000) % 60
        keys_b = rng.zipf(1.3, size=4_000) % 60
        for key in keys_a:
            a.update(int(key))
        for key in keys_b:
            b.update(int(key))
        a.merge(b)
        counts = np.bincount(np.concatenate([keys_a, keys_b]), minlength=60)
        total = len(keys_a) + len(keys_b)
        assert len(a) <= k
        assert a.total_weight == total
        for key in range(60):
            assert a.query(key) <= counts[key]
            assert counts[key] - a.query(key) <= total / (k + 1) + 1e-9

    def test_merge_rejects_mismatched_k(self):
        with pytest.raises(ValueError):
            MisraGries(3).merge(MisraGries(4))

    def test_from_error_validates(self):
        with pytest.raises(ValueError):
            MisraGries.from_error(0.0)
        assert MisraGries.from_error(0.1).k == 9

    def test_memory_model(self):
        mg = MisraGries(k=5)
        for key in range(5):
            mg.update(key)
        assert mg.memory_bytes() == 5 * 12

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=25), min_size=1, max_size=400),
        k=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_sandwich_bound(self, keys, k):
        mg = MisraGries(k=k)
        for key in keys:
            mg.update(key)
        n = len(keys)
        for key in set(keys):
            estimate = mg.query(key)
            true = keys.count(key)
            assert estimate <= true
            assert true - estimate <= n / (k + 1) + 1e-9
