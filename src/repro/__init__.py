"""repro — At-the-time and Back-in-time Persistent Sketches.

A from-scratch Python reproduction of Shi, Zhao, Peng, Li & Phillips,
"At-the-time and Back-in-time Persistent Sketches" (SIGMOD 2021).

Layout
------
``repro.sketches``
    Classic streaming sketches (CountMin, Count sketch, Misra-Gries,
    SpaceSaving, Frequent Directions, KLL, reservoir/priority samples, ...).
``repro.core``
    The paper's persistence machinery: persistent samples (Section 3),
    checkpoint chaining and PFD (Section 4), merge trees (Section 5).
``repro.persistent``
    Problem-level public API: ATTP/BITP heavy hitters, matrix covariance,
    quantiles, range counting, KDE.
``repro.baselines``
    The PCM / PCM_HH competitor, columnar-store stand-ins, exact oracles.
``repro.workloads``
    Calibrated synthetic WorldCup'98 logs and Section-6.3 matrix streams.
``repro.evaluation``
    Metrics, the C-layout memory model, experiment harness, reporting.
``repro.durability``
    Crash-safe ingestion: segmented write-ahead log, DurableSketch
    (log-then-apply + snapshots), snapshot/WAL-replay recovery,
    fault-injection harness.
``repro.service``
    Sharded concurrent ingest + query: hash/round-robin shard router,
    per-shard worker threads with bounded queues and backpressure, a
    fan-out/merge query coordinator with a watermark-keyed answer cache,
    and durable per-shard recovery.
``repro.telemetry``
    Observability: metrics registry (counters/gauges/histograms), tracing
    spans, memory accounting against paper space bounds, JSONL and
    Prometheus exporters.  Off by default; ``repro.telemetry.enable()``.
"""

__version__ = "1.0.0"

from repro import (
    baselines,
    core,
    durability,
    evaluation,
    persistent,
    service,
    sketches,
    telemetry,
    workloads,
)

__all__ = [
    "__version__",
    "baselines",
    "core",
    "durability",
    "evaluation",
    "persistent",
    "service",
    "sketches",
    "telemetry",
    "workloads",
]
