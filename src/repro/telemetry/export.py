"""Exporters: JSON-lines snapshots, trace dumps, and Prometheus text.

Two complementary shapes of the same registry state:

* **JSON lines** (:func:`snapshot_lines` / :func:`write_jsonl` /
  :func:`load_jsonl`) — one JSON object per line, one line per metric
  sample, self-describing and append-friendly.  This is the format the
  evaluation harness writes next to its figure outputs, and it round-trips:
  ``load_jsonl`` returns :class:`MetricSample` objects carrying exactly the
  name/type/labels/value that were exported.
* **Prometheus text exposition** (:func:`prometheus_text`) — the
  ``# HELP`` / ``# TYPE`` / sample-line grammar scraped by a Prometheus
  server, with histograms expanded into cumulative ``_bucket{le=...}``
  series plus ``_sum`` and ``_count``.

Both exporters read the registry passed in (defaulting to the global one)
and never mutate it; exporting with telemetry disabled is allowed and
simply serialises whatever was recorded while it was on.

Traces export the same way: :func:`write_traces_jsonl` dumps the span
collector (one JSON object per finished span, trace/span/parent ids and
attributes included) and :func:`load_traces_jsonl` round-trips the lines
back into :class:`~repro.telemetry.spans.SpanRecord` objects, so a trace
captured on a server can be reassembled and inspected offline.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.telemetry.registry import Histogram, MetricsRegistry, TELEMETRY
from repro.telemetry.spans import SPANS, SpanCollector, SpanRecord


@dataclass(frozen=True)
class MetricSample:
    """One exported sample: a counter/gauge value or a whole histogram."""

    name: str
    kind: str  # counter | gauge | histogram
    labels: Dict[str, str] = field(default_factory=dict)
    value: Optional[float] = None  # counters and gauges
    count: Optional[int] = None  # histograms
    sum: Optional[float] = None
    buckets: Optional[List[List[float]]] = None  # [upper_bound, count] pairs

    def as_dict(self) -> dict:
        """The JSON-line payload for this sample."""
        payload = {"name": self.name, "kind": self.kind, "labels": self.labels}
        if self.kind == "histogram":
            payload.update(count=self.count, sum=self.sum, buckets=self.buckets)
        else:
            payload["value"] = self.value
        return payload


def iter_samples(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricSample]:
    """Yield every sample of ``registry`` (default: the global one)."""
    registry = registry or TELEMETRY.registry
    for family in registry.families():
        for labels, child in family.samples():
            if isinstance(child, Histogram):
                yield MetricSample(
                    name=family.name,
                    kind="histogram",
                    labels=labels,
                    count=child.count,
                    sum=child.sum,
                    buckets=[
                        [bound, count]
                        for bound, count in zip(child.bounds, child.bucket_counts)
                    ]
                    + [[math.inf, child.bucket_counts[-1]]],
                )
            else:
                yield MetricSample(
                    name=family.name,
                    kind=family.kind,
                    labels=labels,
                    value=child.value,
                )


def snapshot_lines(registry: Optional[MetricsRegistry] = None) -> List[str]:
    """The registry as JSON lines (one serialized sample per line)."""
    return [
        json.dumps(_finite(sample.as_dict()), sort_keys=True)
        for sample in iter_samples(registry)
    ]


def _finite(payload: dict) -> dict:
    """JSON has no Infinity literal; encode the +inf bucket bound as the
    string ``"+Inf"`` (the Prometheus spelling)."""
    buckets = payload.get("buckets")
    if buckets:
        payload["buckets"] = [
            ["+Inf" if math.isinf(bound) else bound, count]
            for bound, count in buckets
        ]
    return payload


def write_jsonl(path, registry: Optional[MetricsRegistry] = None) -> Path:
    """Write the registry snapshot to ``path`` as JSON lines."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = snapshot_lines(registry)
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def load_jsonl(path) -> List[MetricSample]:
    """Load a JSON-lines snapshot back into :class:`MetricSample` objects."""
    samples: List[MetricSample] = []
    for line_number, line in enumerate(Path(path).read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}:{line_number}: not valid JSON: {error}") from error
        buckets = payload.get("buckets")
        if buckets is not None:
            buckets = [
                [math.inf if bound == "+Inf" else float(bound), int(count)]
                for bound, count in buckets
            ]
        samples.append(
            MetricSample(
                name=payload["name"],
                kind=payload["kind"],
                labels=dict(payload.get("labels", {})),
                value=payload.get("value"),
                count=payload.get("count"),
                sum=payload.get("sum"),
                buckets=buckets,
            )
        )
    return samples


def write_traces_jsonl(path, spans: Optional[SpanCollector] = None) -> Path:
    """Write every retained span (default: the global collector) to ``path``.

    One JSON object per line, one line per finished span, in recording
    order — ``name``, nesting ``depth``/``parent``, monotonic ``start``,
    wall/CPU seconds, ``trace_id``/``span_id``/``parent_id``, ``attrs``
    and the recording ``thread``.  Round-trips through
    :func:`load_traces_jsonl`.
    """
    spans = spans if spans is not None else SPANS
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        json.dumps(record.as_dict(), sort_keys=True)
        for record in spans.snapshot()
    ]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def load_traces_jsonl(path) -> List[SpanRecord]:
    """Load a trace dump back into :class:`SpanRecord` objects.

    The loaded records compare equal to the exported ones field-for-field;
    group them by ``trace_id`` (or feed a fresh
    :class:`~repro.telemetry.spans.SpanCollector` via ``record``) to
    reassemble per-request trace trees offline.
    """
    records: List[SpanRecord] = []
    for line_number, line in enumerate(Path(path).read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}:{line_number}: not valid JSON: {error}") from error
        records.append(
            SpanRecord(
                name=payload["name"],
                depth=int(payload["depth"]),
                parent=payload.get("parent"),
                start=float(payload["start"]),
                wall_seconds=float(payload["wall_seconds"]),
                cpu_seconds=float(payload["cpu_seconds"]),
                trace_id=payload.get("trace_id", ""),
                span_id=payload.get("span_id", ""),
                parent_id=payload.get("parent_id"),
                attrs=dict(payload.get("attrs", {})),
                thread=payload.get("thread", ""),
            )
        )
    return records


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry in the Prometheus text exposition format.

    Histograms are expanded to cumulative ``_bucket`` series (the ``le``
    label, ending at ``+Inf``) plus ``_sum`` and ``_count``, exactly as a
    Prometheus client library would expose them.
    """
    registry = registry or TELEMETRY.registry
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, child in family.samples():
            if isinstance(child, Histogram):
                cumulative = 0
                for bound, count in zip(child.bounds, child.bucket_counts):
                    cumulative += count
                    bucket_labels = dict(labels, le=_format_value(bound))
                    lines.append(
                        f"{family.name}_bucket{_label_text(bucket_labels)} {cumulative}"
                    )
                cumulative += child.bucket_counts[-1]
                bucket_labels = dict(labels, le="+Inf")
                lines.append(
                    f"{family.name}_bucket{_label_text(bucket_labels)} {cumulative}"
                )
                lines.append(
                    f"{family.name}_sum{_label_text(labels)} {_format_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{_label_text(labels)} {child.count}")
            else:
                lines.append(
                    f"{family.name}{_label_text(labels)} {_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n"
