"""Lightweight tracing spans: nesting, wall time, CPU time.

A span brackets one operation::

    from repro.telemetry.spans import span

    with span("store.snapshot"):
        ...

When telemetry is disabled, :func:`span` returns a shared no-op context
manager — one attribute check plus one function call, no allocation.  When
enabled, finished spans land in the process-global :data:`SPANS` collector
(a bounded ring buffer) carrying their name, nesting depth, parent name,
wall seconds (``time.perf_counter``) and CPU seconds (``time.process_time``),
and every span additionally feeds the ``span_wall_seconds`` histogram so
per-operation p50/p95/p99 are available from the registry alone.

Span naming convention (enforced only by review, documented in
docs/OBSERVABILITY.md): ``<component>.<operation>``, lowercase, dot-
separated — e.g. ``wal.rotate``, ``merge_tree.seal_block``,
``harness.feed_log_stream``.

Nesting is tracked per thread (a ``threading.local`` stack), so concurrent
readers do not corrupt each other's parent chains.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Optional

from repro.telemetry.registry import TELEMETRY

#: Retain at most this many finished spans (oldest evicted first).
DEFAULT_SPAN_CAPACITY = 4096


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    name: str
    depth: int  # 0 = top level
    parent: Optional[str]  # enclosing span's name, None at top level
    start: float  # perf_counter() at __enter__ (monotonic, not wall-clock)
    wall_seconds: float
    cpu_seconds: float


class SpanCollector:
    """Bounded buffer of finished spans plus per-thread nesting state."""

    def __init__(self, capacity: int = DEFAULT_SPAN_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.records: List[SpanRecord] = []
        self.dropped = 0
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def record(self, record: SpanRecord) -> None:
        """Append one finished span, evicting the oldest beyond capacity."""
        self.records.append(record)
        if len(self.records) > self.capacity:
            del self.records[0 : len(self.records) - self.capacity]
            self.dropped += 1

    def clear(self) -> None:
        """Drop all finished spans (nesting state is untouched)."""
        self.records.clear()
        self.dropped = 0


#: The process-global span collector.
SPANS = SpanCollector()

_SPAN_WALL = TELEMETRY.registry.declare(
    "span_wall_seconds",
    "histogram",
    "Wall-clock duration of traced spans, by span name.",
)


class Span:
    """An active span; use via :func:`span`, not directly."""

    __slots__ = ("name", "_start_wall", "_start_cpu", "_depth", "_parent")

    def __init__(self, name: str):
        self.name = name

    def __enter__(self) -> "Span":
        stack = SPANS._stack()
        self._depth = len(stack)
        self._parent = stack[-1] if stack else None
        stack.append(self.name)
        self._start_cpu = time.process_time()
        self._start_wall = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._start_wall
        cpu = time.process_time() - self._start_cpu
        stack = SPANS._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        SPANS.record(
            SpanRecord(
                name=self.name,
                depth=self._depth,
                parent=self._parent,
                start=self._start_wall,
                wall_seconds=wall,
                cpu_seconds=cpu,
            )
        )
        _SPAN_WALL.labels(span=self.name).observe(wall)
        return False


class _NullSpan:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def span(name: str):
    """A context manager tracing ``name`` — no-op when telemetry is off."""
    if not TELEMETRY.enabled:
        return _NULL_SPAN
    return Span(name)
