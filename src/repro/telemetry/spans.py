"""Request-scoped tracing spans: trace ids, attributes, cross-thread links.

A span brackets one operation::

    from repro.telemetry.spans import span

    with span("store.snapshot"):
        ...

When telemetry is disabled, :func:`span` returns a shared no-op context
manager — one attribute check plus one function call, no allocation.  When
enabled, finished spans land in the process-global :data:`SPANS` collector
(a bounded, thread-safe ring buffer) carrying their name, nesting depth,
parent name, wall seconds (``time.perf_counter``) and CPU seconds
(``time.process_time``), and every span additionally feeds the
``span_wall_seconds`` histogram so per-operation p50/p95/p99 are available
from the registry alone.

Distributed tracing
-------------------
Every finished span carries a **trace identity**: a ``trace_id`` naming the
request it belongs to, its own ``span_id``, and a ``parent_id`` linking it
to the span that caused it.  Within one thread the parent chain follows the
nesting stack automatically; a span with no enclosing span starts a fresh
trace.  To continue a trace *across threads* (the sharded service's
producer → shard-worker hop), capture the active context and hand it to the
other side explicitly::

    ctx = current_trace()                 # producer thread
    queue.put((payload, ctx))

    payload, ctx = queue.get()            # worker thread
    with span("service.apply_batch", parent=ctx, shard=3):
        ...

Spans also carry key-value **attributes** — pass them as keyword arguments
to :func:`span` or add them mid-flight with :meth:`Span.set_attr`.  Keep
values JSON-serialisable scalars; the trace exporter
(:func:`repro.telemetry.export.write_traces_jsonl`) round-trips them.

Already-finished work (e.g. the time a sub-batch spent queued, measured at
dequeue) is recorded with :func:`record_span`, which synthesises a finished
span without a context manager.

Span naming convention (enforced only by review, documented in
docs/OBSERVABILITY.md): ``<component>.<operation>``, lowercase, dot-
separated — e.g. ``wal.append``, ``merge_tree.seal_block``,
``service.ingest_batch``.

Nesting is tracked per thread (a ``threading.local`` stack), so concurrent
readers do not corrupt each other's parent chains; the collector's record
buffer is guarded by a lock, so concurrent shard workers cannot corrupt the
ring buffer or lose ``dropped`` counts.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.telemetry.registry import TELEMETRY

#: Retain at most this many finished spans (oldest evicted first).
DEFAULT_SPAN_CAPACITY = 4096

_IDS = itertools.count(1)


def new_span_id() -> str:
    """A fresh 16-hex-digit identifier, unique within this process.

    ``itertools.count.__next__`` is atomic under the GIL, so concurrent
    threads never draw the same id.  Used for both trace and span ids.
    """
    return f"{next(_IDS):016x}"


@dataclass(frozen=True)
class TraceContext:
    """The portable identity of an active span: hand it across threads.

    ``trace_id`` names the request; ``span_id`` names the span that will be
    the parent of whatever the receiving side starts; ``name`` is that
    parent's span name (carried for readable trace trees, not identity).
    """

    trace_id: str
    span_id: str
    name: Optional[str] = None


@dataclass
class SpanRecord:
    """One finished span.

    A plain (non-frozen) dataclass: records are produced on every traced
    operation, and the frozen-dataclass ``__init__`` costs ~5x the plain
    one — measurable against a sub-millisecond service batch.  Treat
    records as immutable by convention.
    """

    name: str
    depth: int  # 0 = top level
    parent: Optional[str]  # enclosing span's name, None at top level
    start: float  # perf_counter() at __enter__ (monotonic, not wall-clock)
    wall_seconds: float
    cpu_seconds: float
    trace_id: str = ""
    span_id: str = ""
    parent_id: Optional[str] = None  # parent span's id, None at a trace root
    attrs: Dict[str, Any] = field(default_factory=dict)
    thread: str = ""

    def as_dict(self) -> dict:
        """The JSON payload for this record (trace exporter line format)."""
        return {
            "name": self.name,
            "depth": self.depth,
            "parent": self.parent,
            "start": self.start,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attrs": self.attrs,
            "thread": self.thread,
        }


class SpanCollector:
    """Bounded, thread-safe buffer of finished spans plus nesting state.

    Appends, eviction accounting, and snapshot reads are serialised by an
    internal lock — the multi-threaded service records spans from every
    shard worker concurrently.  The per-thread nesting stacks live in a
    ``threading.local`` and need no lock.
    """

    def __init__(self, capacity: int = DEFAULT_SPAN_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.records: List[SpanRecord] = []
        self.dropped = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def record(self, record: SpanRecord) -> None:
        """Append one finished span, evicting the oldest beyond capacity."""
        with self._lock:
            self.records.append(record)
            if len(self.records) > self.capacity:
                evicted = len(self.records) - self.capacity
                del self.records[0:evicted]
                self.dropped += evicted

    def snapshot(self) -> List[SpanRecord]:
        """A consistent copy of the current records (oldest first)."""
        with self._lock:
            return list(self.records)

    def trace(self, trace_id: str) -> List[SpanRecord]:
        """All retained spans of one trace, oldest first."""
        with self._lock:
            return [r for r in self.records if r.trace_id == trace_id]

    def trace_ids(self) -> List[str]:
        """Distinct trace ids currently retained, in first-seen order."""
        with self._lock:
            seen: Dict[str, None] = {}
            for record in self.records:
                if record.trace_id:
                    seen.setdefault(record.trace_id, None)
            return list(seen)

    def clear(self) -> None:
        """Drop all finished spans (nesting state is untouched)."""
        with self._lock:
            self.records.clear()
            self.dropped = 0


#: The process-global span collector.
SPANS = SpanCollector()


def _reinit_after_fork() -> None:
    """Make the span machinery safe in the child of a fork.

    Three pieces of parent state are wrong in the child: the collector's
    lock may have been held at fork time by a thread that no longer
    exists (replaced, never acquired); the per-thread nesting stacks
    belong to parent threads (fresh ``threading.local``); and the id
    counter would hand out the same ids the parent hands out, colliding
    when child spans ship back and merge into the parent's traces —
    restart it from a pid-salted offset so the two sequences are
    disjoint in practice.
    """
    global _IDS
    SPANS._lock = threading.Lock()
    SPANS._local = threading.local()
    _IDS = itertools.count(((os.getpid() & 0xFFFFF) << 40) + 1)


if hasattr(os, "register_at_fork"):  # POSIX only
    os.register_at_fork(after_in_child=_reinit_after_fork)

_SPAN_WALL = TELEMETRY.registry.declare(
    "span_wall_seconds",
    "histogram",
    "Wall-clock duration of traced spans, by span name.",
)

#: Per-name histogram children, bound once: ``labels()`` re-derives the
#: child key on every call (~2.3us), which would dominate a span's cost.
#: Children are zeroed in place by ``registry.reset()``, so cached
#: references never go stale; a racing first-bind is harmless because
#: ``labels()`` returns the same child for the same labelset.
_WALL_CHILDREN: Dict[str, Any] = {}


def _observe_wall(name: str, wall: float) -> None:
    child = _WALL_CHILDREN.get(name)
    if child is None:
        child = _WALL_CHILDREN[name] = _SPAN_WALL.labels(span=name)
    child.observe(wall)


class Span:
    """An active span; use via :func:`span`, not directly."""

    __slots__ = (
        "name",
        "attrs",
        "trace_id",
        "span_id",
        "_explicit_parent",
        "_parent_name",
        "_parent_id",
        "_start_wall",
        "_start_cpu",
        "_depth",
        "_stack_ref",
    )

    def __init__(
        self, name: str, parent: Optional[TraceContext] = None, **attrs: Any
    ):
        self.name = name
        self.attrs: Dict[str, Any] = attrs  # **kwargs: already a fresh dict
        self._explicit_parent = parent

    def set_attr(self, key: str, value: Any) -> "Span":
        """Attach (or overwrite) one key-value attribute; returns self."""
        self.attrs[key] = value
        return self

    @property
    def context(self) -> TraceContext:
        """This span's :class:`TraceContext` (valid after ``__enter__``)."""
        return TraceContext(self.trace_id, self.span_id, self.name)

    def __enter__(self) -> "Span":
        stack = self._stack_ref = SPANS._stack()
        self._depth = len(stack)
        enclosing = stack[-1] if stack else None
        if self._explicit_parent is not None:
            self.trace_id = self._explicit_parent.trace_id
            self._parent_id = self._explicit_parent.span_id
            self._parent_name = self._explicit_parent.name
        elif enclosing is not None:
            self.trace_id = enclosing.trace_id
            self._parent_id = enclosing.span_id
            self._parent_name = enclosing.name
        else:
            self.trace_id = new_span_id()
            self._parent_id = None
            self._parent_name = None
        self.span_id = new_span_id()
        stack.append(self)
        self._start_cpu = time.process_time()
        self._start_wall = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._start_wall
        cpu = time.process_time() - self._start_cpu
        stack = self._stack_ref
        if stack and stack[-1] is self:
            stack.pop()
        # The span is finished: the record adopts self.attrs without a
        # defensive copy (set_attr after __exit__ is not supported).
        SPANS.record(
            SpanRecord(
                self.name,
                self._depth,
                self._parent_name,
                self._start_wall,
                wall,
                cpu,
                self.trace_id,
                self.span_id,
                self._parent_id,
                self.attrs,
                threading.current_thread().name,
            )
        )
        _observe_wall(self.name, wall)
        return False


class _NullSpan:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> "_NullSpan":
        """No-op attribute setter; returns self."""
        return self

    @property
    def context(self) -> None:
        """The null span has no trace identity."""
        return None


_NULL_SPAN = _NullSpan()


def span(name: str, parent: Optional[TraceContext] = None, **attrs: Any):
    """A context manager tracing ``name`` — no-op when telemetry is off.

    ``parent`` explicitly adopts a :class:`TraceContext` captured on
    another thread (cross-thread propagation); without it the span nests
    under the thread's enclosing span, or starts a new trace at top level.
    Extra keyword arguments become span attributes.
    """
    if not TELEMETRY.enabled:
        return _NULL_SPAN
    return Span(name, parent=parent, **attrs)


def current_trace() -> Optional[TraceContext]:
    """The active span's :class:`TraceContext` on this thread, or None.

    This is the producer half of cross-thread propagation: capture it where
    the work is *caused* (e.g. at enqueue) and pass it to wherever the work
    is *performed* (``span(..., parent=ctx)`` or :func:`record_span`).
    Returns None when telemetry is disabled or no span is active.
    """
    if not TELEMETRY.enabled:
        return None
    stack = SPANS._stack()
    if not stack:
        return None
    return stack[-1].context


def record_span(
    name: str,
    start: float,
    wall_seconds: float,
    parent: Optional[TraceContext] = None,
    cpu_seconds: float = 0.0,
    **attrs: Any,
) -> Optional[SpanRecord]:
    """Synthesise one already-finished span (no context manager).

    For phases whose duration is only known after the fact — e.g. the
    queue-wait of a shard sub-batch, measured when the worker dequeues it:
    ``start`` is the ``perf_counter`` value at the phase's beginning and
    ``wall_seconds`` its measured duration.  The record joins ``parent``'s
    trace when given, otherwise it starts a trace of its own.  Feeds the
    ``span_wall_seconds`` histogram like a context-managed span.  No-op
    returning None when telemetry is disabled.
    """
    if not TELEMETRY.enabled:
        return None
    if parent is not None:
        trace_id, parent_id, parent_name = parent.trace_id, parent.span_id, parent.name
    else:
        trace_id, parent_id, parent_name = new_span_id(), None, None
    record = SpanRecord(
        name,
        0 if parent is None else 1,
        parent_name,
        start,
        wall_seconds,
        cpu_seconds,
        trace_id,
        new_span_id(),
        parent_id,
        attrs,
        threading.current_thread().name,
    )
    SPANS.record(record)
    _observe_wall(name, wall_seconds)
    return record
