"""The live introspection server: metrics, health, report, spans, traces.

A dependency-free (stdlib ``http.server``) HTTP endpoint serving the
process-global telemetry state, so an operator can look *inside* a running
ingest/query process — the sharded service, a bench, a recovery run —
without stopping it:

========================  ====================================================
Endpoint                  Serves
========================  ====================================================
``/metrics``              Prometheus text exposition of the metrics registry.
``/healthz``              JSON health summary; **503** when unhealthy (e.g. a
                          poisoned shard), 200 otherwise — point your load
                          balancer or liveness probe here.
``/report``               The human-readable ``telemetry.report()`` text.
``/spans``                All retained finished spans as JSON.
``/traces``               The distinct trace ids currently retained.
``/traces/<id>``          Every span of one trace (404 for unknown ids).
``/tenants``              The attached multi-tenant registry's fleet summary
                          (404 when no tenant registry is attached).
``/timeseries``           The attached metric poller's ring-buffer series as
                          JSON (404 when no poller is attached).
``/alerts``               The attached alert engine's rule states and recent
                          transitions (404 when no engine is attached).
``/dashboard``            The poller's self-contained HTML sparkline view
                          (404 when no poller is attached).
========================  ====================================================

Wire it to a service with
:meth:`repro.service.ShardedSketchService.serve_introspection`, run it
standalone with ``python -m repro.telemetry.serve``, or embed it::

    from repro.telemetry import IntrospectionServer

    with IntrospectionServer(port=0) as server:      # port=0: ephemeral
        print(server.url)                            # http://127.0.0.1:NNNNN
        ...

The server runs on a daemon thread (``ThreadingHTTPServer``, one handler
thread per request) and only ever *reads* telemetry state — scraping never
mutates a metric or drops a span.
"""

from __future__ import annotations

import errno
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.telemetry.export import prometheus_text
from repro.telemetry.registry import MetricsRegistry, TELEMETRY
from repro.telemetry.report import report
from repro.telemetry.spans import SPANS, SpanCollector


def _default_health() -> dict:
    """Health payload when no service is attached: the process is up."""
    return {"healthy": True, "status": "ok"}


class _Handler(BaseHTTPRequestHandler):
    """Routes one GET to the telemetry state held by the bound server."""

    # BaseHTTPRequestHandler logs every request to stderr by default; an
    # introspection endpoint scraped every few seconds must stay silent.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, payload: dict) -> None:
        self._send(
            status,
            "application/json; charset=utf-8",
            json.dumps(payload, sort_keys=True, default=str) + "\n",
        )

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        """Serve one introspection route (see the module table)."""
        registry = self.server.registry  # type: ignore[attr-defined]
        spans: SpanCollector = self.server.spans  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        on_scrape = self.server.on_scrape  # type: ignore[attr-defined]
        telemetry_route = path in ("/metrics", "/report", "/spans") or (
            path.startswith("/traces")
        )
        if on_scrape is not None and telemetry_route:
            try:
                on_scrape()
            except Exception:  # scraping must never fail on a sync hiccup
                pass
        if path == "/metrics":
            self._send(200, "text/plain; version=0.0.4; charset=utf-8",
                       prometheus_text(registry))
        elif path == "/healthz":
            payload = self.server.health()  # type: ignore[attr-defined]
            healthy = bool(payload.get("healthy", True))
            self._send_json(200 if healthy else 503, payload)
        elif path == "/report":
            self._send(200, "text/plain; charset=utf-8",
                       report(registry, spans) + "\n")
        elif path == "/spans":
            snapshot = spans.snapshot()
            self._send_json(200, {
                "spans": [record.as_dict() for record in snapshot],
                "count": len(snapshot),
                "dropped": spans.dropped,
                "capacity": spans.capacity,
            })
        elif path == "/tenants":
            tenants = self.server.tenants  # type: ignore[attr-defined]
            if tenants is None:
                self._send_json(
                    404, {"error": "no tenant registry attached"}
                )
            else:
                self._send_json(200, tenants())
        elif path == "/timeseries":
            timeseries = self.server.timeseries  # type: ignore[attr-defined]
            if timeseries is None:
                self._send_json(404, {"error": "no metric poller attached"})
            else:
                self._send_json(200, timeseries())
        elif path == "/alerts":
            alerts = self.server.alerts  # type: ignore[attr-defined]
            if alerts is None:
                self._send_json(404, {"error": "no alert engine attached"})
            else:
                self._send_json(200, alerts())
        elif path == "/dashboard":
            dashboard = self.server.dashboard  # type: ignore[attr-defined]
            if dashboard is None:
                self._send_json(404, {"error": "no metric poller attached"})
            else:
                self._send(200, "text/html; charset=utf-8", dashboard())
        elif path == "/traces":
            self._send_json(200, {"traces": spans.trace_ids()})
        elif path.startswith("/traces/"):
            trace_id = path[len("/traces/"):]
            records = spans.trace(trace_id)
            if not records:
                self._send_json(404, {"error": f"unknown trace {trace_id!r}"})
            else:
                self._send_json(200, {
                    "trace_id": trace_id,
                    "spans": [record.as_dict() for record in records],
                })
        elif path == "/":
            self._send_json(200, {
                "endpoints": ["/metrics", "/healthz", "/report", "/spans",
                              "/traces", "/traces/<id>", "/tenants",
                              "/timeseries", "/alerts", "/dashboard"],
            })
        else:
            self._send_json(404, {"error": f"no route {path!r}"})


class IntrospectionServer:
    """A background HTTP server exposing the process's telemetry state.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` (default) picks an ephemeral port, exposed
        as :attr:`port` / :attr:`url` after :meth:`start`.  When a specific
        requested port is already in use, :meth:`start` falls back to an
        ephemeral port instead of failing — check :attr:`port` (and
        :attr:`requested_port`) for the one actually bound — so a service
        restart racing the old process's lingering socket still comes up
        observable.
    health:
        Zero-argument callable returning the ``/healthz`` JSON payload; a
        falsy ``"healthy"`` key turns the response into a 503.  Defaults to
        an always-healthy process-up payload; the sharded service passes
        its own :meth:`~repro.service.ShardedSketchService.health`.
    registry, spans:
        The metric registry and span collector to serve (default: the
        process-global ones).
    on_scrape:
        Optional zero-argument callable invoked (exception-tolerant)
        before serving any telemetry route (``/metrics``, ``/report``,
        ``/spans``, ``/traces``...) — a freshness hook.  The sharded
        service's process backend uses it to pull worker children's
        metric/span deltas so a scrape reflects child-side activity.
        ``/healthz`` skips the hook: liveness checks should stay cheap.
    tenants:
        Optional zero-argument callable returning the ``/tenants`` JSON
        payload (the multi-tenant service passes its
        :meth:`~repro.service.MultiTenantService.tenants`).  Without it
        the route answers 404.
    timeseries, alerts, dashboard:
        Optional zero-argument callables backing the ``/timeseries``
        (JSON), ``/alerts`` (JSON) and ``/dashboard`` (HTML) routes —
        typically a :class:`~repro.telemetry.MetricPoller`'s ``series``
        and ``dashboard_html`` and an
        :class:`~repro.telemetry.AlertEngine`'s ``status``.  Unattached
        routes answer 404.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        health: Optional[Callable[[], dict]] = None,
        registry: Optional[MetricsRegistry] = None,
        spans: Optional[SpanCollector] = None,
        on_scrape: Optional[Callable[[], None]] = None,
        tenants: Optional[Callable[[], dict]] = None,
        timeseries: Optional[Callable[[], dict]] = None,
        alerts: Optional[Callable[[], dict]] = None,
        dashboard: Optional[Callable[[], str]] = None,
    ):
        self._host = host
        self._requested_port = port
        self._health = health or _default_health
        self._registry = registry or TELEMETRY.registry
        self._spans = spans if spans is not None else SPANS
        self._on_scrape = on_scrape
        self._tenants = tenants
        self._timeseries = timeseries
        self._alerts = alerts
        self._dashboard = dashboard
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def requested_port(self) -> int:
        """The port requested at construction (0 = ephemeral)."""
        return self._requested_port

    def start(self) -> "IntrospectionServer":
        """Bind and serve on a daemon thread (idempotent); returns self.

        A requested (non-zero) port that is already bound falls back to an
        ephemeral port rather than raising — observability should survive
        a port collision; other bind errors (bad host, privileges) still
        raise.
        """
        if self._httpd is not None:
            return self
        try:
            httpd = ThreadingHTTPServer(
                (self._host, self._requested_port), _Handler
            )
        except OSError as exc:
            if self._requested_port == 0 or exc.errno not in (
                errno.EADDRINUSE,
                errno.EACCES,
            ):
                raise
            httpd = ThreadingHTTPServer((self._host, 0), _Handler)
        httpd.daemon_threads = True
        httpd.registry = self._registry  # type: ignore[attr-defined]
        httpd.spans = self._spans  # type: ignore[attr-defined]
        httpd.health = self._health  # type: ignore[attr-defined]
        httpd.on_scrape = self._on_scrape  # type: ignore[attr-defined]
        httpd.tenants = self._tenants  # type: ignore[attr-defined]
        httpd.timeseries = self._timeseries  # type: ignore[attr-defined]
        httpd.alerts = self._alerts  # type: ignore[attr-defined]
        httpd.dashboard = self._dashboard  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name=f"introspection-{httpd.server_address[1]}",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._httpd is None:
            raise RuntimeError("server not started — call start()")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server, e.g. ``http://127.0.0.1:43217``."""
        return f"http://{self._host}:{self.port}"

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "IntrospectionServer":
        """Start on context entry."""
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        """Stop on context exit."""
        self.stop()
