"""Metric time series: a registry poller with ring-buffer history.

The registry (:mod:`repro.telemetry.registry`) holds *current* values —
one number per counter, one triple per histogram.  An operator watching a
live service needs the other axis: how those values move.  This module
adds it without any external dependency:

* :class:`MetricPoller` — a daemon thread that snapshots every family in
  the registry every ``interval`` seconds into bounded ring buffers
  (:class:`TimeSeries`), so memory stays O(series × capacity) no matter
  how long the process runs;
* **derived series** — each counter additionally yields a windowed
  per-second *rate* series, and each histogram yields per-window
  *delta quantiles* (the p50/p95/p99 of only the observations that landed
  in the window, not the lifetime blur);
* the ``/timeseries`` JSON endpoint and the self-contained ``/dashboard``
  HTML sparkline view served by
  :class:`~repro.telemetry.IntrospectionServer` when a poller is attached
  (see :meth:`repro.service.ShardedSketchService.serve_introspection`).

Counter resets (``MetricsRegistry.reset()`` between bench repetitions,
say) are handled Prometheus-style: a value that went *down* is treated as
a restart, the post-reset value is the window's delta, and rates never go
negative.  Histogram windows with zero new observations append no
quantile point — a flat-lined latency series means "no traffic", not
"zero latency".

Typical session::

    from repro.telemetry import MetricPoller

    poller = MetricPoller(interval=2.0, capacity=300)
    poller.start()
    ...
    print(poller.series())          # JSON-friendly payload
    html = poller.dashboard_html()  # sparkline dashboard
    poller.stop()

``tick()`` may also be called manually (no thread) — the chaos harness
and the tests drive the poller deterministically that way.
"""

from __future__ import annotations

import html as _html
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.registry import TELEMETRY as _TEL
from repro.telemetry.registry import MetricsRegistry

# Declared at import time so the docs-catalog lint sees the poller's own
# families even before a poller exists (docs/OBSERVABILITY.md).
_TEL.registry.declare(
    "poller_ticks_total",
    "counter",
    "Registry snapshots taken by metric pollers.",
)
_TEL.registry.declare(
    "poller_tick_seconds",
    "histogram",
    "Wall time of one poller snapshot over the whole registry.",
)
_TEL.registry.declare(
    "poller_series",
    "gauge",
    "Live time series currently retained by metric pollers.",
)
_TEL.registry.declare(
    "poller_series_dropped_total",
    "counter",
    "New series rejected because a poller hit its max_series bound.",
)

_TICKS = _TEL.registry.get("poller_ticks_total").labels()
_TICK_SECONDS = _TEL.registry.get("poller_tick_seconds").labels()
_SERIES_GAUGE = _TEL.registry.get("poller_series").labels()
_SERIES_DROPPED = _TEL.registry.get("poller_series_dropped_total").labels()

#: Quantiles derived per histogram window, as (label, q) pairs.
DEFAULT_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


class TimeSeries:
    """One bounded ring buffer of ``(unix_time, value)`` points.

    ``kind`` is the sample semantics: ``"counter"`` / ``"gauge"`` (raw
    registry values), ``"rate"`` (derived per-second counter rate over
    the poll window) or ``"quantile"`` (derived histogram-delta quantile,
    with the quantile named in ``labels["quantile"]``).
    """

    __slots__ = ("name", "labels", "kind", "points")

    def __init__(self, name: str, labels: Dict[str, str], kind: str,
                 capacity: int):
        self.name = name
        self.labels = dict(labels)
        self.kind = kind
        self.points: deque = deque(maxlen=capacity)

    def append(self, when: float, value: float) -> None:
        """Append one point, evicting the oldest past capacity."""
        self.points.append((when, float(value)))

    def as_dict(self) -> dict:
        """JSON-friendly form: name, labels, kind, and the points."""
        return {
            "name": self.name,
            "labels": self.labels,
            "kind": self.kind,
            "points": [[when, value] for when, value in self.points],
        }


def delta_quantile(bounds: Sequence[float], deltas: Sequence[int],
                   q: float) -> float:
    """Quantile of one histogram *window* by in-bucket interpolation.

    ``deltas`` are per-bucket observation counts for the window (same
    layout as ``Histogram.bucket_counts``: one slot per finite bound plus
    the ``+inf`` overflow).  Mirrors ``Histogram.quantile`` — zero-count
    buckets are skipped, overflow clamps to the largest finite bound —
    but over the window's deltas instead of the lifetime totals.
    Returns 0.0 for an empty window.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(deltas)
    if total <= 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for index, bucket_count in enumerate(deltas):
        if bucket_count <= 0:
            continue
        if cumulative + bucket_count >= rank:
            if index >= len(bounds):  # overflow bucket
                return bounds[-1]
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index]
            fraction = (rank - cumulative) / bucket_count
            return lower + (upper - lower) * fraction
        cumulative += bucket_count
    return bounds[-1]


class MetricPoller:
    """Snapshot the metrics registry into bounded time series.

    Parameters
    ----------
    interval:
        Seconds between snapshots when running threaded (:meth:`start`).
    capacity:
        Points retained per series (ring buffer; oldest evicted).
    registry:
        The registry to watch (default: the process-global one).
    quantiles:
        ``(label, q)`` pairs derived per histogram window.
    max_series:
        Hard bound on retained series; once hit, *new* label sets are
        dropped (counted in ``poller_series_dropped_total``) rather than
        growing without bound under label churn.
    clock:
        Timestamp source for points (default ``time.time``); injectable
        for deterministic tests.

    A tick walks every family and every labelled child: counters and
    gauges append their raw value, counters also derive a windowed
    per-second rate, histograms derive per-window delta quantiles.  A
    counter or histogram observed *below* its previous snapshot is
    treated as reset (``registry.reset()``): the new value becomes the
    window delta, so rates and quantiles stay non-negative and a series
    that merges churning labels (the tenancy layer's ``__other__``)
    stays monotone as long as the underlying child does.

    Ticks are cheap (one pass over the registry, a few comparisons per
    child) and hold only the poller's own lock — never a registry-wide
    one — so polling does not stall ingest.
    """

    def __init__(
        self,
        interval: float = 5.0,
        capacity: int = 240,
        registry: Optional[MetricsRegistry] = None,
        quantiles: Sequence[Tuple[str, float]] = DEFAULT_QUANTILES,
        max_series: int = 1024,
        clock: Callable[[], float] = time.time,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.interval = float(interval)
        self.capacity = int(capacity)
        self.max_series = int(max_series)
        self._registry = registry or _TEL.registry
        self._quantiles = tuple(quantiles)
        self._clock = clock
        self._series: Dict[Tuple, TimeSeries] = {}
        self._prev_counter: Dict[Tuple, Tuple[float, float]] = {}
        self._prev_hist: Dict[Tuple, Tuple[List[int], int, float]] = {}
        self._listeners: List[Callable[[float], None]] = []
        self._ticks = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- wiring --------------------------------------------------------------

    def add_listener(self, listener: Callable[[float], None]) -> None:
        """Call ``listener(now)`` after every tick (alert engines hook here).

        Listener exceptions are swallowed: a broken rule must not stop
        the poller.
        """
        self._listeners.append(listener)

    # -- polling -------------------------------------------------------------

    def tick(self, now: Optional[float] = None) -> int:
        """Take one snapshot; returns the number of series updated.

        Safe to call concurrently with a running poll thread (the
        poller's lock serialises snapshots) and with registry writers
        (children are read with the same discipline the exporter uses).
        """
        started = time.perf_counter()
        if now is None:
            now = self._clock()
        updated = 0
        with self._lock:
            for family in self._registry.families():
                for labels, child in family.samples():
                    key = (family.name, tuple(sorted(labels.items())))
                    if family.kind == "counter":
                        updated += self._tick_counter(key, family.name,
                                                      labels, child, now)
                    elif family.kind == "gauge":
                        updated += self._tick_gauge(key, family.name,
                                                    labels, child, now)
                    else:
                        updated += self._tick_histogram(key, family.name,
                                                        labels, child, now)
            self._ticks += 1
            live = len(self._series)
        if _TEL.enabled:
            _TICKS.inc()
            _SERIES_GAUGE.set(live)
            _TICK_SECONDS.observe(time.perf_counter() - started)
        for listener in self._listeners:
            try:
                listener(now)
            except Exception:
                pass
        return updated

    def _get_series(self, key: Tuple, name: str, labels: Dict[str, str],
                    kind: str) -> Optional[TimeSeries]:
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self.max_series:
                if _TEL.enabled:
                    _SERIES_DROPPED.inc()
                return None
            series = TimeSeries(name, labels, kind, self.capacity)
            self._series[key] = series
        return series

    def _tick_counter(self, key, name, labels, child, now) -> int:
        value = child.value
        updated = 0
        series = self._get_series(key, name, labels, "counter")
        if series is not None:
            series.append(now, value)
            updated += 1
        prev = self._prev_counter.get(key)
        self._prev_counter[key] = (now, value)
        if prev is None:
            return updated
        prev_time, prev_value = prev
        elapsed = now - prev_time
        if elapsed <= 0:
            return updated
        delta = value - prev_value
        if delta < 0:  # registry.reset() between ticks: treat as restart
            delta = value
        rate_key = key + ("rate",)
        rate = self._get_series(rate_key, name, labels, "rate")
        if rate is not None:
            rate.append(now, delta / elapsed)
            updated += 1
        return updated

    def _tick_gauge(self, key, name, labels, child, now) -> int:
        series = self._get_series(key, name, labels, "gauge")
        if series is None:
            return 0
        series.append(now, child.value)
        return 1

    def _tick_histogram(self, key, name, labels, child, now) -> int:
        with child._lock:  # noqa: SLF001 — consistent triple read
            counts = list(child.bucket_counts)
            count = child.count
        prev = self._prev_hist.get(key)
        self._prev_hist[key] = (counts, count, 0.0)
        if prev is None:
            return 0
        prev_counts, prev_count, _ = prev
        if count < prev_count:  # reset: this lifetime *is* the window
            deltas = counts
        else:
            deltas = [now_c - then_c
                      for now_c, then_c in zip(counts, prev_counts)]
        if sum(deltas) <= 0:
            return 0  # no traffic in the window: append nothing
        updated = 0
        for label, q in self._quantiles:
            q_labels = dict(labels)
            q_labels["quantile"] = label
            q_key = key + ("quantile", label)
            series = self._get_series(q_key, name, q_labels, "quantile")
            if series is not None:
                series.append(now, delta_quantile(child.bounds, deltas, q))
                updated += 1
        return updated

    # -- export --------------------------------------------------------------

    @property
    def ticks(self) -> int:
        """Snapshots taken so far."""
        return self._ticks

    def series(self) -> dict:
        """JSON payload for ``/timeseries``: every retained series."""
        with self._lock:
            entries = [series.as_dict()
                       for _, series in sorted(self._series.items(),
                                               key=lambda item: item[0])]
            ticks = self._ticks
        return {
            "interval_seconds": self.interval,
            "capacity": self.capacity,
            "ticks": ticks,
            "series_count": len(entries),
            "series": entries,
        }

    def latest(self, name: str, kind: Optional[str] = None,
               labels: Optional[Dict[str, str]] = None) -> List[Tuple[dict, float, float]]:
        """Latest points of every series of ``name``: ``(labels, t, v)``.

        ``kind`` filters to one sample semantics (``"rate"``, say);
        ``labels`` requires a subset match.  The alert engine's data
        plane.
        """
        wanted = set((labels or {}).items())
        out = []
        with self._lock:
            for series in self._series.values():
                if series.name != name or not series.points:
                    continue
                if kind is not None and series.kind != kind:
                    continue
                if wanted and not wanted.issubset(set(series.labels.items())):
                    continue
                when, value = series.points[-1]
                out.append((series.labels, when, value))
        return out

    # -- dashboard -----------------------------------------------------------

    def dashboard_html(self) -> str:
        """A self-contained HTML sparkline dashboard (stdlib only).

        One inline-SVG sparkline per series, grouped by metric name, with
        min/max/last annotations — no JavaScript, no external assets, so
        it renders from an air-gapped ``curl`` dump just as well as from
        a browser pointed at ``/dashboard`` (the page meta-refreshes at
        the poll interval).
        """
        payload = self.series()
        groups: Dict[str, List[dict]] = {}
        for entry in payload["series"]:
            groups.setdefault(entry["name"], []).append(entry)
        refresh = max(1, int(self.interval))
        parts = [
            "<!doctype html><html><head>",
            '<meta charset="utf-8">',
            f'<meta http-equiv="refresh" content="{refresh}">',
            "<title>repro telemetry dashboard</title>",
            "<style>body{font:13px monospace;background:#111;color:#ddd;"
            "margin:1em}h2{color:#8cf;border-bottom:1px solid #333;"
            "font-size:14px}table{border-collapse:collapse}"
            "td{padding:2px 10px 2px 0;vertical-align:middle}"
            ".lb{color:#9a9}.va{color:#fd7}svg{background:#1a1a1a}</style>",
            "</head><body>",
            f"<p>metric poller: {payload['ticks']} ticks, "
            f"{payload['series_count']} series, "
            f"interval {self.interval:g}s</p>",
        ]
        for name in sorted(groups):
            parts.append(f"<h2>{_html.escape(name)}</h2><table>")
            for entry in groups[name]:
                label_text = ",".join(
                    f"{k}={v}" for k, v in sorted(entry["labels"].items())
                )
                label_text = _html.escape(label_text or "-")
                points = entry["points"]
                values = [value for _, value in points]
                last = values[-1] if values else 0.0
                parts.append(
                    "<tr>"
                    f'<td class="lb">{label_text} ({entry["kind"]})</td>'
                    f"<td>{_sparkline_svg(values)}</td>"
                    f'<td class="va">last {last:g}'
                    + (
                        f" · min {min(values):g} · max {max(values):g}"
                        if values else ""
                    )
                    + "</td></tr>"
                )
            parts.append("</table>")
        parts.append("</body></html>")
        return "".join(parts)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "MetricPoller":
        """Start the daemon poll thread (idempotent); returns self."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="metric-poller", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.tick()
            except Exception:  # a scrape hiccup must not kill the thread
                pass

    def stop(self) -> None:
        """Stop the poll thread and join it (idempotent; history kept)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "MetricPoller":
        """Start on context entry."""
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        """Stop on context exit."""
        self.stop()


def _sparkline_svg(values: List[float], width: int = 160,
                   height: int = 26) -> str:
    """Render one series as an inline SVG polyline sparkline."""
    if not values:
        return f'<svg width="{width}" height="{height}"></svg>'
    low = min(values)
    high = max(values)
    spread = (high - low) or 1.0
    n = len(values)
    step = width / max(1, n - 1)
    points = " ".join(
        f"{index * step:.1f},"
        f"{height - 2 - (value - low) / spread * (height - 4):.1f}"
        for index, value in enumerate(values)
    )
    if n == 1:
        points += f" {width:.1f},{height - 2 - (values[0] - low) / spread * (height - 4):.1f}"
    return (
        f'<svg width="{width}" height="{height}">'
        f'<polyline fill="none" stroke="#6cf" stroke-width="1.2" '
        f'points="{points}"/></svg>'
    )
