"""``python -m repro.telemetry.serve`` — run the introspection server.

Starts an :class:`~repro.telemetry.server.IntrospectionServer` on the
process-global telemetry state and blocks until interrupted.  On its own
this serves whatever the current process has recorded (nothing, for a
fresh interpreter) — the flag ``--demo`` ingests a small traced workload
first so every endpoint has something to show::

    PYTHONPATH=src python -m repro.telemetry.serve --port 9464 --demo

For a real deployment, prefer embedding: call
``ShardedSketchService.serve_introspection()`` from the serving process so
``/healthz`` reflects actual shard health.
"""

from __future__ import annotations

import argparse
import time

from repro.telemetry.registry import TELEMETRY
from repro.telemetry.server import IntrospectionServer


def _demo_workload() -> None:
    """Ingest a tiny traced workload so the endpoints are non-empty."""
    from repro.core import ChainMisraGries
    from repro.service import ShardedSketchService

    service = ShardedSketchService(
        lambda: ChainMisraGries(eps=0.01), num_shards=2
    )
    try:
        for t in range(1, 51):
            service.ingest_batch([t % 7, (t * 3) % 7], [t, t])
        service.drain()
        service.estimate_at(3, 25)
    finally:
        service.close()


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.serve",
        description="Serve /metrics, /healthz, /report, /spans and "
        "/traces/<id> from this process's telemetry state.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=9464, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="ingest a small traced workload first so endpoints are non-empty",
    )
    args = parser.parse_args(argv)

    TELEMETRY.enable()
    if args.demo:
        _demo_workload()
    with IntrospectionServer(host=args.host, port=args.port) as server:
        print(f"introspection server listening on {server.url}")
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("shutting down")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
