"""The memory accountant: per-component resident bytes vs theoretical bounds.

Every sketch in this package models its resident footprint with
``memory_bytes()`` (the C-layout model of :mod:`repro.evaluation.memory`).
The accountant refines that single number two ways:

* **breakdown** — structures that expose ``memory_breakdown()`` (the
  persistence machinery in :mod:`repro.core` does) report a dict of
  component name -> bytes: sample rows, live heaps, checkpoint snapshots,
  merge-tree spine/retained blocks, live leaf blocks.  The components are
  defined to sum exactly to ``memory_bytes()`` (asserted by
  ``tests/telemetry/test_accounting.py``).
* **bound** — structures that expose ``space_bound_bytes()`` report the
  paper's theoretical space bound evaluated at the current stream position
  (e.g. ``O(k log n)`` records for a persistent sample, Lemma 3.1), so the
  operator can see *how much of the guarantee is actually resident*.

:func:`account` builds a :class:`MemoryReport`; :func:`publish` pushes the
numbers into the global registry as ``memory_resident_bytes`` /
``memory_bound_bytes`` gauges so the exporters pick them up alongside the
event metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.telemetry.registry import TELEMETRY

_RESIDENT = TELEMETRY.registry.declare(
    "memory_resident_bytes",
    "gauge",
    "Modelled resident bytes per accounted component (C-layout model).",
)
_BOUND = TELEMETRY.registry.declare(
    "memory_bound_bytes",
    "gauge",
    "Theoretical space bound per accounted sketch, at the current stream position.",
)


@dataclass(frozen=True)
class ComponentMemory:
    """One component's share of a sketch's resident bytes."""

    name: str
    resident_bytes: int


@dataclass
class MemoryReport:
    """The accountant's view of one sketch (or a set of sketches)."""

    name: str
    components: List[ComponentMemory] = field(default_factory=list)
    bound_bytes: Optional[int] = None

    @property
    def resident_bytes(self) -> int:
        """Total resident bytes across components."""
        return sum(component.resident_bytes for component in self.components)

    @property
    def utilization(self) -> Optional[float]:
        """Resident / bound, or None when no bound is known."""
        if not self.bound_bytes:
            return None
        return self.resident_bytes / self.bound_bytes

    def as_dict(self) -> dict:
        """Flatten for JSON export."""
        return {
            "name": self.name,
            "resident_bytes": self.resident_bytes,
            "bound_bytes": self.bound_bytes,
            "utilization": self.utilization,
            "components": {
                component.name: component.resident_bytes
                for component in self.components
            },
        }


def account(sketch: Any, name: Optional[str] = None) -> MemoryReport:
    """Build a :class:`MemoryReport` for any sketch-like object.

    Uses ``memory_breakdown()`` when the object has one (falling back to a
    single ``total`` component from ``memory_bytes()``) and
    ``space_bound_bytes()`` for the bound when available.  Works on
    ``DurableSketch`` wrappers too — attribute forwarding reaches the
    wrapped sketch's methods.
    """
    if name is None:
        # unwrap durability wrappers for the default owner name: every
        # DurableSketch reporting as "DurableSketch" would collide all
        # owners into one gauge; the wrapped sketch's type is the owner
        owner = sketch
        while getattr(owner, "_sketch", None) is not None:
            owner = owner._sketch
        name = type(owner).__name__
    breakdown_fn = getattr(sketch, "memory_breakdown", None)
    if breakdown_fn is not None:
        breakdown: Dict[str, int] = breakdown_fn()
    else:
        breakdown = {"total": int(sketch.memory_bytes())}
    components = [
        ComponentMemory(component, int(size))
        for component, size in sorted(breakdown.items())
    ]
    bound_fn = getattr(sketch, "space_bound_bytes", None)
    bound = int(bound_fn()) if bound_fn is not None else None
    return MemoryReport(name=name, components=components, bound_bytes=bound)


def publish(report: MemoryReport) -> None:
    """Push a report's numbers into the global registry gauges.

    Gauges are labelled ``sketch`` (the report name) and, for residency,
    ``component``; publishing the same report name again overwrites the
    previous values, so periodic publication behaves like a scrape.
    """
    for component in report.components:
        _RESIDENT.labels(sketch=report.name, component=component.name).set(
            component.resident_bytes
        )
    _RESIDENT.labels(sketch=report.name, component="total").set(
        report.resident_bytes
    )
    if report.bound_bytes is not None:
        _BOUND.labels(sketch=report.name).set(report.bound_bytes)


def account_and_publish(sketch: Any, name: Optional[str] = None) -> MemoryReport:
    """:func:`account` then :func:`publish`, returning the report."""
    report = account(sketch, name)
    publish(report)
    return report


def unpublish(name: str) -> int:
    """Remove a report's gauges from the registry; returns children removed.

    The inverse of :func:`publish`, for accounted things that *go away* —
    the tenancy layer unpublishes a tenant's ``tenant/<id>`` report when
    the tenant spills to disk, so ``memory_resident_bytes`` tracks what is
    actually resident.  Unknown names are a no-op (returns 0).
    """
    removed = _RESIDENT.remove(sketch=name)
    removed += _BOUND.remove(sketch=name)
    return removed


def breakdown(prefix: str = "") -> Dict[str, Dict[str, int]]:
    """Grouped view of every published residency gauge, one call.

    Returns ``{owner: {component: resident_bytes}}`` for each published
    report whose name starts with ``prefix`` (empty prefix: everything).
    ``owner`` is the report name with the prefix stripped, so
    ``breakdown(prefix="tenant/")`` maps tenant ids straight to their
    per-component resident bytes.  Reads the live gauges — call after the
    owner has published (the tenancy layer's ``publish_memory()`` or any
    :func:`publish`).
    """
    grouped: Dict[str, Dict[str, int]] = {}
    for labels, gauge in _RESIDENT.samples():
        sketch = labels.get("sketch", "")
        if not sketch.startswith(prefix):
            continue
        owner = sketch[len(prefix):]
        grouped.setdefault(owner, {})[labels.get("component", "total")] = int(
            gauge.value
        )
    return grouped
