"""repro.telemetry — metrics, tracing, and memory accounting.

The observability layer for the whole sketch substrate (operator's guide:
docs/OBSERVABILITY.md).  Three pieces, all dependency-free:

* a process-global **metrics registry** (:data:`TELEMETRY`) of monotonic
  counters, gauges, and fixed-bucket latency histograms with p50/p95/p99 —
  every ingest, checkpoint, WAL, and query hot path in the package emits
  into it when :func:`enable` has been called;
* **tracing spans** (:func:`span`) with nesting and wall/CPU timing;
* a **memory accountant** (:func:`account`) reporting per-component
  resident bytes against each sketch's theoretical space bound.

Telemetry is off by default: the disabled hot path costs a single
attribute check (``TELEMETRY.enabled``), measured at under 5% of
batch-ingest throughput by ``benchmarks/test_telemetry_overhead.py``.

Typical session::

    import repro.telemetry as telemetry

    telemetry.enable()
    ...ingest and query...
    print(telemetry.report())                  # human summary
    telemetry.write_jsonl("metrics.jsonl")     # machine snapshot
    text = telemetry.prometheus_text()         # scrape format
"""

from repro.telemetry.accounting import (
    ComponentMemory,
    MemoryReport,
    account,
    account_and_publish,
    breakdown,
    publish,
    unpublish,
)
from repro.telemetry.export import (
    MetricSample,
    iter_samples,
    load_jsonl,
    load_traces_jsonl,
    prometheus_text,
    snapshot_lines,
    write_jsonl,
    write_traces_jsonl,
)
from repro.telemetry.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    TELEMETRY,
    TelemetryControl,
    sketch_metrics,
    timed,
)
from repro.telemetry.alerts import (
    ALERT_STATES,
    AlertEngine,
    AlertRule,
    default_service_rules,
)
from repro.telemetry.audit import (
    OBSERVED_ERROR_BUCKETS,
    AccuracyAuditor,
)
from repro.telemetry.report import report
from repro.telemetry.server import IntrospectionServer
from repro.telemetry.timeseries import (
    DEFAULT_QUANTILES,
    MetricPoller,
    TimeSeries,
    delta_quantile,
)
from repro.telemetry.spans import (
    DEFAULT_SPAN_CAPACITY,
    SPANS,
    SpanCollector,
    SpanRecord,
    TraceContext,
    current_trace,
    new_span_id,
    record_span,
    span,
)


def enable() -> None:
    """Turn telemetry on process-wide (equivalent to ``TELEMETRY.enable()``)."""
    TELEMETRY.enable()


def disable() -> None:
    """Turn telemetry off process-wide; recorded values are kept."""
    TELEMETRY.disable()


def enabled() -> bool:
    """Whether telemetry is currently on."""
    return TELEMETRY.enabled


def reset() -> None:
    """Zero all metric values and drop collected spans (catalog survives)."""
    TELEMETRY.registry.reset()
    SPANS.clear()


__all__ = [
    "ALERT_STATES",
    "AccuracyAuditor",
    "AlertEngine",
    "AlertRule",
    "ComponentMemory",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_QUANTILES",
    "DEFAULT_SPAN_CAPACITY",
    "Gauge",
    "Histogram",
    "IntrospectionServer",
    "MemoryReport",
    "MetricFamily",
    "MetricPoller",
    "MetricSample",
    "MetricsRegistry",
    "OBSERVED_ERROR_BUCKETS",
    "SPANS",
    "SpanCollector",
    "SpanRecord",
    "TELEMETRY",
    "TelemetryControl",
    "TimeSeries",
    "TraceContext",
    "account",
    "account_and_publish",
    "breakdown",
    "current_trace",
    "default_service_rules",
    "delta_quantile",
    "disable",
    "enable",
    "enabled",
    "iter_samples",
    "load_jsonl",
    "load_traces_jsonl",
    "new_span_id",
    "prometheus_text",
    "publish",
    "record_span",
    "report",
    "reset",
    "sketch_metrics",
    "snapshot_lines",
    "span",
    "timed",
    "unpublish",
    "write_jsonl",
    "write_traces_jsonl",
]
