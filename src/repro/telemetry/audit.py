"""Continuous accuracy auditing: are served answers inside their bounds?

The paper's contract is *bounded error*: a CountMin-backed ATTP estimate
is within ``eps * W(t)`` of truth with probability ``1 - delta``, a
Misra–Gries chain deterministically so.  The service serves millions of
such answers; this module makes the contract an *observable*.

:class:`AccuracyAuditor` shadow-records ingested batches into an exact
ground-truth store, then periodically replays sampled ATTP (prefix) and
BITP (suffix) point queries against the live service and compares:

* ``audit_observed_error`` — histogram of ``|estimate - truth| / W``
  (the paper's normalised error), labelled ``kind="attp"|"bitp"``;
* ``audit_bound_violations_total`` — answers whose *absolute* error
  exceeded the structure's bound ``eps * W``.  Degraded answers carrying
  an :class:`~repro.service.ErrorCertificate` are judged against their
  honestly *widened* bound (``eps * W + missing_items``) instead — a
  partial answer is not a violation when it says so.

Ground truth lives parent-side in the auditor (exact per-item arrays,
vectorised with numpy), never in the shards: a supervisor rebuild that
replays a shard's WAL changes nothing the auditor recorded at ingest
time, so chaos soaks audit cleanly through kills and recoveries.

Shadow sampling keeps query cost bounded, not recording cost: every
batch's arrays are *referenced/copied wholesale* (three C-speed array
copies, no per-item Python work), while only a hash-sampled fraction of
the key space is ever *queried*.  ``max_items`` bounds memory: past it
the auditor freezes its recording frontier and keeps auditing the
recorded prefix only (counted in ``audit_queries_skipped_total``).

Wire-up (see docs/OBSERVABILITY.md, "Watching the watcher")::

    auditor = AccuracyAuditor(epsilon=0.01, sample_fraction=0.1, seed=7)
    service.attach_auditor(auditor)          # shadow-records every batch
    auditor.bind(service)                    # the replay target
    ...ingest...
    report = auditor.run_audit(queries=64)   # or auditor.start(interval)

The auditor duck-types its service: anything with ``estimate_at`` /
``estimate_since`` (optionally ``explain=True`` returning a plan with a
``certificate``) audits, including one tenant of a
:class:`~repro.service.MultiTenantService` (pass ``tenant=``).
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.telemetry.registry import TELEMETRY as _TEL

#: Buckets for the normalised-error histogram: the interesting range is
#: tiny (eps is typically 1e-3..1e-1), so the grid is geometric from 1e-6.
OBSERVED_ERROR_BUCKETS = (
    1e-6, 1e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0,
)

# Declared at import time for the docs-catalog lint (docs/OBSERVABILITY.md).
_TEL.registry.declare(
    "audit_observed_error",
    "histogram",
    "Normalised |estimate - truth| / W of audited answers, by query kind.",
    buckets=OBSERVED_ERROR_BUCKETS,
)
_TEL.registry.declare(
    "audit_bound_violations_total",
    "counter",
    "Audited answers outside their (possibly widened) paper bound.",
)
_TEL.registry.declare(
    "audit_queries_total",
    "counter",
    "Audit replay queries issued against the live service, by kind.",
)
_TEL.registry.declare(
    "audit_queries_skipped_total",
    "counter",
    "Audit queries skipped (no data, saturated store, or query failure).",
)
_TEL.registry.declare(
    "audit_sampled_items_total",
    "counter",
    "Items shadow-recorded into audit ground-truth stores.",
)
_TEL.registry.declare(
    "audit_sampled_keys",
    "gauge",
    "Distinct keys currently tracked for audit replay.",
)
_TEL.registry.declare(
    "audit_runs_total",
    "counter",
    "Completed audit replay rounds.",
)

_ITEMS = _TEL.registry.get("audit_sampled_items_total").labels()
_KEYS_GAUGE = _TEL.registry.get("audit_sampled_keys").labels()
_RUNS = _TEL.registry.get("audit_runs_total").labels()

#: Knuth multiplicative hash mixer for deterministic key sampling.
_HASH_MIX = 0x9E3779B1


class _GroundTruth:
    """Exact per-tenant record of everything ingested (chunked arrays).

    Appending is three array copies; truth queries concatenate lazily
    (cached until the next append) and answer with vectorised masks —
    exact prefix/suffix weights in O(n) C time per audit query.
    """

    __slots__ = ("chunks_v", "chunks_t", "chunks_w", "items", "frontier",
                 "saturated", "sampled_keys", "_cat")

    def __init__(self):
        self.chunks_v: List[np.ndarray] = []
        self.chunks_t: List[np.ndarray] = []
        self.chunks_w: List[np.ndarray] = []
        self.items = 0
        self.frontier = -np.inf  # max recorded timestamp
        self.saturated = False
        self.sampled_keys: List = []
        self._cat: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def append(self, values: np.ndarray, timestamps: np.ndarray,
               weights: Optional[np.ndarray]) -> None:
        self.chunks_v.append(values)
        self.chunks_t.append(timestamps)
        self.chunks_w.append(
            weights if weights is not None
            else np.ones(values.shape[0], dtype=np.float64)
        )
        self.items += int(values.shape[0])
        if timestamps.size:
            self.frontier = max(self.frontier, float(timestamps.max()))
        self._cat = None

    def arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._cat is None:
            self._cat = (
                np.concatenate(self.chunks_v) if self.chunks_v else np.empty(0),
                np.concatenate(self.chunks_t) if self.chunks_t else np.empty(0),
                np.concatenate(self.chunks_w) if self.chunks_w else np.empty(0),
            )
        return self._cat

    def truth_at(self, key, timestamp: float) -> float:
        """Exact ATTP weight of ``key`` over the prefix up to ``timestamp``."""
        values, times, weights = self.arrays()
        return float(weights[(values == key) & (times <= timestamp)].sum())

    def truth_since(self, key, timestamp: float) -> float:
        """Exact BITP weight of ``key`` over the suffix from ``timestamp``."""
        values, times, weights = self.arrays()
        return float(weights[(values == key) & (times >= timestamp)].sum())

    def total_at(self, timestamp: float) -> float:
        """Exact total stream weight over the prefix up to ``timestamp``."""
        _, times, weights = self.arrays()
        return float(weights[times <= timestamp].sum())

    def total_since(self, timestamp: float) -> float:
        """Exact total stream weight over the suffix from ``timestamp``."""
        _, times, weights = self.arrays()
        return float(weights[times >= timestamp].sum())


class AccuracyAuditor:
    """Shadow-sample ingest, replay queries, compare against exact truth.

    Parameters
    ----------
    epsilon, delta:
        The audited structures' paper bound: an answer is in-bound when
        ``|estimate - truth| <= epsilon * W`` (W the exact prefix/suffix
        weight).  ``delta`` is the allowed failure probability for
        randomised structures (CountMin): per-query violations are
        *counted*, and :meth:`run_audit` reports the violation fraction
        so the operator can compare it against delta.
    sample_fraction:
        Fraction of the key space tracked for replay (deterministic
        multiplicative-hash sampling — the same key always samples the
        same way, so every occurrence of a tracked key is counted).
    max_keys:
        Bound on tracked keys per tenant.
    max_items:
        Bound on recorded items per tenant; past it recording stops,
        the frontier freezes, and only the recorded prefix is audited.
    seed:
        Drives both key sampling and replay-query choice.
    partial:
        Per-query degraded-mode override passed to the service
        (default ``None`` = the service's policy).  Chaos soaks run
        with ``"allow"`` services, so certificated partial answers come
        back and are judged against their widened bound.
    tolerance:
        Absolute slack added to every bound check (float fuzz).

    Timestamps are assumed non-decreasing across batches per tenant (the
    paper's stream model); the recording frontier relies on it once
    ``max_items`` saturates.
    """

    def __init__(
        self,
        epsilon: float,
        delta: float = 0.01,
        *,
        sample_fraction: float = 0.05,
        max_keys: int = 256,
        max_items: int = 2_000_000,
        seed: int = 0,
        partial: Optional[str] = None,
        tolerance: float = 1e-9,
    ):
        if not 0 < epsilon < 1:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        if not 0 < sample_fraction <= 1:
            raise ValueError(
                f"sample_fraction must be in (0, 1], got {sample_fraction}"
            )
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.sample_fraction = float(sample_fraction)
        self.max_keys = int(max_keys)
        self.max_items = int(max_items)
        self.seed = int(seed)
        self.partial = partial
        self.tolerance = float(tolerance)
        self._cut = max(1, int(round(sample_fraction * 0x10000)))
        self._truth: Dict[Optional[str], _GroundTruth] = {}
        self._unsupported: set = set()
        self._services: Dict[Optional[str], object] = {}
        self._tenancy = None
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._violations = 0
        self._audited = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- wiring --------------------------------------------------------------

    def bind(self, service, tenant: Optional[str] = None) -> None:
        """Set the replay target for ``tenant`` (None = single-service).

        For a :class:`~repro.service.MultiTenantService` use
        :meth:`bind_tenancy` instead — one bind covers every tenant.
        """
        self._services[tenant] = service

    def bind_tenancy(self, tenancy) -> None:
        """Replay every tenant's queries through one multi-tenant service."""
        self._tenancy = tenancy

    # -- ingest shadow path ----------------------------------------------------

    def observe_batch(self, values, timestamps, weights=None,
                      tenant: Optional[str] = None) -> None:
        """Shadow-record one accepted ingest batch (cheap: array copies).

        Called by the services' ingest paths when an auditor is attached
        (:meth:`~repro.service.ShardedSketchService.attach_auditor`).
        Never raises into the ingest path.
        """
        try:
            v = np.asarray(values)
            t = np.asarray(timestamps, dtype=np.float64)
            w = None if weights is None else np.asarray(
                weights, dtype=np.float64
            )
            with self._lock:
                truth = self._truth.get(tenant)
                if truth is None:
                    truth = self._truth[tenant] = _GroundTruth()
                if truth.saturated:
                    return
                if truth.items + v.shape[0] > self.max_items:
                    truth.saturated = True
                    return
                # copies: the caller may reuse / mutate its arrays
                truth.append(v.copy(), t.copy(),
                             None if w is None else w.copy())
                self._admit_keys(truth, v)
                if _TEL.enabled:
                    _ITEMS.inc(v.shape[0])
                    _KEYS_GAUGE.set(sum(
                        len(gt.sampled_keys) for gt in self._truth.values()
                    ))
        except Exception:
            pass

    def _admit_keys(self, truth: _GroundTruth, values: np.ndarray) -> None:
        """Deterministically sample new keys from ``values`` (vectorised)."""
        room = self.max_keys - len(truth.sampled_keys)
        if room <= 0:
            return
        seen = set(truth.sampled_keys)
        if np.issubdtype(values.dtype, np.integer):
            mixed = (values.astype(np.int64) * _HASH_MIX) ^ self.seed
            mask = (mixed >> 7) & 0xFFFF < self._cut
            candidates = np.unique(values[mask])
            for key in candidates[: room + len(seen)]:
                key = key.item()
                if key not in seen:
                    truth.sampled_keys.append(key)
                    seen.add(key)
                    room -= 1
                    if room <= 0:
                        return
        else:
            for key in values[:1024]:
                key = key.item() if hasattr(key, "item") else key
                if ((hash(key) * _HASH_MIX) ^ self.seed) >> 7 & 0xFFFF >= self._cut:
                    continue
                if key not in seen:
                    truth.sampled_keys.append(key)
                    seen.add(key)
                    room -= 1
                    if room <= 0:
                        return

    # -- replay --------------------------------------------------------------

    def _service_for(self, tenant: Optional[str]):
        service = self._services.get(tenant)
        if service is not None:
            return service, ()
        if self._tenancy is not None and tenant is not None:
            return self._tenancy, (tenant,)
        return None, ()

    def run_audit(self, queries: int = 32,
                  kinds: Tuple[str, ...] = ("attp", "bitp")) -> dict:
        """Replay ``queries`` sampled point queries; returns a round report.

        Each query picks a tracked tenant, key and in-range timestamp,
        asks the live service (``explain=True``), computes the exact
        truth, and emits ``audit_observed_error`` /
        ``audit_bound_violations_total``.  Failures (shard down under a
        ``reject`` policy, cold tenant gone) are counted as skips, never
        raised — auditing must not destabilise the audited.
        """
        report = {
            "queries": 0, "skipped": 0, "violations": 0,
            "max_observed_error": 0.0, "errors": [],
        }
        with self._lock:
            tenants = [
                tenant for tenant, truth in self._truth.items()
                if truth.sampled_keys and truth.items
            ]
        if not tenants:
            self._skip(queries, "no_data")
            report["skipped"] = queries
            report["p99_observed_error"] = 0.0
            del report["errors"]
            return report
        for index in range(queries):
            tenant = tenants[index % len(tenants)]
            kind = kinds[index % len(kinds)]
            if (tenant, kind) in self._unsupported:
                # a structure is usually ATTP xor BITP — redirect the
                # budget to a kind this tenant's sketches can answer
                supported = [k for k in kinds
                             if (tenant, k) not in self._unsupported]
                if not supported:
                    self._skip(1, "unsupported")
                    report["skipped"] += 1
                    continue
                kind = supported[index % len(supported)]
            outcome = self._audit_one(tenant, kind)
            if outcome is None:
                report["skipped"] += 1
                continue
            observed, violated = outcome
            report["queries"] += 1
            report["errors"].append(observed)
            report["max_observed_error"] = max(
                report["max_observed_error"], observed
            )
            if violated:
                report["violations"] += 1
        with self._lock:
            self._audited += report["queries"]
            self._violations += report["violations"]
        if _TEL.enabled:
            _RUNS.inc()
        if report["queries"]:
            errors = sorted(report["errors"])
            rank = max(0, int(0.99 * len(errors)) - 1)
            report["p99_observed_error"] = errors[min(rank + 1,
                                                      len(errors) - 1)]
        else:
            report["p99_observed_error"] = 0.0
        del report["errors"]
        return report

    def _audit_one(self, tenant: Optional[str],
                   kind: str) -> Optional[Tuple[float, bool]]:
        service, prefix = self._service_for(tenant)
        with self._lock:
            truth = self._truth.get(tenant)
            if service is None or truth is None or not truth.sampled_keys:
                self._skip(1, "no_data")
                return None
            key = self._rng.choice(truth.sampled_keys)
            _, times, _ = truth.arrays()
            timestamp = float(self._rng.choice(times))
            if timestamp > truth.frontier:
                timestamp = truth.frontier
            if kind == "attp":
                exact = truth.truth_at(key, timestamp)
                total = truth.total_at(timestamp)
            else:
                if truth.saturated:
                    # the suffix extends past the recorded frontier: the
                    # exact answer is unknowable, skip honestly
                    self._skip(1, "saturated")
                    return None
                exact = truth.truth_since(key, timestamp)
                total = truth.total_since(timestamp)
        method = "estimate_at" if kind == "attp" else "estimate_since"
        try:
            answer = getattr(service, method)(
                *prefix, key, timestamp, explain=True
            )
        except Exception as exc:
            if isinstance(exc, (AttributeError, NotImplementedError)) or (
                "support" in str(exc)
            ):
                self._unsupported.add((tenant, kind))
                self._skip(1, "unsupported")
            else:
                self._skip(1, "query_failed")
            return None
        estimate, plan = answer if isinstance(answer, tuple) else (answer, None)
        certificate = getattr(plan, "certificate", None)
        error = abs(float(estimate) - exact)
        observed = error / max(total, 1.0)
        bound = self.epsilon * max(total, 1.0) + self.tolerance
        if certificate is not None:
            widened = getattr(certificate, "widened_error_bound", None)
            if widened is not None:
                # widened_error_bound = sum of covered per-shard bounds +
                # missing items, already in absolute units
                bound = max(bound, float(widened) + self.tolerance)
        violated = error > bound
        if _TEL.enabled:
            _TEL.registry.histogram(
                "audit_observed_error",
                "Normalised |estimate - truth| / W of audited answers, "
                "by query kind.",
                buckets=OBSERVED_ERROR_BUCKETS,
                kind=kind,
            ).observe(observed)
            _TEL.registry.counter(
                "audit_queries_total",
                "Audit replay queries issued against the live service, "
                "by kind.",
                kind=kind,
            ).inc()
            if violated:
                _TEL.registry.counter(
                    "audit_bound_violations_total",
                    "Audited answers outside their (possibly widened) "
                    "paper bound.",
                ).inc()
        return observed, violated

    def _skip(self, count: int, reason: str) -> None:
        if _TEL.enabled and count:
            _TEL.registry.counter(
                "audit_queries_skipped_total",
                "Audit queries skipped (no data, saturated store, or "
                "query failure).",
                reason=reason,
            ).inc(count)

    # -- introspection ---------------------------------------------------------

    def status(self) -> dict:
        """Lifetime summary: tracked tenants/keys/items, audits, violations."""
        with self._lock:
            return {
                "epsilon": self.epsilon,
                "delta": self.delta,
                "sample_fraction": self.sample_fraction,
                "tenants": {
                    str(tenant): {
                        "items": truth.items,
                        "sampled_keys": len(truth.sampled_keys),
                        "frontier": (
                            truth.frontier
                            if truth.frontier != -np.inf else None
                        ),
                        "saturated": truth.saturated,
                    }
                    for tenant, truth in self._truth.items()
                },
                "audited": self._audited,
                "violations": self._violations,
                "violation_fraction": (
                    self._violations / self._audited if self._audited else 0.0
                ),
            }

    # -- lifecycle -------------------------------------------------------------

    def start(self, interval: float = 30.0,
              queries_per_run: int = 32) -> "AccuracyAuditor":
        """Run :meth:`run_audit` every ``interval`` seconds on a daemon
        thread (idempotent); returns self."""
        if self._thread is not None:
            return self
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval):
                try:
                    self.run_audit(queries=queries_per_run)
                except Exception:
                    pass

        self._thread = threading.Thread(
            target=loop, name="accuracy-auditor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the replay thread (idempotent; ground truth kept)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "AccuracyAuditor":
        """No-op entry (attach/bind explicitly); enables ``with`` cleanup."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Stop any replay thread on context exit."""
        self.stop()
