"""A declarative SLO rule engine over the metric time series.

Rules (:class:`AlertRule`) are plain data — metric name, comparison,
threshold, hold-down — and the engine (:class:`AlertEngine`) evaluates
every rule on each poller tick, driving a three-state machine per rule::

    ok ──condition true──▶ pending ──held for_seconds──▶ firing
     ▲                        │                             │
     └────condition false─────┴─────────────────────────────┘

``pending`` is the hold-down: a condition must stay true for
``for_seconds`` before the alert fires, so a one-tick blip (a single slow
query, a shard mid-rebuild for 100 ms) does not page anyone.  Three rule
kinds cover the SLO vocabulary:

``threshold``
    Compare the metric's *current* registry value (aggregated over the
    matching label children) against the threshold.  For histograms the
    rule compares a windowed delta quantile from the poller (set
    ``quantile="p99"``).
``rate``
    Compare the poller's windowed per-second counter rate.
``absence``
    Fire when the metric has no series at all — a heartbeat that
    *stopped* (for "stopped increasing", use a ``rate`` rule with
    ``op="<"``).

The engine's :meth:`~AlertEngine.status` payload is served at ``/alerts``
and its :meth:`~AlertEngine.firing` summary is folded into ``/healthz``
by the services — a firing ``critical`` rule turns the health endpoint
503, so the same load-balancer probe that catches a poisoned shard
catches a blown error budget.  See docs/OBSERVABILITY.md ("Watching the
watcher") for the rule grammar and worked examples.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.registry import TELEMETRY as _TEL
from repro.telemetry.timeseries import MetricPoller

#: Rule evaluation states, in escalation order.
ALERT_STATES = ("ok", "pending", "firing")
OK, PENDING, FIRING = ALERT_STATES

_KINDS = ("threshold", "rate", "absence")
_OPS = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
}
_AGGREGATES = ("max", "min", "sum", "avg")
_SEVERITIES = ("info", "warning", "critical")

# Declared at import time for the docs-catalog lint (docs/OBSERVABILITY.md).
_TEL.registry.declare(
    "alerts_evaluations_total",
    "counter",
    "Rule evaluations performed by alert engines.",
)
_TEL.registry.declare(
    "alerts_transitions_total",
    "counter",
    "Alert state-machine transitions, by target state.",
)
_TEL.registry.declare(
    "alerts_firing",
    "gauge",
    "Alert rules currently in the firing state.",
)

_EVALUATIONS = _TEL.registry.get("alerts_evaluations_total").labels()
_FIRING_GAUGE = _TEL.registry.get("alerts_firing").labels()


@dataclass(frozen=True)
class AlertRule:
    """One declarative SLO rule (see the module docstring for semantics).

    Attributes
    ----------
    name:
        Unique rule name (shown in ``/alerts`` and ``/healthz``).
    metric:
        The metric family the rule watches.
    kind:
        ``"threshold"``, ``"rate"`` or ``"absence"``.
    op, threshold:
        The comparison (ignored by ``absence`` rules).
    for_seconds:
        Hold-down: the condition must stay true this long before the
        rule leaves ``pending`` for ``firing`` (0 = fire immediately).
    severity:
        ``"info"``, ``"warning"`` or ``"critical"`` — only firing
        critical rules flip ``/healthz`` to 503.
    labels:
        Optional label subset filter; only children carrying all these
        pairs are aggregated.
    aggregate:
        How multiple matching children combine: ``"max"`` (default),
        ``"min"``, ``"sum"`` or ``"avg"``.
    quantile:
        For ``threshold`` rules over histograms: the poller-derived
        windowed quantile to compare (``"p50"``/``"p95"``/``"p99"``).
    description:
        Free-text operator note, echoed in ``/alerts``.
    """

    name: str
    metric: str
    kind: str = "threshold"
    op: str = ">"
    threshold: float = 0.0
    for_seconds: float = 0.0
    severity: str = "warning"
    labels: Optional[Dict[str, str]] = None
    aggregate: str = "max"
    quantile: Optional[str] = None
    description: str = ""

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.op not in _OPS:
            raise ValueError(f"op must be one of {sorted(_OPS)}, got {self.op!r}")
        if self.aggregate not in _AGGREGATES:
            raise ValueError(
                f"aggregate must be one of {_AGGREGATES}, got {self.aggregate!r}"
            )
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"severity must be one of {_SEVERITIES}, got {self.severity!r}"
            )
        if self.for_seconds < 0:
            raise ValueError(f"for_seconds must be >= 0, got {self.for_seconds}")

    def as_dict(self) -> dict:
        """JSON-friendly form of the rule definition."""
        return {
            "name": self.name,
            "metric": self.metric,
            "kind": self.kind,
            "op": self.op,
            "threshold": self.threshold,
            "for_seconds": self.for_seconds,
            "severity": self.severity,
            "labels": dict(self.labels) if self.labels else {},
            "aggregate": self.aggregate,
            "quantile": self.quantile,
            "description": self.description,
        }


@dataclass
class _RuleState:
    state: str = OK
    since: Optional[float] = None        # entered current state at
    pending_since: Optional[float] = None
    value: Optional[float] = None        # last evaluated value
    transitions: int = 0
    last_fired: Optional[float] = None


class AlertEngine:
    """Evaluate a set of :class:`AlertRule` on each poller tick.

    Construct with the rules and the :class:`MetricPoller` whose series
    feed ``rate``/``quantile`` evaluations; the engine registers itself
    as a tick listener, so a started poller drives evaluation with no
    extra thread.  :meth:`evaluate` may also be called directly (the
    tests and the chaos harness do).

    Thread-safe: evaluation and the ``/alerts`` snapshot serialise on one
    lock; the registry reads use the same lock-discipline as the
    exporter.
    """

    def __init__(
        self,
        rules: Sequence[AlertRule],
        poller: Optional[MetricPoller] = None,
        history: int = 256,
        clock=time.time,
    ):
        names = [rule.name for rule in rules]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ValueError(f"duplicate rule names: {sorted(duplicates)}")
        self.rules: Tuple[AlertRule, ...] = tuple(rules)
        self._poller = poller
        self._registry = poller._registry if poller is not None else _TEL.registry
        self._clock = clock
        self._states: Dict[str, _RuleState] = {
            rule.name: _RuleState() for rule in self.rules
        }
        self._history: deque = deque(maxlen=history)
        self._lock = threading.Lock()
        if poller is not None:
            poller.add_listener(self.evaluate)

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, now: Optional[float] = None) -> List[str]:
        """Evaluate every rule once; returns the names of firing rules."""
        if now is None:
            now = self._clock()
        firing: List[str] = []
        with self._lock:
            for rule in self.rules:
                value = self._value_of(rule)
                condition = self._condition(rule, value)
                self._advance(rule, value, condition, now)
                if self._states[rule.name].state == FIRING:
                    firing.append(rule.name)
            if _TEL.enabled:
                _EVALUATIONS.inc(len(self.rules))
                _FIRING_GAUGE.set(len(firing))
        return firing

    def _value_of(self, rule: AlertRule) -> Optional[float]:
        """The rule's current input value, or None when there is no data."""
        if rule.kind == "rate":
            return self._from_poller(rule, "rate")
        if rule.kind == "absence":
            family = self._registry.get(rule.metric)
            if family is None:
                return None
            matched = self._matching_children(rule, family)
            return float(len(matched)) if matched else None
        # threshold
        family = self._registry.get(rule.metric)
        if family is None:
            return None
        if family.kind == "histogram" or rule.quantile is not None:
            labels = dict(rule.labels or {})
            if rule.quantile is not None:
                labels["quantile"] = rule.quantile
            return self._from_poller(rule, "quantile", labels)
        values = [child.value
                  for child in self._matching_children(rule, family)]
        return self._combine(rule, values)

    def _matching_children(self, rule: AlertRule, family) -> list:
        wanted = set((rule.labels or {}).items())
        return [
            child
            for labels, child in family.samples()
            if not wanted or wanted.issubset(set(labels.items()))
        ]

    def _from_poller(self, rule: AlertRule, kind: str,
                     labels: Optional[dict] = None) -> Optional[float]:
        if self._poller is None:
            return None
        latest = self._poller.latest(
            rule.metric, kind=kind,
            labels=labels if labels is not None else rule.labels,
        )
        return self._combine(rule, [value for _, _, value in latest])

    @staticmethod
    def _combine_values(aggregate: str, values: List[float]) -> float:
        if aggregate == "sum":
            return sum(values)
        if aggregate == "min":
            return min(values)
        if aggregate == "avg":
            return sum(values) / len(values)
        return max(values)

    def _combine(self, rule: AlertRule,
                 values: List[float]) -> Optional[float]:
        if not values:
            return None
        return self._combine_values(rule.aggregate, values)

    @staticmethod
    def _condition(rule: AlertRule, value: Optional[float]) -> bool:
        if rule.kind == "absence":
            return value is None
        if value is None:
            return False
        return _OPS[rule.op](value, rule.threshold)

    def _advance(self, rule: AlertRule, value: Optional[float],
                 condition: bool, now: float) -> None:
        state = self._states[rule.name]
        state.value = value
        if not condition:
            if state.state != OK:
                self._transition(rule, state, OK, now)
            state.pending_since = None
            return
        if state.state == OK:
            state.pending_since = now
            if rule.for_seconds <= 0:
                self._transition(rule, state, FIRING, now)
            else:
                self._transition(rule, state, PENDING, now)
        elif state.state == PENDING:
            held = now - (state.pending_since
                          if state.pending_since is not None else now)
            if held >= rule.for_seconds:
                self._transition(rule, state, FIRING, now)

    def _transition(self, rule: AlertRule, state: _RuleState,
                    to: str, now: float) -> None:
        event = {
            "rule": rule.name,
            "severity": rule.severity,
            "from": state.state,
            "to": to,
            "at": now,
            "value": state.value,
        }
        state.state = to
        state.since = now
        state.transitions += 1
        if to == FIRING:
            state.last_fired = now
        self._history.append(event)
        if _TEL.enabled:
            _TEL.registry.counter(
                "alerts_transitions_total",
                "Alert state-machine transitions, by target state.",
                to=to,
            ).inc()

    # -- introspection -------------------------------------------------------

    def firing(self, severity: Optional[str] = None) -> List[str]:
        """Names of currently firing rules (optionally one severity)."""
        with self._lock:
            return [
                rule.name
                for rule in self.rules
                if self._states[rule.name].state == FIRING
                and (severity is None or rule.severity == severity)
            ]

    def state(self, name: str) -> str:
        """Current state of one rule (``"ok"``/``"pending"``/``"firing"``)."""
        with self._lock:
            return self._states[name].state

    def summary(self) -> dict:
        """Compact health-payload fold: counts and firing rule names."""
        with self._lock:
            states = [self._states[rule.name].state for rule in self.rules]
            return {
                "rules": len(self.rules),
                "firing": states.count(FIRING),
                "pending": states.count(PENDING),
                "critical_firing": [
                    rule.name
                    for rule in self.rules
                    if rule.severity == "critical"
                    and self._states[rule.name].state == FIRING
                ],
            }

    def status(self) -> dict:
        """Full ``/alerts`` payload: per-rule state plus recent history."""
        with self._lock:
            rules = []
            for rule in self.rules:
                state = self._states[rule.name]
                entry = rule.as_dict()
                entry.update({
                    "state": state.state,
                    "since": state.since,
                    "value": state.value,
                    "transitions": state.transitions,
                    "last_fired": state.last_fired,
                })
                rules.append(entry)
            states = [entry["state"] for entry in rules]
            return {
                "rules": rules,
                "firing": states.count(FIRING),
                "pending": states.count(PENDING),
                "ok": states.count(OK),
                "history": list(self._history),
            }


def default_service_rules(
    *,
    error_p99: float = 0.02,
    queue_depth: float = 10_000.0,
    query_p99_seconds: float = 0.5,
    for_seconds: float = 0.0,
) -> Tuple[AlertRule, ...]:
    """A starter SLO pack for a sharded service (tune per deployment).

    * ``shard_unhealthy`` (critical) — any supervised shard left
      ``HEALTHY`` (``service_shard_state`` > 0: rebuilding, degraded or
      failed);
    * ``audit_error_budget`` (critical) — the accuracy auditor's windowed
      p99 observed error exceeded ``error_p99``;
    * ``audit_bound_violation`` (critical) — any audited answer landed
      outside its (possibly widened) paper bound;
    * ``queue_backlog`` (warning) — a shard queue deeper than
      ``queue_depth`` items;
    * ``query_latency`` (warning) — windowed p99 service query latency
      above ``query_p99_seconds``.
    """
    return (
        AlertRule(
            name="shard_unhealthy",
            metric="service_shard_state",
            kind="threshold",
            op=">",
            threshold=0.0,
            for_seconds=for_seconds,
            severity="critical",
            description="a supervised shard is rebuilding, degraded or failed",
        ),
        AlertRule(
            name="audit_error_budget",
            metric="audit_observed_error",
            kind="threshold",
            quantile="p99",
            op=">",
            threshold=error_p99,
            for_seconds=for_seconds,
            severity="critical",
            description="windowed p99 audited answer error above budget",
        ),
        AlertRule(
            name="audit_bound_violation",
            metric="audit_bound_violations_total",
            kind="rate",
            op=">",
            threshold=0.0,
            for_seconds=for_seconds,
            severity="critical",
            description="an audited answer fell outside its (eps, delta) bound",
        ),
        AlertRule(
            name="queue_backlog",
            metric="service_queue_depth",
            kind="threshold",
            op=">",
            threshold=queue_depth,
            for_seconds=for_seconds,
            severity="warning",
            description="a shard ingest queue is backing up",
        ),
        AlertRule(
            name="query_latency",
            metric="service_query_seconds",
            kind="threshold",
            quantile="p99",
            op=">",
            threshold=query_p99_seconds,
            for_seconds=for_seconds,
            severity="warning",
            description="windowed p99 query latency above budget",
        ),
    )
