"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Dependency-free (stdlib only) so every other layer of the package can
instrument itself without import cycles: ``repro.sketches``, ``repro.core``
and ``repro.durability`` all import this module at module-load time, create
their metric children once, and guard each hot-path emission with the
process-global switch::

    from repro.telemetry.registry import TELEMETRY as _TEL
    _UPDATES = _TEL.counter("sketch_updates_total", "...", sketch="countmin")

    def update(self, ...):
        ...
        if _TEL.enabled:          # one attribute check when disabled
            _UPDATES.inc()

The disabled path costs exactly one global load plus one attribute check —
benchmarked in ``benchmarks/test_telemetry_overhead.py`` at under 5% of
batch-ingest throughput.  Metric *registration* happens at import time
regardless of the switch, which is what lets the docs-lint test enumerate
every metric the code can ever emit (see docs/OBSERVABILITY.md).

Naming follows the Prometheus conventions: snake_case, base units, and a
``_total`` / ``_seconds`` / ``_bytes`` suffix.  Counters only go up; gauges
go anywhere; histograms have fixed bucket upper bounds (``le`` semantics:
an observation lands in the first bucket whose bound is >= the value) and
report estimated p50/p95/p99 by linear interpolation within the bucket.

Metrics are thread-safe: concurrent shard workers (``repro.service``)
hammer the same counter children from many threads.  Counters use a
*sharded-cell* fast path — each thread increments its own cell, so the hot
``+=`` is a single-writer read-modify-write that cannot race, with no lock
acquired after a thread's first increment.  Gauges and histograms mutate
multiple fields per operation and take a per-child lock (their call sites
are cold relative to per-item ingest).  Registration and child creation
take locks too (rare and cold).
"""

from __future__ import annotations

import bisect
import os
import re
import threading
from typing import Dict, Iterator, List, Optional, Tuple

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")
_LABEL_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Default latency buckets (seconds): 1 microsecond to 10 seconds, roughly
#: geometric, chosen so sub-millisecond sketch queries and multi-second
#: recovery scans both resolve to a meaningful percentile.
DEFAULT_LATENCY_BUCKETS = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing value (events, items, bytes).

    Thread-safe via sharded cells: each thread increments its own slot in
    ``_cells``, so the read-modify-write never races (single writer per
    key, and each dict operation is atomic under the GIL).  A thread's
    *first* increment, and reads, take the per-counter lock — inserts can
    resize the dict, which must not happen under a concurrent read scan.
    """

    __slots__ = ("_cells", "_lock")

    def __init__(self):
        self._cells: Dict[int, float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        cells = self._cells
        ident = threading.get_ident()
        try:
            cells[ident] += amount
        except KeyError:
            with self._lock:
                cells[ident] = cells.get(ident, 0.0) + amount

    @property
    def value(self) -> float:
        """The counter's total across all threads."""
        with self._lock:
            return sum(self._cells.values())

    def _reset(self) -> None:
        with self._lock:
            self._cells.clear()


class Gauge:
    """A value that can go up and down (resident bytes, live segments).

    ``set`` is a single attribute store (atomic under the GIL);
    ``inc``/``dec`` are read-modify-writes and take the per-gauge lock so
    concurrent shard workers cannot lose deltas.
    """

    __slots__ = ("value", "_lock")

    def __init__(self):
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        with self._lock:
            self.value -= amount

    def _reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed-bucket histogram with estimated quantiles.

    ``bounds`` are the finite bucket upper bounds, strictly increasing; an
    implicit ``+inf`` bucket catches the overflow.  ``observe(v)`` lands in
    the first bucket whose bound is ``>= v`` (Prometheus ``le`` semantics,
    so an observation exactly on an edge belongs to that edge's bucket).

    ``observe`` mutates three fields and takes the per-histogram lock, so
    concurrent observers (fan-out query latencies from service threads)
    cannot skew ``count`` against ``bucket_counts``.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "_lock")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one finite bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +inf overflow
        self.count = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.sum += value

    def _reset(self) -> None:
        with self._lock:
            self.bucket_counts = [0] * (len(self.bounds) + 1)
            self.count = 0
            self.sum = 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1) by in-bucket interpolation.

        Returns 0.0 with no observations.  Observations in the ``+inf``
        bucket clamp to the largest finite bound (the histogram cannot see
        beyond its edges — pick wider buckets if this matters).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if index >= len(self.bounds):  # overflow bucket
                    return self.bounds[-1]
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index]
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
        return self.bounds[-1]

    def percentiles(self) -> Dict[str, float]:
        """The operator's trio: ``{"p50": ..., "p95": ..., "p99": ...}``."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def mean(self) -> float:
        """Mean observed value (0.0 with no observations)."""
        return self.sum / self.count if self.count else 0.0


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric and its per-labelset children.

    Children are keyed by the sorted ``(label, value)`` tuple; a family with
    no labels has a single child under the empty key.
    """

    def __init__(self, name: str, kind: str, help: str = "",
                 buckets: Optional[Tuple[float, ...]] = None):
        if not _NAME_RE.match(name):
            raise ValueError(
                f"metric name must be snake_case ([a-z][a-z0-9_]*), got {name!r}"
            )
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {sorted(_KINDS)}, got {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.children: Dict[Tuple[Tuple[str, str], ...], object] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: str):
        """The child metric for this labelset, created on first use.

        Creation is double-checked under the family lock so two threads
        binding the same labelset get the *same* child — a lost child would
        silently fork the metric.
        """
        key = _label_key(labels)
        child = self.children.get(key)
        if child is None:
            with self._lock:
                child = self.children.get(key)
                if child is None:
                    if self.kind == "histogram":
                        child = Histogram(self.buckets or DEFAULT_LATENCY_BUCKETS)
                    else:
                        child = _KINDS[self.kind]()
                    self.children[key] = child
        return child

    def samples(self) -> Iterator[Tuple[Dict[str, str], object]]:
        """Iterate ``(labels_dict, child_metric)`` pairs, stable order."""
        for key in sorted(self.children):
            yield dict(key), self.children[key]

    def remove(self, **labels: str) -> int:
        """Drop every child whose labelset contains all given pairs.

        Returns the number of children removed.  This is how a bounded
        label space stays bounded when the labelled thing *goes away* —
        e.g. the tenancy layer removes a spilled tenant's
        ``memory_resident_bytes`` children so gauges track residency, not
        history.  Counters should normally never be removed (their value
        is the history); removing one resets it to zero on next use.
        """
        wanted = set(_label_key(labels))
        with self._lock:
            victims = [
                key for key in self.children if wanted.issubset(set(key))
            ]
            for key in victims:
                del self.children[key]
        return len(victims)


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    for label in labels:
        if not _LABEL_RE.match(label):
            raise ValueError(f"label name must be snake_case, got {label!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """All metric families of one process, keyed by name.

    The convenience methods (:meth:`counter`, :meth:`gauge`,
    :meth:`histogram`) register the family on first call and return the
    child for the given labels, so an instrumentation site is one line.
    Re-registering a name with a different kind is an error — two call
    sites disagreeing about a metric's type is always a bug.
    """

    def __init__(self):
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _family(self, name: str, kind: str, help: str,
                buckets: Optional[Tuple[float, ...]] = None) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"cannot re-register as {kind}"
                )
            else:
                if help and not family.help:
                    family.help = help
            return family

    def declare(self, name: str, kind: str, help: str = "",
                buckets: Optional[Tuple[float, ...]] = None) -> MetricFamily:
        """Register a family without creating a child (labels bound later).

        Use when the label values are only known at emission time (e.g. one
        histogram child per span name): declaring at import time keeps the
        metric discoverable by the docs-lint even before it has samples.
        """
        return self._family(name, kind, help, buckets)

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """Register (if new) and return the counter child for ``labels``."""
        return self._family(name, "counter", help).labels(**labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """Register (if new) and return the gauge child for ``labels``."""
        return self._family(name, "gauge", help).labels(**labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Tuple[float, ...]] = None,
                  **labels: str) -> Histogram:
        """Register (if new) and return the histogram child for ``labels``."""
        return self._family(name, "histogram", help, buckets).labels(**labels)

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, or None."""
        return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        """All registered families, sorted by name."""
        return [self._families[name] for name in sorted(self._families)]

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._families)

    def reset(self) -> None:
        """Zero every child metric, keeping the registered families.

        Used between benchmark repetitions and tests: the *catalog* (which
        metrics exist) is import-time state and survives; the *values* go
        back to zero.  Children are zeroed *in place* — instrumentation
        sites hold direct references bound at import time, so replacing the
        objects would silently disconnect them.
        """
        with self._lock:
            for family in self._families.values():
                for child in family.children.values():
                    child._reset()


class TelemetryControl:
    """The process-global switch and registry, as one object.

    ``TELEMETRY.enabled`` is a plain bool attribute — the only thing hot
    paths read.  Everything else (the registry, enable/disable) is cold.
    """

    __slots__ = ("enabled", "registry")

    def __init__(self):
        self.enabled = False
        self.registry = MetricsRegistry()

    def enable(self) -> None:
        """Turn telemetry on (metrics record, spans collect)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn telemetry off (hot paths cost one attribute check)."""
        self.enabled = False

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """Shorthand for ``TELEMETRY.registry.counter`` (import-time use)."""
        return self.registry.counter(name, help, **labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """Shorthand for ``TELEMETRY.registry.gauge``."""
        return self.registry.gauge(name, help, **labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Tuple[float, ...]] = None,
                  **labels: str) -> Histogram:
        """Shorthand for ``TELEMETRY.registry.histogram``."""
        return self.registry.histogram(name, help, buckets, **labels)


#: The process-global telemetry control: one switch, one registry.
TELEMETRY = TelemetryControl()


def _reinit_locks_after_fork() -> None:
    """Replace every metric lock in the child of a fork.

    ``fork()`` copies lock *state*: a lock some other thread happened to
    hold at fork time is permanently stuck in the child, where that
    thread does not exist.  The process shard backend
    (``repro.service.proc_worker``) forks workers while the parent's
    telemetry is live, so the child swaps in fresh locks — replacing,
    never acquiring, because acquiring a stuck lock is the deadlock this
    exists to avoid.  Values may be mid-update garbage; the child resets
    its registry before shipping deltas anyway.
    """
    registry = TELEMETRY.registry
    registry._lock = threading.Lock()
    for family in registry._families.values():
        family._lock = threading.Lock()
        for child in family.children.values():
            child._lock = threading.Lock()


if hasattr(os, "register_at_fork"):  # POSIX only
    os.register_at_fork(after_in_child=_reinit_locks_after_fork)


def sketch_metrics(sketch: str) -> Tuple[Counter, Counter, Counter, Counter]:
    """The standard per-sketch instrumentation quartet, bound at import time.

    Returns ``(updates, batches, batch_items, queries)`` counters labelled
    ``sketch=<name>``.  Semantics (see docs/OBSERVABILITY.md):

    * ``sketch_updates_total`` — scalar ``update()`` invocations;
    * ``sketch_batches_total`` — ``update_batch()`` invocations;
    * ``sketch_batch_items_total`` — items offered through the batch API;
    * ``sketch_queries_total`` — point/aggregate query calls.

    The scalar and batch counters overlap only when ``update_batch`` falls
    back to a scalar loop (e.g. conservative CountMin), which is the honest
    reading: those items really did take the scalar path.
    """
    return (
        TELEMETRY.counter(
            "sketch_updates_total",
            "Scalar update() calls, by sketch.",
            sketch=sketch,
        ),
        TELEMETRY.counter(
            "sketch_batches_total",
            "update_batch() calls, by sketch.",
            sketch=sketch,
        ),
        TELEMETRY.counter(
            "sketch_batch_items_total",
            "Items ingested through the batch API, by sketch.",
            sketch=sketch,
        ),
        TELEMETRY.counter(
            "sketch_queries_total",
            "Point/aggregate queries answered, by sketch.",
            sketch=sketch,
        ),
    )


def timed(histogram: Histogram):
    """Decorator: observe the wrapped call's wall time when telemetry is on.

    When disabled the wrapped function runs with no timer — the wrapper adds
    one attribute check and one extra frame.  Used on *query* paths (cold
    relative to ingest); per-item ingest paths inline the check instead.
    """
    import functools
    import time

    def wrap(fn):
        @functools.wraps(fn)
        def inner(*args, **kwargs):
            if not TELEMETRY.enabled:
                return fn(*args, **kwargs)
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                histogram.observe(time.perf_counter() - start)
        return inner
    return wrap
