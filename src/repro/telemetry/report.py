"""The one-call operator summary: ``repro.telemetry.report()``.

Formats the current registry (and span collector) as a fixed-width text
report — counters and gauges grouped by family, histograms with count /
mean / p50 / p95 / p99, span aggregates by name, and any published memory
accounting with residency-vs-bound utilisation.  This is what
``examples/observability_tour.py`` prints and what an operator pastes into
an incident channel; machine consumers should use the exporters in
:mod:`repro.telemetry.export` instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry.registry import Histogram, MetricsRegistry, TELEMETRY
from repro.telemetry.spans import SPANS, SpanCollector


def _label_suffix(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def report(
    registry: Optional[MetricsRegistry] = None,
    spans: Optional[SpanCollector] = None,
) -> str:
    """Render the registry and span state as a human-readable summary.

    Families with no recorded activity (all-zero counters, empty
    histograms) are listed compactly at the end rather than omitted, so the
    report doubles as the live metric catalog.
    """
    registry = registry or TELEMETRY.registry
    spans = spans if spans is not None else SPANS
    lines: List[str] = []
    lines.append("repro telemetry report")
    lines.append(
        f"telemetry enabled: {TELEMETRY.enabled}   metric families: "
        f"{len(registry.families())}   spans recorded: {len(spans.records)}"
    )
    quiet: List[str] = []

    counter_lines: List[str] = []
    histogram_lines: List[str] = []
    for family in registry.families():
        active = False
        for labels, child in family.samples():
            if isinstance(child, Histogram):
                if child.count == 0:
                    continue
                active = True
                p = child.percentiles()
                histogram_lines.append(
                    f"  {family.name}{_label_suffix(labels)}  "
                    f"count={child.count}  mean={_format_seconds(child.mean())}  "
                    f"p50={_format_seconds(p['p50'])}  "
                    f"p95={_format_seconds(p['p95'])}  "
                    f"p99={_format_seconds(p['p99'])}"
                )
            else:
                if child.value == 0:
                    continue
                active = True
                value = child.value
                rendered = str(int(value)) if float(value).is_integer() else f"{value:.4g}"
                counter_lines.append(
                    f"  {family.name}{_label_suffix(labels)} = {rendered}"
                )
        if not active:
            quiet.append(family.name)

    if counter_lines:
        lines.append("")
        lines.append("counters / gauges")
        lines.extend(counter_lines)
    if histogram_lines:
        lines.append("")
        lines.append("latency histograms")
        lines.extend(histogram_lines)

    if spans.records:
        lines.append("")
        lines.append("spans (aggregated by name)")
        by_name: Dict[str, List] = {}
        for record in spans.records:
            by_name.setdefault(record.name, []).append(record)
        for name in sorted(by_name):
            records = by_name[name]
            wall = sum(r.wall_seconds for r in records)
            cpu = sum(r.cpu_seconds for r in records)
            lines.append(
                f"  {name}  n={len(records)}  wall={_format_seconds(wall)}  "
                f"cpu={_format_seconds(cpu)}  "
                f"max={_format_seconds(max(r.wall_seconds for r in records))}"
            )
        if spans.dropped:
            lines.append(f"  ({spans.dropped} eviction(s) from the span ring buffer)")

    if quiet:
        lines.append("")
        lines.append(f"registered but quiet: {', '.join(sorted(quiet))}")
    return "\n".join(lines)
