"""Seeded Zipf samplers with skew calibration.

The WorldCup'98 substitute streams are characterised in the paper by their
max-to-average frequency ratios (~3,700x for Client-ID, ~11,800x for
Object-ID).  For a Zipf law with exponent ``s`` over a universe of ``U``
items, ``p_max / p_avg = U / H_{U,s}`` where ``H_{U,s}`` is the generalised
harmonic number — so a target ratio determines ``s`` given ``U``, which
:func:`calibrate_exponent` solves by bisection.
"""

from __future__ import annotations

import numpy as np


def generalized_harmonic(universe: int, exponent: float) -> float:
    """``H_{U,s} = sum_{r=1..U} r^-s``."""
    if universe < 1:
        raise ValueError(f"universe must be >= 1, got {universe}")
    ranks = np.arange(1, universe + 1, dtype=float)
    return float(np.sum(ranks**-exponent))


def max_to_average_ratio(universe: int, exponent: float) -> float:
    """Expected max/avg frequency ratio of a Zipf(s) stream over U items."""
    return universe / generalized_harmonic(universe, exponent)


def calibrate_exponent(universe: int, target_ratio: float, tol: float = 1e-3) -> float:
    """Zipf exponent whose max/avg frequency ratio matches ``target_ratio``.

    The ratio is 1 at ``s = 0`` (uniform) and approaches ``U`` as ``s`` grows,
    so any target in ``(1, U)`` has a unique solution, found by bisection.
    """
    if not 1.0 < target_ratio < universe:
        raise ValueError(
            f"target_ratio must be in (1, universe={universe}), got {target_ratio}"
        )
    lo, hi = 0.0, 1.0
    while max_to_average_ratio(universe, hi) < target_ratio:
        hi *= 2.0
        if hi > 64:
            raise ValueError("target ratio unreachable; universe too small")
    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        if max_to_average_ratio(universe, mid) < target_ratio:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


class ZipfGenerator:
    """Seeded Zipf(s) key sampler over ``[0, universe)``.

    Rank-to-key assignment is a seeded permutation, so heavy keys are spread
    over the id space as in the anonymised WorldCup logs.
    """

    def __init__(self, universe: int, exponent: float, seed: int = 0):
        if universe < 1:
            raise ValueError(f"universe must be >= 1, got {universe}")
        if exponent < 0:
            raise ValueError(f"exponent must be >= 0, got {exponent}")
        self.universe = universe
        self.exponent = exponent
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, universe + 1, dtype=float)
        weights = ranks**-exponent
        self._probabilities = weights / weights.sum()
        self._cumulative = np.cumsum(self._probabilities)
        self._rank_to_key = self._rng.permutation(universe)

    def sample(self, n: int) -> np.ndarray:
        """Draw ``n`` keys i.i.d. from the calibrated Zipf distribution."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        uniforms = self._rng.random(n)
        ranks = np.searchsorted(self._cumulative, uniforms, side="right")
        ranks = np.minimum(ranks, self.universe - 1)
        return self._rank_to_key[ranks]

    def probability_of_key(self, key: int) -> float:
        """The stationary probability assigned to ``key``."""
        rank = int(np.flatnonzero(self._rank_to_key == key)[0])
        return float(self._probabilities[rank])

    def expected_heavy_hitters(self, phi: float) -> list:
        """Keys whose stationary probability is at least ``phi``."""
        if not 0 < phi <= 1:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        heavy_ranks = np.flatnonzero(self._probabilities >= phi)
        return sorted(int(self._rank_to_key[rank]) for rank in heavy_ranks)
