"""Workload generators: calibrated Zipf streams standing in for the
WorldCup'98 log, and the paper's Section-6.3 synthetic matrix datasets."""

from repro.workloads.matrix_gen import (
    MatrixStream,
    generate_matrix_stream,
    high_dimension_stream,
    low_dimension_stream,
    matrix_query_schedule,
    medium_dimension_stream,
)
from repro.workloads.worldcup import (
    LogStream,
    bursty_stream,
    client_id_stream,
    object_id_stream,
    query_schedule,
)
from repro.workloads.zipf import (
    ZipfGenerator,
    calibrate_exponent,
    generalized_harmonic,
    max_to_average_ratio,
)

__all__ = [
    "LogStream",
    "bursty_stream",
    "MatrixStream",
    "ZipfGenerator",
    "calibrate_exponent",
    "client_id_stream",
    "generalized_harmonic",
    "generate_matrix_stream",
    "high_dimension_stream",
    "low_dimension_stream",
    "matrix_query_schedule",
    "max_to_average_ratio",
    "medium_dimension_stream",
    "object_id_stream",
    "query_schedule",
]
