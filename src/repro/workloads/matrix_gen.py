"""Synthetic matrix-stream datasets per Section 6.3 of the paper.

Each dataset is ``n`` d-dimensional vectors with integer timestamps in
``[1, horizon]``:

* **Noise half** — timestamps uniform over the horizon; each vector drawn
  from a random orthogonal basis of R^d with per-direction lengths
  ``N(0, scale)`` where ``scale ~ Beta(1, 10)``.
* **Event half** — timestamps ``N(horizon/2, horizon/50)`` (the paper's
  Gaussian(500, 20) for horizon 1000); each vector drawn from ``d/10``
  orthogonal random directions with scales ``Beta(1, 10) * 10`` — the strong
  transient signal the sketches should expose at mid-stream queries.

The paper uses (n=50,000; d=100 / 1,000 / 10,000).  Dimensions and counts
scale down proportionally for Python runtimes; the generator preserves the
structure exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MatrixStream:
    """Time-ordered matrix rows plus generator metadata."""

    timestamps: np.ndarray  # shape (n,), non-decreasing
    rows: np.ndarray  # shape (n, d)
    dim: int
    name: str

    def __len__(self) -> int:
        return len(self.timestamps)

    def __iter__(self):
        for index in range(len(self.timestamps)):
            yield self.rows[index], float(self.timestamps[index])


def _random_orthonormal(dim: int, columns: int, rng: np.random.Generator) -> np.ndarray:
    gaussian = rng.normal(size=(dim, columns))
    q, _ = np.linalg.qr(gaussian)
    return q[:, :columns]


def generate_matrix_stream(
    n: int = 5_000,
    dim: int = 100,
    horizon: float = 1_000.0,
    seed: int = 0,
    name: str = None,
) -> MatrixStream:
    """Build one Section-6.3 dataset (noise half + event half, time-sorted)."""
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if dim < 10:
        raise ValueError(f"dim must be >= 10 (events use d/10 directions), got {dim}")
    rng = np.random.default_rng(seed)
    n_noise = n // 2
    n_event = n - n_noise

    # Noise: full random orthogonal basis, Beta(1,10) direction scales.
    noise_basis = _random_orthonormal(dim, dim, rng)
    noise_scales = rng.beta(1.0, 10.0, size=dim)
    noise_coeffs = rng.normal(size=(n_noise, dim)) * noise_scales
    noise_rows = noise_coeffs @ noise_basis.T
    noise_times = rng.uniform(1.0, horizon, size=n_noise)

    # Events: d/10 orthogonal directions, Beta(1,10)*10 scales, mid-stream burst.
    n_dirs = dim // 10
    event_basis = _random_orthonormal(dim, n_dirs, rng)
    event_scales = rng.beta(1.0, 10.0, size=n_dirs) * 10.0
    event_coeffs = rng.normal(size=(n_event, n_dirs)) * event_scales
    event_rows = event_coeffs @ event_basis.T
    event_times = rng.normal(horizon / 2.0, horizon / 50.0, size=n_event)
    event_times = np.clip(event_times, 1.0, horizon)

    timestamps = np.concatenate([noise_times, event_times])
    rows = np.vstack([noise_rows, event_rows])
    order = np.argsort(timestamps, kind="stable")
    return MatrixStream(
        timestamps=timestamps[order],
        rows=rows[order],
        dim=dim,
        name=name or f"synthetic-d{dim}",
    )


def low_dimension_stream(n: int = 5_000, seed: int = 0) -> MatrixStream:
    """Scaled counterpart of the paper's d=100 dataset."""
    return generate_matrix_stream(n=n, dim=100, seed=seed, name="low-dim (d=100)")


def medium_dimension_stream(n: int = 2_000, seed: int = 0) -> MatrixStream:
    """Scaled counterpart of the paper's d=1,000 dataset."""
    return generate_matrix_stream(n=n, dim=500, seed=seed, name="medium-dim (d=500)")


def high_dimension_stream(n: int = 1_000, seed: int = 0) -> MatrixStream:
    """Scaled counterpart of the paper's d=10,000 dataset."""
    return generate_matrix_stream(n=n, dim=1_000, seed=seed, name="high-dim (d=1000)")


def matrix_query_schedule(stream: MatrixStream, fractions=(0.2, 0.4, 0.6, 0.8, 1.0)) -> list:
    """Query timestamps at the given fractions of the stream length."""
    n = len(stream)
    times = []
    for fraction in fractions:
        index = max(0, min(n - 1, int(round(fraction * n)) - 1))
        times.append(float(stream.timestamps[index]))
    return times
