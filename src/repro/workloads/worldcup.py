"""Synthetic WorldCup'98-style access-log streams (substitute workload).

The paper evaluates on the 1998 World Cup website access log [Arlitt & Jin]:
~1.35B entries of (UNIX timestamp, client id, object id), ~2.77M distinct
clients (max/avg frequency ratio ~3,700 — "quite uniform") and ~90K distinct
objects (ratio ~11,800 — "slightly more skewed"), ids assigned consecutively
from 0.  The raw log is too large to ship and not redistributable, so this
module generates streams matching those published statistics at configurable
scale: Zipf-calibrated key skew, consecutive integer ids, and monotonically
increasing integer timestamps.

Scaled defaults keep the *shape* of the two datasets: universe sizes and the
max/avg ratios are shrunk proportionally so the heavy-hitter thresholds from
the paper (phi = 0.0002 and 0.01) still select comparable hitter sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.zipf import ZipfGenerator, calibrate_exponent


@dataclass(frozen=True)
class LogStream:
    """A materialised (timestamps, keys) stream plus its generator metadata."""

    timestamps: np.ndarray
    keys: np.ndarray
    universe: int
    exponent: float
    name: str

    def __len__(self) -> int:
        return len(self.keys)

    def __iter__(self):
        return zip(self.keys.tolist(), self.timestamps.tolist())


# Paper-reported characteristics (full scale).
CLIENT_UNIVERSE_FULL = 2_770_000
CLIENT_MAX_AVG_RATIO = 3_700.0
OBJECT_UNIVERSE_FULL = 90_000
OBJECT_MAX_AVG_RATIO = 11_800.0


def client_id_stream(
    n: int, universe: int = 27_700, ratio: float = 370.0, seed: int = 0
) -> LogStream:
    """A scaled Client-ID-like stream: large universe, mild skew.

    Defaults scale the paper's universe and max/avg ratio by 100x so that a
    ~10^5-10^6-row Python run keeps the same hitters-per-universe density as
    the paper's 1.35B-row C++ run.
    """
    return _generate("client-id", n, universe, ratio, seed)


def object_id_stream(
    n: int, universe: int = 9_000, ratio: float = 1_180.0, seed: int = 0
) -> LogStream:
    """A scaled Object-ID-like stream: small universe, heavy skew.

    Defaults scale the paper's universe and ratio by 10x.
    """
    return _generate("object-id", n, universe, ratio, seed)


def _generate(name: str, n: int, universe: int, ratio: float, seed: int) -> LogStream:
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    exponent = calibrate_exponent(universe, ratio)
    generator = ZipfGenerator(universe, exponent, seed=seed)
    keys = generator.sample(n)
    # UNIX-like integer timestamps: strictly increasing, ~1 second apart.
    timestamps = np.arange(n, dtype=float) + 900_000_000.0
    return LogStream(
        timestamps=timestamps, keys=keys, universe=universe, exponent=exponent, name=name
    )


def bursty_stream(
    n: int,
    universe: int = 9_000,
    ratio: float = 1_180.0,
    epochs: int = 8,
    flash_fraction: float = 0.3,
    seed: int = 0,
) -> LogStream:
    """A *non-stationary* access-log stream: popularity shifts between epochs.

    The real WorldCup log is bursty — match days produce flash crowds around
    different objects.  This generator splits the stream into ``epochs``; in
    each, a ``flash_fraction`` of the traffic concentrates on a small set of
    epoch-specific "flash" keys (re-drawn per epoch) while the remainder
    follows the stationary calibrated Zipf law.  Non-stationarity is what
    breaks piecewise-linear counter approximations (PCM's random-stream
    assumption), so this workload exposes the paper's baseline weakness that
    a stationary synthetic stream hides.
    """
    if n < epochs:
        raise ValueError(f"n must be >= epochs, got n={n}, epochs={epochs}")
    if not 0 <= flash_fraction < 1:
        raise ValueError(f"flash_fraction must be in [0, 1), got {flash_fraction}")
    exponent = calibrate_exponent(universe, ratio)
    generator = ZipfGenerator(universe, exponent, seed=seed)
    rng = np.random.default_rng([seed, 7])
    keys = generator.sample(n)
    epoch_length = n // epochs
    flash_keys_per_epoch = max(1, universe // 1_000)
    for epoch in range(epochs):
        start = epoch * epoch_length
        end = n if epoch == epochs - 1 else start + epoch_length
        flash_keys = rng.choice(universe, size=flash_keys_per_epoch, replace=False)
        is_flash = rng.random(end - start) < flash_fraction
        replacement = rng.choice(flash_keys, size=int(is_flash.sum()))
        segment = keys[start:end]
        segment[is_flash] = replacement
        keys[start:end] = segment
    timestamps = np.arange(n, dtype=float) + 900_000_000.0
    return LogStream(
        timestamps=timestamps,
        keys=keys,
        universe=universe,
        exponent=exponent,
        name="bursty",
    )


def query_schedule(stream: LogStream, fractions=(0.2, 0.4, 0.6, 0.8, 1.0)) -> list:
    """The paper's query schedule: timestamps at 20% increments of the stream.

    Each returned timestamp targets the state *after* the corresponding
    fraction of updates (the fraction-th item's timestamp).
    """
    n = len(stream)
    times = []
    for fraction in fractions:
        index = max(0, min(n - 1, int(round(fraction * n)) - 1))
        times.append(float(stream.timestamps[index]))
    return times
