"""The memory-accounting model.

The paper reports memory of single-threaded C++ programs (32-bit ids, 64-bit
timestamps/counters/doubles).  CPython object overhead (~28 bytes for a small
int, 8-byte pointers everywhere) would drown the comparison, so every sketch
in this package exposes ``memory_bytes()`` computed from the C layout its
data would occupy:

====================  ======  =========================================
field                 bytes   used by
====================  ======  =========================================
key / id              4       heavy-hitter streams (32-bit uints)
timestamp             8       UNIX timestamps (64-bit)
counter / weight      8       64-bit counts, double weights
float (matrix entry)  8       doubles
priority              8       double
====================  ======  =========================================

Unit tests pin the per-entry costs of each sketch against these constants.
This module also provides human-readable formatting helpers.
"""

from __future__ import annotations

KEY_BYTES = 4
TIMESTAMP_BYTES = 8
COUNTER_BYTES = 8
FLOAT_BYTES = 8
PRIORITY_BYTES = 8
POINTER_BYTES = 8

#: Persistent sample record: key + priority + birth + death.
SAMPLE_RECORD_BYTES = KEY_BYTES + PRIORITY_BYTES + 2 * TIMESTAMP_BYTES  # = 28
#: Weighted persistent sample record: adds the weight field.
WEIGHTED_SAMPLE_RECORD_BYTES = SAMPLE_RECORD_BYTES + FLOAT_BYTES  # = 36
#: Elementwise checkpoint: (amortised) key + timestamp + value.
COUNTER_CHECKPOINT_BYTES = KEY_BYTES + TIMESTAMP_BYTES + COUNTER_BYTES  # = 20
#: Misra-Gries live counter: key + count.
MG_COUNTER_BYTES = KEY_BYTES + COUNTER_BYTES  # = 12
#: Piecewise-linear breakpoint: time + value.
PLA_BREAKPOINT_BYTES = TIMESTAMP_BYTES + FLOAT_BYTES  # = 16
#: Raw log row: timestamp + key (the 'store everything' unit cost).
LOG_ROW_BYTES = TIMESTAMP_BYTES + KEY_BYTES  # = 12
#: Live top-k heap entry: priority + 4-byte index into the record arena.
HEAP_ENTRY_BYTES = PRIORITY_BYTES + KEY_BYTES  # = 12
#: Checkpoint-chain entry: timestamp + pointer to the stored snapshot.
CHECKPOINT_ENTRY_BYTES = TIMESTAMP_BYTES + POINTER_BYTES  # = 16


def mib(num_bytes: int) -> float:
    """Bytes to MiB."""
    return num_bytes / (1024.0 * 1024.0)


def format_bytes(num_bytes: int) -> str:
    """Human-readable byte count (B / KiB / MiB / GiB)."""
    if num_bytes < 0:
        raise ValueError(f"byte count must be >= 0, got {num_bytes}")
    size = float(num_bytes)
    for unit in ("B", "KiB", "MiB"):
        if size < 1024.0:
            return f"{size:.1f} {unit}"
        size /= 1024.0
    return f"{size:.2f} GiB"
