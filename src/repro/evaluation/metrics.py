"""Accuracy metrics used across the experiments.

The paper reports heavy-hitter *precision* and *recall* (Section 6.1/6.2) and
matrix-covariance *relative error* ``||A^T A - B^T B||_2 / ||A||_F^2``
(Section 6.3).  All metric functions here are pure and side-effect free.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def precision(reported: Iterable, truth: Iterable) -> float:
    """Fraction of reported items that are true (1.0 when nothing reported)."""
    reported = set(reported)
    truth = set(truth)
    if not reported:
        return 1.0 if not truth else 0.0
    return len(reported & truth) / len(reported)


def recall(reported: Iterable, truth: Iterable) -> float:
    """Fraction of true items that were reported (1.0 when nothing is true)."""
    reported = set(reported)
    truth = set(truth)
    if not truth:
        return 1.0
    return len(reported & truth) / len(truth)


def f1_score(reported: Iterable, truth: Iterable) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(reported, truth)
    r = recall(reported, truth)
    if p + r == 0.0:
        return 0.0
    return 2.0 * p * r / (p + r)


def covariance_relative_error(exact: np.ndarray, estimate: np.ndarray) -> float:
    """``||exact - estimate||_2 / trace(exact)`` — the paper's matrix metric.

    ``trace(A^T A) = ||A||_F^2``, so this matches
    ``||A^T A - B^T B||_2 / ||A||_F^2`` without needing the raw rows.
    """
    exact = np.asarray(exact, dtype=float)
    estimate = np.asarray(estimate, dtype=float)
    if exact.shape != estimate.shape:
        raise ValueError(f"shape mismatch: {exact.shape} vs {estimate.shape}")
    frobenius_sq = float(np.trace(exact))
    if frobenius_sq <= 0.0:
        raise ValueError("exact covariance has non-positive trace")
    return float(np.linalg.norm(exact - estimate, 2)) / frobenius_sq


def spectral_norm(matrix: np.ndarray) -> float:
    """Largest singular value."""
    return float(np.linalg.norm(np.asarray(matrix, dtype=float), 2))


def quantile_rank_error(
    values: Sequence[float], estimate: float, phi: float
) -> float:
    """``|rank(estimate)/n - phi|`` — rank error of a quantile estimate."""
    if len(values) == 0:
        raise ValueError("empty reference set")
    ordered = np.sort(np.asarray(values, dtype=float))
    rank = float(np.searchsorted(ordered, estimate, side="right")) / len(ordered)
    return abs(rank - phi)


def frequency_additive_error(
    estimates: dict, truth: dict, total: float
) -> float:
    """Max additive frequency error, normalised by the stream size."""
    if total <= 0:
        raise ValueError(f"total must be positive, got {total}")
    keys = set(estimates) | set(truth)
    worst = 0.0
    for key in keys:
        err = abs(estimates.get(key, 0.0) - truth.get(key, 0.0))
        if err > worst:
            worst = err
    return worst / total
