"""Fixed-width table reporting for the figure benches.

Each bench prints the same rows/series the corresponding paper figure plots;
these helpers keep the output format uniform across all benches.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.evaluation.memory import format_bytes


def print_table(title: str, columns: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Print one fixed-width table with a title rule."""
    rendered = [[_render(cell) for cell in row] for row in rows]
    widths = [len(col) for col in columns]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(col.ljust(widths[index]) for index, col in enumerate(columns))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rendered:
        print("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))


def _render(cell) -> str:
    if isinstance(cell, float):
        if cell != 0.0 and abs(cell) < 0.01:
            return f"{cell:.2e}"
        return f"{cell:.4f}" if abs(cell) < 100 else f"{cell:.1f}"
    return str(cell)


def print_series(
    title: str, x_label: str, xs: Sequence, series: Dict[str, Sequence]
) -> None:
    """Print one figure-style series table: x column + one column per line."""
    columns = [x_label] + list(series)
    rows = []
    for index, x in enumerate(xs):
        row = [x]
        for name in series:
            row.append(series[name][index])
        rows.append(row)
    print_table(title, columns, rows)


def memory_column(values_bytes: Sequence[int]) -> List[str]:
    """Render a list of byte counts for table display."""
    return [format_bytes(value) for value in values_bytes]
