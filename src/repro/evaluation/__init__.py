"""Experiment support: metrics, the memory model, harness and reporting."""

from repro.evaluation.harness import (
    SweepRow,
    average_accuracy,
    exact_prefix_covariances,
    exact_prefix_heavy_hitters,
    exact_suffix_heavy_hitters,
    feed_log_stream,
    feed_matrix_stream,
    memory_of,
    time_calls,
)
from repro.evaluation.memory import format_bytes, mib
from repro.evaluation.metrics import (
    covariance_relative_error,
    f1_score,
    frequency_additive_error,
    precision,
    quantile_rank_error,
    recall,
    spectral_norm,
)
from repro.evaluation.reporting import memory_column, print_series, print_table

__all__ = [
    "SweepRow",
    "average_accuracy",
    "covariance_relative_error",
    "exact_prefix_covariances",
    "exact_prefix_heavy_hitters",
    "exact_suffix_heavy_hitters",
    "f1_score",
    "feed_log_stream",
    "feed_matrix_stream",
    "format_bytes",
    "frequency_additive_error",
    "memory_column",
    "memory_of",
    "mib",
    "precision",
    "print_series",
    "print_table",
    "quantile_rank_error",
    "recall",
    "spectral_norm",
    "time_calls",
]
