"""Figure-regeneration machinery: workloads, sweeps and series recording.

Every figure of the paper can be regenerated in two ways:

* ``pytest benchmarks/ --benchmark-only`` — runs each figure as a bench with
  shape assertions (CI-style);
* ``python -m repro.experiments <figure>`` — runs just the sweep and prints
  the series (user-style).

Both paths share this module.  Workload scale: the paper streams 1.35B
WorldCup rows through C++; we stream ~3x10^4 calibrated rows through Python
(documented substitution, DESIGN.md section 4) with the paper's query
schedule (five queries at 20% increments).
"""

from __future__ import annotations

import functools
import pathlib
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.evaluation.harness import (
    average_accuracy,
    emit_telemetry_snapshot,
    exact_prefix_covariances,
    exact_prefix_heavy_hitters,
    exact_suffix_heavy_hitters,
    feed_log_stream,
    feed_matrix_stream,
    memory_of,
)
from repro.evaluation.memory import mib
from repro.evaluation.metrics import covariance_relative_error
from repro.evaluation.reporting import print_table
from repro.workloads import (
    client_id_stream,
    generate_matrix_stream,
    matrix_query_schedule,
    object_id_stream,
    query_schedule,
)

_results_dir: Optional[pathlib.Path] = None

# --- scaled workloads ------------------------------------------------------

HH_STREAM_SIZE = 30_000
PHI_CLIENT = 0.002  # paper: 0.0002 at 45x the scaled universe
PHI_OBJECT = 0.01  # paper: 0.01


def set_results_dir(path) -> None:
    """Direct ``record_figure`` output to ``path`` (created if missing)."""
    global _results_dir
    _results_dir = pathlib.Path(path)
    _results_dir.mkdir(parents=True, exist_ok=True)


@functools.lru_cache(maxsize=None)
def client_stream(n: int = HH_STREAM_SIZE):
    """Scaled Client-ID dataset (mildly skewed, large universe)."""
    return client_id_stream(n=n, universe=27_700, ratio=370.0, seed=1)


@functools.lru_cache(maxsize=None)
def object_stream(n: int = HH_STREAM_SIZE):
    """Scaled Object-ID dataset (heavily skewed, small universe)."""
    return object_id_stream(n=n, universe=9_000, ratio=1_180.0, seed=1)


@functools.lru_cache(maxsize=None)
def matrix_stream(dim: int, n: int):
    """Scaled Section-6.3 matrix dataset."""
    return generate_matrix_stream(n=n, dim=dim, horizon=1_000.0, seed=1)


# --- result recording ------------------------------------------------------


def record_figure(
    name: str, title: str, columns: Sequence[str], rows: Sequence[Sequence]
) -> None:
    """Print a figure's series table; persist it when a results dir is set."""
    print_table(title, columns, rows)
    if _results_dir is None:
        return
    lines = ["\t".join(str(cell) for cell in row) for row in rows]
    path = _results_dir / f"{name}.txt"
    path.write_text(
        f"# {title}\n" + "\t".join(columns) + "\n" + "\n".join(lines) + "\n"
    )
    # With telemetry enabled (e.g. REPRO_TELEMETRY=1 under pytest
    # benchmarks/), each figure's series ships with the counters and
    # latency histograms that produced it.
    emit_telemetry_snapshot(_results_dir / f"{name}_telemetry.jsonl")


# --- heavy-hitter sweeps ---------------------------------------------------


def run_attp_hh_config(name, build, stream, phi, truth, times) -> dict:
    """Feed one ATTP heavy-hitter sketch and evaluate it on the schedule."""
    sketch = build()
    update_seconds = feed_log_stream(sketch, stream)
    start = time.perf_counter()
    reported = [sketch.heavy_hitters_at(t, phi) for t in times]
    query_seconds = time.perf_counter() - start
    precision, recall = average_accuracy(reported, truth)
    return {
        "sketch": name,
        "memory_mib": mib(memory_of(sketch)),
        "update_s": update_seconds,
        "query_s": query_seconds,
        "precision": precision,
        "recall": recall,
    }


def run_bitp_hh_config(name, build, stream, phi, truth, times) -> dict:
    """Feed one BITP heavy-hitter sketch and evaluate suffix queries."""
    sketch = build()
    update_seconds = feed_log_stream(sketch, stream)
    start = time.perf_counter()
    reported = [sketch.heavy_hitters_since(t, phi) for t in times]
    query_seconds = time.perf_counter() - start
    precision, recall = average_accuracy(reported, truth)
    return {
        "sketch": name,
        "memory_mib": mib(memory_of(sketch)),
        "update_s": update_seconds,
        "query_s": query_seconds,
        "precision": precision,
        "recall": recall,
    }


def attp_hh_configs(dataset: str) -> List[tuple]:
    """(label, builder) sweep for the ATTP heavy-hitter figures."""
    from repro.baselines import PcmHeavyHitter
    from repro.persistent import AttpChainMisraGries, AttpSampleHeavyHitter

    if dataset == "client":
        cmg_eps = (2e-3, 1e-3, 5e-4)
        sample_k = (2_000, 10_000, 40_000)
        pcm_eps = (2e-2, 8e-3, 3e-3)
        bits = 15
    else:
        cmg_eps = (8e-3, 4e-3, 2e-3)
        sample_k = (1_000, 5_000, 20_000)
        pcm_eps = (2e-2, 8e-3, 3e-3)
        bits = 14
    configs = []
    for eps in cmg_eps:
        configs.append((
            f"CMG(eps={eps:g})",
            functools.partial(AttpChainMisraGries, eps=eps),
        ))
    for k in sample_k:
        configs.append((
            f"SAMPLING(k={k})",
            functools.partial(AttpSampleHeavyHitter, k=k, seed=0),
        ))
    for eps in pcm_eps:
        configs.append((
            f"PCM_HH(eps={eps:g})",
            functools.partial(
                PcmHeavyHitter, universe_bits=bits, eps=eps, depth=3, pla_delta=16.0
            ),
        ))
    return configs


def bitp_hh_configs(dataset: str) -> List[tuple]:
    """(label, builder) sweep for the BITP heavy-hitter figures."""
    from repro.baselines import PcmHeavyHitter
    from repro.persistent import BitpSampleHeavyHitter, BitpTreeMisraGries

    if dataset == "client":
        tmg_eps = (2e-3, 1e-3, 5e-4)
        sample_k = (2_000, 10_000, 40_000)
        pcm_eps = (2e-2, 8e-3, 3e-3)
        bits = 15
    else:
        tmg_eps = (8e-3, 4e-3, 2e-3)
        sample_k = (1_000, 5_000, 20_000)
        pcm_eps = (2e-2, 8e-3, 3e-3)
        bits = 14
    configs = []
    for eps in tmg_eps:
        configs.append((
            f"TMG(eps={eps:g})",
            functools.partial(BitpTreeMisraGries, eps=eps, block_size=64),
        ))
    for k in sample_k:
        configs.append((
            f"SAMPLING(k={k})",
            functools.partial(BitpSampleHeavyHitter, k=k, seed=0),
        ))
    for eps in pcm_eps:
        configs.append((
            f"PCM_HH(eps={eps:g})",
            functools.partial(
                PcmHeavyHitter, universe_bits=bits, eps=eps, depth=3, pla_delta=16.0
            ),
        ))
    return configs


@functools.lru_cache(maxsize=None)
def attp_hh_sweep(dataset: str) -> tuple:
    """Run the full ATTP heavy-hitter sweep for one dataset (cached)."""
    stream = client_stream() if dataset == "client" else object_stream()
    phi = PHI_CLIENT if dataset == "client" else PHI_OBJECT
    times = query_schedule(stream)
    truth = exact_prefix_heavy_hitters(stream, times, phi)
    rows = [
        run_attp_hh_config(name, build, stream, phi, truth, times)
        for name, build in attp_hh_configs(dataset)
    ]
    return tuple(rows)


@functools.lru_cache(maxsize=None)
def bitp_hh_sweep(dataset: str) -> tuple:
    """Run the full BITP heavy-hitter sweep for one dataset (cached)."""
    stream = client_stream() if dataset == "client" else object_stream()
    phi = PHI_CLIENT if dataset == "client" else PHI_OBJECT
    times = query_schedule(stream)[:4]  # suffix windows (the 100% one is empty)
    truth = exact_suffix_heavy_hitters(stream, times, phi)
    return tuple(
        run_bitp_hh_config(name, build, stream, phi, truth, times)
        for name, build in bitp_hh_configs(dataset)
    )


def hh_rows_to_table(rows) -> List[List]:
    return [
        [
            row["sketch"],
            round(row["memory_mib"], 3),
            round(row["update_s"], 3),
            round(row["query_s"], 4),
            round(row["precision"], 3),
            round(row["recall"], 3),
        ]
        for row in rows
    ]


HH_COLUMNS = ["sketch", "memory_MiB", "update_s", "query_s", "precision", "recall"]


# --- scaling series --------------------------------------------------------

SCALING_FRACTIONS = (0.25, 0.5, 0.75, 1.0)


def log_scaling_series(stream, builders: Dict[str, Callable]) -> tuple:
    """Feed a keyed stream once, recording each system's memory at fractions."""
    n = len(stream)
    checkpoints = [int(f * n) for f in SCALING_FRACTIONS]
    systems = {name: build() for name, build in builders.items()}
    series = {name: [] for name in builders}
    keys = stream.keys.tolist()
    times = stream.timestamps.tolist()
    cursor = 0
    for checkpoint in checkpoints:
        for index in range(cursor, checkpoint):
            for system in systems.values():
                system.update(keys[index], times[index])
        cursor = checkpoint
        for name, system in systems.items():
            series[name].append(mib(memory_of(system)))
    return checkpoints, series


def matrix_scaling_series(stream, builders: Dict[str, Callable]) -> tuple:
    """Feed a matrix stream once, recording each system's memory at fractions."""
    n = len(stream)
    checkpoints = [int(f * n) for f in SCALING_FRACTIONS]
    systems = {name: build() for name, build in builders.items()}
    series = {name: [] for name in builders}
    cursor = 0
    for checkpoint in checkpoints:
        for index in range(cursor, checkpoint):
            row = stream.rows[index]
            t = float(stream.timestamps[index])
            for system in systems.values():
                system.update(row, t)
        cursor = checkpoint
        for name, system in systems.items():
            series[name].append(mib(system.memory_bytes()))
    return checkpoints, series


# --- matrix sweeps ---------------------------------------------------------

MATRIX_DIMS = {"low": (100, 4_000), "medium": (500, 2_000), "high": (1_000, 1_000)}


def matrix_configs(dim: int) -> List[tuple]:
    from repro.persistent import (
        AttpNormSampling,
        AttpNormSamplingWR,
        AttpPersistentFrequentDirections,
    )

    ells = [ell for ell in (10, 20, 40) if ell < dim]
    ks = (50, 150, 400)
    configs = []
    for ell in ells:
        configs.append((
            f"PFD(ell={ell})",
            functools.partial(AttpPersistentFrequentDirections, ell=ell, dim=dim),
        ))
    for k in ks:
        configs.append((
            f"NS(k={k})",
            functools.partial(AttpNormSampling, k=k, dim=dim, seed=0),
        ))
    for k in ks:
        configs.append((
            f"NSWR(k={k})",
            functools.partial(AttpNormSamplingWR, k=k, dim=dim, seed=0),
        ))
    return configs


@functools.lru_cache(maxsize=None)
def matrix_sweep(size: str, with_error: bool = True) -> tuple:
    """Run the ATTP matrix sweep for one dataset size (cached)."""
    dim, n = MATRIX_DIMS[size]
    stream = matrix_stream(dim, n)
    times = matrix_query_schedule(stream)
    exact = exact_prefix_covariances(stream, times) if with_error else None
    rows = []
    for name, build in matrix_configs(dim):
        sketch = build()
        update_seconds = feed_matrix_stream(sketch, stream)
        start = time.perf_counter()
        estimates = [sketch.covariance_at(t) for t in times]
        query_seconds = time.perf_counter() - start
        row = {
            "sketch": name,
            "memory_mib": mib(memory_of(sketch)),
            "update_s": update_seconds,
            "query_s": query_seconds,
        }
        if with_error:
            row["rel_error"] = float(
                np.mean([
                    covariance_relative_error(e, est)
                    for e, est in zip(exact, estimates)
                ])
            )
        rows.append(row)
    return tuple(rows)


MATRIX_COLUMNS = ["sketch", "memory_MiB", "update_s", "query_s", "rel_error"]


def matrix_rows_to_table(rows) -> List[List]:
    return [
        [
            row["sketch"],
            round(row["memory_mib"], 3),
            round(row["update_s"], 3),
            round(row["query_s"], 4),
            round(row.get("rel_error", float("nan")), 4),
        ]
        for row in rows
    ]
