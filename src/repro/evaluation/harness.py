"""Experiment harness: feeding streams, timing, and exact references.

The benches compose these building blocks; each figure's bench supplies the
workload, the sketch configurations and the query schedule, then delegates
the mechanics (feeding, timing, exact ground truth, accuracy averaging) here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.evaluation.metrics import precision as precision_metric
from repro.evaluation.metrics import recall as recall_metric
from repro.telemetry.export import write_jsonl
from repro.telemetry.registry import TELEMETRY as _TEL
from repro.telemetry.spans import span
from repro.workloads.matrix_gen import MatrixStream
from repro.workloads.worldcup import LogStream


@dataclass
class SweepRow:
    """One (sketch, parameter) point of a figure's sweep."""

    sketch: str
    param: str
    memory_bytes: int
    update_seconds: float
    query_seconds: float
    extras: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Flatten the row (including extras) into one mapping."""
        row = {
            "sketch": self.sketch,
            "param": self.param,
            "memory_bytes": self.memory_bytes,
            "update_seconds": self.update_seconds,
            "query_seconds": self.query_seconds,
        }
        row.update(self.extras)
        return row


def feed_log_stream(sketch, stream: LogStream) -> float:
    """Push every (key, timestamp) of ``stream`` into ``sketch``; return seconds."""
    update = sketch.update
    keys = stream.keys.tolist()
    times = stream.timestamps.tolist()
    with span("harness.feed_log_stream"):
        start = time.perf_counter()
        for key, timestamp in zip(keys, times):
            update(key, timestamp)
        return time.perf_counter() - start


def feed_matrix_stream(sketch, stream: MatrixStream) -> float:
    """Push every (row, timestamp) of ``stream`` into ``sketch``; return seconds."""
    update = sketch.update
    with span("harness.feed_matrix_stream"):
        start = time.perf_counter()
        for row, timestamp in stream:
            update(row, timestamp)
        return time.perf_counter() - start


def time_calls(fn: Callable, args_list: Sequence) -> tuple:
    """Run ``fn(*args)`` for each args tuple; return (results, total seconds)."""
    results = []
    with span("harness.time_calls"):
        start = time.perf_counter()
        for args in args_list:
            results.append(fn(*args))
        return results, time.perf_counter() - start


def emit_telemetry_snapshot(path) -> bool:
    """Write the current metric state as a JSONL snapshot next to bench output.

    Benches call this after a sweep so each figure's numbers ship with the
    counters that produced them.  A no-op (returning False) while telemetry
    is disabled, so existing pipelines are unaffected unless they opt in.
    """
    if not _TEL.enabled:
        return False
    write_jsonl(path)
    return True


def exact_prefix_heavy_hitters(
    stream: LogStream, query_times: Sequence[float], phi: float
) -> List[List[int]]:
    """Exact phi-heavy hitters of each prefix ``A^t`` (vectorised)."""
    return [
        _exact_heavy_hitters(stream.keys[: _prefix_len(stream, t)], phi)
        for t in query_times
    ]


def exact_suffix_heavy_hitters(
    stream: LogStream, query_times: Sequence[float], phi: float
) -> List[List[int]]:
    """Exact phi-heavy hitters of each suffix ``A[t, now]`` (vectorised)."""
    return [
        _exact_heavy_hitters(stream.keys[_suffix_start(stream, t) :], phi)
        for t in query_times
    ]


def _prefix_len(stream: LogStream, t: float) -> int:
    return int(np.searchsorted(stream.timestamps, t, side="right"))


def _suffix_start(stream: LogStream, t: float) -> int:
    return int(np.searchsorted(stream.timestamps, t, side="left"))


def _exact_heavy_hitters(keys: np.ndarray, phi: float) -> List[int]:
    if len(keys) == 0:
        return []
    uniques, counts = np.unique(keys, return_counts=True)
    cut = phi * len(keys)
    return [int(k) for k in uniques[counts >= cut]]


def average_accuracy(
    reported_lists: Sequence[Sequence[int]], truth_lists: Sequence[Sequence[int]]
) -> tuple:
    """(mean precision, mean recall) over a query schedule."""
    if len(reported_lists) != len(truth_lists):
        raise ValueError("reported and truth lists differ in length")
    if not truth_lists:
        raise ValueError("empty query schedule")
    precisions = [
        precision_metric(reported, truth)
        for reported, truth in zip(reported_lists, truth_lists)
    ]
    recalls = [
        recall_metric(reported, truth)
        for reported, truth in zip(reported_lists, truth_lists)
    ]
    return float(np.mean(precisions)), float(np.mean(recalls))


def exact_prefix_covariances(
    stream: MatrixStream, query_times: Sequence[float]
) -> List[np.ndarray]:
    """Exact ``A(t)^T A(t)`` for each query time (cumulative, one pass)."""
    results = []
    order = np.argsort(query_times, kind="stable")
    sorted_times = [query_times[i] for i in order]
    gram = np.zeros((stream.dim, stream.dim))
    cursor = 0
    sorted_results = []
    for t in sorted_times:
        end = int(np.searchsorted(stream.timestamps, t, side="right"))
        if end > cursor:
            block = stream.rows[cursor:end]
            gram = gram + block.T @ block
            cursor = end
        sorted_results.append(gram.copy())
    results = [None] * len(query_times)
    for position, original_index in enumerate(order):
        results[original_index] = sorted_results[position]
    return results


def memory_of(sketch) -> int:
    """Peak memory when the sketch tracks it, else current modelled memory."""
    peak = getattr(sketch, "peak_memory_bytes", 0)
    return max(int(peak), int(sketch.memory_bytes()))
