"""Persistent Count-Min sketch (Wei, Luo, Yi, Du & Wen, SIGMOD 2015).

The paper's FATP baseline ("PCM").  Each CountMin counter's value-over-time
curve is approximated by a piecewise-linear function: a new breakpoint is
recorded whenever the live counter deviates from the current linear
prediction by more than ``pla_delta``.  Under the random-stream assumption
counters grow linearly and few breakpoints are needed; on real skewed or
bursty streams the number of breakpoints — and hence memory — grows linearly
with the stream, which is exactly the weakness the persistent sketches paper
demonstrates.

Queries at historical time ``t`` interpolate each row's counter curve and
return the **median** across rows (not the min — interpolated counters can
under- as well as over-estimate, per the PCM paper).
"""

from __future__ import annotations

import bisect
from typing import List

import numpy as np

from repro.sketches.countmin import CountMinSketch


class PiecewiseLinearCounter:
    """Greedy piecewise-linear approximation of a non-decreasing counter.

    Breakpoints ``(t, v)`` are appended when the observed value drifts more
    than ``delta`` from the linear extrapolation of the last two breakpoints.
    ``value_at(t)`` linearly interpolates (and extrapolates past the end).
    """

    __slots__ = ("delta", "_times", "_values")

    def __init__(self, delta: float):
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = delta
        self._times: List[float] = []
        self._values: List[float] = []

    def observe(self, timestamp: float, value: float) -> None:
        """Offer the counter's current value at ``timestamp``."""
        times, values = self._times, self._values
        if not times:
            times.append(timestamp)
            values.append(value)
            return
        if timestamp == times[-1]:
            # Same-instant updates collapse into the latest value.
            if abs(value - values[-1]) > self.delta:
                values[-1] = value
            return
        if abs(value - self._predict(timestamp)) > self.delta:
            times.append(timestamp)
            values.append(value)

    def _predict(self, timestamp: float) -> float:
        times, values = self._times, self._values
        if len(times) == 1:
            return values[-1]
        t1, t2 = times[-2], times[-1]
        v1, v2 = values[-2], values[-1]
        slope = (v2 - v1) / (t2 - t1)
        return v2 + slope * (timestamp - t2)

    def value_at(self, timestamp: float) -> float:
        """Interpolated counter value at ``timestamp``."""
        times, values = self._times, self._values
        if not times or timestamp < times[0]:
            return 0.0
        idx = bisect.bisect_right(times, timestamp) - 1
        if idx == len(times) - 1:
            # Beyond the last breakpoint the counter is assumed to keep its
            # last linear trend — the PCM semantics (and its error source).
            if len(times) == 1:
                return values[-1]
            return self._predict(timestamp)
        t1, t2 = times[idx], times[idx + 1]
        v1, v2 = values[idx], values[idx + 1]
        return v1 + (v2 - v1) * (timestamp - t1) / (t2 - t1)

    def num_breakpoints(self) -> int:
        """Number of stored breakpoints."""
        return len(self._times)

    def memory_bytes(self) -> int:
        """Breakpoint: 8-byte time + 8-byte value."""
        return len(self._times) * 16


class PersistentCountMin:
    """FATP CountMin: a CountMin table of piecewise-linear counters."""

    def __init__(self, width: int, depth: int = 3, pla_delta: float = 16.0, seed: int = 0):
        self._cm = CountMinSketch(width, depth, seed=seed)
        self.width = self._cm.width
        self.depth = depth
        self.pla_delta = pla_delta
        self._curves = [
            [PiecewiseLinearCounter(pla_delta) for _ in range(self.width)]
            for _ in range(depth)
        ]
        self._total_curve = PiecewiseLinearCounter(pla_delta)
        self.count = 0

    @property
    def total_weight(self) -> int:
        return self._cm.total_weight

    def update(self, key: int, timestamp: float, weight: int = 1) -> None:
        """Add ``weight`` to ``key`` at ``timestamp``."""
        if weight <= 0:
            raise ValueError("PersistentCountMin is insertion-only")
        self.count += 1
        self._cm.update(key, weight)
        counters = self._cm.counters()
        for row, bucket in enumerate(self._cm._buckets(key)):
            self._curves[row][bucket].observe(timestamp, float(counters[row, bucket]))
        self._total_curve.observe(timestamp, float(self._cm.total_weight))

    def total_weight_at(self, timestamp: float) -> float:
        """Interpolated total stream weight at ``timestamp``."""
        return self._total_curve.value_at(timestamp)

    def estimate_at(self, key: int, timestamp: float) -> float:
        """Median-of-rows interpolated estimate of ``key``'s count at ``t``."""
        estimates = [
            self._curves[row][bucket].value_at(timestamp)
            for row, bucket in enumerate(self._cm._buckets(key))
        ]
        return float(np.median(estimates))

    def estimate_now(self, key: int) -> int:
        """Live CountMin estimate over the whole stream."""
        return self._cm.query(key)

    def num_breakpoints(self) -> int:
        """Total PLA breakpoints across all cells."""
        return sum(
            curve.num_breakpoints() for row in self._curves for curve in row
        )

    def memory_bytes(self) -> int:
        """Breakpoints (16 bytes each) + the live table."""
        total = self._cm.memory_bytes() + self._total_curve.memory_bytes()
        for row in self._curves:
            for curve in row:
                total += curve.memory_bytes()
        return total
