"""PCM_HH: heavy-hitter retrieval over persistent Count-Min sketches.

The paper's strongest prior-work baseline for ATTP/BITP heavy hitters: one
:class:`~repro.baselines.pcm.PersistentCountMin` per dyadic level of the key
universe (the paper builds 22 levels for Client-ID, 17 for Object-ID).
Heavy hitters at time ``t`` are found by descending the dyadic tree and
expanding only nodes whose interpolated count passes the threshold.

BITP-style (suffix) queries are answered by differencing two FATP estimates
— ``count[0, now] - count[0, t)`` — which a FATP sketch supports but which
compounds the interpolation error, another effect visible in the paper's
BITP experiments.
"""

from __future__ import annotations

from typing import List

from repro.baselines.pcm import PersistentCountMin


class PcmHeavyHitter:
    """Dyadic hierarchy of persistent CountMin sketches (PCM_HH)."""

    def __init__(
        self,
        universe_bits: int,
        eps: float,
        depth: int = 3,
        pla_delta: float = 16.0,
        seed: int = 0,
    ):
        if universe_bits < 1:
            raise ValueError(f"universe_bits must be >= 1, got {universe_bits}")
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        self.universe_bits = universe_bits
        self.eps = eps
        width = max(4, int(2.0 / eps))
        self.levels: List[PersistentCountMin] = [
            PersistentCountMin(width, depth, pla_delta=pla_delta, seed=seed + level)
            for level in range(universe_bits + 1)
        ]
        self.count = 0

    def update(self, key: int, timestamp: float, weight: int = 1) -> None:
        """Add ``weight`` to ``key`` at ``timestamp`` in every level."""
        if not 0 <= key < (1 << self.universe_bits):
            raise ValueError(f"key {key} outside universe [0, 2**{self.universe_bits})")
        self.count += 1
        for level, sketch in enumerate(self.levels):
            sketch.update(key >> level, timestamp, weight)

    def total_weight_at(self, timestamp: float) -> float:
        """Interpolated total stream weight at ``timestamp``."""
        return self.levels[0].total_weight_at(timestamp)

    def estimate_at(self, key: int, timestamp: float) -> float:
        """Point estimate of ``key``'s count in ``A^timestamp``."""
        return self.levels[0].estimate_at(key, timestamp)

    def estimate_since(self, key: int, timestamp: float) -> float:
        """Window estimate by differencing (FATP emulating BITP)."""
        now = self.levels[0].estimate_now(key)
        return max(0.0, float(now) - self.levels[0].estimate_at(key, timestamp))

    def heavy_hitters_at(self, timestamp: float, phi: float) -> List[int]:
        """Keys with estimated prefix count >= ``phi * n(t)``."""
        if not 0 < phi <= 1:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        cut = phi * self.total_weight_at(timestamp)
        return self._descend(cut, lambda sketch, node: sketch.estimate_at(node, timestamp))

    def heavy_hitters_since(self, timestamp: float, phi: float) -> List[int]:
        """Keys with estimated window count >= ``phi * |window|``."""
        if not 0 < phi <= 1:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        window = max(
            0.0, self.levels[0].total_weight - self.total_weight_at(timestamp)
        )
        if window == 0.0:
            return []
        cut = phi * window

        def window_estimate(sketch: PersistentCountMin, node: int) -> float:
            return max(
                0.0, float(sketch.estimate_now(node)) - sketch.estimate_at(node, timestamp)
            )

        return self._descend(cut, window_estimate)

    def _descend(self, cut: float, estimate) -> List[int]:
        if cut <= 0:
            raise ValueError("non-positive heavy-hitter threshold")
        hitters = []
        frontier = [(self.universe_bits, 0)]
        while frontier:
            level, node = frontier.pop()
            if estimate(self.levels[level], node) < cut:
                continue
            if level == 0:
                hitters.append(node)
            else:
                frontier.append((level - 1, node * 2))
                frontier.append((level - 1, node * 2 + 1))
        return sorted(hitters)

    def memory_bytes(self) -> int:
        """Sum over all per-level persistent CountMin sketches."""
        return sum(sketch.memory_bytes() for sketch in self.levels)
