"""Exact oracles used as ground truth by the tests and benchmarks.

These intentionally store the full stream (O(n) space) — they are the
reference the sketches are measured against, not competitors.
"""

from __future__ import annotations

import bisect
from collections import Counter
from typing import List, Sequence

import numpy as np


class ExactStreamOracle:
    """Full-fidelity keyed stream store with prefix/suffix exact queries."""

    def __init__(self):
        self._timestamps: List[float] = []
        self._keys: List[int] = []

    def update(self, key: int, timestamp: float) -> None:
        """Append one item (timestamps must be non-decreasing)."""
        if self._timestamps and timestamp < self._timestamps[-1]:
            raise ValueError("timestamps must be non-decreasing")
        self._timestamps.append(timestamp)
        self._keys.append(key)

    @property
    def count(self) -> int:
        return len(self._keys)

    def count_at(self, timestamp: float) -> int:
        """Items at or before ``timestamp``."""
        return bisect.bisect_right(self._timestamps, timestamp)

    def count_since(self, timestamp: float) -> int:
        """Items at or after ``timestamp``."""
        return len(self._keys) - bisect.bisect_left(self._timestamps, timestamp)

    def frequency_at(self, key: int, timestamp: float) -> int:
        """Exact prefix count of ``key``."""
        end = self.count_at(timestamp)
        return sum(1 for k in self._keys[:end] if k == key)

    def frequency_since(self, key: int, timestamp: float) -> int:
        """Exact suffix count of ``key``."""
        start = bisect.bisect_left(self._timestamps, timestamp)
        return sum(1 for k in self._keys[start:] if k == key)

    def counts_at(self, timestamp: float) -> Counter:
        """Exact prefix histogram."""
        end = self.count_at(timestamp)
        return Counter(self._keys[:end])

    def counts_since(self, timestamp: float) -> Counter:
        """Exact suffix histogram."""
        start = bisect.bisect_left(self._timestamps, timestamp)
        return Counter(self._keys[start:])

    def heavy_hitters_at(self, timestamp: float, phi: float) -> List[int]:
        """Exact prefix phi-heavy hitters."""
        counts = self.counts_at(timestamp)
        n = sum(counts.values())
        if n == 0:
            return []
        cut = phi * n
        return sorted(key for key, count in counts.items() if count >= cut)

    def heavy_hitters_since(self, timestamp: float, phi: float) -> List[int]:
        """Exact suffix phi-heavy hitters."""
        counts = self.counts_since(timestamp)
        n = sum(counts.values())
        if n == 0:
            return []
        cut = phi * n
        return sorted(key for key, count in counts.items() if count >= cut)

    def quantile_at(self, timestamp: float, phi: float) -> float:
        """Exact prefix phi-quantile (keys must be orderable)."""
        end = self.count_at(timestamp)
        if end == 0:
            raise ValueError("cannot query an empty prefix")
        ordered = sorted(self._keys[:end])
        index = min(end - 1, max(0, int(phi * end + 0.5) - 1))
        return ordered[index]

    def memory_bytes(self) -> int:
        """8-byte timestamp + 4-byte key per row (the 'store everything' cost)."""
        return len(self._keys) * 12


class ExactMatrixOracle:
    """Full row store with exact prefix/suffix covariance."""

    def __init__(self, dim: int):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = dim
        self._timestamps: List[float] = []
        self._rows: List[np.ndarray] = []

    def update(self, row: Sequence[float], timestamp: float) -> None:
        """Append one row (timestamps must be non-decreasing)."""
        if self._timestamps and timestamp < self._timestamps[-1]:
            raise ValueError("timestamps must be non-decreasing")
        row = np.asarray(row, dtype=float)
        if row.shape != (self.dim,):
            raise ValueError(f"expected a row of shape ({self.dim},), got {row.shape}")
        self._timestamps.append(timestamp)
        self._rows.append(row)

    @property
    def count(self) -> int:
        return len(self._rows)

    def matrix_at(self, timestamp: float) -> np.ndarray:
        """The prefix row matrix ``A(t)``."""
        end = bisect.bisect_right(self._timestamps, timestamp)
        if end == 0:
            return np.zeros((0, self.dim))
        return np.vstack(self._rows[:end])

    def matrix_since(self, timestamp: float) -> np.ndarray:
        """The suffix row matrix ``A[t, now]``."""
        start = bisect.bisect_left(self._timestamps, timestamp)
        if start == len(self._rows):
            return np.zeros((0, self.dim))
        return np.vstack(self._rows[start:])

    def covariance_at(self, timestamp: float) -> np.ndarray:
        """Exact ``A(t)^T A(t)``."""
        a = self.matrix_at(timestamp)
        return a.T @ a

    def covariance_since(self, timestamp: float) -> np.ndarray:
        """Exact window covariance."""
        a = self.matrix_since(timestamp)
        return a.T @ a

    def squared_frobenius_at(self, timestamp: float) -> float:
        """Exact ``||A(t)||_F^2``."""
        a = self.matrix_at(timestamp)
        return float((a * a).sum())

    def memory_bytes(self) -> int:
        """8 bytes per matrix entry plus an 8-byte timestamp per row."""
        return len(self._rows) * (self.dim * 8 + 8)
