"""In-memory columnar multi-version log store — the "Vertica" stand-in.

Figure 1 of the paper compares ATTP sketches against storing the full log in
a state-of-the-art columnar store.  Vertica is closed source, so we built the
minimal engine with the relevant behaviour: append-only row groups, per-chunk
columnar compression (delta encoding on the sorted timestamp column,
dictionary encoding on the key column), binary-searchable chunk boundaries,
and exact timestamp-filtered aggregation.

What the comparison needs — and what this engine exhibits — is that space
grows linearly with the number of logs (compression only shaves a constant
factor) and at-time query cost grows with the number of scanned rows.
"""

from __future__ import annotations

import bisect
import math
from typing import List

import numpy as np


class _Chunk:
    """One sealed, compressed row group."""

    __slots__ = ("timestamps", "keys", "min_t", "max_t", "compressed_bytes")

    def __init__(self, timestamps: np.ndarray, keys: np.ndarray):
        self.timestamps = timestamps
        self.keys = keys
        self.min_t = float(timestamps[0])
        self.max_t = float(timestamps[-1])
        self.compressed_bytes = self._model_compressed_size(timestamps, keys)

    @staticmethod
    def _model_compressed_size(timestamps: np.ndarray, keys: np.ndarray) -> int:
        """Modelled compressed footprint of the two columns.

        Timestamps: one 8-byte base plus bit-packed deltas.  Keys: a 4-byte
        dictionary entry per distinct key plus bit-packed codes.
        """
        n = len(timestamps)
        deltas = np.diff(timestamps.astype(np.int64), prepend=timestamps[0])
        max_delta = int(deltas.max()) if n else 0
        ts_bits = max(1, max_delta.bit_length())
        ts_bytes = 8 + math.ceil(n * ts_bits / 8)
        distinct = len(np.unique(keys))
        code_bits = max(1, (distinct - 1).bit_length()) if distinct > 1 else 1
        key_bytes = distinct * 4 + math.ceil(n * code_bits / 8)
        return ts_bytes + key_bytes


class ColumnarLogStore:
    """Exact multi-version log store with columnar compression."""

    def __init__(self, chunk_rows: int = 4096):
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self.chunk_rows = chunk_rows
        self._chunks: List[_Chunk] = []
        self._chunk_max_ts: List[float] = []
        self._buffer_ts: List[float] = []
        self._buffer_keys: List[int] = []
        self.count = 0

    def update(self, key: int, timestamp: float) -> None:
        """Append one log row (timestamps must be non-decreasing)."""
        if self._buffer_ts and timestamp < self._buffer_ts[-1]:
            raise ValueError("timestamps must be non-decreasing")
        if self._chunk_max_ts and timestamp < self._chunk_max_ts[-1]:
            raise ValueError("timestamps must be non-decreasing")
        self._buffer_ts.append(timestamp)
        self._buffer_keys.append(key)
        self.count += 1
        if len(self._buffer_ts) >= self.chunk_rows:
            self._seal()

    def _seal(self) -> None:
        chunk = _Chunk(
            np.asarray(self._buffer_ts, dtype=float),
            np.asarray(self._buffer_keys, dtype=np.int64),
        )
        self._chunks.append(chunk)
        self._chunk_max_ts.append(chunk.max_t)
        self._buffer_ts = []
        self._buffer_keys = []

    def _scan_keys_at(self, timestamp: float) -> np.ndarray:
        """All keys with row timestamp <= ``timestamp`` (columnar scan)."""
        parts = []
        full = bisect.bisect_right(self._chunk_max_ts, timestamp)
        for chunk in self._chunks[:full]:
            parts.append(chunk.keys)
        # The first non-fully-covered chunk may still overlap.
        if full < len(self._chunks):
            chunk = self._chunks[full]
            if chunk.min_t <= timestamp:
                end = int(np.searchsorted(chunk.timestamps, timestamp, side="right"))
                parts.append(chunk.keys[:end])
        if self._buffer_ts and self._buffer_ts[0] <= timestamp:
            end = bisect.bisect_right(self._buffer_ts, timestamp)
            parts.append(np.asarray(self._buffer_keys[:end], dtype=np.int64))
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(parts)

    def count_at(self, timestamp: float) -> int:
        """Exact number of rows at or before ``timestamp``."""
        return len(self._scan_keys_at(timestamp))

    def frequency_at(self, key: int, timestamp: float) -> int:
        """Exact count of ``key`` at or before ``timestamp``."""
        keys = self._scan_keys_at(timestamp)
        return int((keys == key).sum())

    def heavy_hitters_at(self, timestamp: float, phi: float) -> List[int]:
        """Exact keys with frequency >= ``phi * n(t)`` (full scan + group-by)."""
        if not 0 < phi <= 1:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        keys = self._scan_keys_at(timestamp)
        if len(keys) == 0:
            return []
        uniques, counts = np.unique(keys, return_counts=True)
        cut = phi * len(keys)
        return [int(k) for k in uniques[counts >= cut]]

    def memory_bytes(self) -> int:
        """Modelled compressed size of all sealed chunks plus the buffer."""
        total = sum(chunk.compressed_bytes for chunk in self._chunks)
        total += len(self._buffer_ts) * 12  # uncompressed tail: 8 + 4 bytes
        return total

    def __len__(self) -> int:
        return self.count
