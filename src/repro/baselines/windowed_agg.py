"""Windowed aggregate store — the VERTICA_WINDOWED_AGG stand-in (Figure 1).

Instead of every log row, store per-window (e.g. daily) exact aggregates
``(window, key) -> count``.  Space grows with windows x distinct keys — much
less than the raw log but still linear for streams with many persistent
keys — and at-time queries lose sub-window granularity.
"""

from __future__ import annotations

import bisect
from collections import Counter
from typing import List

import numpy as np


class WindowedAggregateStore:
    """Exact per-window aggregation of a keyed log stream."""

    def __init__(self, window_length: float):
        if window_length <= 0:
            raise ValueError(f"window_length must be positive, got {window_length}")
        self.window_length = window_length
        self._sealed_ends: List[float] = []  # window end timestamps, sorted
        self._sealed_keys: List[np.ndarray] = []
        self._sealed_counts: List[np.ndarray] = []
        self._current_window_index: int = None
        self._current: Counter = Counter()
        self.count = 0

    def update(self, key: int, timestamp: float) -> None:
        """Append one log row (timestamps must be non-decreasing)."""
        window_index = int(timestamp // self.window_length)
        if self._current_window_index is None:
            self._current_window_index = window_index
        elif window_index < self._current_window_index:
            raise ValueError("timestamps must be non-decreasing")
        elif window_index > self._current_window_index:
            self._seal()
            self._current_window_index = window_index
        self._current[key] += 1
        self.count += 1

    def _seal(self) -> None:
        if not self._current:
            return
        keys = np.fromiter(self._current.keys(), dtype=np.int64, count=len(self._current))
        counts = np.fromiter(self._current.values(), dtype=np.int64, count=len(self._current))
        window_end = (self._current_window_index + 1) * self.window_length
        self._sealed_ends.append(window_end)
        self._sealed_keys.append(keys)
        self._sealed_counts.append(counts)
        self._current = Counter()

    def _aggregate_at(self, timestamp: float) -> Counter:
        """Counts over all windows that end at or before ``timestamp``.

        Window granularity: rows in a window that straddles ``timestamp`` are
        included iff the *whole window* is included — the approximation a
        windowed-aggregate store inherently makes.
        """
        totals: Counter = Counter()
        last = bisect.bisect_right(self._sealed_ends, timestamp)
        for idx in range(last):
            keys, counts = self._sealed_keys[idx], self._sealed_counts[idx]
            for key, count in zip(keys.tolist(), counts.tolist()):
                totals[key] += count
        if (
            self._current
            and self._current_window_index is not None
            and (self._current_window_index + 1) * self.window_length <= timestamp
        ):
            totals.update(self._current)
        return totals

    def count_at(self, timestamp: float) -> int:
        """Rows in all windows ending at or before ``timestamp``."""
        return sum(self._aggregate_at(timestamp).values())

    def frequency_at(self, key: int, timestamp: float) -> int:
        """Count of ``key`` at window granularity."""
        return self._aggregate_at(timestamp)[key]

    def heavy_hitters_at(self, timestamp: float, phi: float) -> List[int]:
        """Keys with aggregated frequency >= ``phi`` of the aggregated total."""
        if not 0 < phi <= 1:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        totals = self._aggregate_at(timestamp)
        n = sum(totals.values())
        if n == 0:
            return []
        cut = phi * n
        return sorted(key for key, count in totals.items() if count >= cut)

    def num_aggregate_rows(self) -> int:
        """Stored (window, key, count) rows."""
        return sum(len(keys) for keys in self._sealed_keys) + len(self._current)

    def memory_bytes(self) -> int:
        """Aggregate row: key(4) + count(8); plus a window end time each."""
        return self.num_aggregate_rows() * 12 + len(self._sealed_ends) * 8

    def __len__(self) -> int:
        return self.count
