"""Baselines: the paper's competitor (PCM / PCM_HH), the columnar-store
stand-ins from Figure 1, and exact oracles for ground truth."""

from repro.baselines.columnar import ColumnarLogStore
from repro.baselines.exact import ExactMatrixOracle, ExactStreamOracle
from repro.baselines.pcm import PersistentCountMin, PiecewiseLinearCounter
from repro.baselines.pcm_hh import PcmHeavyHitter
from repro.baselines.windowed_agg import WindowedAggregateStore

__all__ = [
    "ColumnarLogStore",
    "ExactMatrixOracle",
    "ExactStreamOracle",
    "PcmHeavyHitter",
    "PersistentCountMin",
    "PiecewiseLinearCounter",
    "WindowedAggregateStore",
]
