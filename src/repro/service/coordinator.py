"""Query coordinator: fan-out, combine, and the watermark-keyed answer cache.

Queries against a sharded service fan out to every shard's private sketch
(or, for hash-partitioned point queries, go straight to the owning shard),
then combine the per-shard answers with the helpers in
:mod:`repro.core.combine`.  Each per-shard read is serialised against that
shard's applies — the thread backend runs it under the shard's apply lock,
the process backend's worker child serves commands strictly sequentially —
so a query observes each sketch between fused batch applies, never
mid-apply.

Answers are memoised in an LRU keyed by ``(method, args, watermark)``:
because the ingest watermark is part of the key, any watermark advance
automatically invalidates every cached answer — no explicit invalidation
hooks, no stale reads.  The store is an :class:`AnswerCache`: every key is
additionally scoped by the coordinator's *namespace* (process-unique by
default, the tenant id under multi-tenancy), so several services can share
one bounded cache without ever serving each other's answers, with fair
eviction across the namespaces.  Cache hits/misses and per-operation
fan-out latency are exported through :mod:`repro.telemetry`.

Degraded mode
-------------
Two knobs keep queries answering while shards are down:

* ``call_timeout`` bounds each per-shard read: the coordinator acquires
  the shard's apply lock with a deadline, so a wedged apply turns into a
  :class:`ShardTimeoutError` instead of hanging the query forever;
* ``partial="allow"`` turns unavailable shards (poisoned, circuit-open, or
  timed out) into an **error certificate** instead of an exception: the
  answer combines the shards that responded, and the attached
  :class:`~repro.service.explain.ErrorCertificate` states exactly which
  shards are covered, what fraction of acknowledged ingest the answer
  represents, and an honestly widened error bound.  Partial answers are
  never cached (the cache only ever holds complete answers), and
  ``partial="reject"`` — the default — preserves strict fail-fast
  semantics unchanged.
"""

from __future__ import annotations

import copy
import itertools
import time
from collections import OrderedDict
from threading import Lock
from typing import Callable, Optional, Sequence

from repro.core.combine import (
    combine_any,
    combine_sum,
    combine_union,
    merge_sketches,
)
from repro.service.explain import (
    ErrorCertificate,
    QueryPlan,
    ShardPlan,
)
from repro.service.worker import ShardFailedError, ShardTimeoutError
from repro.telemetry.registry import TELEMETRY as _TEL
from repro.telemetry.spans import span

_TEL.registry.declare(
    "service_query_seconds",
    "histogram",
    "Fan-out query latency (fan-out + combine), by operation.",
)
_CACHE_HITS = _TEL.counter(
    "service_query_cache_hits_total",
    "Coordinator answers served from the watermark-keyed LRU cache.",
)
_CACHE_MISSES = _TEL.counter(
    "service_query_cache_misses_total",
    "Coordinator answers that required a shard fan-out.",
)
_PARTIAL_ANSWERS = _TEL.counter(
    "service_partial_answers_total",
    "Degraded-mode answers returned with an error certificate.",
)
_TEL.registry.declare(
    "service_shard_call_timeouts_total",
    "counter",
    "Per-shard query reads abandoned at the call timeout, by shard.",
)

#: Accepted degraded-mode policies for :meth:`QueryCoordinator.query`.
PARTIAL_POLICIES = ("reject", "allow")

#: Named combine modes accepted by :meth:`QueryCoordinator.query`.
#: Identity answers for degraded queries that covered zero shards —
#: what each named combiner would return over an empty shard set if it
#: accepted one ("merge" has no identity and answers ``None``).
_EMPTY_ANSWERS = {
    "sum": lambda: 0.0,
    "any": lambda: False,
    "union": lambda: [],
}

COMBINERS = {
    "sum": combine_sum,
    "any": combine_any,
    "union": combine_union,
    "merge": merge_sketches,
    "list": list,
}

#: Distinguishes "no cached answer" from a cached ``None`` answer.
_MISS = object()

#: Default-namespace allocator: every coordinator that is not given an
#: explicit namespace gets a process-unique one, so two services can never
#: collide in a shared cache by accident.
_NAMESPACE_COUNTER = itertools.count()


class AnswerCache:
    """A namespaced LRU answer cache, shareable across query coordinators.

    Entries live in per-namespace partitions; a cache key never leaves its
    namespace, so two services (or two tenants) sharing one cache can never
    serve each other's answers even when their ``(method, args, watermark)``
    tuples collide — the bug class multi-tenancy makes fatal.

    Eviction is *fair*: when the global ``capacity`` is exceeded, the
    oldest entry of the **largest** partition is evicted.  A hot namespace
    therefore cannibalises its own answers first and can only displace
    another namespace's entries once it holds fewer than that namespace —
    a cold tenant's freshly warmed answers survive a busy neighbour.

    All operations are thread-safe (one internal lock).
    """

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._parts: "OrderedDict[str, OrderedDict]" = OrderedDict()
        self._size = 0
        self._lock = Lock()

    def __len__(self) -> int:
        """Entries currently cached, across every namespace."""
        return self._size

    def get(self, namespace: str, key):
        """The cached answer for ``(namespace, key)``, or the miss marker.

        Returns :data:`_MISS` (a private sentinel, compared by identity by
        the coordinator) on a miss so that a legitimately cached ``None``
        answer still counts as a hit.  A hit refreshes the entry's recency
        within its partition.
        """
        with self._lock:
            part = self._parts.get(namespace)
            if part is None or key not in part:
                return _MISS
            part.move_to_end(key)
            return part[key]

    def put(self, namespace: str, key, answer) -> None:
        """Insert (or refresh) one answer, evicting fairly past capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            part = self._parts.get(namespace)
            if part is None:
                part = self._parts[namespace] = OrderedDict()
            if key in part:
                part.move_to_end(key)
                part[key] = answer
                return
            part[key] = answer
            self._size += 1
            while self._size > self.capacity:
                victim_ns, victim = max(
                    self._parts.items(), key=lambda item: len(item[1])
                )
                victim.popitem(last=False)
                self._size -= 1
                if not victim:
                    del self._parts[victim_ns]

    def drop_namespace(self, namespace: str) -> int:
        """Invalidate every entry of one namespace; returns entries dropped.

        The tenancy layer calls this when a tenant is spilled or reloaded:
        a reloaded service restarts its watermark from zero, so pre-spill
        entries keyed by old watermarks must not survive into the new
        sequence numbering.
        """
        with self._lock:
            part = self._parts.pop(namespace, None)
            if part is None:
                return 0
            self._size -= len(part)
            return len(part)

    def namespace_size(self, namespace: str) -> int:
        """Entries currently cached under ``namespace``."""
        with self._lock:
            part = self._parts.get(namespace)
            return 0 if part is None else len(part)

    def info(self) -> dict:
        """Size/capacity snapshot, with the per-namespace entry counts."""
        with self._lock:
            return {
                "size": self._size,
                "capacity": self.capacity,
                "namespaces": {ns: len(part) for ns, part in self._parts.items()},
            }


class QueryCoordinator:
    """Fans queries across shard workers and combines their answers.

    Parameters
    ----------
    workers:
        The service's :class:`~repro.service.worker.ShardWorker` list; each
        exposes ``sketch`` and the apply ``lock``.
    watermark:
        Zero-argument callable returning the service's current ingest
        watermark (cache-key component).
    cache_size:
        Maximum cached answers; ``0`` disables caching.
    call_timeout:
        Default per-shard read deadline (seconds): time to acquire the
        apply lock (thread backend) or for the RPC round-trip to complete
        (process backend); ``None`` (default) waits indefinitely.  On
        expiry the read
        raises :class:`ShardTimeoutError` — under ``partial="allow"`` the
        shard is instead excluded and certified missing.
    partial:
        Default degraded-mode policy, ``"reject"`` (strict, today's
        behavior) or ``"allow"`` (answer what is reachable, attach an
        :class:`~repro.service.explain.ErrorCertificate`); per-query
        ``partial=`` overrides it.
    parked_items:
        Optional ``shard -> int`` callable reporting items parked in a
        supervisor redirect buffer — counted into a certificate's
        ``missing_items`` so degraded answers account for acknowledged
        items awaiting replay.
    cache:
        Optional shared :class:`AnswerCache`.  By default the coordinator
        builds a private cache of ``cache_size`` entries; passing one in
        lets many coordinators (the multi-tenant service's per-tenant
        services) share a single bounded, fairly-evicted cache — entries
        stay partitioned by ``namespace``.
    namespace:
        This coordinator's cache namespace.  Defaults to a process-unique
        id, so distinct services can never collide even in a shared cache;
        the tenancy layer passes the tenant's stable namespace instead (a
        spilled-and-reloaded tenant must be able to invalidate exactly its
        own entries).

    The coordinator keeps a live reference to ``workers`` (no copy): a
    supervisor that swaps a rebuilt worker into the list in place is
    immediately visible to subsequent queries.
    """

    def __init__(
        self,
        workers: Sequence,
        watermark: Callable[[], int],
        cache_size: int = 256,
        *,
        call_timeout: Optional[float] = None,
        partial: str = "reject",
        parked_items: Optional[Callable[[int], int]] = None,
        cache: Optional[AnswerCache] = None,
        namespace: Optional[str] = None,
    ):
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        if call_timeout is not None and call_timeout <= 0:
            raise ValueError(f"call_timeout must be > 0, got {call_timeout}")
        if partial not in PARTIAL_POLICIES:
            raise ValueError(
                f"partial must be one of {PARTIAL_POLICIES}, got {partial!r}"
            )
        self._workers = workers
        self._watermark = watermark
        self.call_timeout = call_timeout
        self.partial = partial
        self._parked_items = parked_items
        if cache is not None:
            self._cache: Optional[AnswerCache] = cache
        elif cache_size > 0:
            self._cache = AnswerCache(cache_size)
        else:
            self._cache = None
        self.namespace = (
            f"svc-{next(_NAMESPACE_COUNTER)}" if namespace is None else namespace
        )
        self._stats_lock = Lock()
        self.cache_hits = 0
        self.cache_misses = 0

    # -- raw fan-out -------------------------------------------------------

    def call_shard(
        self,
        shard: int,
        method: str,
        *args,
        post=None,
        plan_sink=None,
        timeout=None,
        **kwargs,
    ):
        """Invoke ``method`` on one shard's sketch, serialised with applies.

        Delegates to the worker's backend-neutral ``query`` method: the
        thread backend runs the read under the shard's apply lock, the
        process backend runs it over RPC in the worker child (whose
        command loop serialises reads against applies the same way).
        ``post``, when given, transforms the result *while still
        serialised* (thread) or after the RPC copy (process) — used to
        deep-copy live sketch objects before a concurrent apply can
        mutate them.  ``plan_sink``, when given, receives one
        :class:`~repro.service.explain.ShardPlan` describing what this
        shard read (plan hook consulted under the same serialisation, so
        it reports exactly the structure state the answer saw).
        ``timeout`` (default the coordinator's ``call_timeout``) bounds
        the wait; on expiry — a wedged or very slow apply is in the way —
        the read raises :class:`~repro.service.worker.ShardTimeoutError`
        instead of blocking the query indefinitely.
        """
        worker = self._workers[shard]
        if timeout is None:
            timeout = self.call_timeout
        with span("service.shard_call", shard=shard, op=method):
            begin = time.perf_counter()
            try:
                result, details = worker.query(
                    method,
                    args,
                    kwargs,
                    want_details=plan_sink is not None,
                    post=post,
                    timeout=timeout,
                )
            except ShardTimeoutError:
                if _TEL.enabled:
                    _TEL.counter(
                        "service_shard_call_timeouts_total", shard=str(shard)
                    ).inc()
                raise
            if plan_sink is not None:
                plan_sink.append(
                    ShardPlan(
                        shard=shard,
                        wall_seconds=time.perf_counter() - begin,
                        structure=None if details is None else details.get("structure"),
                        details=details,
                    )
                )
            return result

    def fanout(self, method: str, *args, post=None, plan_sink=None, **kwargs) -> list:
        """Invoke ``method`` on every shard's sketch; per-shard results."""
        return [
            self.call_shard(
                shard, method, *args, post=post, plan_sink=plan_sink, **kwargs
            )
            for shard in range(len(self._workers))
        ]

    # -- cached combined queries -------------------------------------------

    def query(
        self,
        method: str,
        *args,
        combine="list",
        shard=None,
        explain=False,
        partial=None,
    ):
        """Fan ``method(*args)`` out (or to one ``shard``) and combine.

        ``combine`` is a name from :data:`COMBINERS` or a callable taking
        the per-shard result list.  Results are cached per
        ``(method, args, shard, watermark)``; ``combine="merge"`` answers
        (merged sketch objects) are cached too — callers must treat them as
        read-only.

        With ``explain=True`` the return value is ``(answer, plan)`` where
        ``plan`` is a :class:`~repro.service.explain.QueryPlan`: per-shard
        checkpoints/blocks read, sealed vs. live-partial counts, error
        bounds, cache status and wall times.  The answer (and its cache
        behaviour) is identical either way — a cache hit returns a plan
        with ``cache_hit=True`` and no shard entries, since nothing was
        re-read.

        ``partial`` (default the coordinator's policy) selects degraded
        mode: ``"reject"`` propagates the first shard failure or timeout;
        ``"allow"`` combines the shards that answered and attaches an
        :class:`~repro.service.explain.ErrorCertificate` to the plan (the
        combiner then runs over the covered subset — a shard-targeted
        query whose owner is down answers the combiner's identity, e.g.
        ``0.0`` for ``"sum"``).  Partial answers are never cached.
        """
        if partial is None:
            partial = self.partial
        if partial not in PARTIAL_POLICIES:
            raise ValueError(
                f"partial must be one of {PARTIAL_POLICIES}, got {partial!r}"
            )
        combiner = COMBINERS[combine] if isinstance(combine, str) else combine
        combine_name = (
            combine
            if isinstance(combine, str)
            else getattr(combine, "__name__", "custom")
        )
        post = None
        if combiner is merge_sketches:
            # sketch_at/sketch_since may return the *live* sketch object;
            # copy it under the shard lock so a concurrent apply cannot
            # mutate it mid-copy, then merge the private copies in place
            post = copy.deepcopy
            combiner = lambda results: merge_sketches(results, copy_first=False)
        watermark = self._watermark()
        key = (method, args, shard, watermark)
        start = time.perf_counter()
        with span(
            "service.query", op=method, combine=combine_name, watermark=watermark
        ) as query_span:
            cached = (
                _MISS
                if self._cache is None
                else self._cache.get(self.namespace, key)
            )
            if cached is not _MISS:
                # counter updates live under the stats lock — the plain-int
                # counters are read back by cache_info() and lose updates
                # under concurrent queries otherwise
                with self._stats_lock:
                    self.cache_hits += 1
                if _TEL.enabled:
                    _CACHE_HITS.inc()
                query_span.set_attr("cache", "hit")
                if explain:
                    plan = QueryPlan(
                        method=method,
                        args=args,
                        combine=combine_name,
                        shard=shard,
                        watermark=watermark,
                        cache_hit=True,
                        wall_seconds=time.perf_counter() - start,
                    )
                    return cached, plan
                return cached
            with self._stats_lock:
                self.cache_misses += 1
            if _TEL.enabled:
                _CACHE_MISSES.inc()
            query_span.set_attr("cache", "miss")
            # a certificate needs per-shard error bounds, so degraded mode
            # collects shard plans even when the caller did not ask to
            # explain
            plan_sink = [] if (explain or partial == "allow") else None
            shard_ids = (
                range(len(self._workers)) if shard is None else (shard,)
            )
            results = []
            covered = []
            missing = []
            reasons = []
            for target in shard_ids:
                try:
                    results.append(
                        self.call_shard(
                            target, method, *args, post=post, plan_sink=plan_sink
                        )
                    )
                    covered.append(target)
                except (ShardFailedError, ShardTimeoutError) as exc:
                    if partial == "reject":
                        raise
                    missing.append(target)
                    reasons.append(
                        "timeout" if isinstance(exc, ShardTimeoutError) else "failed"
                    )
            certificate = None
            if missing:
                certificate = self._certify(covered, missing, reasons, plan_sink)
                query_span.set_attr("partial", True)
                if _TEL.enabled:
                    _PARTIAL_ANSWERS.inc()
            if shard is None or missing:
                if results:
                    with span("service.combine", op=method, shards=len(results)):
                        answer = combiner(results)
                else:
                    # degraded answer covering zero shards: the combiner's
                    # identity (certificate reports covered_fraction 0.0);
                    # "merge" has none — a zero-shard merged sketch is None
                    answer = _EMPTY_ANSWERS.get(combine_name, lambda: None)()
            else:
                # shard-targeted and fully covered: the raw per-shard result
                answer = results[0]
            wall = time.perf_counter() - start
            if _TEL.enabled:
                _TEL.histogram("service_query_seconds", op=method).observe(wall)
            if self._cache is not None and certificate is None:
                # partial answers are never cached: the cache only ever
                # holds answers that covered every shard
                self._cache.put(self.namespace, key, answer)
            if explain:
                plan = QueryPlan(
                    method=method,
                    args=args,
                    combine=combine_name,
                    shard=shard,
                    watermark=watermark,
                    cache_hit=False,
                    wall_seconds=wall,
                    shards=() if plan_sink is None else tuple(plan_sink),
                    certificate=certificate,
                )
                return answer, plan
            return answer

    def _certify(self, covered, missing, reasons, plans) -> ErrorCertificate:
        """Build the error certificate for a degraded-mode answer.

        ``covered_items`` counts what the covered shards have applied;
        ``missing_items`` attributes to each missing shard everything it is
        known to hold — items applied before it went down, sub-batches
        still queued on the poisoned worker, and items parked in a
        supervisor redirect buffer.  The widened bound adds one unit per
        missing item to the covered shards' structural error bounds (exact
        for unit-weight streams; scale by max weight otherwise).
        """
        covered_items = sum(self._workers[s].items_applied for s in covered)
        missing_items = 0
        for s in missing:
            worker = self._workers[s]
            missing_items += worker.items_applied + worker.pending_items
            if self._parked_items is not None:
                missing_items += self._parked_items(s)
        total = covered_items + missing_items
        error_bound = 0.0
        if plans:
            error_bound = float(
                sum(
                    plan.details.get("error_bound", 0) or 0
                    for plan in plans
                    if plan.details is not None
                )
            )
        return ErrorCertificate(
            covered_shards=tuple(covered),
            missing_shards=tuple(missing),
            reasons=tuple(reasons),
            covered_items=covered_items,
            missing_items=missing_items,
            covered_fraction=1.0 if total == 0 else covered_items / total,
            error_bound=error_bound,
            widened_error_bound=error_bound + missing_items,
        )

    def merged_sketch_at(self, timestamp, explain=False):
        """Merged cross-shard snapshot at ``timestamp`` (ATTP).

        Each shard's ``sketch_at`` snapshot is combined with
        :func:`repro.core.merge_sketches` (copy-first, so stored checkpoint
        snapshots are never mutated).  The result is cached; treat it as
        read-only.  ``explain=True`` returns ``(sketch, plan)``.
        """
        return self.query("sketch_at", timestamp, combine="merge", explain=explain)

    def merged_sketch_since(self, timestamp, explain=False):
        """Merged cross-shard suffix summary since ``timestamp`` (BITP).

        ``explain=True`` returns ``(sketch, plan)``.
        """
        return self.query(
            "sketch_since", timestamp, combine="merge", explain=explain
        )

    def cache_info(self) -> dict:
        """Hit/miss/size snapshot of this coordinator's answer-cache view.

        ``hits``/``misses`` are this coordinator's own; ``size``/
        ``capacity`` describe the (possibly shared) underlying
        :class:`AnswerCache`, and ``namespace_size`` is the slice of it
        holding this coordinator's entries.
        """
        with self._stats_lock:
            hits, misses = self.cache_hits, self.cache_misses
        if self._cache is None:
            return {
                "hits": hits,
                "misses": misses,
                "size": 0,
                "capacity": 0,
                "namespace": self.namespace,
                "namespace_size": 0,
            }
        return {
            "hits": hits,
            "misses": misses,
            "size": len(self._cache),
            "capacity": self._cache.capacity,
            "namespace": self.namespace,
            "namespace_size": self._cache.namespace_size(self.namespace),
        }
