"""Query coordinator: fan-out, combine, and the watermark-keyed answer cache.

Queries against a sharded service fan out to every shard's private sketch
(or, for hash-partitioned point queries, go straight to the owning shard),
then combine the per-shard answers with the helpers in
:mod:`repro.core.combine`.  Each per-shard read holds that shard's apply
lock, so a query observes each sketch between fused batch applies, never
mid-apply.

Answers are memoised in a small LRU keyed by ``(method, args, watermark)``:
because the ingest watermark is part of the key, any watermark advance
automatically invalidates every cached answer — no explicit invalidation
hooks, no stale reads.  Cache hits/misses and per-operation fan-out latency
are exported through :mod:`repro.telemetry`.
"""

from __future__ import annotations

import copy
import time
from collections import OrderedDict
from threading import Lock
from typing import Callable, Sequence

from repro.core.combine import (
    combine_any,
    combine_sum,
    combine_union,
    merge_sketches,
)
from repro.telemetry.registry import TELEMETRY as _TEL

_TEL.registry.declare(
    "service_query_seconds",
    "histogram",
    "Fan-out query latency (fan-out + combine), by operation.",
)
_CACHE_HITS = _TEL.counter(
    "service_query_cache_hits_total",
    "Coordinator answers served from the watermark-keyed LRU cache.",
)
_CACHE_MISSES = _TEL.counter(
    "service_query_cache_misses_total",
    "Coordinator answers that required a shard fan-out.",
)

#: Named combine modes accepted by :meth:`QueryCoordinator.query`.
COMBINERS = {
    "sum": combine_sum,
    "any": combine_any,
    "union": combine_union,
    "merge": merge_sketches,
    "list": list,
}


class QueryCoordinator:
    """Fans queries across shard workers and combines their answers.

    Parameters
    ----------
    workers:
        The service's :class:`~repro.service.worker.ShardWorker` list; each
        exposes ``sketch`` and the apply ``lock``.
    watermark:
        Zero-argument callable returning the service's current ingest
        watermark (cache-key component).
    cache_size:
        Maximum cached answers; ``0`` disables caching.
    """

    def __init__(
        self,
        workers: Sequence,
        watermark: Callable[[], int],
        cache_size: int = 256,
    ):
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self._workers = list(workers)
        self._watermark = watermark
        self._cache_size = cache_size
        self._cache: OrderedDict = OrderedDict()
        self._cache_lock = Lock()
        self.cache_hits = 0
        self.cache_misses = 0

    # -- raw fan-out -------------------------------------------------------

    def call_shard(self, shard: int, method: str, *args, post=None, **kwargs):
        """Invoke ``method`` on one shard's sketch under its apply lock.

        ``post``, when given, transforms the result *while the lock is
        still held* — used to deep-copy live sketch objects before a
        concurrent apply can mutate them.
        """
        worker = self._workers[shard]
        worker.raise_if_failed()
        with worker.lock:
            result = getattr(worker.sketch, method)(*args, **kwargs)
            return result if post is None else post(result)

    def fanout(self, method: str, *args, post=None, **kwargs) -> list:
        """Invoke ``method`` on every shard's sketch; per-shard results."""
        return [
            self.call_shard(shard, method, *args, post=post, **kwargs)
            for shard in range(len(self._workers))
        ]

    # -- cached combined queries -------------------------------------------

    def query(self, method: str, *args, combine="list", shard=None):
        """Fan ``method(*args)`` out (or to one ``shard``) and combine.

        ``combine`` is a name from :data:`COMBINERS` or a callable taking
        the per-shard result list.  Results are cached per
        ``(method, args, shard, watermark)``; ``combine="merge"`` answers
        (merged sketch objects) are cached too — callers must treat them as
        read-only.
        """
        combiner = COMBINERS[combine] if isinstance(combine, str) else combine
        post = None
        if combiner is merge_sketches:
            # sketch_at/sketch_since may return the *live* sketch object;
            # copy it under the shard lock so a concurrent apply cannot
            # mutate it mid-copy, then merge the private copies in place
            post = copy.deepcopy
            combiner = lambda results: merge_sketches(results, copy_first=False)
        key = (method, args, shard, self._watermark())
        if self._cache_size:
            with self._cache_lock:
                if key in self._cache:
                    self._cache.move_to_end(key)
                    self.cache_hits += 1
                    if _TEL.enabled:
                        _CACHE_HITS.inc()
                    return self._cache[key]
        self.cache_misses += 1
        if _TEL.enabled:
            _CACHE_MISSES.inc()
        start = time.perf_counter()
        if shard is None:
            answer = combiner(self.fanout(method, *args, post=post))
        else:
            answer = self.call_shard(shard, method, *args, post=post)
        if _TEL.enabled:
            _TEL.histogram("service_query_seconds", op=method).observe(
                time.perf_counter() - start
            )
        if self._cache_size:
            with self._cache_lock:
                self._cache[key] = answer
                self._cache.move_to_end(key)
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        return answer

    def merged_sketch_at(self, timestamp):
        """Merged cross-shard snapshot at ``timestamp`` (ATTP).

        Each shard's ``sketch_at`` snapshot is combined with
        :func:`repro.core.merge_sketches` (copy-first, so stored checkpoint
        snapshots are never mutated).  The result is cached; treat it as
        read-only.
        """
        return self.query("sketch_at", timestamp, combine="merge")

    def merged_sketch_since(self, timestamp):
        """Merged cross-shard suffix summary since ``timestamp`` (BITP)."""
        return self.query("sketch_since", timestamp, combine="merge")

    def cache_info(self) -> dict:
        """Hit/miss/size snapshot of the answer cache."""
        with self._cache_lock:
            return {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "size": len(self._cache),
                "capacity": self._cache_size,
            }
