"""Query coordinator: fan-out, combine, and the watermark-keyed answer cache.

Queries against a sharded service fan out to every shard's private sketch
(or, for hash-partitioned point queries, go straight to the owning shard),
then combine the per-shard answers with the helpers in
:mod:`repro.core.combine`.  Each per-shard read holds that shard's apply
lock, so a query observes each sketch between fused batch applies, never
mid-apply.

Answers are memoised in a small LRU keyed by ``(method, args, watermark)``:
because the ingest watermark is part of the key, any watermark advance
automatically invalidates every cached answer — no explicit invalidation
hooks, no stale reads.  Cache hits/misses and per-operation fan-out latency
are exported through :mod:`repro.telemetry`.
"""

from __future__ import annotations

import copy
import time
from collections import OrderedDict
from threading import Lock
from typing import Callable, Sequence

from repro.core.combine import (
    combine_any,
    combine_sum,
    combine_union,
    merge_sketches,
)
from repro.service.explain import QueryPlan, ShardPlan, shard_plan_details
from repro.telemetry.registry import TELEMETRY as _TEL
from repro.telemetry.spans import span

_TEL.registry.declare(
    "service_query_seconds",
    "histogram",
    "Fan-out query latency (fan-out + combine), by operation.",
)
_CACHE_HITS = _TEL.counter(
    "service_query_cache_hits_total",
    "Coordinator answers served from the watermark-keyed LRU cache.",
)
_CACHE_MISSES = _TEL.counter(
    "service_query_cache_misses_total",
    "Coordinator answers that required a shard fan-out.",
)

#: Named combine modes accepted by :meth:`QueryCoordinator.query`.
COMBINERS = {
    "sum": combine_sum,
    "any": combine_any,
    "union": combine_union,
    "merge": merge_sketches,
    "list": list,
}


class QueryCoordinator:
    """Fans queries across shard workers and combines their answers.

    Parameters
    ----------
    workers:
        The service's :class:`~repro.service.worker.ShardWorker` list; each
        exposes ``sketch`` and the apply ``lock``.
    watermark:
        Zero-argument callable returning the service's current ingest
        watermark (cache-key component).
    cache_size:
        Maximum cached answers; ``0`` disables caching.
    """

    def __init__(
        self,
        workers: Sequence,
        watermark: Callable[[], int],
        cache_size: int = 256,
    ):
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self._workers = list(workers)
        self._watermark = watermark
        self._cache_size = cache_size
        self._cache: OrderedDict = OrderedDict()
        self._cache_lock = Lock()
        self.cache_hits = 0
        self.cache_misses = 0

    # -- raw fan-out -------------------------------------------------------

    def call_shard(
        self, shard: int, method: str, *args, post=None, plan_sink=None, **kwargs
    ):
        """Invoke ``method`` on one shard's sketch under its apply lock.

        ``post``, when given, transforms the result *while the lock is
        still held* — used to deep-copy live sketch objects before a
        concurrent apply can mutate them.  ``plan_sink``, when given,
        receives one :class:`~repro.service.explain.ShardPlan` describing
        what this shard read (plan hook consulted under the same lock, so
        it reports exactly the structure state the answer saw).
        """
        worker = self._workers[shard]
        worker.raise_if_failed()
        with span("service.shard_call", shard=shard, op=method):
            begin = time.perf_counter()
            with worker.lock:
                details = (
                    shard_plan_details(worker.sketch, method, args)
                    if plan_sink is not None
                    else None
                )
                result = getattr(worker.sketch, method)(*args, **kwargs)
                if post is not None:
                    result = post(result)
            if plan_sink is not None:
                plan_sink.append(
                    ShardPlan(
                        shard=shard,
                        wall_seconds=time.perf_counter() - begin,
                        structure=None if details is None else details.get("structure"),
                        details=details,
                    )
                )
            return result

    def fanout(self, method: str, *args, post=None, plan_sink=None, **kwargs) -> list:
        """Invoke ``method`` on every shard's sketch; per-shard results."""
        return [
            self.call_shard(
                shard, method, *args, post=post, plan_sink=plan_sink, **kwargs
            )
            for shard in range(len(self._workers))
        ]

    # -- cached combined queries -------------------------------------------

    def query(self, method: str, *args, combine="list", shard=None, explain=False):
        """Fan ``method(*args)`` out (or to one ``shard``) and combine.

        ``combine`` is a name from :data:`COMBINERS` or a callable taking
        the per-shard result list.  Results are cached per
        ``(method, args, shard, watermark)``; ``combine="merge"`` answers
        (merged sketch objects) are cached too — callers must treat them as
        read-only.

        With ``explain=True`` the return value is ``(answer, plan)`` where
        ``plan`` is a :class:`~repro.service.explain.QueryPlan`: per-shard
        checkpoints/blocks read, sealed vs. live-partial counts, error
        bounds, cache status and wall times.  The answer (and its cache
        behaviour) is identical either way — a cache hit returns a plan
        with ``cache_hit=True`` and no shard entries, since nothing was
        re-read.
        """
        combiner = COMBINERS[combine] if isinstance(combine, str) else combine
        combine_name = (
            combine
            if isinstance(combine, str)
            else getattr(combine, "__name__", "custom")
        )
        post = None
        if combiner is merge_sketches:
            # sketch_at/sketch_since may return the *live* sketch object;
            # copy it under the shard lock so a concurrent apply cannot
            # mutate it mid-copy, then merge the private copies in place
            post = copy.deepcopy
            combiner = lambda results: merge_sketches(results, copy_first=False)
        watermark = self._watermark()
        key = (method, args, shard, watermark)
        start = time.perf_counter()
        with span(
            "service.query", op=method, combine=combine_name, watermark=watermark
        ) as query_span:
            with self._cache_lock:
                # hit *and* miss accounting both live under the lock — the
                # plain-int counters are read back by cache_info() and lose
                # updates under concurrent queries otherwise
                if self._cache_size and key in self._cache:
                    self._cache.move_to_end(key)
                    self.cache_hits += 1
                    if _TEL.enabled:
                        _CACHE_HITS.inc()
                    query_span.set_attr("cache", "hit")
                    answer = self._cache[key]
                    if explain:
                        plan = QueryPlan(
                            method=method,
                            args=args,
                            combine=combine_name,
                            shard=shard,
                            watermark=watermark,
                            cache_hit=True,
                            wall_seconds=time.perf_counter() - start,
                        )
                        return answer, plan
                    return answer
                self.cache_misses += 1
                if _TEL.enabled:
                    _CACHE_MISSES.inc()
            query_span.set_attr("cache", "miss")
            plan_sink = [] if explain else None
            if shard is None:
                results = self.fanout(method, *args, post=post, plan_sink=plan_sink)
                with span("service.combine", op=method, shards=len(results)):
                    answer = combiner(results)
            else:
                answer = self.call_shard(
                    shard, method, *args, post=post, plan_sink=plan_sink
                )
            wall = time.perf_counter() - start
            if _TEL.enabled:
                _TEL.histogram("service_query_seconds", op=method).observe(wall)
            if self._cache_size:
                with self._cache_lock:
                    self._cache[key] = answer
                    self._cache.move_to_end(key)
                    while len(self._cache) > self._cache_size:
                        self._cache.popitem(last=False)
            if explain:
                plan = QueryPlan(
                    method=method,
                    args=args,
                    combine=combine_name,
                    shard=shard,
                    watermark=watermark,
                    cache_hit=False,
                    wall_seconds=wall,
                    shards=tuple(plan_sink),
                )
                return answer, plan
            return answer

    def merged_sketch_at(self, timestamp, explain=False):
        """Merged cross-shard snapshot at ``timestamp`` (ATTP).

        Each shard's ``sketch_at`` snapshot is combined with
        :func:`repro.core.merge_sketches` (copy-first, so stored checkpoint
        snapshots are never mutated).  The result is cached; treat it as
        read-only.  ``explain=True`` returns ``(sketch, plan)``.
        """
        return self.query("sketch_at", timestamp, combine="merge", explain=explain)

    def merged_sketch_since(self, timestamp, explain=False):
        """Merged cross-shard suffix summary since ``timestamp`` (BITP).

        ``explain=True`` returns ``(sketch, plan)``.
        """
        return self.query(
            "sketch_since", timestamp, combine="merge", explain=explain
        )

    def cache_info(self) -> dict:
        """Hit/miss/size snapshot of the answer cache."""
        with self._cache_lock:
            return {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "size": len(self._cache),
                "capacity": self._cache_size,
            }
